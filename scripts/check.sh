#!/usr/bin/env bash
# One-command regression gate: tier-1 unit suite (golden traces included)
# plus the BENCH_hotpath.json perf-regression benches.
#
#   scripts/check.sh            # tier-1 + bench gates (the pre-merge check)
#   scripts/check.sh --slow     # additionally run the slow sweep tier
#
# Environment knobs pass through: REPRO_SMOKE=0 scales the benches up,
# REPRO_BENCH_ACCEPT=1 accepts new bench baselines after an intentional
# change.  Golden traces are regenerated separately (and deliberately, with
# review) via `pytest tests/test_golden_trace.py --update-golden`.
set -euo pipefail

cd "$(dirname "$0")/.."
export PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"

run_slow=0
for arg in "$@"; do
  case "$arg" in
    --slow) run_slow=1 ;;
    *) echo "unknown argument: $arg" >&2; exit 2 ;;
  esac
done

echo "== tier-1: unit suite + golden traces =="
python -m pytest -x -q

if [ "$run_slow" -eq 1 ]; then
  echo "== slow tier: heavyweight sweeps =="
  python -m pytest -x -q -m slow
fi

echo "== obs quickstart: trace + metrics + run report =="
python examples/obs_quickstart.py > /dev/null

echo "== bench gates: BENCH_hotpath.json regression checks =="
python -m pytest benchmarks/bench_hotpath.py -x -q

echo "All checks passed."
