"""Simulated gRPC communicator (protobuf serialisation + TCP + jitter cost model).

Reproduces the communication behaviour of APPFL's gRPC mode (Section IV-D):
every client exchanges the model with the server through a unary RPC, which
pays (i) protobuf serialisation/deserialisation, (ii) GPU→CPU copies that the
RDMA-enabled MPI path avoids, (iii) TCP transport, and (iv) round-to-round
jitter from shared network traffic.  The paper observes up to ~10× higher
cumulative communication time than MPI and ~30× spread between rounds
(Figures 4a and 4b); the defaults here are calibrated to that regime.

Payloads are :class:`~repro.comm.codecs.UpdatePacket` objects (or raw state
dicts): every per-RPC cost below is charged on the *post-codec* byte count,
so a quantizing/sparsifying codec stack directly shrinks the simulated
serialisation and TCP transfer times exactly as it would shrink a protobuf
message on a real channel.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from .base import Communicator
from .latency import GRPCChannelModel, JitterModel

__all__ = ["GRPCSimCommunicator"]


class GRPCSimCommunicator(Communicator):
    """Communicator with a gRPC-over-TCP cost model.

    Parameters
    ----------
    channel:
        Analytic per-RPC cost model.  Pass a custom
        :class:`~repro.comm.latency.GRPCChannelModel` to change serialisation
        rates, TCP parameters, or jitter.
    rng:
        Random generator for jitter (makes experiments reproducible).  When
        given, it overrides the generator inside ``channel.jitter``.
    """

    protocol = "grpc"

    def __init__(self, channel: Optional[GRPCChannelModel] = None, rng: Optional[np.random.Generator] = None):
        super().__init__()
        self.channel = channel if channel is not None else GRPCChannelModel()
        if rng is not None:
            self.channel.jitter.rng = rng

    def _downlink_time(self, nbytes: int, num_clients: int) -> float:
        return self.channel.request_time(nbytes)

    def _uplink_time(self, nbytes: int, num_clients: int) -> float:
        return self.channel.request_time(nbytes)
