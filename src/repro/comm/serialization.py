"""Model-parameter serialisation utilities.

Two jobs:

1. *Sizing*: compute how many bytes a model update occupies on the wire.  The
   APPFL communication experiments (Figures 3-4, Section IV-D) are driven by
   the size of the local model parameters each client sends per round;
   ICEADMM sends primal *and* dual vectors (2x) while IIADMM and FedAvg send
   only the primal vector.

2. *Encoding*: a simple length-prefixed binary encoding of a state dict
   (name, dtype, shape, raw bytes), standing in for gRPC's protocol-buffer
   serialisation.  Encoding/decoding real bytes lets the gRPC simulator charge
   a realistic CPU cost and lets tests assert exact round-tripping.
"""

from __future__ import annotations

import struct
from collections import OrderedDict
from typing import Dict, Mapping, Tuple

import numpy as np

__all__ = [
    "state_dict_nbytes",
    "flatten_state_dict",
    "unflatten_state_dict",
    "encode_state_dict",
    "decode_state_dict",
]

_MAGIC = b"RPRO"


def state_dict_nbytes(state: Mapping[str, np.ndarray]) -> int:
    """Total payload size in bytes of the arrays in ``state``.

    Dtype-aware: a float32 pipeline (``FLConfig.dtype = "float32"``) halves
    the reported per-round communication volume, exactly as the narrower wire
    format would on a real deployment.
    """
    return int(sum(np.asarray(v).nbytes for v in state.values()))


def flatten_state_dict(state: Mapping[str, np.ndarray]) -> Tuple[np.ndarray, "OrderedDict[str, Tuple[Tuple[int, ...], int]]"]:
    """Concatenate all arrays into one flat float64 vector.

    Returns ``(vector, layout)`` where ``layout`` maps each name to
    ``(shape, offset)``; pass it to :func:`unflatten_state_dict` to reverse.
    The flat-vector view is what the ADMM algorithms operate on (the paper's
    ``w``, ``z_p``, ``λ_p`` ∈ R^m).  The float32 pipeline never flattens per
    batch — :class:`repro.core.base.ModelVectorizer` keeps its own flat
    buffer in the configured dtype and only uses the ``layout`` from here.
    """
    layout: "OrderedDict[str, Tuple[Tuple[int, ...], int]]" = OrderedDict()
    chunks = []
    offset = 0
    for name, value in state.items():
        arr = np.asarray(value, dtype=np.float64)
        layout[name] = (arr.shape, offset)
        chunks.append(arr.reshape(-1))
        offset += arr.size
    if not chunks:
        return np.zeros(0), layout
    return np.concatenate(chunks), layout


def unflatten_state_dict(vector: np.ndarray, layout: Mapping[str, Tuple[Tuple[int, ...], int]]) -> "OrderedDict[str, np.ndarray]":
    """Rebuild a state dict from a flat vector and a layout from :func:`flatten_state_dict`."""
    out: "OrderedDict[str, np.ndarray]" = OrderedDict()
    for name, (shape, offset) in layout.items():
        size = int(np.prod(shape)) if shape else 1
        out[name] = vector[offset : offset + size].reshape(shape).copy()
    return out


def encode_state_dict(state: Mapping[str, np.ndarray]) -> bytes:
    """Serialise a state dict to bytes (length-prefixed records)."""
    parts = [_MAGIC, struct.pack("<I", len(state))]
    for name, value in state.items():
        arr = np.ascontiguousarray(value)
        name_b = name.encode("utf-8")
        dtype_b = str(arr.dtype).encode("ascii")
        shape = arr.shape
        parts.append(struct.pack("<H", len(name_b)))
        parts.append(name_b)
        parts.append(struct.pack("<H", len(dtype_b)))
        parts.append(dtype_b)
        parts.append(struct.pack("<B", len(shape)))
        parts.append(struct.pack(f"<{len(shape)}q", *shape) if shape else b"")
        raw = arr.tobytes()
        parts.append(struct.pack("<Q", len(raw)))
        parts.append(raw)
    return b"".join(parts)


def decode_state_dict(payload: bytes) -> "OrderedDict[str, np.ndarray]":
    """Inverse of :func:`encode_state_dict`."""
    if payload[:4] != _MAGIC:
        raise ValueError("not a repro-serialised state dict")
    offset = 4
    (count,) = struct.unpack_from("<I", payload, offset)
    offset += 4
    out: "OrderedDict[str, np.ndarray]" = OrderedDict()
    for _ in range(count):
        (name_len,) = struct.unpack_from("<H", payload, offset)
        offset += 2
        name = payload[offset : offset + name_len].decode("utf-8")
        offset += name_len
        (dtype_len,) = struct.unpack_from("<H", payload, offset)
        offset += 2
        dtype = np.dtype(payload[offset : offset + dtype_len].decode("ascii"))
        offset += dtype_len
        (ndim,) = struct.unpack_from("<B", payload, offset)
        offset += 1
        shape = struct.unpack_from(f"<{ndim}q", payload, offset) if ndim else ()
        offset += 8 * ndim
        (raw_len,) = struct.unpack_from("<Q", payload, offset)
        offset += 8
        arr = np.frombuffer(payload[offset : offset + raw_len], dtype=dtype).reshape(shape).copy()
        offset += raw_len
        out[name] = arr
    return out
