"""Model-parameter serialisation utilities.

Two jobs:

1. *Sizing*: compute how many bytes a model update occupies on the wire.  The
   APPFL communication experiments (Figures 3-4, Section IV-D) are driven by
   the size of the local model parameters each client sends per round;
   ICEADMM sends primal *and* dual vectors (2x) while IIADMM and FedAvg send
   only the primal vector.

2. *Encoding*: a simple length-prefixed binary encoding of a state dict
   (name, dtype, shape, raw bytes), standing in for gRPC's protocol-buffer
   serialisation.  Encoding/decoding real bytes lets the gRPC simulator charge
   a realistic CPU cost and lets tests assert exact round-tripping.
   :func:`encode_packet`/:func:`decode_packet` do the same for the codec-aware
   :class:`~repro.comm.codecs.UpdatePacket` (encoded tensors + per-stage codec
   metadata), which is what the runners actually move since the wire-codec
   refactor.

3. *State blobs*: :func:`encode_state_blob`/:func:`decode_state_blob` encode
   an arbitrary tree of dicts/lists/tuples whose leaves are numpy arrays,
   scalars, strings, bytes, ``None``, or whole :class:`UpdatePacket` objects
   — reusing the same ``_pack_*`` machinery as the wire formats above.  This
   is the persistence format of the client-virtualization layer
   (:mod:`repro.scale`): evicted client state, run checkpoints, RNG
   bit-generator state (arbitrary-precision integers round-trip exactly), and
   pending virtual-clock events all serialise through it, bit-exactly.

Sizing is *post-codec* and dtype-aware: :func:`payload_nbytes` reports the
measured on-wire bytes of whatever crosses the link — the encoded arrays and
codec metadata of an ``UpdatePacket``, or the raw (correct-dtype) tensor
bytes of a plain state dict — never a float64 full-tensor assumption.
"""

from __future__ import annotations

import struct
from collections import OrderedDict
from typing import Dict, Mapping, Tuple, Union

import numpy as np

from .codecs import PacketEntry, UpdatePacket

__all__ = [
    "state_dict_nbytes",
    "payload_nbytes",
    "flatten_state_dict",
    "unflatten_state_dict",
    "encode_state_dict",
    "decode_state_dict",
    "encode_packet",
    "decode_packet",
    "encode_state_blob",
    "decode_state_blob",
]

_MAGIC = b"RPRO"
_PACKET_MAGIC = b"RPKT"
_BLOB_MAGIC = b"RBLB"


def state_dict_nbytes(state: Mapping[str, np.ndarray]) -> int:
    """Total payload size in bytes of the arrays in ``state``.

    Dtype-aware: a float32 pipeline (``FLConfig.dtype = "float32"``) halves
    the reported per-round communication volume, exactly as the narrower wire
    format would on a real deployment.
    """
    return int(sum(np.asarray(v).nbytes for v in state.values()))


def payload_nbytes(payload: Union[UpdatePacket, Mapping[str, np.ndarray]]) -> int:
    """True on-wire bytes of a transported payload.

    ``UpdatePacket``: the measured post-codec size (encoded tensors + codec
    metadata).  Plain state dict: the raw, dtype-correct tensor bytes.
    """
    if isinstance(payload, UpdatePacket):
        return payload.nbytes
    return state_dict_nbytes(payload)


def flatten_state_dict(state: Mapping[str, np.ndarray]) -> Tuple[np.ndarray, "OrderedDict[str, Tuple[Tuple[int, ...], int]]"]:
    """Concatenate all arrays into one flat float64 vector.

    Returns ``(vector, layout)`` where ``layout`` maps each name to
    ``(shape, offset)``; pass it to :func:`unflatten_state_dict` to reverse.
    The flat-vector view is what the ADMM algorithms operate on (the paper's
    ``w``, ``z_p``, ``λ_p`` ∈ R^m).  The float32 pipeline never flattens per
    batch — :class:`repro.core.base.ModelVectorizer` keeps its own flat
    buffer in the configured dtype and only uses the ``layout`` from here.
    """
    layout: "OrderedDict[str, Tuple[Tuple[int, ...], int]]" = OrderedDict()
    chunks = []
    offset = 0
    for name, value in state.items():
        arr = np.asarray(value, dtype=np.float64)
        layout[name] = (arr.shape, offset)
        chunks.append(arr.reshape(-1))
        offset += arr.size
    if not chunks:
        return np.zeros(0), layout
    return np.concatenate(chunks), layout


def unflatten_state_dict(vector: np.ndarray, layout: Mapping[str, Tuple[Tuple[int, ...], int]]) -> "OrderedDict[str, np.ndarray]":
    """Rebuild a state dict from a flat vector and a layout from :func:`flatten_state_dict`."""
    out: "OrderedDict[str, np.ndarray]" = OrderedDict()
    for name, (shape, offset) in layout.items():
        size = int(np.prod(shape)) if shape else 1
        out[name] = vector[offset : offset + size].reshape(shape).copy()
    return out


def encode_state_dict(state: Mapping[str, np.ndarray]) -> bytes:
    """Serialise a state dict to bytes (length-prefixed records)."""
    parts = [_MAGIC, struct.pack("<I", len(state))]
    for name, value in state.items():
        parts.append(_pack_str(name))
        parts.append(_pack_array(np.asarray(value)))
    return b"".join(parts)


def decode_state_dict(payload: bytes) -> "OrderedDict[str, np.ndarray]":
    """Inverse of :func:`encode_state_dict`."""
    if payload[:4] != _MAGIC:
        raise ValueError("not a repro-serialised state dict")
    offset = 4
    (count,) = struct.unpack_from("<I", payload, offset)
    offset += 4
    out: "OrderedDict[str, np.ndarray]" = OrderedDict()
    for _ in range(count):
        name, offset = _unpack_str(payload, offset)
        out[name], offset = _unpack_array(payload, offset)
    return out


# ------------------------------------------------------------ packet encoding
def _pack_str(value: str) -> bytes:
    raw = value.encode("utf-8")
    return struct.pack("<H", len(raw)) + raw


def _unpack_str(payload: bytes, offset: int) -> Tuple[str, int]:
    (length,) = struct.unpack_from("<H", payload, offset)
    offset += 2
    return payload[offset : offset + length].decode("utf-8"), offset + length


def _pack_array(arr: np.ndarray) -> bytes:
    arr = np.ascontiguousarray(arr)
    raw = arr.tobytes()
    return (
        _pack_str(str(arr.dtype))
        + struct.pack("<B", arr.ndim)
        + (struct.pack(f"<{arr.ndim}q", *arr.shape) if arr.ndim else b"")
        + struct.pack("<Q", len(raw))
        + raw
    )


def _unpack_array(payload: bytes, offset: int) -> Tuple[np.ndarray, int]:
    dtype_s, offset = _unpack_str(payload, offset)
    (ndim,) = struct.unpack_from("<B", payload, offset)
    offset += 1
    shape = struct.unpack_from(f"<{ndim}q", payload, offset) if ndim else ()
    offset += 8 * ndim
    (raw_len,) = struct.unpack_from("<Q", payload, offset)
    offset += 8
    arr = np.frombuffer(payload[offset : offset + raw_len], dtype=np.dtype(dtype_s)).reshape(shape).copy()
    return arr, offset + raw_len


def _pack_meta_value(value) -> bytes:
    if isinstance(value, bool):
        return b"B" + struct.pack("<B", int(value))
    if isinstance(value, (int, np.integer)):
        return b"I" + struct.pack("<q", int(value))
    if isinstance(value, (float, np.floating)):
        return b"F" + struct.pack("<d", float(value))
    if isinstance(value, str):
        return b"S" + _pack_str(value)
    if isinstance(value, np.ndarray):
        return b"A" + _pack_array(value)
    raise TypeError(f"unsupported codec metadata value type {type(value).__name__}")


def _unpack_meta_value(payload: bytes, offset: int):
    tag = payload[offset : offset + 1]
    offset += 1
    if tag == b"B":
        (v,) = struct.unpack_from("<B", payload, offset)
        return bool(v), offset + 1
    if tag == b"I":
        (v,) = struct.unpack_from("<q", payload, offset)
        return int(v), offset + 8
    if tag == b"F":
        (v,) = struct.unpack_from("<d", payload, offset)
        return float(v), offset + 8
    if tag == b"S":
        return _unpack_str(payload, offset)
    if tag == b"A":
        return _unpack_array(payload, offset)
    raise ValueError(f"corrupt packet metadata tag {tag!r}")


def encode_packet(packet: UpdatePacket) -> bytes:
    """Serialise an :class:`~repro.comm.codecs.UpdatePacket` to wire bytes.

    This is the packet counterpart of :func:`encode_state_dict` — the format
    a real gRPC/MPI transport would put on the network: codec spec, then per
    tensor the layout header, the encoded data blob, and each codec stage's
    metadata (quantization scales, sparse indices, ...).
    """
    parts = [_PACKET_MAGIC, _pack_str(packet.codec), struct.pack("<I", len(packet.entries))]
    for key, entry in packet.entries.items():
        parts.append(_pack_str(key))
        parts.append(_pack_str(entry.dtype))
        parts.append(struct.pack("<B", len(entry.shape)))
        if entry.shape:
            parts.append(struct.pack(f"<{len(entry.shape)}q", *entry.shape))
        parts.append(_pack_array(entry.data))
        parts.append(struct.pack("<B", len(entry.meta)))
        for meta in entry.meta:
            parts.append(struct.pack("<H", len(meta)))
            for mkey, mval in meta.items():
                parts.append(_pack_str(mkey))
                parts.append(_pack_meta_value(mval))
    return b"".join(parts)


def decode_packet(payload: bytes) -> UpdatePacket:
    """Inverse of :func:`encode_packet`."""
    if payload[:4] != _PACKET_MAGIC:
        raise ValueError("not a repro-serialised update packet")
    offset = 4
    codec, offset = _unpack_str(payload, offset)
    (count,) = struct.unpack_from("<I", payload, offset)
    offset += 4
    entries: "OrderedDict[str, PacketEntry]" = OrderedDict()
    for _ in range(count):
        key, offset = _unpack_str(payload, offset)
        dtype_s, offset = _unpack_str(payload, offset)
        (ndim,) = struct.unpack_from("<B", payload, offset)
        offset += 1
        shape = tuple(struct.unpack_from(f"<{ndim}q", payload, offset)) if ndim else ()
        offset += 8 * ndim
        data, offset = _unpack_array(payload, offset)
        (nstages,) = struct.unpack_from("<B", payload, offset)
        offset += 1
        metas = []
        for _ in range(nstages):
            (nitems,) = struct.unpack_from("<H", payload, offset)
            offset += 2
            meta = {}
            for _ in range(nitems):
                mkey, offset = _unpack_str(payload, offset)
                meta[mkey], offset = _unpack_meta_value(payload, offset)
            metas.append(meta)
        entries[key] = PacketEntry(shape, dtype_s, data, tuple(metas))
    return UpdatePacket(codec, entries)


# ---------------------------------------------------------------- state blobs
def _pack_tree(value) -> bytes:
    if value is None:
        return b"N"
    if isinstance(value, bool):
        return b"B" + struct.pack("<B", int(value))
    if isinstance(value, (int, np.integer)):
        v = int(value)
        if -(2**63) <= v < 2**63:
            return b"I" + struct.pack("<q", v)
        # Arbitrary-precision integers (e.g. PCG64's 128-bit RNG state words)
        # travel as their decimal string.
        return b"J" + _pack_str(str(v))
    if isinstance(value, (float, np.floating)):
        return b"F" + struct.pack("<d", float(value))
    if isinstance(value, str):
        raw = value.encode("utf-8")
        return b"S" + struct.pack("<I", len(raw)) + raw
    if isinstance(value, (bytes, bytearray)):
        return b"Y" + struct.pack("<Q", len(value)) + bytes(value)
    if isinstance(value, np.ndarray):
        return b"A" + _pack_array(value)
    if isinstance(value, UpdatePacket):
        raw = encode_packet(value)
        return b"P" + struct.pack("<Q", len(raw)) + raw
    if isinstance(value, (frozenset, set)):
        items = sorted(value)  # deterministic encoding for id sets
        return b"Z" + struct.pack("<I", len(items)) + b"".join(_pack_tree(v) for v in items)
    if isinstance(value, tuple):
        return b"U" + struct.pack("<I", len(value)) + b"".join(_pack_tree(v) for v in value)
    if isinstance(value, list):
        return b"L" + struct.pack("<I", len(value)) + b"".join(_pack_tree(v) for v in value)
    if isinstance(value, Mapping):
        parts = [b"D", struct.pack("<I", len(value))]
        for k, v in value.items():
            parts.append(_pack_tree(k))
            parts.append(_pack_tree(v))
        return b"".join(parts)
    raise TypeError(f"unsupported state-blob value type {type(value).__name__}")


def _unpack_tree(payload: bytes, offset: int):
    tag = payload[offset : offset + 1]
    offset += 1
    if tag == b"N":
        return None, offset
    if tag == b"B":
        (v,) = struct.unpack_from("<B", payload, offset)
        return bool(v), offset + 1
    if tag == b"I":
        (v,) = struct.unpack_from("<q", payload, offset)
        return int(v), offset + 8
    if tag == b"J":
        s, offset = _unpack_str(payload, offset)
        return int(s), offset
    if tag == b"F":
        (v,) = struct.unpack_from("<d", payload, offset)
        return float(v), offset + 8
    if tag == b"S":
        (length,) = struct.unpack_from("<I", payload, offset)
        offset += 4
        return payload[offset : offset + length].decode("utf-8"), offset + length
    if tag == b"Y":
        (length,) = struct.unpack_from("<Q", payload, offset)
        offset += 8
        return payload[offset : offset + length], offset + length
    if tag == b"A":
        return _unpack_array(payload, offset)
    if tag == b"P":
        (length,) = struct.unpack_from("<Q", payload, offset)
        offset += 8
        return decode_packet(payload[offset : offset + length]), offset + length
    if tag in (b"Z", b"U", b"L"):
        (count,) = struct.unpack_from("<I", payload, offset)
        offset += 4
        items = []
        for _ in range(count):
            item, offset = _unpack_tree(payload, offset)
            items.append(item)
        if tag == b"Z":
            return frozenset(items), offset
        return (tuple(items) if tag == b"U" else items), offset
    if tag == b"D":
        (count,) = struct.unpack_from("<I", payload, offset)
        offset += 4
        out = {}
        for _ in range(count):
            key, offset = _unpack_tree(payload, offset)
            out[key], offset = _unpack_tree(payload, offset)
        return out, offset
    raise ValueError(f"corrupt state blob: unknown tag {tag!r}")


def encode_state_blob(tree) -> bytes:
    """Serialise a state tree (dicts/lists/arrays/scalars/packets) to bytes.

    The persistence format of :mod:`repro.scale`: evicted client state blobs
    and run checkpoints.  Exact: arrays keep dtype/shape, Python ints of any
    magnitude (RNG bit-generator words) round-trip losslessly, dict insertion
    order is preserved, and nested :class:`UpdatePacket` objects travel in
    their wire encoding.  Sets are stored sorted, so encoding is deterministic.
    """
    return _BLOB_MAGIC + _pack_tree(tree)


def decode_state_blob(payload: bytes):
    """Inverse of :func:`encode_state_blob`."""
    if payload[:4] != _BLOB_MAGIC:
        raise ValueError("not a repro state blob")
    tree, offset = _unpack_tree(payload, 4)
    if offset != len(payload):
        raise ValueError(f"trailing bytes in state blob ({len(payload) - offset})")
    return tree
