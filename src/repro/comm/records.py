"""Structured timing records produced by the communication simulators.

Every simulated transfer appends a :class:`CommRecord`; the experiment
harnesses aggregate these into the per-client cumulative times (Figure 4a),
per-round distributions (Figure 4b), and gather-percentage series (Figure 3b).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional

import numpy as np

__all__ = ["CommRecord", "DeadLetter", "CommLog"]


@dataclass(frozen=True)
class CommRecord:
    """One simulated communication event.

    With fault injection active (:mod:`repro.faults`) a logical transfer may
    produce several records: one per failed attempt (``fault`` set, charged
    its timeout or wire time), one per backoff wait (``op="backoff"``), and —
    if any attempt succeeds — one clean record.  ``attempt`` is the 0-based
    retry index; fault-free runs only ever emit ``attempt=0, fault=None``
    records, so every pre-existing aggregation is unchanged.
    """

    round: int
    endpoint: str  # e.g. "client:17" or "server"
    op: str  # "send", "recv", "gather", "bcast", ...
    nbytes: int
    seconds: float
    #: 0-based attempt index of this transfer (retries bump it)
    attempt: int = 0
    #: the injected fault this attempt suffered ("drop"/"timeout"/"corrupt"/
    #: "crash"), or ``None`` for a successful attempt
    fault: Optional[str] = None


@dataclass(frozen=True)
class DeadLetter:
    """A transfer abandoned after exhausting its retry budget (or because
    its sender crashed) — the undeliverable-message record real message
    brokers keep, here feeding the failed-cohort accounting of the runners."""

    round: int
    endpoint: str
    op: str
    nbytes: int
    attempts: int
    reason: str  # "max_attempts" or "crash"


@dataclass
class CommLog:
    """Append-only log of communication events with aggregation helpers."""

    records: List[CommRecord] = field(default_factory=list)
    dead_letters: List[DeadLetter] = field(default_factory=list)

    def add(self, record: CommRecord) -> None:
        self.records.append(record)

    def extend(self, records: Iterable[CommRecord]) -> None:
        self.records.extend(records)

    def add_dead_letter(self, letter: DeadLetter) -> None:
        self.dead_letters.append(letter)

    def __len__(self) -> int:
        return len(self.records)

    def failed_attempts(self, rounds: Optional[Iterable[int]] = None) -> int:
        """Number of faulted transfer attempts (each implies a retry or a
        dead letter), optionally restricted to the given rounds."""
        keep = None if rounds is None else set(rounds)
        return sum(
            1 for r in self.records if r.fault is not None and (keep is None or r.round in keep)
        )

    # ------------------------------------------------------------ aggregation
    def total_seconds(self, endpoint: Optional[str] = None, skip_rounds: Iterable[int] = ()) -> float:
        """Total simulated communication seconds, optionally for one endpoint."""
        skip = set(skip_rounds)
        return float(
            sum(
                r.seconds
                for r in self.records
                if (endpoint is None or r.endpoint == endpoint) and r.round not in skip
            )
        )

    def total_bytes(self, endpoint: Optional[str] = None) -> int:
        """Total simulated bytes transferred, optionally for one endpoint."""
        return int(sum(r.nbytes for r in self.records if endpoint is None or r.endpoint == endpoint))

    def per_round_seconds(self, endpoint: str) -> Dict[int, float]:
        """Map round -> summed seconds for one endpoint."""
        out: Dict[int, float] = {}
        for r in self.records:
            if r.endpoint == endpoint:
                out[r.round] = out.get(r.round, 0.0) + r.seconds
        return out

    def cumulative_seconds(self, endpoint: str, skip_rounds: Iterable[int] = ()) -> np.ndarray:
        """Cumulative per-round seconds for one endpoint (sorted by round)."""
        per_round = self.per_round_seconds(endpoint)
        skip = set(skip_rounds)
        values = [s for rnd, s in sorted(per_round.items()) if rnd not in skip]
        return np.cumsum(values) if values else np.zeros(0)

    def round_times(self, endpoint: str, skip_rounds: Iterable[int] = ()) -> np.ndarray:
        """Per-round seconds for one endpoint as an array (sorted by round)."""
        per_round = self.per_round_seconds(endpoint)
        skip = set(skip_rounds)
        return np.array([s for rnd, s in sorted(per_round.items()) if rnd not in skip])

    def endpoints(self) -> List[str]:
        """Distinct endpoints seen, sorted."""
        return sorted({r.endpoint for r in self.records})

    def clear(self) -> None:
        self.records.clear()
