"""Structured timing records produced by the communication simulators.

Every simulated transfer appends a :class:`CommRecord`; the experiment
harnesses aggregate these into the per-client cumulative times (Figure 4a),
per-round distributions (Figure 4b), and gather-percentage series (Figure 3b).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional

import numpy as np

__all__ = ["CommRecord", "CommLog"]


@dataclass(frozen=True)
class CommRecord:
    """One simulated communication event."""

    round: int
    endpoint: str  # e.g. "client:17" or "server"
    op: str  # "send", "recv", "gather", "bcast", ...
    nbytes: int
    seconds: float


@dataclass
class CommLog:
    """Append-only log of communication events with aggregation helpers."""

    records: List[CommRecord] = field(default_factory=list)

    def add(self, record: CommRecord) -> None:
        self.records.append(record)

    def extend(self, records: Iterable[CommRecord]) -> None:
        self.records.extend(records)

    def __len__(self) -> int:
        return len(self.records)

    # ------------------------------------------------------------ aggregation
    def total_seconds(self, endpoint: Optional[str] = None, skip_rounds: Iterable[int] = ()) -> float:
        """Total simulated communication seconds, optionally for one endpoint."""
        skip = set(skip_rounds)
        return float(
            sum(
                r.seconds
                for r in self.records
                if (endpoint is None or r.endpoint == endpoint) and r.round not in skip
            )
        )

    def total_bytes(self, endpoint: Optional[str] = None) -> int:
        """Total simulated bytes transferred, optionally for one endpoint."""
        return int(sum(r.nbytes for r in self.records if endpoint is None or r.endpoint == endpoint))

    def per_round_seconds(self, endpoint: str) -> Dict[int, float]:
        """Map round -> summed seconds for one endpoint."""
        out: Dict[int, float] = {}
        for r in self.records:
            if r.endpoint == endpoint:
                out[r.round] = out.get(r.round, 0.0) + r.seconds
        return out

    def cumulative_seconds(self, endpoint: str, skip_rounds: Iterable[int] = ()) -> np.ndarray:
        """Cumulative per-round seconds for one endpoint (sorted by round)."""
        per_round = self.per_round_seconds(endpoint)
        skip = set(skip_rounds)
        values = [s for rnd, s in sorted(per_round.items()) if rnd not in skip]
        return np.cumsum(values) if values else np.zeros(0)

    def round_times(self, endpoint: str, skip_rounds: Iterable[int] = ()) -> np.ndarray:
        """Per-round seconds for one endpoint as an array (sorted by round)."""
        per_round = self.per_round_seconds(endpoint)
        skip = set(skip_rounds)
        return np.array([s for rnd, s in sorted(per_round.items()) if rnd not in skip])

    def endpoints(self) -> List[str]:
        """Distinct endpoints seen, sorted."""
        return sorted({r.endpoint for r in self.records})

    def clear(self) -> None:
        self.records.clear()
