"""Zero-cost in-process communicator (the default for algorithm development)."""

from __future__ import annotations

from .base import Communicator

__all__ = ["SerialCommunicator"]


class SerialCommunicator(Communicator):
    """Moves payloads with no simulated communication cost.

    Dict payloads are still deep-copied between endpoints so algorithm code
    cannot accidentally rely on shared mutable arrays — the same isolation a
    real multi-process deployment would enforce.  ``UpdatePacket`` payloads
    are immutable value objects whose decode materialises fresh arrays, so
    they move without copying; their post-codec ``nbytes`` still land in the
    communication log.
    """

    protocol = "serial"

    def _downlink_time(self, nbytes: int, num_clients: int) -> float:
        return 0.0

    def _uplink_time(self, nbytes: int, num_clients: int) -> float:
        return 0.0
