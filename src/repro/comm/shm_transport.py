"""A communicator whose payloads genuinely transit shared memory.

:class:`SharedMemoryTransport` is the :class:`~repro.comm.serial.
SerialCommunicator` of the process execution backend: zero simulated
communication cost (the transfers are intra-host), but instead of the serial
transport's in-process deep copy, every delivered payload is serialised with
the repo's canonical wire format (:func:`~repro.comm.serialization.
encode_packet` / :func:`~repro.comm.serialization.encode_state_dict`),
written into a ``multiprocessing.shared_memory`` segment, read back out of a
*fresh* attachment, and decoded.  The receiver therefore holds arrays
reconstructed from shared-memory bytes — exactly what a multi-process
deployment would hand it — and the round-trip is bitwise lossless, so a run
over this transport is bit-for-bit a run over ``SerialCommunicator``
(regression-tested in ``tests/test_mp.py``).

Useful on its own for validating that payloads survive the shm hop, and as
the documented transport story behind ``FLConfig.execution_backend =
"process"`` (whose runner-internal arenas move broadcast/upload tensors the
same way, minus the serialisation: those stay zero-copy).

Call :meth:`close` (or use as a context manager) to unlink the backing
segment; the arena grows by recreation exactly like the pool's.
"""

from __future__ import annotations

import os

import numpy as np

from ..mp.shm import ShmArena, ShmAttachment
from .base import Communicator, Payload
from .codecs import UpdatePacket
from .serialization import (
    decode_packet,
    decode_state_dict,
    encode_packet,
    encode_state_dict,
)

__all__ = ["SharedMemoryTransport"]

#: distinguishes concurrent transports inside one process
_SEQ = 0


class SharedMemoryTransport(Communicator):
    """Zero-cost intra-host transport that round-trips payloads through a
    real shared-memory segment (see module docstring)."""

    protocol = "shm"

    def __init__(self) -> None:
        super().__init__()
        global _SEQ
        _SEQ += 1
        self._arena = ShmArena(f"rpshm{os.getpid()}x{_SEQ}")
        self._attachment = ShmAttachment()

    def _downlink_time(self, nbytes: int, num_clients: int) -> float:
        return 0.0

    def _uplink_time(self, nbytes: int, num_clients: int) -> float:
        return 0.0

    def _isolate(self, payload: Payload) -> Payload:
        """Deliver through shared memory: encode → shm write → fresh read →
        decode.  Lossless (the wire format is exact), so bitwise equal to the
        serial transport's deep copy."""
        is_packet = isinstance(payload, UpdatePacket)
        blob = encode_packet(payload) if is_packet else encode_state_dict(payload)
        name, manifest = self._arena.pack(
            [("payload", np.frombuffer(blob, dtype=np.uint8))]
        )
        received = self._attachment.view(name, manifest, copy=True)["payload"]
        data = received.tobytes()
        return decode_packet(data) if is_packet else decode_state_dict(data)

    def close(self) -> None:
        """Release the attachment handles and unlink the backing segment."""
        self._attachment.close()
        self._arena.close()

    def __enter__(self) -> "SharedMemoryTransport":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
