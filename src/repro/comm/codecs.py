"""Composable wire codecs and the typed :class:`UpdatePacket`.

Every model payload that crosses a (simulated) link — the server's global
broadcast and each client's local update — travels as one ``UpdatePacket``:
the codec-encoded tensors, the layout needed to rebuild them, the per-stage
codec metadata, and the *true* on-wire byte count that drives every
communication cost model in :mod:`repro.comm` and the asyncfl virtual clock.

A codec *stack* is a ``|``-separated spec string, applied left-to-right at
encode time and right-to-left at decode time::

    FLConfig(codec="identity")            # bit-for-bit passthrough (default)
    FLConfig(codec="fp16")                # half-precision cast (2x / 4x smaller)
    FLConfig(codec="int8")                # per-tensor symmetric affine quantization
    FLConfig(codec="topk:0.1")            # keep the 10% largest-magnitude entries
    FLConfig(codec="delta|int8")          # quantize the update *relative to* the
                                          # dispatched global model
    FLConfig(codec="delta|int8|topk:0.1") # sparse quantized delta

Stages
------
``identity``
    No-op.  A pure-identity stack is guaranteed bit-for-bit transparent and
    reports exactly the raw tensor bytes, so the default configuration
    reproduces the pre-codec behaviour of the repo exactly.
``fp16``
    Casts floating payloads to IEEE half precision (relative error
    ``<= 2^-11`` per element for values in the fp16 range).
``int8``
    Per-tensor *symmetric* affine quantization: ``scale = max|x| / 127``,
    ``q = round(x / scale)`` stored as int8, with the (always-zero)
    ``zero_point`` recorded alongside ``scale`` in the stage metadata.
    Symmetric quantization keeps real 0 exactly representable as integer 0,
    which is what makes ``int8`` compose soundly with ``delta`` (absent
    change decodes to exactly the reference) and with ``topk`` (dropped
    entries decode to exactly 0).
``topk:<fraction>``
    Magnitude sparsification: keeps the ``ceil(fraction * n)`` largest-|x|
    entries of the stage input and their (sorted) indices; everything else
    decodes to the stage's zero.
``delta``
    Encodes the tensor as its difference from a *reference* tensor that both
    endpoints already hold.  The runners supply the reference for the uplink
    primal: the **dispatched** global model the client trained against — the
    same snapshot PR 2's staleness bookkeeping already threads through
    ``ingest(cid, payload, dispatched_global)`` — so delta transmission stays
    correct under asynchronous staleness, buffering, and FedBuff overwrites.
    Keys without a reference (e.g. ICEADMM's dual, or any downlink tensor)
    pass through unchanged.

Ordering with differential privacy: clipping and noising happen inside
``BaseClient.update`` *before* the payload reaches any codec, so encoding is
post-processing of an already-released value and the DP guarantee is
preserved no matter which stack is configured.

Lossy stacks and the IIADMM dual invariant: any stack containing a lossy
stage (everything except pure identity) makes the server decode a value that
differs from what the client computed.  ``BaseClient.reconcile_upload`` (see
:mod:`repro.core.base`) is called with the decoded echo so stateful clients —
IIADMM's "independent but identical" dual replicas — can replay their
bookkeeping against exactly the bytes the server will see.
"""

from __future__ import annotations

import math
import zlib
from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, Mapping, Optional, Sequence, Tuple, Union

import numpy as np

__all__ = [
    "Codec",
    "IdentityCodec",
    "Fp16Codec",
    "Int8QuantCodec",
    "TopKSparseCodec",
    "DeltaCodec",
    "CodecPipeline",
    "PacketEntry",
    "UpdatePacket",
    "parse_codec",
    "resolve_codec",
    "decode_packet_state",
]


# --------------------------------------------------------------------- stages
class Codec:
    """One stage of a codec stack.

    ``encode`` maps a 1-D array to its encoded 1-D form plus a metadata dict;
    ``decode`` inverts it.  Stages are stateless (safe to share across
    pipelines and threads); per-tensor state lives entirely in the metadata,
    which travels inside the :class:`UpdatePacket`.
    """

    name: str = "base"
    #: True when decode(encode(x)) is not guaranteed bit-for-bit equal to x
    lossy: bool = False

    @property
    def spec(self) -> str:
        """Canonical spec fragment of this stage (e.g. ``"topk:0.1"``)."""
        return self.name

    def encode(self, arr: np.ndarray, ref: Optional[np.ndarray]) -> Tuple[np.ndarray, Dict]:
        raise NotImplementedError

    def decode(self, arr: np.ndarray, meta: Mapping, ref: Optional[np.ndarray]) -> np.ndarray:
        raise NotImplementedError


class IdentityCodec(Codec):
    """Bit-for-bit passthrough (the default stack)."""

    name = "identity"

    def encode(self, arr, ref):
        return arr, {}

    def decode(self, arr, meta, ref):
        return arr


class Fp16Codec(Codec):
    """Cast floating tensors to IEEE half precision on the wire."""

    name = "fp16"
    lossy = True

    def encode(self, arr, ref):
        if arr.dtype.kind != "f" or arr.dtype == np.float16:
            return arr, {"applied": False}
        return arr.astype(np.float16), {"applied": True, "dtype": str(arr.dtype)}

    def decode(self, arr, meta, ref):
        if not meta.get("applied"):
            return arr
        return arr.astype(np.dtype(meta["dtype"]))


class Int8QuantCodec(Codec):
    """Per-tensor symmetric affine int8 quantization.

    ``scale`` and ``zero_point`` are recorded per tensor; symmetric mode
    (``zero_point = 0``) is used so real 0 quantizes to integer 0 exactly —
    the property that makes this stage compose with ``delta`` and ``topk``
    (see the module docstring).  Maximum absolute reconstruction error is
    ``scale / 2 = max|x| / 254``.
    """

    name = "int8"
    lossy = True

    def encode(self, arr, ref):
        if arr.dtype.kind != "f":
            return arr, {"applied": False}
        amax = float(np.max(np.abs(arr))) if arr.size else 0.0
        scale = amax / 127.0 if amax > 0.0 else 1.0
        q = np.clip(np.rint(arr / scale), -127, 127).astype(np.int8)
        return q, {"applied": True, "dtype": str(arr.dtype), "scale": scale, "zero_point": 0}

    def decode(self, arr, meta, ref):
        if not meta.get("applied"):
            return arr
        # Dequantize in float64 and cast once: casting the scale into a
        # narrow target dtype first (float16 after an fp16 stage) can shred
        # its precision — subnormal fp16 steps are coarser than scale/2 —
        # and break this stage's documented error bound.
        dtype = np.dtype(meta["dtype"])
        out = arr.astype(np.float64)
        out -= float(meta["zero_point"])
        out *= float(meta["scale"])
        return out.astype(dtype)


class TopKSparseCodec(Codec):
    """Keep only the ``ceil(fraction * n)`` largest-magnitude entries."""

    name = "topk"
    lossy = True

    def __init__(self, fraction: float = 0.1):
        if not 0.0 < fraction <= 1.0:
            raise ValueError("topk fraction must be in (0, 1]")
        self.fraction = float(fraction)

    @property
    def spec(self) -> str:
        return f"topk:{self.fraction:g}"

    def encode(self, arr, ref):
        n = arr.size
        k = max(1, int(math.ceil(self.fraction * n)))
        if k >= n:
            return arr, {"applied": False}
        keep = np.argpartition(np.abs(arr), n - k)[n - k :]
        indices = np.sort(keep).astype(np.int64 if n > np.iinfo(np.int32).max else np.int32)
        return np.ascontiguousarray(arr[indices]), {"applied": True, "size": n, "indices": indices}

    def decode(self, arr, meta, ref):
        if not meta.get("applied"):
            return arr
        out = np.zeros(int(meta["size"]), dtype=arr.dtype)
        out[meta["indices"]] = arr
        return out


class DeltaCodec(Codec):
    """Encode a tensor as its difference from a shared reference tensor.

    Applies only where the pipeline was handed a reference of matching size
    (the runners pass the dispatched global model for the uplink primal);
    everything else passes through with ``applied = False``.
    """

    name = "delta"
    lossy = True  # (x - ref) + ref is not bit-exact in floating point

    def encode(self, arr, ref):
        if ref is None or arr.dtype.kind != "f" or ref.size != arr.size:
            return arr, {"applied": False}
        return arr - ref.reshape(-1).astype(arr.dtype, copy=False), {"applied": True}

    def decode(self, arr, meta, ref):
        if not meta.get("applied"):
            return arr
        if ref is None:
            raise ValueError("delta-encoded payload needs the reference tensor to decode")
        return arr + ref.reshape(-1).astype(arr.dtype, copy=False)


# -------------------------------------------------------------------- packets
def _meta_nbytes(meta: Mapping) -> int:
    """On-wire cost of one stage's metadata.

    Counts auxiliary arrays (e.g. top-k indices) at full size and scalar
    codec parameters (quantization scale / zero-point) at 8 bytes each;
    structural bookkeeping (``applied`` flags, the redundant ``size``, dtype
    strings — fixed schema-level fields) is not charged, so a pure identity
    stack reports exactly the raw tensor bytes.
    """
    total = 0
    for key, value in meta.items():
        if isinstance(value, np.ndarray):
            total += value.nbytes
        elif isinstance(value, bool) or key in ("size", "dtype", "applied"):
            continue
        elif isinstance(value, (int, float, np.integer, np.floating)):
            total += 8
    return total


@dataclass(frozen=True)
class PacketEntry:
    """One codec-encoded tensor inside an :class:`UpdatePacket`."""

    #: original shape, restored on decode
    shape: Tuple[int, ...]
    #: original dtype string, restored on decode
    dtype: str
    #: final encoded 1-D array (what actually crosses the wire)
    data: np.ndarray
    #: per-stage metadata, aligned with the pipeline's stages
    meta: Tuple[Dict, ...]

    @property
    def nbytes(self) -> int:
        """True on-wire bytes of this tensor (encoded data + codec metadata)."""
        return int(self.data.nbytes) + sum(_meta_nbytes(m) for m in self.meta)

    def copy(self) -> "PacketEntry":
        """Deep copy (fresh encoded arrays and metadata)."""
        meta = tuple(
            {k: (v.copy() if isinstance(v, np.ndarray) else v) for k, v in m.items()}
            for m in self.meta
        )
        return PacketEntry(self.shape, self.dtype, self.data.copy(), meta)


@dataclass(frozen=True)
class UpdatePacket:
    """A codec-encoded model payload — the single unit of model movement.

    Self-describing: ``codec`` is the canonical stack spec (resolvable via
    :func:`resolve_codec`), ``entries`` map payload keys to their encoded
    tensors, and :attr:`nbytes` is the measured on-wire size that every
    communicator cost model and the asyncfl link latency charge.
    """

    codec: str
    entries: "OrderedDict[str, PacketEntry]"

    @property
    def nbytes(self) -> int:
        """Total true on-wire bytes of this packet."""
        return sum(entry.nbytes for entry in self.entries.values())

    def keys(self):
        return self.entries.keys()

    def copy(self) -> "UpdatePacket":
        """Deep copy (endpoint isolation for the in-process transports)."""
        return UpdatePacket(self.codec, OrderedDict((k, e.copy()) for k, e in self.entries.items()))

    def checksum(self) -> int:
        """CRC-32 over the packet's codec spec, entry names, and encoded bytes.

        The integrity check of the fault layer (:mod:`repro.faults`): a
        receiver compares the sender-side checksum against the delivered
        packet's and rejects on mismatch, turning simulated wire corruption
        into a detectable, retryable fault instead of silent numeric damage.
        """
        crc = zlib.crc32(self.codec.encode("utf-8"))
        for name, entry in self.entries.items():
            crc = zlib.crc32(name.encode("utf-8"), crc)
            crc = zlib.crc32(str(entry.dtype).encode("utf-8"), crc)
            data = np.ascontiguousarray(entry.data)
            crc = zlib.crc32(data.view(np.uint8) if data.nbytes else b"", crc)
        return crc


# ------------------------------------------------------------------- pipeline
class CodecPipeline:
    """An ordered stack of codec stages applied to every payload tensor."""

    def __init__(self, stages: Sequence[Codec]):
        self.stages: Tuple[Codec, ...] = tuple(stages) if stages else (IdentityCodec(),)

    @property
    def spec(self) -> str:
        """Canonical ``|``-joined spec of this stack."""
        return "|".join(stage.spec for stage in self.stages)

    @property
    def lossy(self) -> bool:
        """True when decode(encode(x)) may differ from x."""
        return any(stage.lossy for stage in self.stages)

    def __repr__(self) -> str:
        return f"CodecPipeline({self.spec!r})"

    # ------------------------------------------------------------- per tensor
    def encode_array(self, value: np.ndarray, ref: Optional[np.ndarray] = None) -> PacketEntry:
        arr = np.asarray(value)
        flat = arr.reshape(-1)
        ref_flat = None if ref is None else np.asarray(ref).reshape(-1)
        metas = []
        for stage in self.stages:
            flat, meta = stage.encode(flat, ref_flat)
            metas.append(meta)
        return PacketEntry(arr.shape, str(arr.dtype), np.ascontiguousarray(flat), tuple(metas))

    def decode_array(self, entry: PacketEntry, ref: Optional[np.ndarray] = None) -> np.ndarray:
        flat = entry.data
        ref_flat = None if ref is None else np.asarray(ref).reshape(-1)
        for stage, meta in zip(reversed(self.stages), reversed(entry.meta)):
            flat = stage.decode(flat, meta, ref_flat)
        out = flat.astype(np.dtype(entry.dtype), copy=False).reshape(entry.shape)
        if np.may_share_memory(out, entry.data):
            out = out.copy()  # decoded tensors never alias the wire buffer
        return out

    # -------------------------------------------------------------- per state
    def encode_state(
        self,
        state: Mapping[str, np.ndarray],
        reference: Optional[Mapping[str, np.ndarray]] = None,
    ) -> UpdatePacket:
        """Encode a payload dict into one :class:`UpdatePacket`.

        ``reference`` maps payload keys to the reference tensors available on
        *both* endpoints (used by ``delta``); keys without a reference are
        encoded standalone.
        """
        entries: "OrderedDict[str, PacketEntry]" = OrderedDict()
        for key, value in state.items():
            ref = None if reference is None else reference.get(key)
            entries[key] = self.encode_array(value, ref)
        return UpdatePacket(self.spec, entries)

    def decode_state(
        self,
        packet: UpdatePacket,
        reference: Optional[Mapping[str, np.ndarray]] = None,
    ) -> "OrderedDict[str, np.ndarray]":
        """Inverse of :meth:`encode_state` (same ``reference`` required)."""
        out: "OrderedDict[str, np.ndarray]" = OrderedDict()
        for key, entry in packet.entries.items():
            ref = None if reference is None else reference.get(key)
            out[key] = self.decode_array(entry, ref)
        return out


# -------------------------------------------------------------------- parsing
def _make_stage(part: str) -> Codec:
    name, _, arg = part.partition(":")
    name = name.strip().lower()
    if name == "identity":
        stage: Codec = IdentityCodec()
    elif name == "fp16":
        stage = Fp16Codec()
    elif name == "int8":
        stage = Int8QuantCodec()
    elif name == "delta":
        stage = DeltaCodec()
    elif name == "topk":
        try:
            stage = TopKSparseCodec(float(arg) if arg else 0.1)
        except ValueError as exc:
            raise ValueError(f"bad topk fraction in codec stage {part!r}: {exc}") from None
        arg = ""
    else:
        raise ValueError(
            f"unknown codec stage {name!r} (choose from identity, fp16, int8, topk:<frac>, delta)"
        )
    if arg:
        raise ValueError(f"codec stage {name!r} takes no argument (got {part!r})")
    return stage


def parse_codec(spec: Union[str, Codec, CodecPipeline]) -> CodecPipeline:
    """Parse a ``|``-separated codec spec string into a :class:`CodecPipeline`.

    Also accepts an existing pipeline or a single stage (passed through /
    wrapped), so APIs can take either form.
    """
    if isinstance(spec, CodecPipeline):
        return spec
    if isinstance(spec, Codec):
        return CodecPipeline([spec])
    parts = [p for p in (part.strip() for part in str(spec).split("|")) if p]
    if not parts:
        raise ValueError(f"empty codec spec {spec!r}")
    return CodecPipeline([_make_stage(part) for part in parts])


#: pipelines are stateless — cache them per canonical spec so every layer
#: (config validation, clients, runners, server decode) shares one instance
_PIPELINES: Dict[str, CodecPipeline] = {}


def resolve_codec(spec: Union[str, Codec, CodecPipeline]) -> CodecPipeline:
    """Like :func:`parse_codec`, but memoised by spec string."""
    if isinstance(spec, CodecPipeline):
        return spec
    if isinstance(spec, Codec):
        return CodecPipeline([spec])
    key = str(spec)
    pipeline = _PIPELINES.get(key)
    if pipeline is None:
        pipeline = parse_codec(key)
        _PIPELINES[key] = pipeline
        _PIPELINES.setdefault(pipeline.spec, pipeline)
    return pipeline


def decode_packet_state(
    packet: UpdatePacket,
    reference: Optional[Mapping[str, np.ndarray]] = None,
) -> "OrderedDict[str, np.ndarray]":
    """Decode a self-describing packet using the pipeline named in it."""
    return resolve_codec(packet.codec).decode_state(packet, reference)
