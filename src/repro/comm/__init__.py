"""Communication substrates: serial, simulated MPI (RDMA), simulated gRPC (TCP)."""

from .base import Communicator, client_endpoint, server_endpoint
from .grpc_sim import GRPCSimCommunicator
from .latency import (
    GRPCChannelModel,
    JitterModel,
    LinkModel,
    MPIChannelModel,
    RDMALinkModel,
    SerializationModel,
    TCPLinkModel,
)
from .mpi_sim import MPISimCommunicator
from .records import CommLog, CommRecord
from .serial import SerialCommunicator
from .serialization import (
    decode_state_dict,
    encode_state_dict,
    flatten_state_dict,
    state_dict_nbytes,
    unflatten_state_dict,
)

__all__ = [
    "Communicator",
    "SerialCommunicator",
    "MPISimCommunicator",
    "GRPCSimCommunicator",
    "client_endpoint",
    "server_endpoint",
    "CommLog",
    "CommRecord",
    "LinkModel",
    "RDMALinkModel",
    "TCPLinkModel",
    "SerializationModel",
    "JitterModel",
    "MPIChannelModel",
    "GRPCChannelModel",
    "state_dict_nbytes",
    "flatten_state_dict",
    "unflatten_state_dict",
    "encode_state_dict",
    "decode_state_dict",
]
