"""Communication substrates: serial, simulated MPI (RDMA), simulated gRPC (TCP).

All substrates transport :class:`~repro.comm.codecs.UpdatePacket` payloads —
codec-encoded tensors whose measured ``nbytes`` drive every cost model — and
accept raw state dicts for direct/low-level use.
"""

from .base import Communicator, client_endpoint, edge_endpoint, server_endpoint
from .codecs import (
    CodecPipeline,
    DeltaCodec,
    Fp16Codec,
    IdentityCodec,
    Int8QuantCodec,
    TopKSparseCodec,
    UpdatePacket,
    decode_packet_state,
    parse_codec,
    resolve_codec,
)
from .grpc_sim import GRPCSimCommunicator
from .latency import (
    GRPCChannelModel,
    JitterModel,
    LinkModel,
    MPIChannelModel,
    RDMALinkModel,
    SerializationModel,
    TCPLinkModel,
)
from .mpi_sim import MPISimCommunicator
from .records import CommLog, CommRecord, DeadLetter
from .serial import SerialCommunicator
from .shm_transport import SharedMemoryTransport
from .serialization import (
    decode_packet,
    decode_state_dict,
    encode_packet,
    encode_state_dict,
    flatten_state_dict,
    payload_nbytes,
    state_dict_nbytes,
    unflatten_state_dict,
)

__all__ = [
    "CodecPipeline",
    "IdentityCodec",
    "Fp16Codec",
    "Int8QuantCodec",
    "TopKSparseCodec",
    "DeltaCodec",
    "UpdatePacket",
    "parse_codec",
    "resolve_codec",
    "decode_packet_state",
    "Communicator",
    "SerialCommunicator",
    "SharedMemoryTransport",
    "MPISimCommunicator",
    "GRPCSimCommunicator",
    "client_endpoint",
    "edge_endpoint",
    "server_endpoint",
    "CommLog",
    "CommRecord",
    "DeadLetter",
    "LinkModel",
    "RDMALinkModel",
    "TCPLinkModel",
    "SerializationModel",
    "JitterModel",
    "MPIChannelModel",
    "GRPCChannelModel",
    "state_dict_nbytes",
    "payload_nbytes",
    "flatten_state_dict",
    "unflatten_state_dict",
    "encode_state_dict",
    "decode_state_dict",
    "encode_packet",
    "decode_packet",
]
