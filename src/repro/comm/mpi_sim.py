"""Simulated MPI communicator (InfiniBand + RDMA collective cost model).

Reproduces the communication behaviour of APPFL's MPI mode on Summit
(Section IV-C): clients are grouped onto MPI ranks, the server broadcasts the
global model, and local updates return via ``MPI.gather()`` configured for
GPU-to-GPU RDMA transfers.

The communicator charges each client the simulated time of the collective it
participates in, so the resulting :class:`~repro.comm.records.CommLog` can be
aggregated exactly like the paper's per-round ``MPI.gather`` timings.
Payloads are :class:`~repro.comm.codecs.UpdatePacket` objects (or raw state
dicts); collective costs scale with the measured post-codec byte count, so a
compressing codec stack shrinks the simulated ``bcast``/``gather`` times.
"""

from __future__ import annotations

import math
from typing import Optional

import numpy as np

from .base import Communicator
from .latency import MPIChannelModel

__all__ = ["MPISimCommunicator"]


class MPISimCommunicator(Communicator):
    """Communicator with an MPI/RDMA collective cost model.

    Parameters
    ----------
    num_processes:
        Number of simulated MPI ranks hosting clients (one extra rank is
        implicitly reserved for the server, as in the paper).  Clients are
        distributed evenly across ranks; each rank gathers its clients'
        updates in one collective call.
    channel:
        The analytic cost model for point-to-point and collective operations.
    """

    protocol = "mpi"

    def __init__(self, num_processes: int, channel: Optional[MPIChannelModel] = None):
        super().__init__()
        if num_processes <= 0:
            raise ValueError("num_processes must be positive")
        self.num_processes = int(num_processes)
        self.channel = channel if channel is not None else MPIChannelModel()

    # ------------------------------------------------------------------ sizing
    def clients_per_process(self, num_clients: int) -> int:
        """Number of clients each MPI rank simulates (ceiling division)."""
        return math.ceil(num_clients / self.num_processes)

    # ------------------------------------------------------------------- hooks
    def _downlink_time(self, nbytes: int, num_clients: int) -> float:
        # The server broadcasts one global model to all ranks; each client on a
        # rank reads the same received buffer, so the per-client charge is the
        # broadcast time amortised over the clients sharing the rank.
        bcast = self.channel.bcast_time(nbytes, self.num_processes)
        return bcast / max(1, self.clients_per_process(num_clients))

    def _uplink_time(self, nbytes: int, num_clients: int) -> float:
        # Each rank packs `clients_per_process` local models into its gather
        # contribution; all clients on the rank observe the same collective
        # completion time, amortised per client for per-client accounting.
        cpp = self.clients_per_process(num_clients)
        nbytes_per_rank = nbytes * cpp
        total = nbytes * num_clients
        gather = self.channel.gather_time(nbytes_per_rank, self.num_processes, total_nbytes=total)
        return gather / max(1, cpp)

    # --------------------------------------------------------------- analytics
    def round_gather_time(self, model_nbytes: int, num_clients: int) -> float:
        """Wall-clock seconds of one ``MPI.gather()`` round (not amortised)."""
        cpp = self.clients_per_process(num_clients)
        return self.channel.gather_time(
            model_nbytes * cpp, self.num_processes, total_nbytes=model_nbytes * num_clients
        )

    def round_bcast_time(self, model_nbytes: int) -> float:
        """Wall-clock seconds of one global-model broadcast."""
        return self.channel.bcast_time(model_nbytes, self.num_processes)
