"""Communicator interface used by the FL runners.

A *communicator* moves model payloads between the server endpoint and client
endpoints, and charges *simulated* wall-clock seconds for each transfer into
a :class:`repro.comm.records.CommLog`.  Since the wire-codec refactor the
payload of record is the typed :class:`~repro.comm.codecs.UpdatePacket`
(codec-encoded tensors + metadata + true ``nbytes``); plain state dicts are
still accepted so low-level tests and user code can drive the transports
directly.

The whole federation runs inside one Python process (that is how APPFL's MPI
simulation mode works too — each MPI rank simulates many clients); what
differs between communicator implementations is the *cost model* applied to
each transfer — always driven by the *measured post-codec* byte count — and
whether payloads are deep-copied to emulate process isolation.
"""

from __future__ import annotations

import copy
from abc import ABC, abstractmethod
from typing import Dict, Mapping, Optional, Sequence, Union

import numpy as np

from .codecs import UpdatePacket
from .records import CommLog, CommRecord, DeadLetter
from .serialization import payload_nbytes
from ..obs import current_tracer

__all__ = ["Communicator", "server_endpoint", "client_endpoint", "edge_endpoint"]

#: what the transports move: a codec-encoded packet, or a raw state dict
Payload = Union[UpdatePacket, Mapping[str, np.ndarray]]

SERVER = "server"


def server_endpoint() -> str:
    """Canonical name of the server endpoint."""
    return SERVER


def client_endpoint(client_id: int) -> str:
    """Canonical name of a client endpoint."""
    return f"client:{client_id}"


def edge_endpoint(edge_id: int) -> str:
    """Canonical name of an edge-aggregator endpoint (repro.hier)."""
    return f"edge:{edge_id}"


class Communicator(ABC):
    """Moves payloads between the server and clients under a timing model."""

    #: human-readable protocol name ("serial", "mpi", "grpc")
    protocol: str = "base"

    #: names the far endpoint in log records.  The default is the flat
    #: federation's "client:<id>"; a communicator serving the edge→root tier
    #: of a hierarchical run (repro.hier) sets this to ``edge_endpoint`` so
    #: its records read "edge:<id>".
    endpoint_namer = staticmethod(client_endpoint)

    def __init__(self) -> None:
        self.log = CommLog()
        #: fault layer (None = the exact pre-fault transfer path).  Set via
        #: :meth:`install_faults`; serial/mpi_sim/grpc_sim only override the
        #: timing hooks, so all transports inherit the same seam.
        self.injector = None
        self.retry = None

    def install_faults(self, faults, retry=None) -> "Communicator":
        """Arm this communicator with a fault plan or injector.

        ``faults`` is a :class:`repro.faults.FaultPlan` (wrapped in a fresh
        :class:`~repro.faults.FaultInjector`) or an injector shared with a
        runner.  ``retry`` overrides the injector's
        :class:`~repro.faults.RetryPolicy`.  Returns ``self`` for chaining.
        """
        from ..faults.injector import FaultInjector  # local: avoid import cycle
        from ..faults.plan import FaultPlan

        if isinstance(faults, FaultPlan):
            faults = FaultInjector(faults)
        self.injector = faults
        self.retry = retry if retry is not None else faults.retry
        return self

    def _transfer(self, round_idx: int, endpoint: str, op: str, payload: Payload, nbytes: int, time_fn) -> Optional[Payload]:
        """One logical transfer through the fault/retry seam.

        Without an injector this is exactly the historical single-record
        path.  With one, each attempt consults the injector: drops and
        timeouts charge the retry policy's full ``timeout`` (the sender
        waited for an ack that never came) and deliver nothing; corruptions
        charge the attempt's wire time but the delivered
        :class:`UpdatePacket` fails its checksum, so it is discarded and
        retried; a sender crash is unretryable.  Failed attempts are
        followed by a deterministic backoff record; a transfer exhausting
        ``max_attempts`` lands in the log's dead letters and returns
        ``None`` (the runners then finalize with the surviving cohort).
        """
        injector = self.injector
        tracer = current_tracer()
        codec = getattr(payload, "codec", None)
        if injector is None:
            seconds = time_fn()
            self.log.add(CommRecord(round_idx, endpoint, op, nbytes, seconds))
            if tracer is not None:
                tracer.event(
                    "comm_send", "comm", lane="comm", round=round_idx,
                    endpoint=endpoint, op=op, nbytes=nbytes, sim_seconds=seconds,
                    codec=codec,
                )
            return payload
        policy = self.retry
        attempts = max(1, int(policy.max_attempts))
        for attempt in range(attempts):
            fault = injector.transfer_fault(round_idx, endpoint, op, attempt)
            if fault == "corrupt":
                if isinstance(payload, UpdatePacket):
                    delivered = injector.corrupt_packet(payload)
                    if delivered.checksum() == payload.checksum():
                        fault = None  # degenerate all-empty packet: nothing to flip
                else:
                    fault = "drop"  # raw dicts carry no checksum; model as loss
            if fault is None:
                seconds = time_fn()
                self.log.add(
                    CommRecord(round_idx, endpoint, op, nbytes, seconds, attempt=attempt)
                )
                if tracer is not None:
                    tracer.event(
                        "comm_send", "comm", lane="comm", round=round_idx,
                        endpoint=endpoint, op=op, nbytes=nbytes, sim_seconds=seconds,
                        attempt=attempt, codec=codec,
                    )
                return payload
            injector.count(fault)
            if fault == "crash":
                self.log.add(CommRecord(round_idx, endpoint, op, 0, 0.0, attempt=attempt, fault=fault))
                self.log.add_dead_letter(DeadLetter(round_idx, endpoint, op, nbytes, attempt + 1, "crash"))
                injector.stats.dead_letters += 1
                if tracer is not None:
                    tracer.event(
                        "comm_dead_letter", "comm", lane="comm", round=round_idx,
                        endpoint=endpoint, op=op, nbytes=nbytes, reason="crash",
                        attempts=attempt + 1,
                    )
                return None
            # Corrupted bytes crossed the wire (charge the attempt's wire
            # time); dropped/timed-out ones cost the sender its full timeout.
            if fault == "corrupt":
                self.log.add(
                    CommRecord(round_idx, endpoint, op, nbytes, time_fn(), attempt=attempt, fault=fault)
                )
            else:
                self.log.add(
                    CommRecord(round_idx, endpoint, op, 0, policy.timeout, attempt=attempt, fault=fault)
                )
            if attempt + 1 < attempts:
                injector.stats.retries += 1
                delay = policy.backoff_delay(attempt, round_idx, endpoint, op)
                self.log.add(
                    CommRecord(
                        round_idx,
                        endpoint,
                        "backoff",
                        0,
                        delay,
                        attempt=attempt + 1,
                    )
                )
                if tracer is not None:
                    tracer.event(
                        "comm_backoff", "comm", lane="comm", round=round_idx,
                        endpoint=endpoint, op=op, attempt=attempt + 1, sim_seconds=delay,
                    )
        self.log.add_dead_letter(DeadLetter(round_idx, endpoint, op, nbytes, attempts, "max_attempts"))
        injector.stats.dead_letters += 1
        if tracer is not None:
            tracer.event(
                "comm_dead_letter", "comm", lane="comm", round=round_idx,
                endpoint=endpoint, op=op, nbytes=nbytes, reason="max_attempts",
                attempts=attempts,
            )
        return None

    # ------------------------------------------------------------------ hooks
    @abstractmethod
    def _downlink_time(self, nbytes: int, num_clients: int) -> float:
        """Simulated seconds for one client to receive ``nbytes`` from the server."""

    @abstractmethod
    def _uplink_time(self, nbytes: int, num_clients: int) -> float:
        """Simulated seconds for one client to send ``nbytes`` to the server."""

    def _isolate(self, payload: Payload) -> Payload:
        """Copy a payload so sender and receiver cannot alias each other's arrays.

        ``UpdatePacket`` payloads pass through uncopied: packets are treated
        as immutable value objects, and decoding one always materialises
        fresh arrays, so the endpoints can never alias live model memory
        through a packet.
        """
        if isinstance(payload, UpdatePacket):
            return payload
        return {k: np.array(v, copy=True) for k, v in payload.items()}

    # ------------------------------------------------------------------- API
    def broadcast(self, round_idx: int, payload: Payload, client_ids: Sequence[int]) -> Dict[int, Payload]:
        """Send the global model to every client; returns per-client copies.

        With faults armed, clients whose downlink dead-letters are absent
        from the result — the runners treat them as unreachable this round.
        """
        nbytes = payload_nbytes(payload)
        out: Dict[int, Payload] = {}
        for cid in client_ids:
            delivered = self._transfer(
                round_idx,
                self.endpoint_namer(cid),
                "recv_global",
                payload,
                nbytes,
                lambda: self._downlink_time(nbytes, len(client_ids)),
            )
            if delivered is not None:
                out[cid] = self._isolate(delivered)
        return out

    def collect(self, round_idx: int, payloads: Mapping[int, Payload]) -> Dict[int, Payload]:
        """Send each client's local update to the server; returns server-side
        copies.  With faults armed, dead-lettered uploads are absent — the
        round then finalizes with the surviving cohort."""
        out: Dict[int, Payload] = {}
        for cid, payload in payloads.items():
            nbytes = payload_nbytes(payload)
            delivered = self._transfer(
                round_idx,
                self.endpoint_namer(cid),
                "send_local",
                payload,
                nbytes,
                lambda nbytes=nbytes: self._uplink_time(nbytes, len(payloads)),
            )
            if delivered is not None:
                out[cid] = self._isolate(delivered)
        return out

    # ------------------------------------------------------------- statistics
    def client_comm_seconds(self, client_id: int, skip_rounds: Sequence[int] = ()) -> float:
        """Total simulated communication seconds charged to one client."""
        return self.log.total_seconds(client_endpoint(client_id), skip_rounds=skip_rounds)

    def total_bytes(self) -> int:
        """Total simulated bytes across all endpoints."""
        return self.log.total_bytes()
