"""Communicator interface used by the FL runners.

A *communicator* moves model payloads (state dicts of numpy arrays) between
the server endpoint and client endpoints, and charges *simulated* wall-clock
seconds for each transfer into a :class:`repro.comm.records.CommLog`.

The whole federation runs inside one Python process (that is how APPFL's MPI
simulation mode works too — each MPI rank simulates many clients); what
differs between communicator implementations is the *cost model* applied to
each transfer, and whether payloads are deep-copied to emulate process
isolation.
"""

from __future__ import annotations

import copy
from abc import ABC, abstractmethod
from typing import Dict, Mapping, Sequence

import numpy as np

from .records import CommLog, CommRecord
from .serialization import state_dict_nbytes

__all__ = ["Communicator", "server_endpoint", "client_endpoint"]

SERVER = "server"


def server_endpoint() -> str:
    """Canonical name of the server endpoint."""
    return SERVER


def client_endpoint(client_id: int) -> str:
    """Canonical name of a client endpoint."""
    return f"client:{client_id}"


class Communicator(ABC):
    """Moves payloads between the server and clients under a timing model."""

    #: human-readable protocol name ("serial", "mpi", "grpc")
    protocol: str = "base"

    def __init__(self) -> None:
        self.log = CommLog()

    # ------------------------------------------------------------------ hooks
    @abstractmethod
    def _downlink_time(self, nbytes: int, num_clients: int) -> float:
        """Simulated seconds for one client to receive ``nbytes`` from the server."""

    @abstractmethod
    def _uplink_time(self, nbytes: int, num_clients: int) -> float:
        """Simulated seconds for one client to send ``nbytes`` to the server."""

    def _isolate(self, payload: Mapping[str, np.ndarray]) -> Dict[str, np.ndarray]:
        """Copy a payload so sender and receiver cannot alias each other's arrays."""
        return {k: np.array(v, copy=True) for k, v in payload.items()}

    # ------------------------------------------------------------------- API
    def broadcast(
        self, round_idx: int, payload: Mapping[str, np.ndarray], client_ids: Sequence[int]
    ) -> Dict[int, Dict[str, np.ndarray]]:
        """Send the global model to every client; returns per-client copies."""
        nbytes = state_dict_nbytes(payload)
        out: Dict[int, Dict[str, np.ndarray]] = {}
        for cid in client_ids:
            seconds = self._downlink_time(nbytes, len(client_ids))
            self.log.add(CommRecord(round_idx, client_endpoint(cid), "recv_global", nbytes, seconds))
            out[cid] = self._isolate(payload)
        return out

    def collect(
        self, round_idx: int, payloads: Mapping[int, Mapping[str, np.ndarray]]
    ) -> Dict[int, Dict[str, np.ndarray]]:
        """Send each client's local update to the server; returns server-side copies."""
        out: Dict[int, Dict[str, np.ndarray]] = {}
        for cid, payload in payloads.items():
            nbytes = state_dict_nbytes(payload)
            seconds = self._uplink_time(nbytes, len(payloads))
            self.log.add(CommRecord(round_idx, client_endpoint(cid), "send_local", nbytes, seconds))
            out[cid] = self._isolate(payload)
        return out

    # ------------------------------------------------------------- statistics
    def client_comm_seconds(self, client_id: int, skip_rounds: Sequence[int] = ()) -> float:
        """Total simulated communication seconds charged to one client."""
        return self.log.total_seconds(client_endpoint(client_id), skip_rounds=skip_rounds)

    def total_bytes(self) -> int:
        """Total simulated bytes across all endpoints."""
        return self.log.total_bytes()
