"""Communicator interface used by the FL runners.

A *communicator* moves model payloads between the server endpoint and client
endpoints, and charges *simulated* wall-clock seconds for each transfer into
a :class:`repro.comm.records.CommLog`.  Since the wire-codec refactor the
payload of record is the typed :class:`~repro.comm.codecs.UpdatePacket`
(codec-encoded tensors + metadata + true ``nbytes``); plain state dicts are
still accepted so low-level tests and user code can drive the transports
directly.

The whole federation runs inside one Python process (that is how APPFL's MPI
simulation mode works too — each MPI rank simulates many clients); what
differs between communicator implementations is the *cost model* applied to
each transfer — always driven by the *measured post-codec* byte count — and
whether payloads are deep-copied to emulate process isolation.
"""

from __future__ import annotations

import copy
from abc import ABC, abstractmethod
from typing import Dict, Mapping, Sequence, Union

import numpy as np

from .codecs import UpdatePacket
from .records import CommLog, CommRecord
from .serialization import payload_nbytes

__all__ = ["Communicator", "server_endpoint", "client_endpoint", "edge_endpoint"]

#: what the transports move: a codec-encoded packet, or a raw state dict
Payload = Union[UpdatePacket, Mapping[str, np.ndarray]]

SERVER = "server"


def server_endpoint() -> str:
    """Canonical name of the server endpoint."""
    return SERVER


def client_endpoint(client_id: int) -> str:
    """Canonical name of a client endpoint."""
    return f"client:{client_id}"


def edge_endpoint(edge_id: int) -> str:
    """Canonical name of an edge-aggregator endpoint (repro.hier)."""
    return f"edge:{edge_id}"


class Communicator(ABC):
    """Moves payloads between the server and clients under a timing model."""

    #: human-readable protocol name ("serial", "mpi", "grpc")
    protocol: str = "base"

    #: names the far endpoint in log records.  The default is the flat
    #: federation's "client:<id>"; a communicator serving the edge→root tier
    #: of a hierarchical run (repro.hier) sets this to ``edge_endpoint`` so
    #: its records read "edge:<id>".
    endpoint_namer = staticmethod(client_endpoint)

    def __init__(self) -> None:
        self.log = CommLog()

    # ------------------------------------------------------------------ hooks
    @abstractmethod
    def _downlink_time(self, nbytes: int, num_clients: int) -> float:
        """Simulated seconds for one client to receive ``nbytes`` from the server."""

    @abstractmethod
    def _uplink_time(self, nbytes: int, num_clients: int) -> float:
        """Simulated seconds for one client to send ``nbytes`` to the server."""

    def _isolate(self, payload: Payload) -> Payload:
        """Copy a payload so sender and receiver cannot alias each other's arrays.

        ``UpdatePacket`` payloads pass through uncopied: packets are treated
        as immutable value objects, and decoding one always materialises
        fresh arrays, so the endpoints can never alias live model memory
        through a packet.
        """
        if isinstance(payload, UpdatePacket):
            return payload
        return {k: np.array(v, copy=True) for k, v in payload.items()}

    # ------------------------------------------------------------------- API
    def broadcast(self, round_idx: int, payload: Payload, client_ids: Sequence[int]) -> Dict[int, Payload]:
        """Send the global model to every client; returns per-client copies."""
        nbytes = payload_nbytes(payload)
        out: Dict[int, Payload] = {}
        for cid in client_ids:
            seconds = self._downlink_time(nbytes, len(client_ids))
            self.log.add(CommRecord(round_idx, self.endpoint_namer(cid), "recv_global", nbytes, seconds))
            out[cid] = self._isolate(payload)
        return out

    def collect(self, round_idx: int, payloads: Mapping[int, Payload]) -> Dict[int, Payload]:
        """Send each client's local update to the server; returns server-side copies."""
        out: Dict[int, Payload] = {}
        for cid, payload in payloads.items():
            nbytes = payload_nbytes(payload)
            seconds = self._uplink_time(nbytes, len(payloads))
            self.log.add(CommRecord(round_idx, self.endpoint_namer(cid), "send_local", nbytes, seconds))
            out[cid] = self._isolate(payload)
        return out

    # ------------------------------------------------------------- statistics
    def client_comm_seconds(self, client_id: int, skip_rounds: Sequence[int] = ()) -> float:
        """Total simulated communication seconds charged to one client."""
        return self.log.total_seconds(client_endpoint(client_id), skip_rounds=skip_rounds)

    def total_bytes(self) -> int:
        """Total simulated bytes across all endpoints."""
        return self.log.total_bytes()
