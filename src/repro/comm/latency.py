"""Analytic network-cost models for the communication simulators.

The APPFL paper runs its scaling experiments over two transports:

* **MPI** on Summit, configured to use InfiniBand with RDMA so model tensors
  move GPU-to-GPU with "low latency and no extra copies of data"
  (Section IV-C).
* **gRPC** over the same nodes but *without* RDMA, so every message pays
  protobuf serialisation/deserialisation, a GPU→CPU copy, TCP transport, and
  whatever jitter the shared network imposes (Section IV-D: up to 10× slower
  cumulative time and ~30× round-to-round spread).

Each model below returns *simulated seconds* from closed-form expressions of
the classic latency/bandwidth (α–β) form, extended with per-byte CPU costs
for the gRPC path.  Constants are calibrated so the reproduced figures show
the same qualitative shape as the paper (see ``benchmarks/``).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Optional

import numpy as np

__all__ = [
    "LinkModel",
    "RDMALinkModel",
    "TCPLinkModel",
    "SerializationModel",
    "GRPCChannelModel",
    "MPIChannelModel",
    "JitterModel",
]


@dataclass(frozen=True)
class LinkModel:
    """Point-to-point α–β link: ``time = latency + nbytes / bandwidth``."""

    latency: float  # seconds per message
    bandwidth: float  # bytes per second

    def transfer_time(self, nbytes: int) -> float:
        """Seconds to move ``nbytes`` over this link."""
        if nbytes < 0:
            raise ValueError("nbytes must be non-negative")
        return self.latency + nbytes / self.bandwidth


def RDMALinkModel(latency: float = 2.0e-6, bandwidth: float = 12.5e9) -> LinkModel:
    """InfiniBand EDR with GPUDirect RDMA: ~2 µs latency, ~12.5 GB/s."""
    return LinkModel(latency=latency, bandwidth=bandwidth)


def TCPLinkModel(latency: float = 200.0e-6, bandwidth: float = 0.6e9) -> LinkModel:
    """TCP over the cluster Ethernet/IPoIB path: ~200 µs latency, ~0.6 GB/s effective."""
    return LinkModel(latency=latency, bandwidth=bandwidth)


@dataclass(frozen=True)
class SerializationModel:
    """CPU cost of converting tensors to wire format and back.

    ``serialize_bw`` / ``deserialize_bw`` are protobuf-like packing rates;
    ``memcpy_bw`` charges the device→host and host→device copies that RDMA
    avoids; ``fixed_overhead`` covers per-RPC framing and Python/gRPC stack
    bookkeeping.
    """

    serialize_bw: float = 0.5e9
    deserialize_bw: float = 0.8e9
    memcpy_bw: float = 6.0e9
    fixed_overhead: float = 2.5e-3

    def one_way_time(self, nbytes: int) -> float:
        """CPU seconds to serialise + copy ``nbytes`` on one side of an RPC."""
        if nbytes < 0:
            raise ValueError("nbytes must be non-negative")
        return self.fixed_overhead + nbytes / self.serialize_bw + nbytes / self.memcpy_bw

    def receive_time(self, nbytes: int) -> float:
        """CPU seconds to deserialise + copy ``nbytes`` on the receiving side."""
        if nbytes < 0:
            raise ValueError("nbytes must be non-negative")
        return nbytes / self.deserialize_bw + nbytes / self.memcpy_bw


@dataclass
class JitterModel:
    """Multiplicative log-normal jitter standing in for shared-network traffic.

    With ``sigma ≈ 0.95`` the ratio between the fastest and slowest of ~50
    rounds is roughly 30×, matching the spread reported in Figure 4b.
    """

    sigma: float = 0.95
    rng: Optional[np.random.Generator] = None

    def __post_init__(self) -> None:
        if self.sigma < 0:
            raise ValueError("sigma must be non-negative")
        if self.rng is None:
            self.rng = np.random.default_rng()

    def sample(self) -> float:
        """Draw one multiplicative jitter factor (median 1.0)."""
        if self.sigma == 0:
            return 1.0
        return float(np.exp(self.rng.normal(0.0, self.sigma)))


@dataclass
class MPIChannelModel:
    """Cost model for MPI collective communication over RDMA.

    ``gather_time`` models ``MPI.gather()`` of ``nbytes_per_rank`` from ``n_ranks``
    ranks to the root as a latency term that grows with ``log2(P)`` (the
    binomial-tree algorithm used by most MPI implementations), a per-rank
    injection term, and a root ingest term proportional to the *total* data
    arriving at the root.  The root ingest term is what prevents perfect
    scaling of communication in Figure 3: total gathered data is constant
    (203 client models per round) regardless of how many ranks share the work.
    """

    link: LinkModel = field(default_factory=RDMALinkModel)
    root_ingest_bandwidth: float = 100.0e9
    sync_overhead: float = 30.0e-6

    def p2p_time(self, nbytes: int) -> float:
        """Point-to-point send/recv time."""
        return self.link.transfer_time(nbytes)

    def gather_time(self, nbytes_per_rank: int, n_ranks: int, total_nbytes: Optional[int] = None) -> float:
        """Wall-clock seconds one rank observes for a gather to the root."""
        if n_ranks <= 0:
            raise ValueError("n_ranks must be positive")
        if nbytes_per_rank < 0:
            raise ValueError("nbytes_per_rank must be non-negative")
        total = total_nbytes if total_nbytes is not None else nbytes_per_rank * n_ranks
        tree_steps = max(1.0, math.ceil(math.log2(n_ranks + 1)))
        latency_term = self.sync_overhead + self.link.latency * tree_steps
        injection_term = nbytes_per_rank / self.link.bandwidth
        root_term = total / self.root_ingest_bandwidth
        return latency_term + injection_term + root_term

    def bcast_time(self, nbytes: int, n_ranks: int) -> float:
        """Broadcast of ``nbytes`` from the root to ``n_ranks`` ranks."""
        if n_ranks <= 0:
            raise ValueError("n_ranks must be positive")
        tree_steps = max(1.0, math.ceil(math.log2(n_ranks + 1)))
        return self.sync_overhead + tree_steps * self.link.transfer_time(nbytes)


@dataclass
class GRPCChannelModel:
    """Cost model for a unary gRPC exchange of model parameters.

    A round trip charges client-side serialisation, TCP transport (both
    directions), server-side deserialisation, and a jitter factor on the
    transport component.
    """

    link: LinkModel = field(default_factory=TCPLinkModel)
    serialization: SerializationModel = field(default_factory=SerializationModel)
    jitter: JitterModel = field(default_factory=JitterModel)

    def request_time(self, nbytes: int) -> float:
        """One-way client→server time for ``nbytes`` of parameters.

        The jitter factor multiplies the whole request: in practice congestion
        delays the RPC end-to-end (connection scheduling, flow control, and
        server-side queuing), which is what produces the ~30× round-to-round
        spread of Figure 4b.
        """
        base = (
            self.serialization.one_way_time(nbytes)
            + self.link.transfer_time(nbytes)
            + self.serialization.receive_time(nbytes)
        )
        return base * self.jitter.sample()

    def round_trip_time(self, upload_nbytes: int, download_nbytes: int) -> float:
        """Full round (download global model, upload local model)."""
        return self.request_time(download_nbytes) + self.request_time(upload_nbytes)
