"""repro — reproduction of APPFL (Argonne Privacy-Preserving Federated Learning).

Subpackages
-----------
``repro.nn``
    Numpy-based autograd / neural-network substrate (replaces PyTorch).
``repro.data``
    Datasets, data loaders, client partitioners, and synthetic dataset
    generators standing in for MNIST / CIFAR10 / FEMNIST / CoronaHack.
``repro.comm``
    Communication substrates: in-process serial, simulated MPI (InfiniBand +
    RDMA cost model), and simulated gRPC (serialisation + TCP + jitter).
``repro.simulator``
    Cluster/device simulator (Summit V100 nodes, Swing A100 nodes).
``repro.privacy``
    Differential-privacy mechanisms (Laplace output perturbation), sensitivity
    rules, clipping, and a privacy accountant.
``repro.core``
    The federated-learning framework itself: ``BaseServer``/``BaseClient``,
    FedAvg, ICEADMM, and the paper's new IIADMM algorithm, plus configuration,
    metrics, and runners.
``repro.asyncfl``
    Event-driven asynchronous federation: virtual-clock scheduler, client
    participation samplers, and staleness-aware aggregation (FedAsync,
    FedBuff, sampled synchronous rounds).
``repro.scale``
    Client virtualization for large populations: memory-bounded
    ``ClientStateStore`` (LRU of live clients over serialized state blobs)
    and deterministic ``RunCheckpoint`` checkpoint/resume.
``repro.hier``
    Hierarchical multi-tier federation: deterministic client→edge
    topologies, edge aggregators folding shards into exact partial sums,
    and sync/async two-tier runners with per-hop codecs and links.
``repro.faults``
    Deterministic fault injection: seeded link/crash fault plans, retry
    policies with capped exponential backoff, and the injector the
    communicators and runners share for chaos testing and self-healing.
``repro.obs``
    Unified telemetry: context-local span ``Tracer`` (JSONL and Chrome/
    Perfetto ``trace_event`` export) and the ``MetricsRegistry`` of
    counters/gauges/histograms absorbing every tier's accounting.
``repro.harness``
    Experiment harnesses that regenerate each table/figure of the paper.
"""

__version__ = "0.1.0"

__all__ = ["nn", "data", "comm", "simulator", "privacy", "core", "asyncfl", "scale", "hier", "faults", "obs", "harness", "__version__"]
