"""Experiment harnesses that regenerate each table and figure of the paper.

==========  =======================================================
Harness     Paper artefact
==========  =======================================================
table1      Table I — framework capability comparison
fig2        Figure 2 — test accuracy vs privacy budget ε
scaling     Figure 3a/3b — strong scaling of local updates on Summit
comm        Figure 4a/4b — gRPC vs MPI communication times
hetero      Section IV-E — A100 vs V100 load imbalance
volume      Section III-A/IV-D — per-round communication volume
ablation    DESIGN.md ablations — proximal term ζ, batching
async       beyond the paper — sync vs FedAsync vs FedBuff wall clock
chaos       beyond the paper — convergence-under-churn + bitwise recovery
obsreport   beyond the paper — terminal run explorer over an obs trace
==========  =======================================================
"""

from .async_compare import (
    AsyncCompareResult,
    AsyncCompareRow,
    AsyncCompareSettings,
    run_async_compare,
)
from .ablation import (
    AblationResult,
    AblationRow,
    AblationSettings,
    run_batching_ablation,
    run_zeta_ablation,
)
from .comm_compare import (
    BoxStats,
    CodecSweepResult,
    CodecSweepRow,
    CodecSweepSettings,
    CommCompareResult,
    CommCompareSettings,
    run_codec_sweep,
    run_comm_compare,
)
from .chaos import ChaosResult, ChaosSettings, histories_bitwise_equal, run_chaos
from .comm_volume import CommVolumeResult, CommVolumeRow, CommVolumeSettings, run_comm_volume
from .fig2 import Fig2Cell, Fig2Result, Fig2Settings, default_epsilons, run_fig2
from .hetero import HeteroResult, HeteroSettings, run_hetero
from .obsreport import load_trace, render_metrics, render_report
from .reporting import format_check, format_history, format_series, format_table
from .scaling import ScalingPoint, ScalingResult, ScalingSettings, run_scaling
from .table1 import PAPER_TABLE1, framework_capabilities, render_table1, verify_appfl_column

__all__ = [
    "format_table",
    "format_series",
    "format_check",
    "format_history",
    "AsyncCompareSettings",
    "AsyncCompareRow",
    "AsyncCompareResult",
    "run_async_compare",
    "PAPER_TABLE1",
    "framework_capabilities",
    "verify_appfl_column",
    "render_table1",
    "Fig2Settings",
    "Fig2Cell",
    "Fig2Result",
    "run_fig2",
    "default_epsilons",
    "ScalingSettings",
    "ScalingPoint",
    "ScalingResult",
    "run_scaling",
    "CommCompareSettings",
    "CommCompareResult",
    "BoxStats",
    "run_comm_compare",
    "CodecSweepSettings",
    "CodecSweepRow",
    "CodecSweepResult",
    "run_codec_sweep",
    "HeteroSettings",
    "HeteroResult",
    "run_hetero",
    "CommVolumeSettings",
    "CommVolumeRow",
    "CommVolumeResult",
    "run_comm_volume",
    "AblationSettings",
    "AblationRow",
    "AblationResult",
    "run_zeta_ablation",
    "run_batching_ablation",
    "ChaosSettings",
    "ChaosResult",
    "run_chaos",
    "histories_bitwise_equal",
    "load_trace",
    "render_report",
    "render_metrics",
]
