"""Convergence-under-churn: the chaos-engineering harness.

Two claims make the fault layer (:mod:`repro.faults`) trustworthy, and this
harness turns both into assertions:

* **Convergence under churn** — a hierarchical asynchronous federation whose
  edges are killed at seeded-random event counts (losing their in-flight
  cohorts and rolling back to their last flush-boundary slice) and whose
  clients crash probabilistically still trains: every planned kill is
  recovered, every round completes, and the final accuracy lands within a
  tolerance of the fault-free run over the same data.
* **Boundary recovery is bitwise** — when kills land exactly at flush
  boundaries (where the rollback slice was captured an instant earlier) and
  both hops use identity codecs, the crash+recover run is **bit-for-bit**
  the crash-free run: same per-round accuracy/loss, same global parameter
  vector, and — run under IIADMM — the same dual replicas on every edge.
  Anything short of an exact state capture/restore (a missed RNG stream, an
  aliased array, a double-replayed dual) breaks this equality.

A fourth check exercises the **synchronous** hier runner's mid-round edge
crash path (round-start checkpoint slice → restore → replay) under the
configured ``execution_backend`` — with ``--backend process`` the replayed
shard rounds run in worker processes, so the check additionally proves the
pool's state sync (``sync_parent``/``push_from_parent``) is bit-exact.
(The three asynchronous checks never engage the process pool: the
event-driven runners run local updates on their thread executor regardless
of backend, a documented no-op.)

``main()`` runs all checks and renders them; ``--smoke`` keeps the workload
in CI-friendly seconds (the chaos smoke job in ``.github/workflows/ci.yml``).
"""

from __future__ import annotations

import argparse
from dataclasses import dataclass, field
from typing import Dict, Mapping, Optional, Sequence, Tuple

import numpy as np

from ..core.config import FLConfig
from ..core.models import MLP
from ..data import TensorDataset
from ..faults import FaultPlan
from ..hier import RootFedBuff, build_hier_async_federation, build_hier_federation
from ..obs import (
    Alert,
    HealthMonitor,
    MetricsRegistry,
    MetricsStream,
    RunMonitor,
    Tracer,
    default_monitors,
    lint_exposition,
    use_tracer,
)
from .reporting import format_check, format_history

__all__ = ["ChaosSettings", "ChaosResult", "run_chaos", "histories_bitwise_equal", "main"]


@dataclass(frozen=True)
class ChaosSettings:
    """Scaled-down chaos scenario (tiny MLP over synthetic shards).

    ``kills`` edges die at seeded-random event counts during the churn run;
    ``boundary_kills`` maps edges to flush-boundary waves for the bitwise
    check.  Tolerance is on final accuracy against the fault-free baseline.
    """

    num_clients: int = 24
    num_edges: int = 8
    kills: int = 2
    num_rounds: int = 5
    bitwise_rounds: int = 3
    local_steps: int = 2
    batch_size: int = 4
    lr: float = 0.05
    seed: int = 0
    input_dim: int = 16
    num_classes: int = 4
    samples_per_client: int = 12
    test_size: int = 48
    client_crash_prob: float = 0.04
    accuracy_tolerance: float = 0.05
    boundary_kills: Optional[Mapping] = None
    #: execution backend for every federation the harness builds ("serial" /
    #: "thread" / "process").  Only the synchronous edge-crash check actually
    #: changes execution under "process"; the async runs treat it as "thread".
    execution_backend: str = "thread"
    #: serve a live ``/metrics`` + ``/healthz`` endpoint during the monitored
    #: runs and self-scrape it once mid-run (``--serve``); the scrape's
    #: exposition text must pass :func:`repro.obs.lint_exposition`
    serve: bool = False
    #: write the monitored runs' per-round metrics time series here as JSONL
    #: (samples tagged ``baseline`` / ``churn``; ``--stream``)
    stream_path: Optional[str] = None

    def boundary_schedule(self) -> Dict[int, Tuple[int, ...]]:
        """Which edges die at which flush boundaries in the bitwise check
        (default: edge 0 at its first flush, edge 1 at its second; with a
        RootFedBuff(num_edges) window every edge flushes once per round, so
        these fire for any ``bitwise_rounds >= 2``)."""
        if self.boundary_kills is not None:
            return {int(e): tuple(int(w) for w in ws) for e, ws in dict(self.boundary_kills).items()}
        return {0: (0,), 1: (1,)}


@dataclass
class ChaosResult:
    """Outcome of both chaos checks plus the evidence behind them."""

    baseline_accuracy: float
    chaos_accuracy: float
    converged: bool
    kills_planned: int
    kills_recovered: int
    failed_client_events: int
    fault_stats: Dict[str, int]
    bitwise_identical: bool
    bitwise_algorithm: str
    #: synchronous-runner edge-crash check: crash+recover bitwise vs
    #: crash-free, run under this execution backend
    sync_bitwise_identical: bool = True
    sync_backend: str = "thread"
    histories: Dict[str, object] = field(default_factory=dict)
    #: full :meth:`repro.obs.MetricsRegistry.snapshot` of the churn run —
    #: the single source the fault/comm numbers above are derived from
    metrics: Dict[str, object] = field(default_factory=dict)
    #: :meth:`repro.obs.HealthReport.to_dict` per monitored run ("baseline" /
    #: "churn"); the fault-free baseline must come back with zero alerts
    health: Dict[str, object] = field(default_factory=dict)
    #: whether the mid-run ``/metrics`` self-scrape happened (``None`` when
    #: the endpoint was not served)
    endpoint_scraped: Optional[bool] = None

    @property
    def baseline_health_ok(self) -> bool:
        """Zero watchdog alerts on the fault-free monitored baseline."""
        report = self.health.get("baseline")
        return report is None or report.get("status") == "ok"  # type: ignore[union-attr]

    @property
    def ok(self) -> bool:
        return (
            self.converged
            and self.bitwise_identical
            and self.sync_bitwise_identical
            and self.kills_recovered == self.kills_planned
            and self.baseline_health_ok
            and self.endpoint_scraped is not False
        )

    def render(self) -> str:
        lines = [
            format_check(
                "convergence under churn (final accuracy)",
                f"{self.baseline_accuracy:.4f}±tol",
                f"{self.chaos_accuracy:.4f}",
                self.converged,
            ),
            format_check(
                "edge kills recovered",
                str(self.kills_planned),
                str(self.kills_recovered),
                self.kills_recovered == self.kills_planned,
            ),
            format_check(
                f"boundary crash+recover bitwise ({self.bitwise_algorithm}, incl. duals)",
                "identical",
                "identical" if self.bitwise_identical else "DIVERGED",
                self.bitwise_identical,
            ),
            format_check(
                f"sync edge-crash bitwise ({self.bitwise_algorithm}, "
                f"backend={self.sync_backend})",
                "identical",
                "identical" if self.sync_bitwise_identical else "DIVERGED",
                self.sync_bitwise_identical,
            ),
            f"fault stats: {self.fault_stats}",
        ]
        if self.health:
            lines.append(
                format_check(
                    "fault-free baseline health (watchdog alerts)",
                    "0 alerts",
                    self.health.get("baseline", {}).get("status", "?"),  # type: ignore[union-attr]
                    self.baseline_health_ok,
                )
            )
            for run_name, report in sorted(self.health.items()):
                alerts = report.get("alerts", [])  # type: ignore[union-attr]
                summary = (
                    f"health[{run_name}]: {report.get('status')} "  # type: ignore[union-attr]
                    f"({report.get('samples')} samples, {len(alerts)} alerts)"  # type: ignore[union-attr]
                )
                lines.append(summary)
                for alert in alerts:
                    lines.append(
                        f"  {str(alert.get('severity', '?')).upper():8s} "
                        f"{alert.get('monitor')}: {alert.get('message')}"
                    )
        if self.endpoint_scraped is not None:
            lines.append(
                format_check(
                    "live /metrics self-scrape (exposition lint)",
                    "scraped, clean",
                    "scraped" if self.endpoint_scraped else "MISSED",
                    bool(self.endpoint_scraped),
                )
            )
        if "chaos" in self.histories:
            lines.append(format_history(self.histories["chaos"], title="churn run:"))
        return "\n".join(lines)


def _make_data(settings: ChaosSettings):
    """Deterministic per-client shards + a shared test set."""
    rng = np.random.default_rng(settings.seed + 99)
    # A fixed linear teacher makes the synthetic task learnable, so accuracy
    # genuinely improves over rounds and the convergence check has teeth.
    teacher = rng.standard_normal((settings.input_dim, settings.num_classes))

    def _split(n):
        x = rng.standard_normal((n, settings.input_dim))
        y = np.argmax(x @ teacher + 0.1 * rng.standard_normal((n, settings.num_classes)), axis=1)
        return TensorDataset(x, y)

    datasets = [_split(settings.samples_per_client) for _ in range(settings.num_clients)]
    return datasets, _split(settings.test_size)


def _model_fn(settings: ChaosSettings):
    return lambda: MLP(
        settings.input_dim,
        settings.num_classes,
        hidden_sizes=(8,),
        rng=np.random.default_rng(settings.seed + 4242),
    )


def _config(settings: ChaosSettings, algorithm: str, num_rounds: int) -> FLConfig:
    return FLConfig(
        algorithm=algorithm,
        num_rounds=num_rounds,
        local_steps=settings.local_steps,
        batch_size=settings.batch_size,
        lr=settings.lr,
        seed=settings.seed,
        topology=f"edges:{settings.num_edges}",
        execution_backend=settings.execution_backend,
    )


def _build(settings: ChaosSettings, algorithm: str, num_rounds: int, datasets, test_dataset):
    return build_hier_async_federation(
        _config(settings, algorithm, num_rounds),
        _model_fn(settings),
        datasets,
        test_dataset=test_dataset,
        strategy=RootFedBuff(settings.num_edges),
    )


def _build_sync(settings: ChaosSettings, algorithm: str, num_rounds: int, datasets, test_dataset):
    """The synchronous hier federation for the edge-crash check — same data,
    model, topology, and backend as the async builds."""
    return build_hier_federation(
        _config(settings, algorithm, num_rounds),
        _model_fn(settings),
        datasets,
        test_dataset=test_dataset,
    )


def _final_accuracy(history) -> float:
    accs = [r.test_accuracy for r in history.rounds if r.test_accuracy is not None]
    return float(accs[-1]) if accs else 0.0


class _EndpointScrape(HealthMonitor):
    """Self-scrape the monitor's live ``/metrics`` once mid-run.

    Registered as an extra watchdog so it fires at a round boundary while
    the run is genuinely underway (after the first publish); the fetched
    exposition text must pass :func:`repro.obs.lint_exposition`, and any
    fetch/lint failure surfaces as a watchdog alert — which fails the
    harness's zero-alert baseline check.
    """

    name = "endpoint_scrape"

    def __init__(self, monitor: RunMonitor):
        self._monitor = monitor
        self.scraped = False
        self.lint_errors: list = []

    def check(self, sample):
        # report.samples was already incremented for the current boundary, so
        # >= 2 means the server holds the previous (published) snapshot.
        if self.scraped or self._monitor.report.samples < 2:
            return []
        server = self._monitor.server
        if server is None:
            return []
        import urllib.request

        self.scraped = True
        text = (
            urllib.request.urlopen(server.url + "/metrics", timeout=10)
            .read()
            .decode("utf-8")
        )
        self.lint_errors = lint_exposition(text)
        if self.lint_errors:
            return [
                Alert(
                    self.name,
                    "warning",
                    f"exposition lint failed: {self.lint_errors[:3]}",
                    round=sample.round,
                )
            ]
        return []


def run_chaos(
    settings: Optional[ChaosSettings] = None, tracer: Optional[Tracer] = None
) -> ChaosResult:
    """Run both chaos checks and return the evidence.

    ``tracer`` (optional) is armed for the whole harness — the churn run's
    spans and fault events land in it for export (``main --trace``).

    1. A fault-free hierarchical async baseline fixes the convergence target
       and the event-count budget the kill schedule is drawn over.
    2. The churn run replays the same federation with ``kills`` edges dying
       at seeded-random event counts plus probabilistic client crashes, and
       must recover every kill and land within ``accuracy_tolerance`` of the
       baseline's final accuracy.
    3. The bitwise check runs IIADMM (identity codecs) twice — crash-free vs
       flush-boundary kills — and compares per-round metrics, the global
       vector, and every edge's dual replicas exactly.
    """
    settings = settings if settings is not None else ChaosSettings()
    with use_tracer(tracer):
        return _run_chaos(settings)


def _run_chaos(settings: ChaosSettings) -> ChaosResult:
    datasets, test_dataset = _make_data(settings)

    # ---- 1. fault-free baseline (monitored) ------------------------------
    # The watchdog set runs armed over the healthy baseline — the harness's
    # false-positive check: a fault-free run must produce zero alerts.  With
    # --serve the live endpoint is self-scraped mid-run and linted.
    baseline = _build(settings, "fedavg", settings.num_rounds, datasets, test_dataset)
    baseline_monitor = RunMonitor(
        monitors=default_monitors(),
        stream=MetricsStream(settings.stream_path) if settings.stream_path else None,
        serve=settings.serve,
        tag="baseline",
        harness="chaos",
    )
    scrape = None
    if settings.serve:
        scrape = _EndpointScrape(baseline_monitor)
        baseline_monitor.monitors.append(scrape)
    with baseline_monitor:
        baseline_history = baseline.run(settings.num_rounds)
    baseline_acc = _final_accuracy(baseline_history)

    # ---- 2. convergence under churn --------------------------------------
    # Kills are drawn over the first ~2/3 of the baseline's event budget so
    # every kill actually lands before the run completes.
    max_count = max(2, (baseline.events_processed * 2) // 3)
    plan = FaultPlan.chaos(
        settings.seed,
        settings.num_edges,
        settings.kills,
        max_event_count=max_count,
        min_event_count=max(1, max_count // 8),
        client_crash_prob=settings.client_crash_prob,
    )
    chaos = _build(settings, "fedavg", settings.num_rounds, datasets, test_dataset)
    chaos.enable_faults(plan)
    # The churn run gets its own monitor (a fresh one — counter deltas are
    # only monotone within one runner) appending to the same time-series
    # stream; its faults are *expected* to trip the retry watchdog, which is
    # recorded as evidence but does not gate the result.
    churn_monitor = RunMonitor(
        monitors=default_monitors(),
        stream=(
            MetricsStream(settings.stream_path, append=True)
            if settings.stream_path
            else None
        ),
        tag="churn",
        harness="chaos",
    )
    with churn_monitor:
        chaos_history = chaos.run(settings.num_rounds)
    chaos_acc = _final_accuracy(chaos_history)
    # All churn-run accounting flows through the registry; the result's
    # fault/kill numbers are read back from its snapshot rather than from
    # the injector directly.
    registry = MetricsRegistry(harness="chaos", algorithm="fedavg")
    registry.absorb_runner(chaos)
    metrics = registry.snapshot()
    fault_stats = {
        key[len("faults_"):]: int(value)
        for key, value in metrics["counters"].items()
        if key.startswith("faults_")
    }
    converged = (
        len(chaos_history) == len(baseline_history)
        and chaos_acc >= baseline_acc - settings.accuracy_tolerance
    )

    # ---- 3. boundary crash+recover is bitwise (IIADMM, identity codecs) --
    clean = _build(settings, "iiadmm", settings.bitwise_rounds, datasets, test_dataset)
    clean_history = clean.run(settings.bitwise_rounds)
    killed = _build(settings, "iiadmm", settings.bitwise_rounds, datasets, test_dataset)
    killed.enable_faults(FaultPlan(seed=settings.seed, edge_boundary_kills=settings.boundary_schedule()))
    killed_history = killed.run(settings.bitwise_rounds)
    bitwise = histories_bitwise_equal(clean_history, killed_history)
    bitwise = bitwise and np.array_equal(clean.server.global_params, killed.server.global_params)
    for edge_clean, edge_killed in zip(clean.edges, killed.edges):
        bitwise = bitwise and np.array_equal(
            edge_clean.server.global_params, edge_killed.server.global_params
        )
        for cid in edge_clean.shard:
            bitwise = bitwise and np.array_equal(
                edge_clean.server.duals[cid], edge_killed.server.duals[cid]
            )
    assert killed.injector.stats.recoveries == sum(
        len(w) for w in settings.boundary_schedule().values()
    ), "not every boundary kill was recovered"

    # ---- 4. sync edge-crash is bitwise under the configured backend ------
    # The synchronous runner's recovery path (round-start checkpoint slice →
    # restore_edge → replay) must be invisible; under "process" the replayed
    # shard rounds run in worker pools, so this also pins the pool's
    # sync_parent/push_from_parent round-trip.
    sync_clean = _build_sync(settings, "iiadmm", settings.bitwise_rounds, datasets, test_dataset)
    sync_clean_history = sync_clean.run(settings.bitwise_rounds)
    sync_killed = _build_sync(settings, "iiadmm", settings.bitwise_rounds, datasets, test_dataset)
    crash_round = max(0, settings.bitwise_rounds - 1)
    sync_killed.enable_faults(FaultPlan(seed=settings.seed, edge_crash_rounds={crash_round: (0,)}))
    sync_killed_history = sync_killed.run(settings.bitwise_rounds)
    sync_bitwise = histories_bitwise_equal(sync_clean_history, sync_killed_history)
    sync_bitwise = sync_bitwise and np.array_equal(
        sync_clean.server.global_params, sync_killed.server.global_params
    )
    for edge_clean, edge_killed in zip(sync_clean.edges, sync_killed.edges):
        sync_bitwise = sync_bitwise and np.array_equal(
            edge_clean.server.global_params, edge_killed.server.global_params
        )
        for cid in edge_clean.shard:
            sync_bitwise = sync_bitwise and np.array_equal(
                edge_clean.server.duals[cid], edge_killed.server.duals[cid]
            )
    assert sync_killed.injector.stats.recoveries == 1, "the sync edge crash was not recovered"

    return ChaosResult(
        baseline_accuracy=baseline_acc,
        chaos_accuracy=chaos_acc,
        converged=converged,
        kills_planned=settings.kills,
        kills_recovered=fault_stats.get("recoveries", 0),
        failed_client_events=fault_stats.get("client_crashes", 0),
        fault_stats=fault_stats,
        bitwise_identical=bool(bitwise),
        bitwise_algorithm="iiadmm",
        sync_bitwise_identical=bool(sync_bitwise),
        sync_backend=settings.execution_backend,
        histories={
            "baseline": baseline_history,
            "chaos": chaos_history,
            "bitwise_clean": clean_history,
            "bitwise_killed": killed_history,
            "sync_bitwise_clean": sync_clean_history,
            "sync_bitwise_killed": sync_killed_history,
        },
        metrics=metrics,
        health={
            "baseline": baseline_monitor.report.to_dict(),
            "churn": churn_monitor.report.to_dict(),
        },
        endpoint_scraped=(scrape.scraped if scrape is not None else None),
    )


def histories_bitwise_equal(a, b) -> bool:
    """Whether two histories agree exactly on the trained outcome: per-round
    accuracy, loss, simulated clock, and participating cohorts.  (Fault
    bookkeeping fields — ``failed_clients``/``recovered_edges`` — are
    *expected* to differ between a faulted and a fault-free run and are
    deliberately not compared.)"""
    if len(a) != len(b):
        return False
    for ra, rb in zip(a.rounds, b.rounds):
        if ra.test_accuracy != rb.test_accuracy or ra.test_loss != rb.test_loss:
            return False
        if ra.wall_clock_seconds != rb.wall_clock_seconds:
            return False
        if ra.participating_clients != rb.participating_clients:
            return False
    return True


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(description="chaos: convergence-under-churn checks")
    parser.add_argument("--smoke", action="store_true", help="smallest CI-friendly workload")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--backend", choices=("serial", "thread", "process"), default="thread",
        help="execution backend for every federation the harness builds; "
        "'process' exercises the worker-pool state sync in the sync "
        "edge-crash check (the async checks run it as 'thread')",
    )
    parser.add_argument("--rounds", type=int, default=None)
    parser.add_argument("--trace", metavar="PATH", default=None,
                        help="write the harness's span trace as JSONL")
    parser.add_argument("--metrics", metavar="PATH", default=None,
                        help="write the churn run's metrics snapshot as JSON")
    parser.add_argument("--stream", metavar="PATH", default=None,
                        help="write the monitored runs' per-round metrics "
                        "time series as JSONL (baseline + churn tagged)")
    parser.add_argument("--serve", action="store_true",
                        help="serve a live /metrics + /healthz endpoint "
                        "during the monitored runs and self-scrape it once "
                        "mid-run (the exposition text must lint clean)")
    args = parser.parse_args(argv)
    if args.smoke:
        settings = ChaosSettings(
            num_clients=16,
            num_edges=8,
            kills=2,
            num_rounds=args.rounds or 4,
            bitwise_rounds=2,
            samples_per_client=8,
            test_size=32,
            seed=args.seed,
            execution_backend=args.backend,
            serve=args.serve,
            stream_path=args.stream,
        )
    else:
        settings = ChaosSettings(
            seed=args.seed,
            num_rounds=args.rounds or ChaosSettings.num_rounds,
            execution_backend=args.backend,
            serve=args.serve,
            stream_path=args.stream,
        )
    tracer = Tracer() if args.trace else None
    result = run_chaos(settings, tracer=tracer)
    print(result.render())
    if tracer is not None:
        tracer.write_jsonl(args.trace)
        print(f"trace: {args.trace} ({len(tracer)} records)")
    if args.metrics:
        import json as _json
        from pathlib import Path as _Path

        _Path(args.metrics).write_text(_json.dumps(result.metrics, indent=2, sort_keys=True))
        print(f"metrics: {args.metrics}")
    if args.stream:
        print(f"metrics series: {args.stream}")
    return 0 if result.ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
