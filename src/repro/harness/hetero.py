"""Section IV-E — impact of heterogeneous architectures (A100 vs V100).

The paper measures one FEMNIST local update at 4.24 s on an NVIDIA A100
(Argonne Swing) versus 6.96 s on a V100 (ORNL Summit), a ×1.64 load imbalance
between two institutions of a cross-silo federation.  This harness reproduces
the measurement with the device simulator and additionally quantifies the
per-round straggler effect: in a synchronous round the faster institution
idles until the slower one finishes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from ..simulator import A100, V100, DeviceSpec, LocalUpdateCostModel
from .reporting import format_table

__all__ = ["HeteroSettings", "HeteroResult", "run_hetero"]


@dataclass(frozen=True)
class HeteroSettings:
    """Settings of the heterogeneity measurement (paper values by default)."""

    samples_per_client: int = 181  # average FEMNIST shard in the paper's 5% sample
    local_steps: int = 10
    devices: Tuple[DeviceSpec, DeviceSpec] = (A100, V100)


@dataclass(frozen=True)
class HeteroResult:
    """Local-update times per device and derived load-imbalance statistics."""

    times: Dict[str, float]
    ratio: float
    idle_fraction: float  # fraction of a synchronous round the fast device idles

    def render(self) -> str:
        rows = [[name, round(seconds, 3)] for name, seconds in self.times.items()]
        table = format_table(["device", "local update (s)"], rows, title="Section IV-E: heterogeneous architectures")
        return (
            table
            + f"\nslow/fast ratio: {self.ratio:.2f} (paper: 1.64 — 6.96 s V100 vs 4.24 s A100)"
            + f"\nfast-device idle fraction per synchronous round: {self.idle_fraction:.2%}"
        )


def run_hetero(settings: Optional[HeteroSettings] = None) -> HeteroResult:
    """Measure simulated local-update times on each device and the imbalance."""
    settings = settings if settings is not None else HeteroSettings()
    cost = LocalUpdateCostModel(local_steps=settings.local_steps, per_round_overhead=0.0)
    times = {d.name: cost.local_update_time(d, settings.samples_per_client) for d in settings.devices}
    fastest = min(times.values())
    slowest = max(times.values())
    return HeteroResult(
        times=times,
        ratio=slowest / fastest,
        idle_fraction=(slowest - fastest) / slowest,
    )
