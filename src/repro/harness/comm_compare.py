"""Figure 4 — communication times of gRPC versus MPI on the FEMNIST federation.

Section IV-D: 203 clients on 34 Summit nodes exchange the CNN model with the
server over gRPC (no RDMA, protobuf serialisation, shared TCP network) and,
for comparison, over RDMA-enabled MPI.  The paper reports

* Figure 4a — per-client cumulative communication time over 49 rounds (the
  first round is excluded), showing gRPC up to ~10× slower than MPI;
* Figure 4b — a box plot of per-round gRPC communication times for clients
  {1, 5, 100, 150, 200}, showing a ~30× spread between rounds.

The reproduction runs the same exchange pattern through the gRPC and MPI
channel simulators and reports the same statistics.

Beyond the paper, :func:`run_codec_sweep` adds the *wire-codec* arm of the
communication story: the same Fig. 2 MNIST-CNN workload trained under
different codec stacks (identity vs fp16 vs int8 vs delta+topk), reporting
measured on-wire bytes per round and — the figure of merit for a
communication-bound deployment — **bytes to target accuracy**.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..comm import (
    GRPCChannelModel,
    GRPCSimCommunicator,
    JitterModel,
    MPIChannelModel,
    MPISimCommunicator,
    state_dict_nbytes,
)
from ..core import FLConfig, build_federation, build_model
from ..data import load_dataset
from .reporting import format_series, format_table

__all__ = [
    "CommCompareSettings",
    "BoxStats",
    "CommCompareResult",
    "run_comm_compare",
    "CodecSweepSettings",
    "CodecSweepRow",
    "CodecSweepResult",
    "run_codec_sweep",
]

PAPER_BOXPLOT_CLIENTS = (1, 5, 100, 150, 200)


@dataclass(frozen=True)
class CommCompareSettings:
    """Settings of the gRPC-vs-MPI comparison (paper values by default)."""

    num_clients: int = 203
    num_rounds: int = 50
    skip_first_round: bool = True
    boxplot_clients: Tuple[int, ...] = PAPER_BOXPLOT_CLIENTS
    model: str = "cnn"
    seed: int = 0
    grpc_jitter_sigma: float = 0.85


@dataclass(frozen=True)
class BoxStats:
    """Quantile summary of one client's per-round gRPC times (one box of Figure 4b)."""

    client_id: int
    minimum: float
    q1: float
    median: float
    q3: float
    maximum: float

    @property
    def spread_factor(self) -> float:
        """Ratio between the slowest and fastest round."""
        return self.maximum / self.minimum if self.minimum > 0 else float("inf")


@dataclass
class CommCompareResult:
    """Cumulative-time series (Figure 4a) and per-client box stats (Figure 4b)."""

    grpc_cumulative: Dict[int, float] = field(default_factory=dict)
    mpi_cumulative: Dict[int, float] = field(default_factory=dict)
    box_stats: List[BoxStats] = field(default_factory=list)
    model_nbytes: int = 0

    def slowdown_factors(self) -> np.ndarray:
        """Per-client gRPC/MPI cumulative-time ratio."""
        return np.array([self.grpc_cumulative[c] / self.mpi_cumulative[c] for c in sorted(self.grpc_cumulative)])

    def median_slowdown(self) -> float:
        return float(np.median(self.slowdown_factors()))

    def max_round_spread(self) -> float:
        """Largest round-to-round spread factor among the sampled clients (Figure 4b)."""
        return max(b.spread_factor for b in self.box_stats)

    def render(self) -> str:
        sample = sorted(self.grpc_cumulative)[:: max(1, len(self.grpc_cumulative) // 10)]
        rows = [
            [c, round(self.mpi_cumulative[c], 3), round(self.grpc_cumulative[c], 2),
             round(self.grpc_cumulative[c] / self.mpi_cumulative[c], 1)]
            for c in sample
        ]
        table = format_table(
            ["client", "MPI cumulative (s)", "gRPC cumulative (s)", "gRPC/MPI"],
            rows,
            title="Figure 4a: cumulative communication time over 49 rounds (sampled clients)",
        )
        box_rows = [
            [b.client_id, round(b.minimum, 4), round(b.q1, 4), round(b.median, 4), round(b.q3, 4),
             round(b.maximum, 4), round(b.spread_factor, 1)]
            for b in self.box_stats
        ]
        box = format_table(
            ["client", "min", "q1", "median", "q3", "max", "max/min"],
            box_rows,
            title="Figure 4b: per-round gRPC communication time quantiles",
        )
        return table + "\n\n" + box


def run_comm_compare(settings: Optional[CommCompareSettings] = None) -> CommCompareResult:
    """Run the Figure 4 gRPC-vs-MPI communication comparison.

    The exchange pattern (one global-model download plus one local-model upload
    per client per round, 203 clients, 50 rounds) is costed directly through
    the same channel models the communicators use.  Driving the timing models
    analytically instead of shuttling ~40k copies of the 4 MB CNN state through
    the in-process communicators keeps the benchmark in milliseconds while
    producing identical simulated times (see ``tests/test_harness.py`` for the
    equivalence check against the real communicator stack at small scale).
    """
    settings = settings if settings is not None else CommCompareSettings()
    rng = np.random.default_rng(settings.seed)
    model = build_model(settings.model, (1, 28, 28), 62, rng=np.random.default_rng(settings.seed))
    nbytes = state_dict_nbytes(model.state_dict())

    grpc_channel = GRPCChannelModel(jitter=JitterModel(sigma=settings.grpc_jitter_sigma, rng=rng))
    mpi = MPISimCommunicator(num_processes=settings.num_clients, channel=MPIChannelModel())

    client_ids = list(range(settings.num_clients))
    skip = [0] if settings.skip_first_round else []
    counted_rounds = [r for r in range(settings.num_rounds) if r not in skip]

    # MPI: every client's per-round time is the deterministic bcast + gather
    # pair (the collective cost is identical across ranks).
    mpi_round_time = mpi._downlink_time(nbytes, settings.num_clients) + mpi._uplink_time(nbytes, settings.num_clients)

    # gRPC: two unary RPCs per client per round, each with its own jitter draw.
    grpc_round_times = {
        cid: np.array(
            [grpc_channel.request_time(nbytes) + grpc_channel.request_time(nbytes) for _ in range(settings.num_rounds)]
        )
        for cid in client_ids
    }

    result = CommCompareResult(model_nbytes=nbytes)
    for cid in client_ids:
        result.grpc_cumulative[cid] = float(grpc_round_times[cid][counted_rounds].sum())
        result.mpi_cumulative[cid] = float(mpi_round_time * len(counted_rounds))

    for cid in settings.boxplot_clients:
        if cid >= settings.num_clients:
            continue
        times = grpc_round_times[cid][counted_rounds]
        result.box_stats.append(
            BoxStats(
                client_id=cid,
                minimum=float(times.min()),
                q1=float(np.percentile(times, 25)),
                median=float(np.percentile(times, 50)),
                q3=float(np.percentile(times, 75)),
                maximum=float(times.max()),
            )
        )
    return result


# ------------------------------------------------------------- codec sweep
@dataclass(frozen=True)
class CodecSweepSettings:
    """Settings of the wire-codec sweep on the Fig. 2 MNIST-CNN workload."""

    codecs: Tuple[str, ...] = ("identity", "fp16", "int8", "delta|int8|topk:0.1")
    algorithm: str = "iiadmm"
    dataset: str = "mnist"
    model: str = "cnn"
    num_clients: int = 4
    num_rounds: int = 6
    local_steps: int = 2
    batch_size: int = 64
    train_size: int = 512
    test_size: int = 256
    rho: float = 10.0
    zeta: float = 10.0
    #: target accuracy for bytes-to-target; ``None`` derives it from the
    #: identity arm's best accuracy minus ``target_margin``
    target_accuracy: Optional[float] = None
    target_margin: float = 0.02
    seed: int = 0


@dataclass(frozen=True)
class CodecSweepRow:
    """Measured outcome of one codec stack."""

    codec: str
    final_accuracy: float
    best_accuracy: float
    bytes_per_round: int
    total_bytes: int
    #: identity bytes/round divided by this stack's bytes/round
    wire_reduction: float
    #: first round (1-based) whose test accuracy reached the target, or None
    rounds_to_target: Optional[int]
    #: cumulative on-wire bytes through that round, or None
    bytes_to_target: Optional[int]


@dataclass
class CodecSweepResult:
    """Rows of the sweep plus the shared target accuracy."""

    target_accuracy: float = 0.0
    rows: List[CodecSweepRow] = field(default_factory=list)

    def row(self, codec: str) -> CodecSweepRow:
        for r in self.rows:
            if r.codec == codec:
                return r
        raise KeyError(codec)

    def best_bytes_to_target(self) -> CodecSweepRow:
        """The stack reaching the target with the fewest on-wire bytes."""
        reached = [r for r in self.rows if r.bytes_to_target is not None]
        if not reached:
            raise ValueError("no codec stack reached the target accuracy")
        return min(reached, key=lambda r: r.bytes_to_target)

    def render(self) -> str:
        rows = [
            [
                r.codec,
                round(r.final_accuracy, 3),
                r.bytes_per_round,
                f"{r.wire_reduction:.1f}x",
                r.rounds_to_target if r.rounds_to_target is not None else "-",
                r.bytes_to_target if r.bytes_to_target is not None else "-",
            ]
            for r in self.rows
        ]
        return format_table(
            ["codec", "final acc", "B/round", "reduction", "rounds→target", "B→target"],
            rows,
            title=f"Wire-codec sweep (Fig. 2 workload, target acc {self.target_accuracy:.3f})",
        )


def run_codec_sweep(settings: Optional[CodecSweepSettings] = None) -> CodecSweepResult:
    """Train the Fig. 2 workload under each codec stack; report bytes-to-target.

    The ``identity`` arm always runs (prepended when missing) — it anchors
    the target accuracy and the wire-reduction baseline.  All arms share
    datasets, model init, and seeds, so the only varying factor is the codec.
    """
    settings = settings if settings is not None else CodecSweepSettings()
    clients, test, spec = load_dataset(
        settings.dataset,
        num_clients=settings.num_clients,
        train_size=settings.train_size,
        test_size=settings.test_size,
        seed=settings.seed,
    )

    def model_fn():
        return build_model(
            settings.model, spec.image_shape, spec.num_classes, rng=np.random.default_rng(42)
        )

    codecs = list(settings.codecs)
    if "identity" not in codecs:
        codecs.insert(0, "identity")

    histories = {}
    for codec in codecs:
        config = FLConfig(
            algorithm=settings.algorithm,
            num_rounds=settings.num_rounds,
            local_steps=settings.local_steps,
            batch_size=settings.batch_size,
            rho=settings.rho,
            zeta=settings.zeta,
            seed=settings.seed,
            codec=codec,
        )
        histories[codec] = build_federation(
            config, model_fn, clients, test, seed=settings.seed
        ).run()

    identity = histories["identity"]
    target = (
        settings.target_accuracy
        if settings.target_accuracy is not None
        else (identity.best_accuracy or 0.0) - settings.target_margin
    )
    identity_bpr = identity.total_comm_bytes() / max(1, len(identity))

    result = CodecSweepResult(target_accuracy=float(target))
    for codec in codecs:
        history = histories[codec]
        bytes_per_round = history.total_comm_bytes() / max(1, len(history))
        rounds_to_target = bytes_to_target = None
        cumulative = 0
        for i, r in enumerate(history.rounds):
            cumulative += r.comm_bytes
            if r.test_accuracy is not None and r.test_accuracy >= target:
                rounds_to_target = i + 1
                bytes_to_target = cumulative
                break
        result.rows.append(
            CodecSweepRow(
                codec=codec,
                final_accuracy=float(history.final_accuracy or 0.0),
                best_accuracy=float(history.best_accuracy or 0.0),
                bytes_per_round=int(round(bytes_per_round)),
                total_bytes=history.total_comm_bytes(),
                wire_reduction=float(identity_bpr / bytes_per_round) if bytes_per_round else 1.0,
                rounds_to_target=rounds_to_target,
                bytes_to_target=bytes_to_target,
            )
        )
    return result
