"""Figure 4 — communication times of gRPC versus MPI on the FEMNIST federation.

Section IV-D: 203 clients on 34 Summit nodes exchange the CNN model with the
server over gRPC (no RDMA, protobuf serialisation, shared TCP network) and,
for comparison, over RDMA-enabled MPI.  The paper reports

* Figure 4a — per-client cumulative communication time over 49 rounds (the
  first round is excluded), showing gRPC up to ~10× slower than MPI;
* Figure 4b — a box plot of per-round gRPC communication times for clients
  {1, 5, 100, 150, 200}, showing a ~30× spread between rounds.

The reproduction runs the same exchange pattern through the gRPC and MPI
channel simulators and reports the same statistics.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..comm import (
    GRPCChannelModel,
    GRPCSimCommunicator,
    JitterModel,
    MPIChannelModel,
    MPISimCommunicator,
    state_dict_nbytes,
)
from ..core import build_model
from .reporting import format_series, format_table

__all__ = ["CommCompareSettings", "BoxStats", "CommCompareResult", "run_comm_compare"]

PAPER_BOXPLOT_CLIENTS = (1, 5, 100, 150, 200)


@dataclass(frozen=True)
class CommCompareSettings:
    """Settings of the gRPC-vs-MPI comparison (paper values by default)."""

    num_clients: int = 203
    num_rounds: int = 50
    skip_first_round: bool = True
    boxplot_clients: Tuple[int, ...] = PAPER_BOXPLOT_CLIENTS
    model: str = "cnn"
    seed: int = 0
    grpc_jitter_sigma: float = 0.85


@dataclass(frozen=True)
class BoxStats:
    """Quantile summary of one client's per-round gRPC times (one box of Figure 4b)."""

    client_id: int
    minimum: float
    q1: float
    median: float
    q3: float
    maximum: float

    @property
    def spread_factor(self) -> float:
        """Ratio between the slowest and fastest round."""
        return self.maximum / self.minimum if self.minimum > 0 else float("inf")


@dataclass
class CommCompareResult:
    """Cumulative-time series (Figure 4a) and per-client box stats (Figure 4b)."""

    grpc_cumulative: Dict[int, float] = field(default_factory=dict)
    mpi_cumulative: Dict[int, float] = field(default_factory=dict)
    box_stats: List[BoxStats] = field(default_factory=list)
    model_nbytes: int = 0

    def slowdown_factors(self) -> np.ndarray:
        """Per-client gRPC/MPI cumulative-time ratio."""
        return np.array([self.grpc_cumulative[c] / self.mpi_cumulative[c] for c in sorted(self.grpc_cumulative)])

    def median_slowdown(self) -> float:
        return float(np.median(self.slowdown_factors()))

    def max_round_spread(self) -> float:
        """Largest round-to-round spread factor among the sampled clients (Figure 4b)."""
        return max(b.spread_factor for b in self.box_stats)

    def render(self) -> str:
        sample = sorted(self.grpc_cumulative)[:: max(1, len(self.grpc_cumulative) // 10)]
        rows = [
            [c, round(self.mpi_cumulative[c], 3), round(self.grpc_cumulative[c], 2),
             round(self.grpc_cumulative[c] / self.mpi_cumulative[c], 1)]
            for c in sample
        ]
        table = format_table(
            ["client", "MPI cumulative (s)", "gRPC cumulative (s)", "gRPC/MPI"],
            rows,
            title="Figure 4a: cumulative communication time over 49 rounds (sampled clients)",
        )
        box_rows = [
            [b.client_id, round(b.minimum, 4), round(b.q1, 4), round(b.median, 4), round(b.q3, 4),
             round(b.maximum, 4), round(b.spread_factor, 1)]
            for b in self.box_stats
        ]
        box = format_table(
            ["client", "min", "q1", "median", "q3", "max", "max/min"],
            box_rows,
            title="Figure 4b: per-round gRPC communication time quantiles",
        )
        return table + "\n\n" + box


def run_comm_compare(settings: Optional[CommCompareSettings] = None) -> CommCompareResult:
    """Run the Figure 4 gRPC-vs-MPI communication comparison.

    The exchange pattern (one global-model download plus one local-model upload
    per client per round, 203 clients, 50 rounds) is costed directly through
    the same channel models the communicators use.  Driving the timing models
    analytically instead of shuttling ~40k copies of the 4 MB CNN state through
    the in-process communicators keeps the benchmark in milliseconds while
    producing identical simulated times (see ``tests/test_harness.py`` for the
    equivalence check against the real communicator stack at small scale).
    """
    settings = settings if settings is not None else CommCompareSettings()
    rng = np.random.default_rng(settings.seed)
    model = build_model(settings.model, (1, 28, 28), 62, rng=np.random.default_rng(settings.seed))
    nbytes = state_dict_nbytes(model.state_dict())

    grpc_channel = GRPCChannelModel(jitter=JitterModel(sigma=settings.grpc_jitter_sigma, rng=rng))
    mpi = MPISimCommunicator(num_processes=settings.num_clients, channel=MPIChannelModel())

    client_ids = list(range(settings.num_clients))
    skip = [0] if settings.skip_first_round else []
    counted_rounds = [r for r in range(settings.num_rounds) if r not in skip]

    # MPI: every client's per-round time is the deterministic bcast + gather
    # pair (the collective cost is identical across ranks).
    mpi_round_time = mpi._downlink_time(nbytes, settings.num_clients) + mpi._uplink_time(nbytes, settings.num_clients)

    # gRPC: two unary RPCs per client per round, each with its own jitter draw.
    grpc_round_times = {
        cid: np.array(
            [grpc_channel.request_time(nbytes) + grpc_channel.request_time(nbytes) for _ in range(settings.num_rounds)]
        )
        for cid in client_ids
    }

    result = CommCompareResult(model_nbytes=nbytes)
    for cid in client_ids:
        result.grpc_cumulative[cid] = float(grpc_round_times[cid][counted_rounds].sum())
        result.mpi_cumulative[cid] = float(mpi_round_time * len(counted_rounds))

    for cid in settings.boxplot_clients:
        if cid >= settings.num_clients:
            continue
        times = grpc_round_times[cid][counted_rounds]
        result.box_stats.append(
            BoxStats(
                client_id=cid,
                minimum=float(times.min()),
                q1=float(np.percentile(times, 25)),
                median=float(np.percentile(times, 50)),
                q3=float(np.percentile(times, 75)),
                maximum=float(times.max()),
            )
        )
    return result
