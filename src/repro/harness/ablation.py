"""Ablation harness for the IIADMM design choices.

DESIGN.md calls out two design choices of IIADMM that the paper motivates but
does not ablate directly:

* the **proximal term** ζ in the inexact update (4), which the paper credits
  with mitigating the impact of DP noise ("the effectiveness of the proximal
  term in (4) that mitigates the negative impact of random noises");
* **batched local primal updates** (B_p > 1) versus ICEADMM-style full-batch
  updates.

This harness sweeps ζ (and optionally the batching mode) at a fixed privacy
budget and reports final accuracy, providing the ablation benchmark.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..core import FLConfig, MLP, build_federation
from ..data import load_dataset
from .reporting import format_table

__all__ = ["AblationSettings", "AblationRow", "AblationResult", "run_zeta_ablation", "run_batching_ablation"]


@dataclass(frozen=True)
class AblationSettings:
    """Shared settings for the IIADMM ablations."""

    dataset: str = "mnist"
    num_clients: int = 4
    train_size: int = 600
    test_size: int = 200
    num_rounds: int = 6
    local_steps: int = 3
    batch_size: int = 64
    rho: float = 10.0
    epsilon: float = 5.0
    seed: int = 0
    hidden: int = 32


@dataclass(frozen=True)
class AblationRow:
    label: str
    value: float
    final_accuracy: float


@dataclass
class AblationResult:
    name: str = ""
    rows: List[AblationRow] = field(default_factory=list)

    def best(self) -> AblationRow:
        return max(self.rows, key=lambda r: r.final_accuracy)

    def render(self) -> str:
        rows = [[r.label, r.value, round(r.final_accuracy, 3)] for r in self.rows]
        return format_table(["setting", "value", "final_acc"], rows, title=f"Ablation: {self.name}")


def _build(settings: AblationSettings):
    clients, test, spec = load_dataset(
        settings.dataset, num_clients=settings.num_clients,
        train_size=settings.train_size, test_size=settings.test_size, seed=settings.seed,
    )
    input_dim = int(np.prod(spec.image_shape))

    def model_fn():
        return MLP(input_dim, spec.num_classes, hidden_sizes=(settings.hidden,), rng=np.random.default_rng(7))

    return clients, test, model_fn


def run_zeta_ablation(
    zetas: Tuple[float, ...] = (0.0, 1.0, 5.0, 10.0, 25.0),
    settings: Optional[AblationSettings] = None,
) -> AblationResult:
    """Sweep the proximity parameter ζ of IIADMM at a fixed privacy budget."""
    settings = settings if settings is not None else AblationSettings()
    clients, test, model_fn = _build(settings)
    result = AblationResult(name=f"IIADMM proximal term zeta (epsilon={settings.epsilon})")
    for zeta in zetas:
        config = FLConfig(
            algorithm="iiadmm",
            num_rounds=settings.num_rounds,
            local_steps=settings.local_steps,
            batch_size=settings.batch_size,
            rho=settings.rho,
            zeta=zeta,
            seed=settings.seed,
        ).with_privacy(settings.epsilon)
        history = build_federation(config, model_fn, clients, test, seed=settings.seed).run()
        result.rows.append(AblationRow(label="zeta", value=zeta, final_accuracy=float(history.final_accuracy)))
    return result


def run_batching_ablation(settings: Optional[AblationSettings] = None) -> AblationResult:
    """Compare batched IIADMM local updates against full-batch (ICEADMM-style) updates.

    The full-batch configuration sets the batch size to the whole client shard,
    so each local step uses one gradient over all local data — the B_p = 1
    regime the paper attributes to ICEADMM.
    """
    settings = settings if settings is not None else AblationSettings()
    clients, test, model_fn = _build(settings)
    result = AblationResult(name="IIADMM batched vs full-batch local updates (non-private)")
    max_shard = max(len(c) for c in clients)
    for label, batch in (("batched (B=64)", settings.batch_size), ("full batch (B_p=1)", max_shard)):
        config = FLConfig(
            algorithm="iiadmm",
            num_rounds=settings.num_rounds,
            local_steps=settings.local_steps,
            batch_size=batch,
            rho=settings.rho,
            zeta=settings.rho,
            seed=settings.seed,
        )
        history = build_federation(config, model_fn, clients, test, seed=settings.seed).run()
        result.rows.append(AblationRow(label=label, value=float(batch), final_accuracy=float(history.final_accuracy)))
    return result
