"""Sync vs FedAsync vs FedBuff: simulated wall-clock-to-accuracy.

The paper (and every harness up to here) reports *rounds*-to-accuracy under a
synchronous loop that blocks on the slowest client.  This scenario runs the
Fig. 2 MNIST-CNN workload on a heterogeneous device mix (A100 / V100 / CPU
clients behind a TCP link) and compares three server modes on the
:mod:`repro.asyncfl` virtual clock:

* ``sync``     — full-participation synchronous rounds
  (:class:`~repro.asyncfl.strategies.SyncRoundStrategy`: dispatch the whole
  fleet, block until the slowest device reports);
* ``fedasync`` — staleness-weighted mixing on every arrival;
* ``fedbuff``  — buffered aggregation with ``buffer_size K < num_clients``.

Every mode gets the same total client-update budget, so the comparison is
"same work, different orchestration": the async modes win on wall clock
because fast devices never idle waiting for the CPU straggler.  The headline
number per mode is the *simulated seconds to reach the target accuracy*.

Environment overrides (used by the benchmark): ``REPRO_ROUNDS``,
``REPRO_LOCAL_STEPS``, ``REPRO_TRAIN_SIZE``, ``REPRO_CLIENTS``.
"""

from __future__ import annotations

import math
import os
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..asyncfl import (
    AsyncRunner,
    FedAsyncStrategy,
    FedBuffStrategy,
    SyncRoundStrategy,
    build_async_federation,
)
from ..comm import TCPLinkModel
from ..core import FLConfig, build_model
from ..data import load_dataset
from ..simulator import DEVICE_CATALOG, DeviceSpec
from .reporting import format_history, format_table

__all__ = ["AsyncCompareSettings", "AsyncCompareRow", "AsyncCompareResult", "run_async_compare"]

MODES = ("sync", "fedasync", "fedbuff")


def _env_int(name: str, default: int) -> int:
    return int(os.environ.get(name, default))


@dataclass(frozen=True)
class AsyncCompareSettings:
    """Scaled-down settings of the async-vs-sync wall-clock comparison.

    Defaults keep the scenario in CI-friendly seconds; raise them (or the
    ``REPRO_*`` environment variables) to approach the paper-scale Fig. 2
    workload.  ``device_mix`` is cycled over the clients, so the default mix
    yields a fleet where the slowest (CPU) client is ~17x slower than an A100.
    """

    dataset: str = "mnist"
    model: str = "cnn"
    algorithm: str = "fedavg"
    num_clients: int = 6
    train_size: int = 360
    test_size: int = 120
    num_rounds: int = 4  # synchronous rounds; async modes get the same update budget
    local_steps: int = 2
    batch_size: int = 64
    lr: float = 0.05
    rho: float = 10.0
    zeta: float = 10.0
    seed: int = 0
    target_accuracy: float = 0.5
    device_mix: Tuple[str, ...] = ("A100", "V100", "CPU")
    fedasync_alpha: float = 0.6
    staleness: str = "polynomial"
    fedbuff_k: Optional[int] = None  # default: half the fleet

    @staticmethod
    def from_env() -> "AsyncCompareSettings":
        """Settings with environment-variable overrides applied."""
        return AsyncCompareSettings(
            num_rounds=_env_int("REPRO_ROUNDS", 4),
            local_steps=_env_int("REPRO_LOCAL_STEPS", 2),
            train_size=_env_int("REPRO_TRAIN_SIZE", 360),
            num_clients=_env_int("REPRO_CLIENTS", 6),
        )

    def devices(self) -> List[DeviceSpec]:
        """One device per client, cycling the configured mix."""
        return [DEVICE_CATALOG[self.device_mix[i % len(self.device_mix)]] for i in range(self.num_clients)]


@dataclass(frozen=True)
class AsyncCompareRow:
    """Outcome of one server mode."""

    mode: str
    server_rounds: int
    client_updates: int
    final_accuracy: float
    best_accuracy: float
    sim_seconds_total: float
    sim_seconds_to_target: Optional[float]  # None: target never reached
    mean_staleness: float
    max_staleness: int


@dataclass
class AsyncCompareResult:
    """All mode rows plus the per-round histories for rendering/tests."""

    target_accuracy: float
    rows: List[AsyncCompareRow] = field(default_factory=list)
    histories: Dict[str, object] = field(default_factory=dict)

    def row(self, mode: str) -> AsyncCompareRow:
        for r in self.rows:
            if r.mode == mode:
                return r
        raise KeyError(mode)

    def speedup_to_target(self, mode: str, baseline: str = "sync") -> Optional[float]:
        """Wall-clock speedup of ``mode`` over ``baseline`` to the target accuracy."""
        fast, slow = self.row(mode), self.row(baseline)
        if fast.sim_seconds_to_target is None or slow.sim_seconds_to_target is None:
            return None
        return slow.sim_seconds_to_target / fast.sim_seconds_to_target

    def render(self) -> str:
        rows = []
        for r in self.rows:
            rows.append(
                [
                    r.mode,
                    r.server_rounds,
                    r.client_updates,
                    round(r.final_accuracy, 3),
                    round(r.best_accuracy, 3),
                    round(r.sim_seconds_total, 2),
                    "never" if r.sim_seconds_to_target is None else round(r.sim_seconds_to_target, 2),
                    round(r.mean_staleness, 2),
                    r.max_staleness,
                ]
            )
        table = format_table(
            [
                "mode",
                "rounds",
                "updates",
                "final_acc",
                "best_acc",
                "sim_total_s",
                f"sim_s_to_acc>={self.target_accuracy:g}",
                "staleness_mean",
                "staleness_max",
            ],
            rows,
            title="Async federation: simulated wall clock to target accuracy",
        )
        parts = [table]
        for mode, history in self.histories.items():
            parts.append(format_history(history, title=f"\n[{mode}] per-round history"))
        return "\n".join(parts)


def _seconds_to_target(history, target: float) -> Optional[float]:
    for r in history.rounds:
        if r.test_accuracy is not None and r.test_accuracy >= target and r.wall_clock_seconds is not None:
            return float(r.wall_clock_seconds)
    return None


def _summarise(mode: str, runner: AsyncRunner, target: float) -> AsyncCompareRow:
    history = runner.history
    return AsyncCompareRow(
        mode=mode,
        server_rounds=len(history),
        client_updates=len(runner.async_server.staleness_log),
        final_accuracy=float(history.final_accuracy),
        best_accuracy=float(history.best_accuracy),
        sim_seconds_total=float(runner.now),
        sim_seconds_to_target=_seconds_to_target(history, target),
        mean_staleness=runner.async_server.mean_staleness(),
        max_staleness=runner.async_server.max_staleness(),
    )


def run_async_compare(settings: Optional[AsyncCompareSettings] = None, verbose: bool = False) -> AsyncCompareResult:
    """Run the sync / FedAsync / FedBuff comparison and return all rows."""
    settings = settings if settings is not None else AsyncCompareSettings()
    clients, test, spec = load_dataset(
        settings.dataset,
        num_clients=settings.num_clients,
        train_size=settings.train_size,
        test_size=settings.test_size,
        seed=settings.seed,
    )
    config = FLConfig(
        algorithm=settings.algorithm,
        num_rounds=settings.num_rounds,
        local_steps=settings.local_steps,
        batch_size=settings.batch_size,
        lr=settings.lr,
        rho=settings.rho,
        zeta=settings.zeta,
        seed=settings.seed,
    )

    def model_fn():
        return build_model(
            settings.model, spec.image_shape, spec.num_classes, rng=np.random.default_rng(settings.seed + 42)
        )

    devices = settings.devices()
    link = TCPLinkModel()
    P = settings.num_clients
    update_budget = settings.num_rounds * P  # total client updates in the sync run
    K = settings.fedbuff_k if settings.fedbuff_k is not None else max(1, P // 2)

    plans = {
        "sync": (SyncRoundStrategy(), settings.num_rounds),
        "fedasync": (FedAsyncStrategy(alpha=settings.fedasync_alpha, staleness=settings.staleness), update_budget),
        "fedbuff": (FedBuffStrategy(K), update_budget // K),
    }
    result = AsyncCompareResult(target_accuracy=settings.target_accuracy)
    for mode, (strategy, rounds) in plans.items():
        with build_async_federation(
            config, model_fn, clients, test, strategy=strategy, devices=devices, link=link
        ) as runner:
            runner.run(rounds)
            result.rows.append(_summarise(mode, runner, settings.target_accuracy))
            result.histories[mode] = runner.history
        if verbose:  # pragma: no cover - console helper
            row = result.rows[-1]
            print(f"async_compare {mode}: acc={row.final_accuracy:.3f} sim={row.sim_seconds_total:.1f}s")
    return result
