"""Figure 2 — test accuracy under ε ∈ {3, 5, 10, ∞} for FedAvg / ICEADMM / IIADMM.

The paper's Figure 2 is a 3×4 grid (algorithm × dataset) of accuracy-vs-round
curves, one line per privacy budget.  This harness runs the same sweep on the
synthetic stand-in datasets (Section "Substitutions" of DESIGN.md) at a
CI-friendly scale and reports, per (dataset, algorithm, ε), the final and best
test accuracy.

Environment overrides (used by the benchmark): ``REPRO_ROUNDS``,
``REPRO_LOCAL_STEPS``, ``REPRO_TRAIN_SIZE``, ``REPRO_CLIENTS``.
"""

from __future__ import annotations

import math
import os
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..core import FLConfig, MLP, build_federation, build_model
from ..data import load_dataset
from .reporting import format_table

__all__ = ["Fig2Settings", "Fig2Cell", "Fig2Result", "run_fig2", "default_epsilons", "DEFAULT_ALGORITHMS"]

DEFAULT_ALGORITHMS = ("fedavg", "iceadmm", "iiadmm")


def default_epsilons() -> Tuple[float, ...]:
    """The paper's privacy budgets: ε ∈ {3, 5, 10, ∞}."""
    return (3.0, 5.0, 10.0, math.inf)


def _env_int(name: str, default: int) -> int:
    return int(os.environ.get(name, default))


@dataclass(frozen=True)
class Fig2Settings:
    """Scaled-down experimental settings for the Figure 2 sweep.

    Paper scale: T=50 rounds, L=10 local steps, 4 clients (203 for FEMNIST),
    full MNIST/CIFAR10/CoronaHack datasets, the CNN of Section IV-A.  Defaults
    here are much smaller so the sweep runs in seconds; raise them via the
    constructor or the ``REPRO_*`` environment variables to approach paper
    scale.
    """

    datasets: Tuple[str, ...] = ("mnist", "cifar10", "femnist", "coronahack")
    algorithms: Tuple[str, ...] = DEFAULT_ALGORITHMS
    epsilons: Tuple[float, ...] = (3.0, 5.0, 10.0, math.inf)
    num_rounds: int = 8
    local_steps: int = 3
    batch_size: int = 64
    num_clients: int = 4
    femnist_clients: int = 16
    train_size: int = 600
    test_size: int = 200
    lr: float = 0.03
    rho: float = 10.0
    zeta: float = 10.0
    model: str = "mlp"
    seed: int = 0

    @staticmethod
    def from_env() -> "Fig2Settings":
        """Settings with environment-variable overrides applied."""
        return Fig2Settings(
            num_rounds=_env_int("REPRO_ROUNDS", 8),
            local_steps=_env_int("REPRO_LOCAL_STEPS", 3),
            train_size=_env_int("REPRO_TRAIN_SIZE", 600),
            num_clients=_env_int("REPRO_CLIENTS", 4),
        )


@dataclass(frozen=True)
class Fig2Cell:
    """One point of the Figure 2 grid."""

    dataset: str
    algorithm: str
    epsilon: float
    final_accuracy: float
    best_accuracy: float
    accuracy_curve: Tuple[float, ...]


@dataclass
class Fig2Result:
    """All cells of the sweep plus structured accessors used in benchmarks/tests."""

    cells: List[Fig2Cell] = field(default_factory=list)

    def cell(self, dataset: str, algorithm: str, epsilon: float) -> Fig2Cell:
        for c in self.cells:
            if c.dataset == dataset and c.algorithm == algorithm and (
                c.epsilon == epsilon or (math.isinf(c.epsilon) and math.isinf(epsilon))
            ):
                return c
        raise KeyError((dataset, algorithm, epsilon))

    def accuracy_matrix(self, dataset: str) -> Dict[str, Dict[float, float]]:
        """{algorithm: {epsilon: final accuracy}} for one dataset."""
        out: Dict[str, Dict[float, float]] = {}
        for c in self.cells:
            if c.dataset == dataset:
                out.setdefault(c.algorithm, {})[c.epsilon] = c.final_accuracy
        return out

    def render(self) -> str:
        rows = []
        for c in self.cells:
            eps = "inf" if math.isinf(c.epsilon) else f"{c.epsilon:g}"
            rows.append([c.dataset, c.algorithm, eps, round(c.final_accuracy, 3), round(c.best_accuracy, 3)])
        return format_table(
            ["dataset", "algorithm", "epsilon", "final_acc", "best_acc"],
            rows,
            title="Figure 2: test accuracy under varying privacy budgets",
        )


def _make_model_fn(kind: str, image_shape, num_classes: int, seed: int):
    def model_fn():
        return build_model(kind, image_shape, num_classes, rng=np.random.default_rng(seed))

    return model_fn


def run_fig2(settings: Optional[Fig2Settings] = None, verbose: bool = False) -> Fig2Result:
    """Run the accuracy-vs-ε sweep of Figure 2 and return all cells."""
    settings = settings if settings is not None else Fig2Settings()
    result = Fig2Result()
    for dataset_name in settings.datasets:
        num_clients = settings.femnist_clients if dataset_name == "femnist" else settings.num_clients
        clients, test, spec = load_dataset(
            dataset_name,
            num_clients=num_clients,
            train_size=settings.train_size,
            test_size=settings.test_size,
            seed=settings.seed,
        )
        model_fn = _make_model_fn(settings.model, spec.image_shape, spec.num_classes, settings.seed + 42)
        for algorithm in settings.algorithms:
            for epsilon in settings.epsilons:
                config = FLConfig(
                    algorithm=algorithm,
                    num_rounds=settings.num_rounds,
                    local_steps=settings.local_steps,
                    batch_size=settings.batch_size,
                    lr=settings.lr,
                    rho=settings.rho,
                    zeta=settings.zeta,
                    seed=settings.seed,
                ).with_privacy(epsilon)
                runner = build_federation(config, model_fn, clients, test, seed=settings.seed)
                history = runner.run()
                cell = Fig2Cell(
                    dataset=dataset_name,
                    algorithm=algorithm,
                    epsilon=epsilon,
                    final_accuracy=float(history.final_accuracy),
                    best_accuracy=float(history.best_accuracy),
                    accuracy_curve=tuple(float(a) for a in history.accuracies),
                )
                result.cells.append(cell)
                if verbose:  # pragma: no cover - console helper
                    print(f"fig2 {dataset_name}/{algorithm}/eps={epsilon}: {cell.final_accuracy:.3f}")
    return result
