"""Plain-text reporting helpers shared by the experiment harnesses.

The paper presents its results as figures; since this reproduction is
headless, every harness renders its result object both as structured data
(dataclasses / dicts that the benchmarks and tests assert on) and as an ASCII
table / series via these helpers, so ``pytest benchmarks/ --benchmark-only``
prints the same rows and series the paper plots.
"""

from __future__ import annotations

import dataclasses
import json
from typing import Iterable, List, Mapping, Sequence

__all__ = ["format_table", "format_series", "format_check", "format_history"]


def format_table(headers: Sequence[str], rows: Iterable[Sequence], title: str = "") -> str:
    """Render a list of rows as a fixed-width ASCII table."""
    str_rows = [[_fmt(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    header_line = " | ".join(h.ljust(widths[i]) for i, h in enumerate(headers))
    lines.append(header_line)
    lines.append("-+-".join("-" * w for w in widths))
    for row in str_rows:
        lines.append(" | ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def format_series(name: str, xs: Sequence, ys: Sequence, x_label: str = "x", y_label: str = "y") -> str:
    """Render an (x, y) series as labelled rows (one figure line/series)."""
    lines = [f"{name} ({x_label} -> {y_label})"]
    for x, y in zip(xs, ys):
        lines.append(f"  {_fmt(x):>10} : {_fmt(y)}")
    return "\n".join(lines)


def format_history(history, title: str = "", fmt: str = "table") -> str:
    """Per-round view of a :class:`repro.core.runner.TrainingHistory`.

    ``fmt="table"`` (default) renders the ASCII table below; ``fmt="json"``
    emits one JSON object per round (one per line, every
    :class:`~repro.core.runner.RoundResult` field included) for machine
    consumption — jq/pandas-friendly, the same shape the obs exports use.

    The table surfaces the simulated ``wall_clock_seconds`` (asyncfl virtual
    clock; ``-`` for the real-time synchronous runner) and the number of
    participating clients alongside accuracy/loss and communication volume.
    Hierarchical runs additionally report the per-tier split of that volume
    (client→edge vs edge→root, see :mod:`repro.hier`) so the edge fan-in
    savings are visible in every run summary; flat runs show ``-``.  Runs
    with fault injection armed (:mod:`repro.faults`) report how many clients
    failed and how many edges were recovered each round; fault-free runs
    show ``-``.  ``steps/s`` is the round's client optimizer steps per
    wall-clock second of local update (see
    :func:`repro.core.batched.count_client_steps`) — the direct view of the
    batched-execution win under ``FLConfig.client_batch``; rounds without
    step accounting (externally built results, old checkpoints) show ``-``.
    """
    if fmt == "json":
        names = [f.name for f in dataclasses.fields(type(history.rounds[0]))] if history.rounds else []
        lines = []
        for r in history.rounds:
            lines.append(json.dumps(
                {name: _jsonable(getattr(r, name)) for name in names}, sort_keys=True
            ))
        return "\n".join(lines)
    if fmt != "table":
        raise ValueError(f"fmt must be 'table' or 'json', got {fmt!r}")
    rows = []
    for r in history.rounds:
        tiers = r.comm_bytes_by_tier or {}
        steps = getattr(r, "client_steps", None)
        local_s = (r.phase_seconds or {}).get("local_update", 0.0)
        rows.append(
            [
                r.round,
                "-" if r.test_accuracy is None else round(r.test_accuracy, 4),
                "-" if r.test_loss is None else round(r.test_loss, 4),
                round(r.comm_bytes / 1e6, 3),
                "-" if "client_edge" not in tiers else round(tiers["client_edge"] / 1e6, 3),
                "-" if "edge_root" not in tiers else round(tiers["edge_root"] / 1e6, 3),
                "-" if r.wall_clock_seconds is None else round(r.wall_clock_seconds, 3),
                "-" if r.participating_clients is None else len(r.participating_clients),
                "-" if not steps or local_s <= 0 else round(steps / local_s, 1),
                "-" if r.failed_clients is None else len(r.failed_clients),
                "-" if r.recovered_edges is None else len(r.recovered_edges),
            ]
        )
    return format_table(
        [
            "round",
            "test_acc",
            "test_loss",
            "comm_MB",
            "c2e_MB",
            "e2r_MB",
            "sim_clock_s",
            "clients",
            "steps/s",
            "failed",
            "recovered",
        ],
        rows,
        title=title,
    )


def format_check(description: str, expected: str, observed: str, ok: bool) -> str:
    """One-line comparison between a paper claim and the reproduced value."""
    status = "OK " if ok else "DIFF"
    return f"[{status}] {description}: paper={expected} reproduced={observed}"


def _jsonable(value):
    """Round-trip-safe JSON form: tuples → lists, numpy scalars → python."""
    if isinstance(value, Mapping):
        return {str(k): _jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    if hasattr(value, "item") and not isinstance(value, (str, bytes)):
        return value.item()  # numpy scalar
    return value


def _fmt(value) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000 or abs(value) < 0.001:
            return f"{value:.3e}"
        return f"{value:.4g}"
    return str(value)
