"""Table I — capability comparison of open-source FL frameworks.

The paper's Table I compares OpenFL, FedML, TFF, PySyft, and APPFL on four
capabilities: data privacy, MPI, gRPC, and MQTT.  This harness reproduces the
matrix and additionally verifies, by introspection, that this reproduction
actually provides the capabilities the APPFL column claims (data privacy and
MPI/gRPC simulation; MQTT is "TBD" in the paper and is likewise absent here).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from .reporting import format_table

__all__ = ["FEATURES", "FRAMEWORKS", "PAPER_TABLE1", "framework_capabilities", "verify_appfl_column", "render_table1"]

FEATURES = ["data_privacy", "mpi", "grpc", "mqtt"]
FRAMEWORKS = ["OpenFL", "FedML", "TFF", "PySyft", "APPFL"]

#: Table I exactly as printed in the paper (✓ = True).
PAPER_TABLE1: Dict[str, Dict[str, bool]] = {
    "OpenFL": {"data_privacy": False, "mpi": False, "grpc": True, "mqtt": False},
    "FedML": {"data_privacy": True, "mpi": True, "grpc": True, "mqtt": True},
    "TFF": {"data_privacy": True, "mpi": False, "grpc": False, "mqtt": False},
    "PySyft": {"data_privacy": True, "mpi": False, "grpc": False, "mqtt": False},
    "APPFL": {"data_privacy": True, "mpi": True, "grpc": True, "mqtt": False},
}


def framework_capabilities() -> Dict[str, Dict[str, bool]]:
    """Return the full Table I matrix (paper values)."""
    return {fw: dict(caps) for fw, caps in PAPER_TABLE1.items()}


def verify_appfl_column() -> Dict[str, bool]:
    """Check by introspection that this reproduction provides APPFL's claimed capabilities."""
    observed = {}
    try:
        from ..privacy import LaplaceMechanism  # noqa: F401

        observed["data_privacy"] = True
    except ImportError:  # pragma: no cover - defensive
        observed["data_privacy"] = False
    try:
        from ..comm import MPISimCommunicator  # noqa: F401

        observed["mpi"] = True
    except ImportError:  # pragma: no cover - defensive
        observed["mpi"] = False
    try:
        from ..comm import GRPCSimCommunicator  # noqa: F401

        observed["grpc"] = True
    except ImportError:  # pragma: no cover - defensive
        observed["grpc"] = False
    # MQTT is listed as TBD in the paper; not implemented here either.
    observed["mqtt"] = False
    return observed


def render_table1() -> str:
    """ASCII rendering of Table I plus the introspection check of the APPFL column."""
    headers = ["framework"] + FEATURES
    rows: List[List[str]] = []
    for fw in FRAMEWORKS:
        rows.append([fw] + ["yes" if PAPER_TABLE1[fw][f] else "-" for f in FEATURES])
    table = format_table(headers, rows, title="Table I: FL framework capabilities (paper values)")
    observed = verify_appfl_column()
    checks = "\n".join(
        f"  APPFL column check [{f}]: paper={PAPER_TABLE1['APPFL'][f]} reproduction={observed[f]}"
        for f in FEATURES
    )
    return table + "\n" + checks
