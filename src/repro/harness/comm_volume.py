"""Communication-volume accounting — the paper's central IIADMM claim.

Sections III-A and IV-D: ICEADMM must send both the primal and the dual vector
from every client every round, while IIADMM (and FedAvg) send only the primal,
so IIADMM "significantly reduces the data that is needed to iteratively
communicate between the server and clients".  This harness runs one short
federation per algorithm over the real communicator stack and reports the
measured uplink/downlink bytes per round, confirming the 2× uplink reduction.

The reported bytes are *actual on-wire* bytes: every exchange travels as a
codec-encoded :class:`~repro.comm.codecs.UpdatePacket` whose measured
post-codec, dtype-correct ``nbytes`` land in the communication log — not a
synthetic float64 full-tensor estimate.  ``CommVolumeSettings.codec`` selects
the wire codec stack, so the same harness quantifies how much of the
algorithmic 2× survives (or compounds with) quantization/sparsification.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from ..comm import SerialCommunicator, client_endpoint
from ..core import FLConfig, MLP, build_federation
from ..data import load_dataset
from .reporting import format_table

__all__ = ["CommVolumeSettings", "CommVolumeRow", "CommVolumeResult", "run_comm_volume"]


@dataclass(frozen=True)
class CommVolumeSettings:
    """Settings for the per-round communication-volume accounting."""

    algorithms: tuple = ("fedavg", "iceadmm", "iiadmm")
    num_clients: int = 4
    num_rounds: int = 2
    train_size: int = 200
    dataset: str = "mnist"
    hidden: int = 16
    seed: int = 0
    #: wire codec stack (see repro.comm.codecs); bytes below are post-codec
    codec: str = "identity"


@dataclass(frozen=True)
class CommVolumeRow:
    """Measured communication volume of one algorithm."""

    algorithm: str
    uplink_bytes_per_client_round: int
    downlink_bytes_per_client_round: int
    total_bytes: int


@dataclass
class CommVolumeResult:
    rows: List[CommVolumeRow] = field(default_factory=list)
    #: wire codec stack the measurements were taken under
    codec: str = "identity"

    def row(self, algorithm: str) -> CommVolumeRow:
        for r in self.rows:
            if r.algorithm == algorithm:
                return r
        raise KeyError(algorithm)

    def uplink_ratio(self, a: str, b: str) -> float:
        """Uplink bytes of algorithm ``a`` relative to algorithm ``b``."""
        return self.row(a).uplink_bytes_per_client_round / self.row(b).uplink_bytes_per_client_round

    def render(self) -> str:
        rows = [
            [r.algorithm, r.uplink_bytes_per_client_round, r.downlink_bytes_per_client_round, r.total_bytes]
            for r in self.rows
        ]
        table = format_table(
            ["algorithm", "uplink B/client/round", "downlink B/client/round", "total B"],
            rows,
            title=f"Per-round on-wire communication volume, codec={self.codec!r} "
            "(Section III-A / IV-D claim)",
        )
        ratio = self.uplink_ratio("iceadmm", "iiadmm")
        return table + f"\nICEADMM/IIADMM uplink ratio: {ratio:.2f} (paper claim: 2x)"


def run_comm_volume(settings: Optional[CommVolumeSettings] = None) -> CommVolumeResult:
    """Measure per-round uplink/downlink bytes for each algorithm."""
    settings = settings if settings is not None else CommVolumeSettings()
    clients, test, spec = load_dataset(
        settings.dataset, num_clients=settings.num_clients, train_size=settings.train_size, seed=settings.seed
    )
    input_dim = int(np.prod(spec.image_shape))

    def model_fn():
        return MLP(input_dim, spec.num_classes, hidden_sizes=(settings.hidden,), rng=np.random.default_rng(1))

    result = CommVolumeResult(codec=settings.codec)
    for algorithm in settings.algorithms:
        comm = SerialCommunicator()
        config = FLConfig(
            algorithm=algorithm,
            num_rounds=settings.num_rounds,
            local_steps=1,
            batch_size=64,
            seed=settings.seed,
            codec=settings.codec,
        )
        runner = build_federation(config, model_fn, clients, communicator=comm, seed=settings.seed)
        runner.run()
        uplink = sum(r.nbytes for r in comm.log.records if r.op == "send_local" and r.endpoint == client_endpoint(0))
        downlink = sum(r.nbytes for r in comm.log.records if r.op == "recv_global" and r.endpoint == client_endpoint(0))
        result.rows.append(
            CommVolumeRow(
                algorithm=algorithm,
                uplink_bytes_per_client_round=uplink // settings.num_rounds,
                downlink_bytes_per_client_round=downlink // settings.num_rounds,
                total_bytes=comm.total_bytes(),
            )
        )
    return result
