"""Figure 3 — strong scaling of PPFL local updates on a Summit-like cluster.

Section IV-C: 203 FEMNIST clients are divided over {5, 11, 24, 50, 101, 203}
MPI processes (one GPU each, plus one server process); the paper reports

* Figure 3a — speedup of the average per-round local-update time (compute +
  ``MPI.gather`` communication) relative to the 5-process configuration,
  against the ideal linear-speedup line;
* Figure 3b — the percentage of that time spent inside ``MPI.gather()``.

The reproduction drives the cluster/device simulator plus the MPI collective
cost model with the same client population (203 non-IID FEMNIST-like shards)
and the CNN model size, and reports the same two series.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..comm import MPIChannelModel, state_dict_nbytes
from ..core import build_model
from ..data import load_dataset, partition_sizes
from ..simulator import (
    LocalUpdateCostModel,
    RoundEvent,
    SimulationTrace,
    assign_clients_to_ranks,
    rank_compute_times,
    summit_cluster,
)
from .reporting import format_series, format_table

__all__ = ["ScalingSettings", "ScalingPoint", "ScalingResult", "run_scaling"]

PAPER_PROCESS_COUNTS = (5, 11, 24, 50, 101, 203)


@dataclass(frozen=True)
class ScalingSettings:
    """Settings of the strong-scaling experiment (paper values by default)."""

    num_clients: int = 203
    process_counts: Tuple[int, ...] = PAPER_PROCESS_COUNTS
    num_rounds: int = 50
    skip_first_round: bool = True  # the paper drops round 1 (compile time)
    local_steps: int = 10
    model: str = "cnn"
    dataset: str = "femnist"
    seed: int = 0
    first_round_overhead: float = 5.0  # extra seconds in round 1 (Python compile)
    #: Charge the time a rank blocks inside the collective waiting for slower
    #: ranks to the gather, as an MPI timer around ``MPI.gather()`` would.
    #: This synchronisation wait — not wire transfer — is what dominates the
    #: paper's gather percentage as the number of processes grows (the per-rank
    #: payload shrinks 40×, but the straggler wait does not shrink with it).
    include_straggler_wait: bool = True


@dataclass(frozen=True)
class ScalingPoint:
    """Timing summary for one MPI-process count."""

    num_processes: int
    avg_round_seconds: float
    avg_compute_seconds: float
    avg_gather_seconds: float
    gather_percentage: float
    speedup: float
    ideal_speedup: float


@dataclass
class ScalingResult:
    """All scaling points plus render helpers (Figures 3a and 3b)."""

    points: List[ScalingPoint] = field(default_factory=list)
    model_nbytes: int = 0

    def speedups(self) -> Tuple[List[int], List[float]]:
        return [p.num_processes for p in self.points], [p.speedup for p in self.points]

    def gather_percentages(self) -> Tuple[List[int], List[float]]:
        return [p.num_processes for p in self.points], [p.gather_percentage for p in self.points]

    def point(self, num_processes: int) -> ScalingPoint:
        for p in self.points:
            if p.num_processes == num_processes:
                return p
        raise KeyError(num_processes)

    def render(self) -> str:
        rows = [
            [p.num_processes, round(p.avg_round_seconds, 3), round(p.avg_compute_seconds, 3),
             round(p.avg_gather_seconds, 4), round(p.gather_percentage, 1), round(p.speedup, 2),
             round(p.ideal_speedup, 2)]
            for p in self.points
        ]
        table = format_table(
            ["MPI procs", "round (s)", "compute (s)", "gather (s)", "gather %", "speedup", "ideal"],
            rows,
            title="Figure 3: strong scaling of local updates (FEMNIST, Summit-like cluster)",
        )
        xs, ys = self.speedups()
        xs2, ys2 = self.gather_percentages()
        return (
            table
            + "\n\n"
            + format_series("Figure 3a: speedup", xs, ys, "#MPI processes", "speedup")
            + "\n\n"
            + format_series("Figure 3b: % MPI.gather", xs2, ys2, "#MPI processes", "percent")
        )


def _client_sample_counts(settings: ScalingSettings) -> np.ndarray:
    clients, _, _ = load_dataset(settings.dataset, num_clients=settings.num_clients, seed=settings.seed)
    return partition_sizes(clients)


def _model_nbytes(settings: ScalingSettings) -> int:
    model = build_model(settings.model, (1, 28, 28), 62, rng=np.random.default_rng(settings.seed))
    return state_dict_nbytes(model.state_dict())


def run_scaling(settings: Optional[ScalingSettings] = None, channel: Optional[MPIChannelModel] = None) -> ScalingResult:
    """Run the Figure 3 strong-scaling simulation and return the two series."""
    settings = settings if settings is not None else ScalingSettings()
    channel = channel if channel is not None else MPIChannelModel()
    counts = _client_sample_counts(settings)
    model_nbytes = _model_nbytes(settings)
    cluster = summit_cluster(num_nodes=(max(settings.process_counts) + 5) // 6)
    cost_model = LocalUpdateCostModel(local_steps=settings.local_steps)

    result = ScalingResult(model_nbytes=model_nbytes)
    baseline_time: Optional[float] = None
    baseline_procs = settings.process_counts[0]

    for n_proc in settings.process_counts:
        assignments = assign_clients_to_ranks(settings.num_clients, n_proc, cluster)
        compute = rank_compute_times(assignments, counts, cost_model)
        slowest_compute = max(compute.values())
        trace = SimulationTrace()
        for rnd in range(settings.num_rounds):
            overhead = settings.first_round_overhead if rnd == 0 else 0.0
            for a in assignments:
                # Each rank contributes its clients' models to one gather.
                transfer_seconds = channel.gather_time(
                    nbytes_per_rank=model_nbytes * a.num_clients,
                    n_ranks=n_proc,
                    total_nbytes=model_nbytes * settings.num_clients,
                )
                gather_seconds = transfer_seconds
                if settings.include_straggler_wait:
                    # A rank that finishes its local updates early blocks inside
                    # MPI.gather() until the slowest rank arrives.
                    gather_seconds += slowest_compute - compute[a.rank]
                trace.add(
                    RoundEvent(
                        round=rnd,
                        rank=a.rank,
                        compute_seconds=compute[a.rank] + overhead,
                        comm_seconds=gather_seconds,
                    )
                )
        skip = [0] if settings.skip_first_round else []
        avg_round = trace.average_round_time(skip_rounds=skip)
        gather_pct = trace.average_comm_percentage(skip_rounds=skip)
        n_rounds_counted = settings.num_rounds - len(skip)
        avg_compute = trace.total_compute_seconds(skip_rounds=skip) / (n_rounds_counted * n_proc)
        avg_gather = trace.total_comm_seconds(skip_rounds=skip) / (n_rounds_counted * n_proc)
        if baseline_time is None:
            baseline_time = avg_round
        result.points.append(
            ScalingPoint(
                num_processes=n_proc,
                avg_round_seconds=avg_round,
                avg_compute_seconds=avg_compute,
                avg_gather_seconds=avg_gather,
                gather_percentage=gather_pct,
                speedup=baseline_time / avg_round,
                ideal_speedup=n_proc / baseline_procs,
            )
        )
    return result
