"""Scaling harnesses: Figure 3 strong scaling + virtual-population sweeps.

Figure 3 — strong scaling of PPFL local updates on a Summit-like cluster.

Section IV-C: 203 FEMNIST clients are divided over {5, 11, 24, 50, 101, 203}
MPI processes (one GPU each, plus one server process); the paper reports

* Figure 3a — speedup of the average per-round local-update time (compute +
  ``MPI.gather`` communication) relative to the 5-process configuration,
  against the ideal linear-speedup line;
* Figure 3b — the percentage of that time spent inside ``MPI.gather()``.

The reproduction drives the cluster/device simulator plus the MPI collective
cost model with the same client population (203 non-IID FEMNIST-like shards)
and the CNN model size, and reports the same two series.

Population sweep — :func:`run_population_sweep` measures the client
virtualization layer of :mod:`repro.scale` (ISSUE 4): wall-clock seconds per
round, peak live clients, spilled-store bytes, clients/GB, and process peak
RSS for growing populations (default up to 10,000 virtual clients) under a
fixed ``live_cap``.  This is the "memory proportional to the cap, not the
population" claim, measured.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..comm import MPIChannelModel, state_dict_nbytes
from ..core import build_model
from ..data import load_dataset, partition_sizes
from ..obs import MetricsRegistry, metric_key
from ..simulator import (
    LocalUpdateCostModel,
    RoundEvent,
    SimulationTrace,
    assign_clients_to_ranks,
    rank_compute_times,
    summit_cluster,
)
from .reporting import format_series, format_table

__all__ = [
    "ScalingSettings",
    "ScalingPoint",
    "ScalingResult",
    "run_scaling",
    "PopulationSweepSettings",
    "PopulationPoint",
    "PopulationSweepResult",
    "make_population",
    "run_population_sweep",
]

PAPER_PROCESS_COUNTS = (5, 11, 24, 50, 101, 203)


@dataclass(frozen=True)
class ScalingSettings:
    """Settings of the strong-scaling experiment (paper values by default)."""

    num_clients: int = 203
    process_counts: Tuple[int, ...] = PAPER_PROCESS_COUNTS
    num_rounds: int = 50
    skip_first_round: bool = True  # the paper drops round 1 (compile time)
    local_steps: int = 10
    model: str = "cnn"
    dataset: str = "femnist"
    seed: int = 0
    first_round_overhead: float = 5.0  # extra seconds in round 1 (Python compile)
    #: Charge the time a rank blocks inside the collective waiting for slower
    #: ranks to the gather, as an MPI timer around ``MPI.gather()`` would.
    #: This synchronisation wait — not wire transfer — is what dominates the
    #: paper's gather percentage as the number of processes grows (the per-rank
    #: payload shrinks 40×, but the straggler wait does not shrink with it).
    include_straggler_wait: bool = True


@dataclass(frozen=True)
class ScalingPoint:
    """Timing summary for one MPI-process count."""

    num_processes: int
    avg_round_seconds: float
    avg_compute_seconds: float
    avg_gather_seconds: float
    gather_percentage: float
    speedup: float
    ideal_speedup: float


@dataclass
class ScalingResult:
    """All scaling points plus render helpers (Figures 3a and 3b)."""

    points: List[ScalingPoint] = field(default_factory=list)
    model_nbytes: int = 0

    def speedups(self) -> Tuple[List[int], List[float]]:
        return [p.num_processes for p in self.points], [p.speedup for p in self.points]

    def gather_percentages(self) -> Tuple[List[int], List[float]]:
        return [p.num_processes for p in self.points], [p.gather_percentage for p in self.points]

    def point(self, num_processes: int) -> ScalingPoint:
        for p in self.points:
            if p.num_processes == num_processes:
                return p
        raise KeyError(num_processes)

    def render(self) -> str:
        rows = [
            [p.num_processes, round(p.avg_round_seconds, 3), round(p.avg_compute_seconds, 3),
             round(p.avg_gather_seconds, 4), round(p.gather_percentage, 1), round(p.speedup, 2),
             round(p.ideal_speedup, 2)]
            for p in self.points
        ]
        table = format_table(
            ["MPI procs", "round (s)", "compute (s)", "gather (s)", "gather %", "speedup", "ideal"],
            rows,
            title="Figure 3: strong scaling of local updates (FEMNIST, Summit-like cluster)",
        )
        xs, ys = self.speedups()
        xs2, ys2 = self.gather_percentages()
        return (
            table
            + "\n\n"
            + format_series("Figure 3a: speedup", xs, ys, "#MPI processes", "speedup")
            + "\n\n"
            + format_series("Figure 3b: % MPI.gather", xs2, ys2, "#MPI processes", "percent")
        )


def _client_sample_counts(settings: ScalingSettings) -> np.ndarray:
    clients, _, _ = load_dataset(settings.dataset, num_clients=settings.num_clients, seed=settings.seed)
    return partition_sizes(clients)


def _model_nbytes(settings: ScalingSettings) -> int:
    model = build_model(settings.model, (1, 28, 28), 62, rng=np.random.default_rng(settings.seed))
    return state_dict_nbytes(model.state_dict())


def run_scaling(settings: Optional[ScalingSettings] = None, channel: Optional[MPIChannelModel] = None) -> ScalingResult:
    """Run the Figure 3 strong-scaling simulation and return the two series."""
    settings = settings if settings is not None else ScalingSettings()
    channel = channel if channel is not None else MPIChannelModel()
    counts = _client_sample_counts(settings)
    model_nbytes = _model_nbytes(settings)
    cluster = summit_cluster(num_nodes=(max(settings.process_counts) + 5) // 6)
    cost_model = LocalUpdateCostModel(local_steps=settings.local_steps)

    result = ScalingResult(model_nbytes=model_nbytes)
    baseline_time: Optional[float] = None
    baseline_procs = settings.process_counts[0]

    for n_proc in settings.process_counts:
        assignments = assign_clients_to_ranks(settings.num_clients, n_proc, cluster)
        compute = rank_compute_times(assignments, counts, cost_model)
        slowest_compute = max(compute.values())
        trace = SimulationTrace()
        for rnd in range(settings.num_rounds):
            overhead = settings.first_round_overhead if rnd == 0 else 0.0
            for a in assignments:
                # Each rank contributes its clients' models to one gather.
                transfer_seconds = channel.gather_time(
                    nbytes_per_rank=model_nbytes * a.num_clients,
                    n_ranks=n_proc,
                    total_nbytes=model_nbytes * settings.num_clients,
                )
                gather_seconds = transfer_seconds
                if settings.include_straggler_wait:
                    # A rank that finishes its local updates early blocks inside
                    # MPI.gather() until the slowest rank arrives.
                    gather_seconds += slowest_compute - compute[a.rank]
                trace.add(
                    RoundEvent(
                        round=rnd,
                        rank=a.rank,
                        compute_seconds=compute[a.rank] + overhead,
                        comm_seconds=gather_seconds,
                    )
                )
        skip = [0] if settings.skip_first_round else []
        avg_round = trace.average_round_time(skip_rounds=skip)
        gather_pct = trace.average_comm_percentage(skip_rounds=skip)
        n_rounds_counted = settings.num_rounds - len(skip)
        avg_compute = trace.total_compute_seconds(skip_rounds=skip) / (n_rounds_counted * n_proc)
        avg_gather = trace.total_comm_seconds(skip_rounds=skip) / (n_rounds_counted * n_proc)
        if baseline_time is None:
            baseline_time = avg_round
        result.points.append(
            ScalingPoint(
                num_processes=n_proc,
                avg_round_seconds=avg_round,
                avg_compute_seconds=avg_compute,
                avg_gather_seconds=avg_gather,
                gather_percentage=gather_pct,
                speedup=baseline_time / avg_round,
                ideal_speedup=n_proc / baseline_procs,
            )
        )
    return result


# -------------------------------------------------- virtual-population sweep
@dataclass(frozen=True)
class PopulationSweepSettings:
    """Settings of the client-virtualization scaling sweep (ISSUE 4).

    The per-client workload is deliberately tiny (a few samples over a small
    MLP) so the sweep measures the *virtualization machinery* — materialise /
    evict / blob costs and the memory bound — rather than arithmetic.
    """

    populations: Tuple[int, ...] = (100, 1_000, 10_000)
    live_cap: int = 64
    algorithm: str = "fedavg"
    num_rounds: int = 1
    local_steps: int = 1
    samples_per_client: int = 4
    input_dim: int = 16
    num_classes: int = 4
    hidden: int = 8
    compress: Optional[str] = None  # None or "zlib" for the spilled blobs
    seed: int = 0


@dataclass(frozen=True)
class PopulationPoint:
    """Measurements for one population size."""

    num_clients: int
    live_cap: int
    round_seconds: float
    peak_live: int
    materializations: int
    evictions: int
    #: bytes of all spilled state blobs once the whole population is evicted
    store_nbytes: int
    #: spilled clients that fit in one GB of blob storage
    clients_per_gb: float
    #: mean microseconds to materialise / evict one client
    materialize_us: float
    evict_us: float
    #: process peak RSS in MB after the run (ru_maxrss — monotone across the
    #: sweep, so only the largest population's value is load-bearing)
    peak_rss_mb: float


@dataclass
class PopulationSweepResult:
    """All population points plus a render helper."""

    points: List[PopulationPoint] = field(default_factory=list)

    def point(self, num_clients: int) -> PopulationPoint:
        for p in self.points:
            if p.num_clients == num_clients:
                return p
        raise KeyError(num_clients)

    def render(self) -> str:
        rows = [
            [p.num_clients, p.live_cap, round(p.round_seconds, 3), p.peak_live,
             p.evictions, p.store_nbytes, int(p.clients_per_gb),
             round(p.materialize_us, 1), round(p.evict_us, 1), round(p.peak_rss_mb, 1)]
            for p in self.points
        ]
        return format_table(
            ["clients", "cap", "round (s)", "peak live", "evictions", "store B",
             "clients/GB", "mat µs", "evict µs", "RSS MB"],
            rows,
            title="Virtual-population scaling (memory bounded by live_cap)",
        )


def make_population(settings: PopulationSweepSettings, num_clients: int):
    """Tiny per-client shards + a seeded model factory for the sweep."""
    from ..core.models import MLP
    from ..data import TensorDataset

    def make_ds(cid: int):
        r = np.random.default_rng(settings.seed * 1_000_003 + cid)
        x = r.standard_normal((settings.samples_per_client, settings.input_dim))
        y = r.integers(0, settings.num_classes, size=settings.samples_per_client)
        return TensorDataset(x, y)

    datasets = [make_ds(c) for c in range(num_clients)]
    model_fn = lambda: MLP(
        settings.input_dim,
        settings.num_classes,
        hidden_sizes=(settings.hidden,),
        rng=np.random.default_rng(settings.seed + 42),
    )
    return datasets, model_fn


def run_population_sweep(settings: Optional[PopulationSweepSettings] = None) -> PopulationSweepResult:
    """Run the virtual-population wall-clock/RSS sweep and return all points."""
    import resource
    import time

    from ..core.config import FLConfig
    from ..scale import build_virtual_federation

    settings = settings if settings is not None else PopulationSweepSettings()
    result = PopulationSweepResult()
    for population in settings.populations:
        datasets, model_fn = make_population(settings, population)
        config = FLConfig(
            algorithm=settings.algorithm,
            num_rounds=settings.num_rounds,
            local_steps=settings.local_steps,
            batch_size=settings.samples_per_client,
            seed=settings.seed,
        )
        runner = build_virtual_federation(
            config, model_fn, datasets, live_cap=settings.live_cap, compress=settings.compress
        )
        start = time.perf_counter()
        runner.run(settings.num_rounds)
        elapsed = (time.perf_counter() - start) / settings.num_rounds
        store = runner._store
        store.flush()  # spill everyone so store_nbytes covers the population
        # Store accounting is read back through the metrics registry — the
        # same series every other harness and the obs report consume.
        registry = MetricsRegistry(harness="population_sweep")
        registry.absorb_store(store, tier="flat")
        gauges = registry.snapshot()["gauges"]

        def gauge(name: str) -> float:
            return gauges[metric_key(name, {"tier": "flat"})]

        store_nbytes = int(gauge("store_nbytes"))
        ops = max(1, int(gauge("store_materializations")))
        evs = max(1, int(gauge("store_evictions")))
        result.points.append(
            PopulationPoint(
                num_clients=population,
                live_cap=settings.live_cap,
                round_seconds=elapsed,
                peak_live=int(gauge("store_peak_live")),
                materializations=int(gauge("store_materializations")),
                evictions=int(gauge("store_evictions")),
                store_nbytes=store_nbytes,
                clients_per_gb=population / max(store_nbytes, 1) * 1e9,
                materialize_us=gauge("store_materialize_us") / ops,
                evict_us=gauge("store_evict_us") / evs,
                peak_rss_mb=resource.getrusage(resource.RUSAGE_SELF).ru_maxrss / 1024.0,
            )
        )
    return result
