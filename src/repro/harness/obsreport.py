"""Run explorer: render a terminal report from an obs trace.

``python -m repro.harness.obsreport trace.jsonl`` digests the JSONL export
of a :class:`repro.obs.Tracer` into the questions one actually asks of a
run — where did the time go per tier, which clients/edges were slowest,
how much retry/backoff churn did the fault layer cause, how many bytes
crossed each hop, and which health alerts fired — without loading the
trace into Perfetto.  Pass ``--metrics metrics.json`` (a
:meth:`repro.obs.MetricsRegistry.snapshot` export) to append the
registry's counters/gauges/histograms, ``--series stream.jsonl`` (a
:class:`repro.obs.MetricsStream` export) for the per-round time series,
and ``--perfetto out.json`` to convert the saved trace to Chrome
``trace_event`` JSON without rerunning anything.

All aggregation is over the plain record dicts documented in
:mod:`repro.obs.trace`, so the report works on any trace regardless of
which runners/tiers produced it; sections with no matching records are
omitted.
"""

from __future__ import annotations

import argparse
import json
from collections import defaultdict
from pathlib import Path
from typing import Any, Dict, Iterable, List, Optional, Sequence, Union

from ..core.runner import PHASES
from .reporting import format_table

__all__ = ["load_trace", "render_report", "render_metrics", "render_series", "main"]


def load_trace(path: Union[str, Path]) -> List[Dict[str, Any]]:
    """Read one tracer JSONL export back into its record dicts."""
    records = []
    for line in Path(path).read_text().splitlines():
        line = line.strip()
        if line:
            records.append(json.loads(line))
    return records


def _duration(rec: Dict[str, Any]) -> float:
    return float(rec["t1"]) - float(rec["t0"])


def _tier_of(lane: str) -> str:
    """Map a trace lane onto the tier the phase report groups by."""
    if lane.startswith("edge:"):
        return "edge"
    if lane.startswith("client:"):
        return "client"
    if lane in ("runner", "async"):
        return "run"
    return lane  # "root", "comm", "store", "faults", "checkpoint"


def _hop_of(endpoint: str) -> str:
    """Which hop a comm endpoint belongs to (by canonical endpoint prefix)."""
    if endpoint.startswith("edge:"):
        return "edge_root"
    if endpoint.startswith("client:"):
        return "client"
    return endpoint


def _phase_section(records: Sequence[Dict[str, Any]]) -> Optional[str]:
    by_tier: Dict[str, Dict[str, float]] = defaultdict(lambda: defaultdict(float))
    for rec in records:
        if rec.get("type") == "span" and rec.get("cat") == "phase":
            by_tier[_tier_of(rec["lane"])][rec["name"]] += _duration(rec)
    if not by_tier:
        return None
    tiers = sorted(by_tier)
    phases = [p for p in PHASES if any(p in by_tier[t] for t in tiers)]
    phases += sorted(
        {p for t in tiers for p in by_tier[t]} - set(phases)
    )  # non-canonical names last
    rows = []
    for phase in phases:
        rows.append(
            [phase]
            + [
                "-" if phase not in by_tier[t] else round(by_tier[t][phase], 4)
                for t in tiers
            ]
        )
    rows.append(["total"] + [round(sum(by_tier[t].values()), 4) for t in tiers])
    table = format_table(
        ["phase"] + [f"{t} (s)" for t in tiers], rows, title="Phase breakdown per tier"
    )
    # Batched-execution throughput: cohort_step spans carry the cohort's
    # optimizer-step count, so steps / span-seconds is the realised
    # client_steps_per_sec of the batched local-update hot path.
    cohort_steps = 0
    cohort_seconds = 0.0
    cohort_spans = 0
    for rec in records:
        if rec.get("type") == "span" and rec.get("name") == "cohort_step":
            cohort_steps += int(rec.get("steps", 0))
            cohort_seconds += _duration(rec)
            cohort_spans += 1
    if cohort_spans and cohort_seconds > 0:
        table += (
            f"\nbatched cohorts: {cohort_spans} cohort_step spans, "
            f"{cohort_steps} client steps, "
            f"client_steps_per_sec = {cohort_steps / cohort_seconds:.1f}"
        )
    return table


def _topk_section(
    records: Sequence[Dict[str, Any]], top: int
) -> Optional[str]:
    clients: Dict[Any, List[float]] = defaultdict(list)
    edges: Dict[Any, List[float]] = defaultdict(list)
    for rec in records:
        if rec.get("type") != "span":
            continue
        if rec.get("name") == "local_update" and rec.get("cat") == "client":
            clients[rec.get("client", rec["lane"])].append(_duration(rec))
        elif rec.get("cat") == "phase" and str(rec.get("lane", "")).startswith("edge:"):
            edges[rec.get("edge", rec["lane"])].append(_duration(rec))
        elif rec.get("name") == "edge_round":
            edges[rec.get("edge", rec["lane"])].append(_duration(rec))
    sections = []
    for label, series in (("clients", clients), ("edges", edges)):
        if not series:
            continue
        ranked = sorted(
            series.items(), key=lambda item: sum(item[1]), reverse=True
        )[:top]
        rows = [
            [key, len(vals), round(sum(vals), 4), round(max(vals), 4)]
            for key, vals in ranked
        ]
        sections.append(
            format_table(
                [label[:-1], "spans", "total (s)", "max (s)"],
                rows,
                title=f"Top-{top} slowest {label}",
            )
        )
    return "\n\n".join(sections) if sections else None


def _comm_section(records: Sequence[Dict[str, Any]]) -> Optional[str]:
    by_hop: Dict[Any, Dict[str, float]] = defaultdict(
        lambda: {"sends": 0, "bytes": 0, "sim_seconds": 0.0}
    )
    retries = 0
    backoffs = 0
    backoff_seconds = 0.0
    dead_letters: Dict[str, int] = defaultdict(int)
    faults: Dict[str, int] = defaultdict(int)
    for rec in records:
        name = rec.get("name")
        if name == "comm_send":
            key = (_hop_of(rec.get("endpoint", "?")), rec.get("codec") or "-")
            agg = by_hop[key]
            agg["sends"] += 1
            agg["bytes"] += rec.get("nbytes", 0)
            agg["sim_seconds"] += rec.get("sim_seconds", 0.0)
            if rec.get("attempt", 0) > 0:
                retries += rec["attempt"]
        elif name == "comm_backoff":
            backoffs += 1
            backoff_seconds += rec.get("sim_seconds", 0.0)
        elif name == "comm_dead_letter":
            dead_letters[rec.get("reason", "?")] += 1
        elif name == "fault_injected":
            faults[rec.get("kind", "?")] += 1
    if not by_hop and not backoffs and not dead_letters and not faults:
        return None
    sections = []
    if by_hop:
        rows = [
            [hop, codec, agg["sends"], agg["bytes"], round(agg["sim_seconds"], 4)]
            for (hop, codec), agg in sorted(by_hop.items())
        ]
        sections.append(
            format_table(
                ["hop", "codec", "sends", "bytes", "sim (s)"],
                rows,
                title="Bytes by hop and codec stage",
            )
        )
    lines = [
        f"retries (delivered after >=1 faulted attempt): {retries}",
        f"backoffs: {backoffs} ({backoff_seconds:.4f} simulated s)",
    ]
    if dead_letters:
        lines.append(
            "dead letters: "
            + ", ".join(f"{k}={v}" for k, v in sorted(dead_letters.items()))
        )
    if faults:
        lines.append(
            "fault injections: "
            + ", ".join(f"{k}={v}" for k, v in sorted(faults.items()))
        )
    sections.append("Retry / fault totals\n" + "\n".join(f"  {l}" for l in lines))
    return "\n\n".join(sections)


def _lifecycle_section(records: Sequence[Dict[str, Any]]) -> Optional[str]:
    rows = []
    for name in ("materialize", "evict", "checkpoint_capture", "checkpoint_restore"):
        spans = [r for r in records if r.get("type") == "span" and r.get("name") == name]
        if spans:
            rows.append(
                [name, len(spans), round(sum(_duration(r) for r in spans), 4)]
            )
    if not rows:
        return None
    return format_table(
        ["operation", "count", "total (s)"],
        rows,
        title="Store / checkpoint lifecycle",
    )


def _health_section(records: Sequence[Dict[str, Any]]) -> Optional[str]:
    """Alert events emitted by :class:`repro.obs.RunMonitor` watchdogs."""
    alerts = [
        r for r in records
        if r.get("type") == "event" and r.get("cat") == "health"
        and r.get("name") == "alert"
    ]
    if not alerts:
        return None
    rows = [
        [
            rec.get("severity", "?"),
            rec.get("monitor", "?"),
            rec.get("round", "-"),
            rec.get("message", ""),
        ]
        for rec in alerts
    ]
    return format_table(
        ["severity", "monitor", "round", "message"],
        rows,
        title=f"Health alerts ({len(alerts)})",
    )


def render_report(records: Sequence[Dict[str, Any]], top: int = 5) -> str:
    """The full terminal report over one trace's records."""
    spans = sum(1 for r in records if r.get("type") == "span")
    header = f"obs report: {len(records)} records ({spans} spans, {len(records) - spans} events)"
    sections = [header]
    for section in (
        _phase_section(records),
        _topk_section(records, top),
        _comm_section(records),
        _lifecycle_section(records),
        _health_section(records),
    ):
        if section:
            sections.append(section)
    return "\n\n".join(sections)


def render_metrics(snapshot: Dict[str, Any]) -> str:
    """Flat listing of a :meth:`MetricsRegistry.snapshot` export."""
    lines = ["metrics snapshot" + (f" {snapshot.get('labels')}" if snapshot.get("labels") else "")]
    for kind in ("counters", "gauges"):
        for key, value in snapshot.get(kind, {}).items():
            lines.append(f"  {key} = {value}")
    for key, summary in snapshot.get("histograms", {}).items():
        parts = ", ".join(
            f"{k}={v if v is None else round(v, 6)}" for k, v in summary.items()
        )
        lines.append(f"  {key} :: {parts}")
    return "\n".join(lines)


def render_series(samples: Sequence[Dict[str, Any]]) -> str:
    """Digest a :class:`MetricsStream` JSONL export.

    Samples are grouped by their ``tag`` (one monitored run each — counter
    monotonicity only holds within a run); counters are summarised
    first→last with the summed per-sample delta (which equals last−first
    when every sample landed in the stream), gauges as min/max/last.
    """
    if not samples:
        return "metrics series: empty stream"
    tags = []
    for sample in samples:
        tag = sample.get("tag", "")
        if tag not in tags:
            tags.append(tag)
    if len(tags) > 1:
        return "\n\n".join(
            (f"[tag={tag}]\n" if tag else "")
            + render_series([s for s in samples if s.get("tag", "") == tag])
            for tag in tags
        )
    first, last = samples[0], samples[-1]
    span = float(last.get("elapsed_seconds", 0.0)) - float(first.get("elapsed_seconds", 0.0))
    lines = [
        f"metrics series: {len(samples)} samples over {span:.3f}s "
        f"(seq {first.get('seq')}..{last.get('seq')})"
    ]
    counter_rows = []
    keys = sorted(last.get("metrics", {}).get("counters", {}))
    for key in keys:
        start = first.get("metrics", {}).get("counters", {}).get(key, 0)
        end = last.get("metrics", {}).get("counters", {}).get(key, 0)
        total_delta = sum(
            s.get("delta", {}).get("counters", {}).get(key, 0) for s in samples
        )
        counter_rows.append([key, start, end, total_delta])
    if counter_rows:
        lines.append(
            format_table(
                ["counter", "first", "last", "delta"],
                counter_rows,
                title="Counters over the stream",
            )
        )
    gauge_rows = []
    for key in sorted(last.get("metrics", {}).get("gauges", {})):
        values = [
            s["metrics"]["gauges"][key]
            for s in samples
            if key in s.get("metrics", {}).get("gauges", {})
        ]
        gauge_rows.append(
            [key, round(min(values), 6), round(max(values), 6), round(values[-1], 6)]
        )
    if gauge_rows:
        lines.append(
            format_table(
                ["gauge", "min", "max", "last"],
                gauge_rows,
                title="Gauges over the stream",
            )
        )
    return "\n\n".join(lines)


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="obsreport: terminal report over an obs trace JSONL"
    )
    parser.add_argument("trace", help="path to a Tracer.write_jsonl export")
    parser.add_argument("--top", type=int, default=5, help="top-k slowest clients/edges")
    parser.add_argument(
        "--metrics", metavar="PATH", default=None,
        help="also render a MetricsRegistry.write_snapshot JSON export",
    )
    parser.add_argument(
        "--series", metavar="PATH", default=None,
        help="also render a MetricsStream time-series JSONL export",
    )
    parser.add_argument(
        "--perfetto", metavar="OUT", default=None,
        help="convert the trace to Chrome trace_event JSON at OUT (no rerun)",
    )
    args = parser.parse_args(argv)
    records = load_trace(args.trace)
    print(render_report(records, top=args.top))
    if args.metrics:
        print()
        print(render_metrics(json.loads(Path(args.metrics).read_text())))
    if args.series:
        from ..obs import load_series

        print()
        print(render_series(load_series(args.series)))
    if args.perfetto:
        from ..obs import json_default, records_to_perfetto

        out = Path(args.perfetto)
        out.write_text(json.dumps(records_to_perfetto(records), default=json_default))
        print(f"\nperfetto trace written to {out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
