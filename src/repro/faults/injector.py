"""The live half of the fault layer: plan + retry policy + counters.

A :class:`FaultInjector` wraps a frozen :class:`~repro.faults.plan.FaultPlan`
with the run-scoped mutable bookkeeping the runners need: which one-shot edge
kills have already fired, and the :class:`FaultStats` tally every layer
increments (the chaos harness and ``benchmarks/bench_hotpath.py`` report
these).  Install one on any :class:`~repro.comm.base.Communicator` via
``communicator.install_faults(injector_or_plan)`` — the serial, simulated-MPI
and simulated-gRPC transports all inherit the same seam — and/or enable it on
a runner (``HierRunner.enable_faults`` / ``HierAsyncRunner.enable_faults``)
for crash-recovery behaviour above the wire.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from ..comm.codecs import UpdatePacket
from ..obs import current_tracer
from .plan import FaultPlan
from .retry import RetryPolicy

__all__ = ["FaultStats", "FaultInjector"]


@dataclass
class FaultStats:
    """Counters of everything the injector did to a run."""

    drops: int = 0
    timeouts: int = 0
    corruptions: int = 0
    client_crashes: int = 0
    edge_kills: int = 0
    recoveries: int = 0
    retries: int = 0
    dead_letters: int = 0

    def as_dict(self) -> dict:
        return {k: int(v) for k, v in self.__dict__.items()}


class FaultInjector:
    """Run-scoped fault decisions over a frozen plan.

    One injector instance should serve one run (it tracks which one-shot
    edge kills already fired); build a fresh one per run from the same plan
    to replay identical faults.
    """

    def __init__(self, plan: FaultPlan, retry: Optional[RetryPolicy] = None):
        self.plan = plan
        self.retry = retry if retry is not None else RetryPolicy(seed=plan.seed)
        self.stats = FaultStats()
        self._kills_fired: set = set()

    # ----------------------------------------------------------- wire faults
    def transfer_fault(self, round_idx: int, endpoint: str, op: str, attempt: int) -> Optional[str]:
        """Fault verdict for one transfer attempt at the communicator seam.

        ``"crash"`` (unretryable — the sending client is dead) for the uplink
        of a client the plan crashes this round; otherwise the plan's keyed
        link-fault draw (``"drop"`` / ``"timeout"`` / ``"corrupt"`` / None).
        """
        if op == "send_local" and endpoint.startswith("client:"):
            cid = int(endpoint.split(":", 1)[1])
            if self.plan.client_crashed(cid, round_idx):
                return "crash"
        return self.plan.link_fault(round_idx, endpoint, op, attempt)

    def corrupt_packet(self, packet: UpdatePacket) -> UpdatePacket:
        """A bit-flipped copy of ``packet`` (first byte of the first
        non-empty entry), guaranteed to fail its checksum on receipt."""
        corrupted = packet.copy()
        for entry in corrupted.entries.values():
            if entry.data.nbytes:
                entry.data.view(np.uint8)[0] ^= 0xFF
                break
        return corrupted

    def count(self, fault: str) -> None:
        """Tally one wire fault by kind (every injection site funnels through
        here, which is also where an armed tracer sees the injection)."""
        attr = {
            "drop": "drops",
            "timeout": "timeouts",
            "corrupt": "corruptions",
            "crash": "client_crashes",
        }[fault]
        setattr(self.stats, attr, getattr(self.stats, attr) + 1)
        tracer = current_tracer()
        if tracer is not None:
            tracer.event("fault_injected", "fault", lane="faults", kind=fault)

    # ---------------------------------------------------------- crash queries
    def client_crashed(self, cid: int, round_idx: int) -> bool:
        return self.plan.client_crashed(cid, round_idx)

    def edge_crashed(self, edge_id: int, round_idx: int) -> bool:
        return self.plan.edge_crashed(edge_id, round_idx)

    def boundary_kill(self, edge_id: int, wave_index: int) -> bool:
        """Whether the plan kills ``edge_id`` at its ``wave_index``-th flush."""
        return int(wave_index) in self.plan.edge_boundary_kills.get(int(edge_id), ())

    def edge_kills_due(self, events_processed: int) -> List[int]:
        """Edge ids whose one-shot kill threshold has been reached (each
        returned exactly once across the injector's lifetime)."""
        due: List[int] = []
        for i, (count, edge_id) in enumerate(self.plan.edge_kills):
            if i not in self._kills_fired and events_processed >= count:
                self._kills_fired.add(i)
                due.append(edge_id)
        return due
