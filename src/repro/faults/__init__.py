"""Deterministic fault injection and recovery for federated runs.

The robustness layer of the reproduction: seeded schedules of packet drops,
link timeouts, corrupted packets, client crashes and edge crashes
(:class:`FaultPlan`), a deterministic retry/timeout/backoff cost model
(:class:`RetryPolicy`), and the run-scoped :class:`FaultInjector` that the
communicators (``Communicator.install_faults``) and runners
(``enable_faults``) consult.  Every decision is a pure function of
``(seed, decision key)`` — see :func:`keyed_rng` — so a chaos run's failure
trace is reproducible bit-for-bit, which is what ``repro.harness.chaos``
asserts.
"""

from .injector import FaultInjector, FaultStats
from .plan import FaultPlan, keyed_rng
from .retry import RetryPolicy

__all__ = ["FaultPlan", "FaultInjector", "FaultStats", "RetryPolicy", "keyed_rng"]
