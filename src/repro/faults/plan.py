"""Seeded fault schedules: the *what-fails-when* of a chaos run.

A :class:`FaultPlan` is a frozen description of every failure a run will
experience — link-level packet drops, timeouts and corruptions, client
crashes, and edge crashes (by round for the synchronous hier runner, by
processed-event count or wave boundary for the asynchronous one).  Two
properties make it a *chaos engineering* tool rather than a fuzzer:

* **Determinism** — every probabilistic decision is a pure function of
  ``(seed, decision key)``, drawn from a :func:`keyed_rng` stream seeded by
  the CRC of the key parts.  Whether client 17's round-3 uplink drops does
  not depend on how many other draws happened first, so the same plan
  produces the same failure trace across runner implementations, thread
  counts, and replays — which is what lets ``harness/chaos.py`` assert that
  a crash+recover run is *bitwise* the crash-free run.
* **Declarativeness** — the plan carries no mutable state.  Consumption
  bookkeeping (which one-shot edge kills already fired) lives in the
  :class:`~repro.faults.injector.FaultInjector` wrapped around it.

The probabilities model the paper's deployment reality: its gRPC federations
(Figs. 4a/4b) see per-round link times jittering up to ~30x, and at
cross-device scale (the ROADMAP's 1M-client goal) a few percent of clients
failing per round is the steady state, not the exception.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field
from typing import Dict, Mapping, Optional, Tuple

import numpy as np

__all__ = ["keyed_rng", "FaultPlan"]

#: link fault kinds a transfer attempt can suffer
LINK_FAULTS = ("drop", "timeout", "corrupt")


def keyed_rng(seed: int, *key) -> np.random.Generator:
    """A fresh RNG stream keyed by ``(seed, *key)``.

    String key parts hash through CRC-32; integers pass through masked to
    32 bits.  Every distinct key gets an independent stream, and the same key
    always gets the same stream — decisions become order-free functions of
    their key, the determinism backbone of the whole fault layer.
    """
    material = [int(seed) & 0xFFFFFFFF]
    for part in key:
        if isinstance(part, str):
            material.append(zlib.crc32(part.encode("utf-8")))
        else:
            material.append(int(part) & 0xFFFFFFFF)
    return np.random.default_rng(material)


def _freeze_map(mapping: Optional[Mapping[int, object]]) -> "Dict[int, Tuple[int, ...]]":
    out: Dict[int, Tuple[int, ...]] = {}
    for k, v in (mapping or {}).items():
        out[int(k)] = tuple(int(x) for x in v)
    return out


@dataclass(frozen=True)
class FaultPlan:
    """A deterministic, seeded schedule of failures for one run.

    Parameters
    ----------
    seed:
        Root of every keyed draw below.  Two plans with the same seed and
        rates fail identically, anywhere.
    drop_prob / timeout_prob / corrupt_prob:
        Per-*attempt* link fault rates applied at the communicator seam
        (both directions).  A drop loses the payload silently, a timeout
        charges the retry policy's full timeout before failing, a corruption
        delivers a bit-flipped :class:`~repro.comm.codecs.UpdatePacket` that
        the receiver rejects by checksum.  Their sum must stay <= 1.
    client_crash_prob:
        Per-(client, round) probability that the client dies mid-round —
        after receiving the dispatch, before its upload leaves the device.
        Crashed clients do **not** run their local update (their in-memory
        progress is lost with them), so stateful algorithms' server-side
        replicas never desynchronise; the round finalizes with the
        survivors.
    client_crashes:
        Explicit schedule ``{round: (client ids...)}`` merged with the
        probabilistic draws.
    edge_crash_rounds:
        Synchronous hier runs: ``{round: (edge ids...)}`` — the edge dies
        before its summary reaches the root that round and is restored from
        the round-start checkpoint slice, then replayed.
    edge_kills:
        Asynchronous hier runs: ``((event_count, edge id), ...)`` one-shot
        kills — when the runner has processed ``event_count`` timeline
        events, the edge actor is killed and recovered from its last
        wave-boundary slice.
    edge_boundary_kills:
        Asynchronous hier runs: ``{edge id: (wave index...)}`` kills landing
        exactly at the edge's flush boundary — the recovery-is-bitwise case
        the chaos harness asserts.
    """

    seed: int = 0
    drop_prob: float = 0.0
    timeout_prob: float = 0.0
    corrupt_prob: float = 0.0
    client_crash_prob: float = 0.0
    client_crashes: Mapping[int, Tuple[int, ...]] = field(default_factory=dict)
    edge_crash_rounds: Mapping[int, Tuple[int, ...]] = field(default_factory=dict)
    edge_kills: Tuple[Tuple[int, int], ...] = ()
    edge_boundary_kills: Mapping[int, Tuple[int, ...]] = field(default_factory=dict)

    def __post_init__(self):
        for name in ("drop_prob", "timeout_prob", "corrupt_prob", "client_crash_prob"):
            p = getattr(self, name)
            if not 0.0 <= p <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {p}")
        if self.drop_prob + self.timeout_prob + self.corrupt_prob > 1.0 + 1e-12:
            raise ValueError("drop_prob + timeout_prob + corrupt_prob must not exceed 1")
        object.__setattr__(self, "client_crashes", _freeze_map(self.client_crashes))
        object.__setattr__(self, "edge_crash_rounds", _freeze_map(self.edge_crash_rounds))
        object.__setattr__(self, "edge_boundary_kills", _freeze_map(self.edge_boundary_kills))
        kills = tuple((int(c), int(e)) for c, e in self.edge_kills)
        for count, _ in kills:
            if count < 1:
                raise ValueError("edge_kills event counts must be >= 1")
        object.__setattr__(self, "edge_kills", kills)

    # -------------------------------------------------------------- decisions
    @property
    def any_link_faults(self) -> bool:
        return (self.drop_prob + self.timeout_prob + self.corrupt_prob) > 0.0

    @property
    def any_client_crashes(self) -> bool:
        return self.client_crash_prob > 0.0 or bool(self.client_crashes)

    def link_fault(self, round_idx: int, endpoint: str, op: str, attempt: int) -> Optional[str]:
        """The fault (if any) this transfer attempt suffers.

        Keyed on the full attempt identity, so retries of the same logical
        transfer draw independently and two different links never share a
        fate — yet the decision is reproducible regardless of transfer
        order.
        """
        if not self.any_link_faults:
            return None
        u = keyed_rng(self.seed, "link", round_idx, endpoint, op, attempt).random()
        if u < self.drop_prob:
            return "drop"
        if u < self.drop_prob + self.timeout_prob:
            return "timeout"
        if u < self.drop_prob + self.timeout_prob + self.corrupt_prob:
            return "corrupt"
        return None

    def client_crashed(self, cid: int, round_idx: int) -> bool:
        """Whether client ``cid`` dies during round/version ``round_idx``."""
        cid, round_idx = int(cid), int(round_idx)
        if cid in self.client_crashes.get(round_idx, ()):
            return True
        if self.client_crash_prob <= 0.0:
            return False
        return bool(
            keyed_rng(self.seed, "crash", cid, round_idx).random() < self.client_crash_prob
        )

    def edge_crashed(self, edge_id: int, round_idx: int) -> bool:
        """Whether edge ``edge_id`` crashes during synchronous round ``round_idx``."""
        return int(edge_id) in self.edge_crash_rounds.get(int(round_idx), ())

    # ------------------------------------------------------------ constructors
    @classmethod
    def chaos(
        cls,
        seed: int,
        num_edges: int,
        kills: int,
        max_event_count: int,
        min_event_count: int = 1,
        **rates,
    ) -> "FaultPlan":
        """A plan that kills ``kills`` edges at seeded-random event counts.

        The (event count, edge id) pairs are drawn once from the plan's own
        keyed stream, so the "random" kill schedule is itself reproducible —
        this is what the chaos harness's convergence-under-churn check runs.
        Additional rate keywords (``drop_prob=...`` etc.) pass through.
        """
        if num_edges <= 0:
            raise ValueError("num_edges must be positive")
        if not 1 <= min_event_count <= max_event_count:
            raise ValueError("need 1 <= min_event_count <= max_event_count")
        rng = keyed_rng(seed, "chaos-schedule")
        counts = sorted(
            int(c) for c in rng.integers(min_event_count, max_event_count + 1, size=kills)
        )
        edges = [int(e) for e in rng.integers(0, num_edges, size=kills)]
        return cls(seed=seed, edge_kills=tuple(zip(counts, edges)), **rates)
