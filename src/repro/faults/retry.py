"""Deterministic retry/timeout/backoff policy for the communicator seam.

A real federation client retries a failed RPC with capped exponential
backoff plus jitter (gRPC's standard retry policy, which the source paper's
transport inherits).  :class:`RetryPolicy` reproduces that cost model on the
simulated clock: every failed attempt charges either the attempt's wire time
(corruptions — the bytes did cross) or the full ``timeout`` (drops and
timeouts — the sender waited for an ack that never came), and each re-try is
preceded by a backoff delay.

The jitter is drawn from the same :func:`~repro.faults.plan.keyed_rng`
streams as the fault decisions — a pure function of (seed, transfer
identity, attempt) — so simulated retry timing is reproducible across runs
and runner implementations.
"""

from __future__ import annotations

from dataclasses import dataclass

from .plan import keyed_rng

__all__ = ["RetryPolicy"]


@dataclass(frozen=True)
class RetryPolicy:
    """Timeout + capped exponential backoff with deterministic jitter.

    ``max_attempts`` bounds total tries (first attempt included); a transfer
    still failing after that many is dead-lettered.  Attempt ``k`` (0-based)
    that fails charges ``timeout`` simulated seconds (or its wire time, for
    corruptions), then waits ``min(backoff_base * backoff_factor**k,
    backoff_max) * (1 + jitter * U)`` before attempt ``k+1``, with ``U``
    drawn from the keyed stream of the transfer's identity.
    """

    max_attempts: int = 3
    timeout: float = 0.5
    backoff_base: float = 0.05
    backoff_factor: float = 2.0
    backoff_max: float = 1.0
    jitter: float = 0.1
    seed: int = 0

    def __post_init__(self):
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        for name in ("timeout", "backoff_base", "backoff_max"):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be non-negative")
        if self.backoff_factor < 1.0:
            raise ValueError("backoff_factor must be >= 1")
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError("jitter must be in [0, 1]")

    def backoff_delay(self, attempt: int, *key) -> float:
        """Simulated seconds to wait before retrying after failed ``attempt``."""
        delay = min(self.backoff_base * self.backoff_factor ** int(attempt), self.backoff_max)
        if self.jitter > 0.0 and delay > 0.0:
            u = float(keyed_rng(self.seed, "backoff", attempt, *key).random())
            delay *= 1.0 + self.jitter * u
        return float(delay)
