"""``Module``/``Parameter`` abstractions mirroring ``torch.nn.Module``.

The APPFL paper requires user models to be a ``torch.nn.Module``; the
reproduction keeps the same contract: an FL model is any subclass of
:class:`Module`, and the framework only relies on the state-dict interface
(ordered mapping of parameter names to numpy arrays) plus ``forward``.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, Iterator, Optional, Tuple

import numpy as np

from .tensor import Tensor

__all__ = ["Parameter", "Module"]


class Parameter(Tensor):
    """A :class:`Tensor` that is registered as a learnable model parameter."""

    def __init__(self, data, requires_grad: bool = True):
        super().__init__(data, requires_grad=requires_grad)


class Module:
    """Base class for all neural-network modules.

    Subclasses assign :class:`Parameter` and :class:`Module` instances as
    attributes in ``__init__`` and implement :meth:`forward`.  Parameters and
    submodules are discovered automatically through ``__setattr__``, exactly
    like PyTorch.
    """

    def __init__(self) -> None:
        object.__setattr__(self, "_parameters", OrderedDict())
        object.__setattr__(self, "_modules", OrderedDict())
        object.__setattr__(self, "training", True)

    # ---------------------------------------------------------- registration
    def __setattr__(self, name: str, value) -> None:
        if isinstance(value, Parameter):
            self._parameters[name] = value
        elif isinstance(value, Module):
            self._modules[name] = value
        object.__setattr__(self, name, value)

    def register_parameter(self, name: str, param: Parameter) -> None:
        """Explicitly register a parameter (used by container modules)."""
        self._parameters[name] = param
        object.__setattr__(self, name, param)

    def add_module(self, name: str, module: "Module") -> None:
        """Explicitly register a child module under ``name``."""
        self._modules[name] = module
        object.__setattr__(self, name, module)

    # -------------------------------------------------------------- traversal
    def named_parameters(self, prefix: str = "") -> Iterator[Tuple[str, Parameter]]:
        """Yield ``(name, parameter)`` pairs recursively, in registration order."""
        for name, param in self._parameters.items():
            yield (prefix + name, param)
        for mod_name, module in self._modules.items():
            yield from module.named_parameters(prefix=f"{prefix}{mod_name}.")

    def parameters(self) -> Iterator[Parameter]:
        """Yield all parameters recursively."""
        for _, param in self.named_parameters():
            yield param

    def modules(self) -> Iterator["Module"]:
        """Yield this module and all descendants."""
        yield self
        for module in self._modules.values():
            yield from module.modules()

    def num_parameters(self) -> int:
        """Total number of scalar parameters in the model."""
        return sum(p.size for p in self.parameters())

    # -------------------------------------------------------------- state dict
    def state_dict(self) -> "OrderedDict[str, np.ndarray]":
        """Return an ordered mapping of parameter names to *copies* of their data."""
        return OrderedDict((name, p.data.copy()) for name, p in self.named_parameters())

    def load_state_dict(self, state: Dict[str, np.ndarray], strict: bool = True) -> None:
        """Load parameter values from ``state`` (in place, no reallocation)."""
        own = dict(self.named_parameters())
        missing = set(own) - set(state)
        unexpected = set(state) - set(own)
        if strict and (missing or unexpected):
            raise KeyError(f"state_dict mismatch: missing={sorted(missing)}, unexpected={sorted(unexpected)}")
        for name, value in state.items():
            if name not in own:
                continue
            param = own[name]
            value = np.asarray(value, dtype=param.data.dtype)
            if value.shape != param.data.shape:
                raise ValueError(f"shape mismatch for {name}: {value.shape} vs {param.data.shape}")
            param.data[...] = value

    # ------------------------------------------------------- train/eval state
    def train(self, mode: bool = True) -> "Module":
        """Set training mode recursively (affects dropout, etc.)."""
        object.__setattr__(self, "training", mode)
        for module in self._modules.values():
            module.train(mode)
        return self

    def eval(self) -> "Module":
        """Set evaluation mode recursively."""
        return self.train(False)

    def zero_grad(self) -> None:
        """Clear gradients of all parameters."""
        for p in self.parameters():
            p.zero_grad()

    # ------------------------------------------------------------------ call
    def forward(self, *args, **kwargs):  # pragma: no cover - abstract
        raise NotImplementedError("Module subclasses must implement forward()")

    def __call__(self, *args, **kwargs):
        return self.forward(*args, **kwargs)

    def __repr__(self) -> str:
        children = ", ".join(f"{k}={type(v).__name__}" for k, v in self._modules.items())
        return f"{type(self).__name__}({children})"
