"""Loss modules wrapping the functional implementations."""

from __future__ import annotations

import numpy as np

from . import functional as F
from .module import Module
from .tensor import Tensor

__all__ = ["CrossEntropyLoss", "MSELoss", "NLLLoss"]


class CrossEntropyLoss(Module):
    """Softmax cross-entropy with integer class targets (like ``torch.nn.CrossEntropyLoss``)."""

    def __init__(self, reduction: str = "mean"):
        super().__init__()
        self.reduction = reduction

    def forward(self, logits: Tensor, targets: np.ndarray) -> Tensor:
        return F.cross_entropy(logits, targets, reduction=self.reduction)


class NLLLoss(Module):
    """Negative log-likelihood loss over log-probabilities."""

    def __init__(self, reduction: str = "mean"):
        super().__init__()
        self.reduction = reduction

    def forward(self, log_probs: Tensor, targets: np.ndarray) -> Tensor:
        return F.nll_loss(log_probs, targets, reduction=self.reduction)


class MSELoss(Module):
    """Mean squared error loss."""

    def __init__(self, reduction: str = "mean"):
        super().__init__()
        self.reduction = reduction

    def forward(self, pred: Tensor, target) -> Tensor:
        return F.mse_loss(pred, target, reduction=self.reduction)
