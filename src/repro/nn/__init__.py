"""Numpy-based deep-learning substrate (drop-in for the PyTorch pieces APPFL uses).

Public API::

    from repro import nn
    model = nn.Sequential(nn.Linear(10, 32), nn.ReLU(), nn.Linear(32, 2))
    loss = nn.CrossEntropyLoss()(model(x), y)
    loss.backward()
    nn.SGD(model.parameters(), lr=0.1).step()
"""

from . import functional, init
from .layers import Conv2d, Dropout, Flatten, Linear, MaxPool2d, ReLU, Sequential
from .losses import CrossEntropyLoss, MSELoss, NLLLoss
from .module import Module, Parameter
from .optim import SGD, Adam, Optimizer
from .tensor import Tensor, is_grad_enabled, no_grad

__all__ = [
    "Tensor",
    "no_grad",
    "is_grad_enabled",
    "Module",
    "Parameter",
    "Linear",
    "Conv2d",
    "MaxPool2d",
    "ReLU",
    "Flatten",
    "Dropout",
    "Sequential",
    "CrossEntropyLoss",
    "MSELoss",
    "NLLLoss",
    "Optimizer",
    "SGD",
    "Adam",
    "functional",
    "init",
]
