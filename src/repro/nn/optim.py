"""Optimisers operating on :class:`repro.nn.module.Parameter` buffers.

The paper's FedAvg clients run SGD with momentum [30]; the IADMM-based
algorithms use their own closed-form update (Algorithm 1 line 16) and do not
go through an optimiser.  Adam is provided as an extension point for
user-defined client updates.

All updates are performed in place on the parameter buffers (no reallocation
on the hot path, per the HPC guide).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

import numpy as np

from .module import Parameter

__all__ = ["Optimizer", "SGD", "Adam"]


class Optimizer:
    """Base class for optimisers.

    Parameters
    ----------
    params:
        Iterable of :class:`Parameter` objects to update.
    """

    def __init__(self, params: Iterable[Parameter]):
        self.params: List[Parameter] = list(params)
        if not self.params:
            raise ValueError("optimizer got an empty parameter list")

    def zero_grad(self) -> None:
        """Clear gradients on all managed parameters."""
        for p in self.params:
            p.zero_grad()

    def step(self) -> None:  # pragma: no cover - abstract
        raise NotImplementedError


class SGD(Optimizer):
    """Stochastic gradient descent with optional momentum and weight decay.

    Matches ``torch.optim.SGD`` semantics: ``v = mu*v + g``; ``p -= lr*v``.
    """

    def __init__(
        self,
        params: Iterable[Parameter],
        lr: float = 0.01,
        momentum: float = 0.0,
        weight_decay: float = 0.0,
    ):
        super().__init__(params)
        if lr <= 0:
            raise ValueError("learning rate must be positive")
        if not 0.0 <= momentum < 1.0:
            raise ValueError("momentum must be in [0, 1)")
        self.lr = lr
        self.momentum = momentum
        self.weight_decay = weight_decay
        self._velocity: Dict[int, np.ndarray] = {}

    def step(self) -> None:
        """Apply one SGD update using the gradients stored on the parameters."""
        for p in self.params:
            if not p.has_grad:
                continue
            grad = p.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * p.data
            if self.momentum:
                buf = self._velocity.get(id(p))
                if buf is None:
                    buf = grad.copy()
                    self._velocity[id(p)] = buf
                else:
                    buf *= self.momentum
                    buf += grad
                update = buf
            else:
                update = grad
            p.data -= self.lr * update


class Adam(Optimizer):
    """Adam optimiser (Kingma & Ba, 2015)."""

    def __init__(
        self,
        params: Iterable[Parameter],
        lr: float = 1e-3,
        betas=(0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.0,
    ):
        super().__init__(params)
        if lr <= 0:
            raise ValueError("learning rate must be positive")
        self.lr = lr
        self.beta1, self.beta2 = betas
        self.eps = eps
        self.weight_decay = weight_decay
        self._m: Dict[int, np.ndarray] = {}
        self._v: Dict[int, np.ndarray] = {}
        self._t = 0

    def step(self) -> None:
        """Apply one Adam update using the gradients stored on the parameters."""
        self._t += 1
        t = self._t
        for p in self.params:
            if not p.has_grad:
                continue
            grad = p.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * p.data
            m = self._m.setdefault(id(p), np.zeros_like(p.data))
            v = self._v.setdefault(id(p), np.zeros_like(p.data))
            m *= self.beta1
            m += (1 - self.beta1) * grad
            v *= self.beta2
            v += (1 - self.beta2) * grad * grad
            m_hat = m / (1 - self.beta1 ** t)
            v_hat = v / (1 - self.beta2 ** t)
            p.data -= self.lr * m_hat / (np.sqrt(v_hat) + self.eps)
