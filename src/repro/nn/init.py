"""Weight-initialisation schemes for :mod:`repro.nn` layers."""

from __future__ import annotations

import math
from typing import Optional, Tuple

import numpy as np

__all__ = [
    "kaiming_uniform",
    "kaiming_normal",
    "xavier_uniform",
    "xavier_normal",
    "uniform_fan_in",
    "zeros",
    "calculate_fan",
]


def calculate_fan(shape: Tuple[int, ...]) -> Tuple[int, int]:
    """Return ``(fan_in, fan_out)`` for a weight tensor shape.

    For linear weights ``(out, in)``; for convolution weights
    ``(out_channels, in_channels, kh, kw)`` the receptive-field size is folded
    into the fans, matching PyTorch's convention.
    """
    if len(shape) < 2:
        raise ValueError("fan calculation requires at least a 2-D shape")
    receptive = int(np.prod(shape[2:])) if len(shape) > 2 else 1
    fan_in = shape[1] * receptive
    fan_out = shape[0] * receptive
    return fan_in, fan_out


def kaiming_uniform(shape, rng: Optional[np.random.Generator] = None, a: float = math.sqrt(5)) -> np.ndarray:
    """He/Kaiming uniform init (PyTorch's default for Linear/Conv2d weights)."""
    rng = rng if rng is not None else np.random.default_rng()
    fan_in, _ = calculate_fan(shape)
    gain = math.sqrt(2.0 / (1.0 + a ** 2))
    bound = gain * math.sqrt(3.0 / fan_in)
    return rng.uniform(-bound, bound, size=shape)


def kaiming_normal(shape, rng: Optional[np.random.Generator] = None) -> np.ndarray:
    """He/Kaiming normal init."""
    rng = rng if rng is not None else np.random.default_rng()
    fan_in, _ = calculate_fan(shape)
    std = math.sqrt(2.0 / fan_in)
    return rng.normal(0.0, std, size=shape)


def xavier_uniform(shape, rng: Optional[np.random.Generator] = None) -> np.ndarray:
    """Glorot/Xavier uniform init."""
    rng = rng if rng is not None else np.random.default_rng()
    fan_in, fan_out = calculate_fan(shape)
    bound = math.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-bound, bound, size=shape)


def xavier_normal(shape, rng: Optional[np.random.Generator] = None) -> np.ndarray:
    """Glorot/Xavier normal init."""
    rng = rng if rng is not None else np.random.default_rng()
    fan_in, fan_out = calculate_fan(shape)
    std = math.sqrt(2.0 / (fan_in + fan_out))
    return rng.normal(0.0, std, size=shape)


def uniform_fan_in(shape, fan_in: int, rng: Optional[np.random.Generator] = None) -> np.ndarray:
    """Uniform(-1/sqrt(fan_in), 1/sqrt(fan_in)) — PyTorch's default bias init."""
    rng = rng if rng is not None else np.random.default_rng()
    bound = 1.0 / math.sqrt(fan_in) if fan_in > 0 else 0.0
    return rng.uniform(-bound, bound, size=shape)


def zeros(shape) -> np.ndarray:
    """All-zeros initialisation."""
    return np.zeros(shape)
