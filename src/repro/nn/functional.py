"""Functional neural-network operations built on :class:`repro.nn.tensor.Tensor`.

The convolution and pooling kernels use an im2col/col2im strategy so the hot
loop is a single large matrix multiplication (per the HPC guide: vectorise,
avoid per-element Python loops).
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from .tensor import Tensor

__all__ = [
    "linear",
    "relu",
    "conv2d",
    "max_pool2d",
    "flatten",
    "log_softmax",
    "softmax",
    "cross_entropy",
    "nll_loss",
    "mse_loss",
    "dropout",
    "im2col",
    "col2im",
]


# --------------------------------------------------------------------- dense
def linear(x: Tensor, weight: Tensor, bias: Optional[Tensor] = None) -> Tensor:
    """Affine transform ``x @ weight.T + bias``.

    ``x`` has shape ``(N, in_features)``; ``weight`` has shape
    ``(out_features, in_features)``; ``bias`` has shape ``(out_features,)``.
    """
    out = x @ weight.transpose()
    if bias is not None:
        out = out + bias
    return out


def relu(x: Tensor) -> Tensor:
    """Elementwise rectified linear unit."""
    return x.relu()


def flatten(x: Tensor, start_dim: int = 1) -> Tensor:
    """Flatten all dimensions from ``start_dim`` onward."""
    shape = x.shape
    lead = shape[:start_dim]
    tail = int(np.prod(shape[start_dim:])) if len(shape) > start_dim else 1
    return x.reshape(lead + (tail,))


# --------------------------------------------------------------- convolution
def _pair(value) -> Tuple[int, int]:
    if isinstance(value, (tuple, list)):
        return int(value[0]), int(value[1])
    return int(value), int(value)


def im2col(
    x: np.ndarray, kernel: Tuple[int, int], stride: Tuple[int, int], padding: Tuple[int, int]
) -> Tuple[np.ndarray, Tuple[int, int]]:
    """Rearrange image patches into columns.

    Parameters
    ----------
    x: array of shape ``(N, C, H, W)``.
    kernel, stride, padding: spatial parameters.

    Returns
    -------
    cols: array of shape ``(N, C*kh*kw, out_h*out_w)``.
    (out_h, out_w): output spatial size.
    """
    n, c, h, w = x.shape
    kh, kw = kernel
    sh, sw = stride
    ph, pw = padding
    out_h = (h + 2 * ph - kh) // sh + 1
    out_w = (w + 2 * pw - kw) // sw + 1
    if ph or pw:
        x = np.pad(x, ((0, 0), (0, 0), (ph, ph), (pw, pw)), mode="constant")
    # Strided sliding-window view, then gather into columns (one copy, no loop).
    shape = (n, c, kh, kw, out_h, out_w)
    strides = (
        x.strides[0],
        x.strides[1],
        x.strides[2],
        x.strides[3],
        x.strides[2] * sh,
        x.strides[3] * sw,
    )
    windows = np.lib.stride_tricks.as_strided(x, shape=shape, strides=strides)
    cols = windows.reshape(n, c * kh * kw, out_h * out_w)
    return np.ascontiguousarray(cols), (out_h, out_w)


def col2im(
    cols: np.ndarray,
    x_shape: Tuple[int, int, int, int],
    kernel: Tuple[int, int],
    stride: Tuple[int, int],
    padding: Tuple[int, int],
) -> np.ndarray:
    """Inverse of :func:`im2col`: scatter-add columns back into an image."""
    n, c, h, w = x_shape
    kh, kw = kernel
    sh, sw = stride
    ph, pw = padding
    out_h = (h + 2 * ph - kh) // sh + 1
    out_w = (w + 2 * pw - kw) // sw + 1
    padded = np.zeros((n, c, h + 2 * ph, w + 2 * pw), dtype=cols.dtype)
    cols6 = cols.reshape(n, c, kh, kw, out_h, out_w)
    for i in range(kh):
        i_max = i + sh * out_h
        for j in range(kw):
            j_max = j + sw * out_w
            padded[:, :, i:i_max:sh, j:j_max:sw] += cols6[:, :, i, j, :, :]
    if ph or pw:
        return padded[:, :, ph : ph + h, pw : pw + w]
    return padded


def conv2d(
    x: Tensor,
    weight: Tensor,
    bias: Optional[Tensor] = None,
    stride=1,
    padding=0,
) -> Tensor:
    """2-D convolution (cross-correlation, matching ``torch.nn.functional.conv2d``).

    ``x``: ``(N, C_in, H, W)``; ``weight``: ``(C_out, C_in, kh, kw)``;
    ``bias``: ``(C_out,)``.
    """
    stride = _pair(stride)
    padding = _pair(padding)
    n, c_in, h, w = x.shape
    c_out, c_in_w, kh, kw = weight.shape
    if c_in != c_in_w:
        raise ValueError(f"conv2d channel mismatch: input has {c_in}, weight expects {c_in_w}")

    cols, (out_h, out_w) = im2col(x.data, (kh, kw), stride, padding)
    w_mat = weight.data.reshape(c_out, -1)  # (C_out, C_in*kh*kw)
    # (N, C_out, out_h*out_w) via batched matmul.
    out = np.einsum("ok,nkp->nop", w_mat, cols, optimize=True)
    if bias is not None:
        out = out + bias.data.reshape(1, c_out, 1)
    out = out.reshape(n, c_out, out_h, out_w)

    x_shape = x.shape
    parents = (x, weight) if bias is None else (x, weight, bias)

    def backward(grad: np.ndarray):
        # grad: (N, C_out, out_h, out_w)
        grad_mat = grad.reshape(n, c_out, out_h * out_w)
        grad_x = None
        grad_w = None
        grad_b = None
        if x.requires_grad:
            # dL/dcols = W^T @ grad, then fold back.
            dcols = np.einsum("ok,nop->nkp", w_mat, grad_mat, optimize=True)
            grad_x = col2im(dcols, x_shape, (kh, kw), stride, padding)
        if weight.requires_grad:
            grad_w = np.einsum("nop,nkp->ok", grad_mat, cols, optimize=True).reshape(weight.shape)
        if bias is not None and bias.requires_grad:
            grad_b = grad_mat.sum(axis=(0, 2))
        if bias is None:
            return (grad_x, grad_w)
        return (grad_x, grad_w, grad_b)

    return Tensor._make(out, parents, backward, "conv2d")


def max_pool2d(x: Tensor, kernel_size=2, stride=None, padding=0) -> Tensor:
    """2-D max pooling over ``(N, C, H, W)`` inputs."""
    kernel = _pair(kernel_size)
    stride = _pair(stride if stride is not None else kernel_size)
    padding = _pair(padding)
    n, c, h, w = x.shape
    kh, kw = kernel

    cols, (out_h, out_w) = im2col(x.data, kernel, stride, padding)
    # cols: (N, C*kh*kw, P) -> (N, C, kh*kw, P)
    cols = cols.reshape(n, c, kh * kw, out_h * out_w)
    arg = cols.argmax(axis=2)  # (N, C, P)
    out = np.take_along_axis(cols, arg[:, :, None, :], axis=2).squeeze(2)
    out = out.reshape(n, c, out_h, out_w)

    x_shape = x.shape

    def backward(grad: np.ndarray):
        grad_flat = grad.reshape(n, c, out_h * out_w)
        dcols = np.zeros((n, c, kh * kw, out_h * out_w), dtype=grad.dtype)
        np.put_along_axis(dcols, arg[:, :, None, :], grad_flat[:, :, None, :], axis=2)
        dcols = dcols.reshape(n, c * kh * kw, out_h * out_w)
        return (col2im(dcols, x_shape, kernel, stride, padding),)

    return Tensor._make(out, (x,), backward, "max_pool2d")


# ------------------------------------------------------------------- softmax
def softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Numerically stable softmax along ``axis``."""
    shifted = x - x.max(axis=axis, keepdims=True).detach()
    e = shifted.exp()
    return e / e.sum(axis=axis, keepdims=True)


def log_softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Numerically stable log-softmax along ``axis``."""
    m = x.data.max(axis=axis, keepdims=True)
    shifted = x - Tensor(m)
    lse = shifted.exp().sum(axis=axis, keepdims=True).log()
    return shifted - lse


def nll_loss(log_probs: Tensor, targets: np.ndarray, reduction: str = "mean") -> Tensor:
    """Negative log-likelihood of integer class ``targets`` under ``log_probs``."""
    targets = np.asarray(targets, dtype=np.int64)
    n = log_probs.shape[0]
    picked = log_probs[np.arange(n), targets]
    loss = -picked
    if reduction == "mean":
        return loss.mean()
    if reduction == "sum":
        return loss.sum()
    return loss


def cross_entropy(logits: Tensor, targets: np.ndarray, reduction: str = "mean") -> Tensor:
    """Softmax cross-entropy with integer class targets.

    Implemented with a fused backward (the classic ``softmax - onehot``
    gradient) so it is both fast and numerically stable.
    """
    targets = np.asarray(targets, dtype=np.int64)
    z = logits.data
    n = z.shape[0]
    z_shift = z - z.max(axis=1, keepdims=True)
    exp = np.exp(z_shift)
    probs = exp / exp.sum(axis=1, keepdims=True)
    log_probs = z_shift - np.log(exp.sum(axis=1, keepdims=True))
    losses = -log_probs[np.arange(n), targets]
    if reduction == "mean":
        value = losses.mean()
        scale = 1.0 / n
    elif reduction == "sum":
        value = losses.sum()
        scale = 1.0
    else:
        raise ValueError(f"unsupported reduction {reduction!r}")

    def backward(grad: np.ndarray):
        g = probs.copy()
        g[np.arange(n), targets] -= 1.0
        return (g * (float(grad) * scale),)

    return Tensor._make(np.asarray(value), (logits,), backward, "cross_entropy")


def mse_loss(pred: Tensor, target: Tensor, reduction: str = "mean") -> Tensor:
    """Mean squared error loss."""
    target = target if isinstance(target, Tensor) else Tensor(target)
    diff = pred - target.detach()
    sq = diff * diff
    if reduction == "mean":
        return sq.mean()
    if reduction == "sum":
        return sq.sum()
    return sq


def dropout(x: Tensor, p: float = 0.5, training: bool = True, rng: Optional[np.random.Generator] = None) -> Tensor:
    """Inverted dropout: zero activations with probability ``p`` during training."""
    if not training or p <= 0.0:
        return x
    if not 0.0 <= p < 1.0:
        raise ValueError("dropout probability must be in [0, 1)")
    rng = rng if rng is not None else np.random.default_rng()
    mask = (rng.random(x.shape) >= p).astype(np.float64) / (1.0 - p)
    return x * Tensor(mask)
