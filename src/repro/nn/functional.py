"""Functional neural-network operations built on :class:`repro.nn.tensor.Tensor`.

The convolution and pooling kernels use an im2col/col2im strategy so the hot
loop is a single large matrix multiplication (per the HPC guide: vectorise,
avoid per-element Python loops).

Scratch-buffer reuse: the im2col column matrix and the zero-padded input are
by far the largest allocations on the training hot path (tens of MB per conv
per batch for the paper's CNN).  Both are drawn from a thread-local
:class:`_BufferPool` keyed on the exact geometry, so batches of identical
shape reuse the same memory instead of reallocating every forward/backward.
A column buffer stays checked out while a recorded backward closure still
needs it and is returned to the pool as soon as the gradient has been
computed (or immediately, when autograd is not recording).
"""

from __future__ import annotations

import threading
import weakref
from typing import Optional, Tuple

import numpy as np

from .tensor import Tensor, is_grad_enabled

__all__ = [
    "linear",
    "relu",
    "conv2d",
    "max_pool2d",
    "flatten",
    "log_softmax",
    "softmax",
    "cross_entropy",
    "nll_loss",
    "mse_loss",
    "dropout",
    "im2col",
    "col2im",
    "legacy_kernels",
    "kernel_call_counts",
]


class legacy_kernels:
    """Context manager restoring the seed implementation's conv/pool kernels.

    Inside the context, ``conv2d`` uses the original per-image einsum
    contractions with freshly allocated N-major columns and ``max_pool2d``
    skips the aligned fast path.  Only used as the measured *baseline* in
    ``benchmarks/bench_hotpath.py``; results are numerically identical to the
    optimised kernels.  Process-wide (unlike ``no_grad``) so a baseline with
    ``parallel_clients > 1`` still runs the legacy kernels on the runner's
    worker threads; do not enter it concurrently with an optimised run.
    """

    def __enter__(self) -> "legacy_kernels":
        self._prev = _LEGACY_STATE[0]
        _LEGACY_STATE[0] = True
        return self

    def __exit__(self, *exc) -> None:
        _LEGACY_STATE[0] = self._prev


_LEGACY_STATE = [False]


def _legacy_enabled() -> bool:
    return _LEGACY_STATE[0]


# Process-local kernel-invocation counters for the obs layer (worker
# telemetry).  Plain int increments: far below measurement noise next to the
# GEMMs they count, and they never touch numerics.  Under thread-parallel
# clients concurrent increments may race and undercount slightly; worker
# processes (where these counters ship as telemetry) run single-threaded,
# so their counts are exact and deterministic.
_KERNEL_CALLS: dict = {}


def _count_kernel(name: str) -> None:
    _KERNEL_CALLS[name] = _KERNEL_CALLS.get(name, 0) + 1


def kernel_call_counts() -> dict:
    """Copy of this process's kernel-entry invocation counts."""
    return dict(_KERNEL_CALLS)


# --------------------------------------------------------------------- dense
def linear(x: Tensor, weight: Tensor, bias: Optional[Tensor] = None) -> Tensor:
    """Affine transform ``x @ weight.T + bias``.

    ``x`` has shape ``(N, in_features)``; ``weight`` has shape
    ``(out_features, in_features)``; ``bias`` has shape ``(out_features,)``.
    """
    _count_kernel("linear")
    out = x @ weight.transpose()
    if bias is not None:
        out = out + bias
    return out


def relu(x: Tensor) -> Tensor:
    """Elementwise rectified linear unit."""
    return x.relu()


def flatten(x: Tensor, start_dim: int = 1) -> Tensor:
    """Flatten all dimensions from ``start_dim`` onward."""
    shape = x.shape
    lead = shape[:start_dim]
    tail = int(np.prod(shape[start_dim:])) if len(shape) > start_dim else 1
    return x.reshape(lead + (tail,))


# --------------------------------------------------------------- convolution
def _pair(value) -> Tuple[int, int]:
    if isinstance(value, (tuple, list)):
        return int(value[0]), int(value[1])
    return int(value), int(value)


class _BufferPool(threading.local):
    """Thread-local free-lists of scratch arrays keyed by (tag, geometry, dtype).

    Thread-local so parallel FL clients never hand the same scratch buffer to
    two concurrent convolutions.
    """

    def __init__(self):
        self.free = {}

    def acquire(self, key, shape, dtype, zero: bool = False) -> np.ndarray:
        stack = self.free.get(key)
        if stack:
            return stack.pop()
        return np.zeros(shape, dtype=dtype) if zero else np.empty(shape, dtype=dtype)

    def release(self, key, buf: np.ndarray) -> None:
        self.free.setdefault(key, []).append(buf)


_pool = _BufferPool()


def im2col(
    x: np.ndarray,
    kernel: Tuple[int, int],
    stride: Tuple[int, int],
    padding: Tuple[int, int],
    out: Optional[np.ndarray] = None,
) -> Tuple[np.ndarray, Tuple[int, int]]:
    """Rearrange image patches into columns.

    Parameters
    ----------
    x: array of shape ``(N, C, H, W)``.
    kernel, stride, padding: spatial parameters.

    Returns
    -------
    cols: array of shape ``(N, C*kh*kw, out_h*out_w)`` (``out`` when given).
    (out_h, out_w): output spatial size.
    """
    n, c, h, w = x.shape
    kh, kw = kernel
    windows, pad_key, padded, (out_h, out_w) = _sliding_windows(x, kernel, stride, padding)
    if out is None:
        out = np.empty((n, c * kh * kw, out_h * out_w), dtype=x.dtype)
    np.copyto(out.reshape(n, c, kh, kw, out_h, out_w), windows)
    if pad_key is not None:
        _pool.release(pad_key, padded)
    return out, (out_h, out_w)


def _sliding_windows(
    x: np.ndarray, kernel: Tuple[int, int], stride: Tuple[int, int], padding: Tuple[int, int]
):
    """Zero-pad ``x`` (pooled buffer) and return a strided sliding-window view.

    Returns ``(windows, pad_key, padded, (out_h, out_w))`` where ``windows``
    has shape ``(N, C, kh, kw, out_h, out_w)``.  When ``pad_key`` is not None
    the caller must release ``padded`` back to the pool after consuming the
    view.
    """
    n, c, h, w = x.shape
    kh, kw = kernel
    sh, sw = stride
    ph, pw = padding
    out_h = (h + 2 * ph - kh) // sh + 1
    out_w = (w + 2 * pw - kw) // sw + 1
    pad_key = None
    if ph or pw:
        # Pooled padded buffer: created zeroed, only the interior is rewritten,
        # so the zero border survives reuse across batches of identical shape.
        pad_key = ("pad", x.shape, ph, pw, x.dtype)
        padded = _pool.acquire(pad_key, (n, c, h + 2 * ph, w + 2 * pw), x.dtype, zero=True)
        padded[:, :, ph : ph + h, pw : pw + w] = x
        x = padded
    shape = (n, c, kh, kw, out_h, out_w)
    strides = (
        x.strides[0],
        x.strides[1],
        x.strides[2],
        x.strides[3],
        x.strides[2] * sh,
        x.strides[3] * sw,
    )
    windows = np.lib.stride_tricks.as_strided(x, shape=shape, strides=strides)
    return windows, pad_key, x, (out_h, out_w)


def col2im(
    cols: np.ndarray,
    x_shape: Tuple[int, int, int, int],
    kernel: Tuple[int, int],
    stride: Tuple[int, int],
    padding: Tuple[int, int],
) -> np.ndarray:
    """Inverse of :func:`im2col`: scatter-add columns back into an image."""
    n, c, h, w = x_shape
    kh, kw = kernel
    sh, sw = stride
    ph, pw = padding
    out_h = (h + 2 * ph - kh) // sh + 1
    out_w = (w + 2 * pw - kw) // sw + 1
    padded = np.zeros((n, c, h + 2 * ph, w + 2 * pw), dtype=cols.dtype)
    cols6 = cols.reshape(n, c, kh, kw, out_h, out_w)
    for i in range(kh):
        i_max = i + sh * out_h
        for j in range(kw):
            j_max = j + sw * out_w
            padded[:, :, i:i_max:sh, j:j_max:sw] += cols6[:, :, i, j, :, :]
    if ph or pw:
        return padded[:, :, ph : ph + h, pw : pw + w]
    return padded


def _col2im_kmajor(
    cols: np.ndarray,
    x_shape: Tuple[int, int, int, int],
    kernel: Tuple[int, int],
    stride: Tuple[int, int],
    padding: Tuple[int, int],
) -> np.ndarray:
    """:func:`col2im` for K-major columns of shape ``(C*kh*kw, N, P)``.

    Scatter-adds through strided views of the K-major buffer directly, so no
    layout-conversion copy of the (large) column matrix is needed.
    """
    n, c, h, w = x_shape
    kh, kw = kernel
    sh, sw = stride
    ph, pw = padding
    out_h = (h + 2 * ph - kh) // sh + 1
    out_w = (w + 2 * pw - kw) // sw + 1
    # Scatter into a C-major image so source and destination slices share the
    # same axis order (no transposed strided writes); one layout copy at the
    # end converts back to (N, C, H, W).
    padded = np.zeros((c, n, h + 2 * ph, w + 2 * pw), dtype=cols.dtype)
    cols6 = cols.reshape(c, kh, kw, n, out_h, out_w)
    for i in range(kh):
        i_max = i + sh * out_h
        for j in range(kw):
            j_max = j + sw * out_w
            padded[:, :, i:i_max:sh, j:j_max:sw] += cols6[:, i, j]
    interior = padded[:, :, ph : ph + h, pw : pw + w] if (ph or pw) else padded
    return np.ascontiguousarray(interior.transpose(1, 0, 2, 3))


def conv2d(
    x: Tensor,
    weight: Tensor,
    bias: Optional[Tensor] = None,
    stride=1,
    padding=0,
) -> Tensor:
    """2-D convolution (cross-correlation, matching ``torch.nn.functional.conv2d``).

    ``x``: ``(N, C_in, H, W)``; ``weight``: ``(C_out, C_in, kh, kw)``;
    ``bias``: ``(C_out,)``.
    """
    _count_kernel("conv2d")
    stride = _pair(stride)
    padding = _pair(padding)
    n, c_in, h, w = x.shape
    c_out, c_in_w, kh, kw = weight.shape
    if c_in != c_in_w:
        raise ValueError(f"conv2d channel mismatch: input has {c_in}, weight expects {c_in_w}")
    if _legacy_enabled():
        return _conv2d_legacy(x, weight, bias, stride, padding)

    recording = is_grad_enabled() and (
        x.requires_grad or weight.requires_grad or (bias is not None and bias.requires_grad)
    )
    # Columns are stored K-major — shape (C_in*kh*kw, N, P) — so both the
    # forward product and the weight gradient collapse into one big GEMM over
    # the combined (N, P) axis instead of N small per-image GEMMs.
    kdim = c_in * kh * kw
    cols_key = ("cols", x.data.shape, (kh, kw), stride, padding, x.data.dtype)
    windows, pad_key, padded, (out_h, out_w) = _sliding_windows(x.data, (kh, kw), stride, padding)
    p_dim = out_h * out_w
    cols = _pool.acquire(cols_key, (kdim, n, p_dim), x.data.dtype)
    np.copyto(
        cols.reshape(c_in, kh, kw, n, out_h, out_w),
        windows.transpose(1, 2, 3, 0, 4, 5),
    )
    if pad_key is not None:
        _pool.release(pad_key, padded)

    w_mat = weight.data.reshape(c_out, -1)  # (C_out, C_in*kh*kw)
    dt = x.data.dtype
    fo_key = ("convout", c_out, n, p_dim, dt)
    out_cnp = _pool.acquire(fo_key, (c_out, n, p_dim), dt)
    np.matmul(w_mat, cols.reshape(kdim, n * p_dim), out=out_cnp.reshape(c_out, n * p_dim))
    if bias is not None:
        out_cnp += bias.data.reshape(c_out, 1, 1)
    # .copy() (never ascontiguousarray) — with a size-1 axis the transpose is
    # already contiguous and ascontiguousarray would return a *view* of the
    # pooled buffer, which the next same-geometry conv would overwrite.
    out = out_cnp.transpose(1, 0, 2).copy().reshape(n, c_out, out_h, out_w)
    _pool.release(fo_key, out_cnp)

    if not recording:
        _pool.release(cols_key, cols)
        return Tensor._make(out, (), lambda g: (), "conv2d")

    x_shape = x.shape
    parents = (x, weight) if bias is None else (x, weight, bias)

    # The column buffer stays checked out until the backward pass has used it.
    # If the recorded graph is dropped without backward() (exception between
    # forward and backward, loss probing, ...), a GC finalizer on the output
    # tensor returns the buffer instead of leaking it; the flag guards
    # against double-release when backward did run.  The pool is thread-local,
    # so a finalizer firing on a different thread than the acquiring one must
    # NOT release there (the buffer would migrate to a foreign free list) —
    # in that rare case the buffer is simply dropped for the GC to reclaim.
    cols_released = [False]
    owner_thread = threading.get_ident()

    def _release_cols():
        if not cols_released[0]:
            cols_released[0] = True
            if threading.get_ident() == owner_thread:
                _pool.release(cols_key, cols)

    def backward(grad: np.ndarray):
        # grad: (N, C_out, out_h, out_w) -> C_out-major (C_out, N*P) once, so
        # both weight and input gradients are single collapsed GEMMs.
        grad_mat = grad.reshape(n, c_out, p_dim)
        gm_key = ("convgm", c_out, n, p_dim, dt)
        gm_t = _pool.acquire(gm_key, (c_out, n, p_dim), dt)
        np.copyto(gm_t, grad_mat.transpose(1, 0, 2))
        gm_2d = gm_t.reshape(c_out, n * p_dim)
        grad_x = None
        grad_w = None
        grad_b = None
        if x.requires_grad:
            # dL/dcols = W^T @ grad, folded back without a layout copy.
            dc_key = ("convdcols", kdim, n, p_dim, dt)
            dcols = _pool.acquire(dc_key, (kdim, n, p_dim), dt)
            np.matmul(w_mat.T, gm_2d, out=dcols.reshape(kdim, n * p_dim))
            grad_x = _col2im_kmajor(dcols, x_shape, (kh, kw), stride, padding)
            _pool.release(dc_key, dcols)
        if weight.requires_grad:
            grad_w = (gm_2d @ cols.reshape(kdim, n * p_dim).T).reshape(weight.shape)
        if bias is not None and bias.requires_grad:
            grad_b = grad_mat.sum(axis=(0, 2))
        _pool.release(gm_key, gm_t)
        # The column buffer is only needed up to here; return it to the pool
        # for the next same-shape batch.  (A second backward pass through this
        # node would observe recycled memory — the framework, like the seed
        # implementation, supports a single backward per graph.)
        _release_cols()
        if bias is None:
            return (grad_x, grad_w)
        return (grad_x, grad_w, grad_b)

    result = Tensor._make(out, parents, backward, "conv2d")
    weakref.finalize(result, _release_cols)
    return result


def _conv2d_legacy(x: Tensor, weight: Tensor, bias, stride, padding) -> Tensor:
    """The seed implementation's conv2d (per-image einsum, fresh buffers)."""
    n, c_in, h, w = x.shape
    c_out, _, kh, kw = weight.shape
    cols, (out_h, out_w) = im2col(x.data, (kh, kw), stride, padding)
    w_mat = weight.data.reshape(c_out, -1)
    out = np.einsum("ok,nkp->nop", w_mat, cols, optimize=True)
    if bias is not None:
        out = out + bias.data.reshape(1, c_out, 1)
    out = out.reshape(n, c_out, out_h, out_w)

    x_shape = x.shape
    parents = (x, weight) if bias is None else (x, weight, bias)

    def backward(grad: np.ndarray):
        grad_mat = grad.reshape(n, c_out, out_h * out_w)
        grad_x = grad_w = grad_b = None
        if x.requires_grad:
            dcols = np.einsum("ok,nop->nkp", w_mat, grad_mat, optimize=True)
            grad_x = col2im(dcols, x_shape, (kh, kw), stride, padding)
        if weight.requires_grad:
            grad_w = np.einsum("nop,nkp->ok", grad_mat, cols, optimize=True).reshape(weight.shape)
        if bias is not None and bias.requires_grad:
            grad_b = grad_mat.sum(axis=(0, 2))
        if bias is None:
            return (grad_x, grad_w)
        return (grad_x, grad_w, grad_b)

    return Tensor._make(out, parents, backward, "conv2d")


def max_pool2d(x: Tensor, kernel_size=2, stride=None, padding=0) -> Tensor:
    """2-D max pooling over ``(N, C, H, W)`` inputs.

    Non-overlapping pools that tile the input exactly (``stride == kernel``,
    no padding — the common CNN case) take a reshape-based fast path whose
    argmax runs over a small contiguous trailing axis; the general case falls
    back to im2col/col2im.  Both pick the same (first) element on ties, so
    results are identical.
    """
    _count_kernel("max_pool2d")
    kernel = _pair(kernel_size)
    stride = _pair(stride if stride is not None else kernel_size)
    padding = _pair(padding)
    n, c, h, w = x.shape
    kh, kw = kernel
    if stride == kernel and padding == (0, 0) and h % kh == 0 and w % kw == 0 and not _legacy_enabled():
        return _max_pool2d_aligned(x, kernel)

    cols_key = ("pool", x.data.shape, kernel, stride, padding, x.data.dtype)
    out_h = (h + 2 * padding[0] - kh) // stride[0] + 1
    out_w = (w + 2 * padding[1] - kw) // stride[1] + 1
    cols = _pool.acquire(cols_key, (n, c * kh * kw, out_h * out_w), x.data.dtype)
    im2col(x.data, kernel, stride, padding, out=cols)
    # cols: (N, C*kh*kw, P) -> (N, C, kh*kw, P)
    cols = cols.reshape(n, c, kh * kw, out_h * out_w)
    arg = cols.argmax(axis=2)  # (N, C, P)
    out = cols.max(axis=2).reshape(n, c, out_h, out_w)
    # The backward pass only needs the argmax indices, not the columns.
    _pool.release(cols_key, cols.reshape(n, c * kh * kw, out_h * out_w))

    x_shape = x.shape

    def backward(grad: np.ndarray):
        grad_flat = grad.reshape(n, c, out_h * out_w)
        dcols = np.zeros((n, c, kh * kw, out_h * out_w), dtype=grad.dtype)
        np.put_along_axis(dcols, arg[:, :, None, :], grad_flat[:, :, None, :], axis=2)
        dcols = dcols.reshape(n, c * kh * kw, out_h * out_w)
        return (col2im(dcols, x_shape, kernel, stride, padding),)

    return Tensor._make(out, (x,), backward, "max_pool2d")


def _max_pool2d_aligned(x: Tensor, kernel: Tuple[int, int]) -> Tensor:
    """Fast path for non-overlapping, exactly tiling max pooling.

    Rearranges each ``kh x kw`` window onto a small contiguous trailing axis
    (one layout copy) so the argmax/max scan is sequential in memory, and the
    backward pass is a single ``put_along_axis`` plus the inverse layout copy
    — no im2col or col2im.  Window elements keep im2col's row-major order, so
    argmax tie-breaking matches the general path exactly.
    """
    n, c, h, w = x.shape
    kh, kw = kernel
    out_h, out_w = h // kh, w // kw
    # (N, C, out_h, kh, out_w, kw) -> (N, C, out_h, out_w, kh*kw), contiguous.
    windows = np.ascontiguousarray(
        x.data.reshape(n, c, out_h, kh, out_w, kw).transpose(0, 1, 2, 4, 3, 5)
    ).reshape(n, c, out_h, out_w, kh * kw)
    arg = windows.argmax(axis=-1)
    out = windows.max(axis=-1)

    def backward(grad: np.ndarray):
        dwin = np.zeros((n, c, out_h, out_w, kh * kw), dtype=grad.dtype)
        np.put_along_axis(dwin, arg[..., None], grad[..., None], axis=-1)
        dx = np.ascontiguousarray(
            dwin.reshape(n, c, out_h, out_w, kh, kw).transpose(0, 1, 2, 4, 3, 5)
        ).reshape(n, c, h, w)
        return (dx,)

    return Tensor._make(out, (x,), backward, "max_pool2d")


# ------------------------------------------------------------------- softmax
def softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Numerically stable softmax along ``axis``."""
    shifted = x - x.max(axis=axis, keepdims=True).detach()
    e = shifted.exp()
    return e / e.sum(axis=axis, keepdims=True)


def log_softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Numerically stable log-softmax along ``axis``."""
    m = x.data.max(axis=axis, keepdims=True)
    shifted = x - Tensor(m, dtype=m.dtype)
    lse = shifted.exp().sum(axis=axis, keepdims=True).log()
    return shifted - lse


def nll_loss(log_probs: Tensor, targets: np.ndarray, reduction: str = "mean") -> Tensor:
    """Negative log-likelihood of integer class ``targets`` under ``log_probs``."""
    targets = np.asarray(targets, dtype=np.int64)
    n = log_probs.shape[0]
    picked = log_probs[np.arange(n), targets]
    loss = -picked
    if reduction == "mean":
        return loss.mean()
    if reduction == "sum":
        return loss.sum()
    return loss


def cross_entropy(logits: Tensor, targets: np.ndarray, reduction: str = "mean") -> Tensor:
    """Softmax cross-entropy with integer class targets.

    Implemented with a fused backward (the classic ``softmax - onehot``
    gradient) so it is both fast and numerically stable.
    """
    _count_kernel("cross_entropy")
    targets = np.asarray(targets, dtype=np.int64)
    z = logits.data
    n = z.shape[0]
    z_shift = z - z.max(axis=1, keepdims=True)
    exp = np.exp(z_shift)
    probs = exp / exp.sum(axis=1, keepdims=True)
    log_probs = z_shift - np.log(exp.sum(axis=1, keepdims=True))
    losses = -log_probs[np.arange(n), targets]
    if reduction == "mean":
        value = losses.mean()
        scale = 1.0 / n
    elif reduction == "sum":
        value = losses.sum()
        scale = 1.0
    else:
        raise ValueError(f"unsupported reduction {reduction!r}")

    def backward(grad: np.ndarray):
        g = probs.copy()
        g[np.arange(n), targets] -= 1.0
        return (g * (float(grad) * scale),)

    return Tensor._make(np.asarray(value), (logits,), backward, "cross_entropy")


def mse_loss(pred: Tensor, target: Tensor, reduction: str = "mean") -> Tensor:
    """Mean squared error loss."""
    target = target if isinstance(target, Tensor) else Tensor(target, dtype=pred.data.dtype)
    diff = pred - target.detach()
    sq = diff * diff
    if reduction == "mean":
        return sq.mean()
    if reduction == "sum":
        return sq.sum()
    return sq


def dropout(x: Tensor, p: float = 0.5, training: bool = True, rng: Optional[np.random.Generator] = None) -> Tensor:
    """Inverted dropout: zero activations with probability ``p`` during training."""
    if not training or p <= 0.0:
        return x
    if not 0.0 <= p < 1.0:
        raise ValueError("dropout probability must be in [0, 1)")
    rng = rng if rng is not None else np.random.default_rng()
    mask = (rng.random(x.shape) >= p).astype(x.data.dtype) / (1.0 - p)
    return x * Tensor(mask, dtype=mask.dtype)
