"""Neural-network layers (Linear, Conv2d, MaxPool2d, ReLU, Flatten, Sequential, Dropout).

These provide the building blocks for the CNN the APPFL paper uses in its
demonstration: "two 2D convolution layers, a 2D max pooling layer, the
elementwise rectified linear unit function, and two layers of linear
transformation" (Section IV-A).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from . import functional as F
from . import init
from .module import Module, Parameter
from .tensor import Tensor

__all__ = [
    "Linear",
    "Conv2d",
    "MaxPool2d",
    "ReLU",
    "Flatten",
    "Dropout",
    "Sequential",
]


class Linear(Module):
    """Fully connected layer: ``y = x W^T + b``."""

    def __init__(
        self,
        in_features: int,
        out_features: int,
        bias: bool = True,
        rng: Optional[np.random.Generator] = None,
    ):
        super().__init__()
        self.in_features = in_features
        self.out_features = out_features
        rng = rng if rng is not None else np.random.default_rng()
        self.weight = Parameter(init.kaiming_uniform((out_features, in_features), rng=rng))
        if bias:
            self.bias = Parameter(init.uniform_fan_in((out_features,), in_features, rng=rng))
        else:
            self.bias = None

    def forward(self, x: Tensor) -> Tensor:
        return F.linear(x, self.weight, self.bias)

    def __repr__(self) -> str:
        return f"Linear(in={self.in_features}, out={self.out_features}, bias={self.bias is not None})"


class Conv2d(Module):
    """2-D convolution layer over ``(N, C, H, W)`` inputs."""

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel_size,
        stride=1,
        padding=0,
        bias: bool = True,
        rng: Optional[np.random.Generator] = None,
    ):
        super().__init__()
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel_size = F._pair(kernel_size)
        self.stride = F._pair(stride)
        self.padding = F._pair(padding)
        rng = rng if rng is not None else np.random.default_rng()
        kh, kw = self.kernel_size
        self.weight = Parameter(init.kaiming_uniform((out_channels, in_channels, kh, kw), rng=rng))
        if bias:
            fan_in = in_channels * kh * kw
            self.bias = Parameter(init.uniform_fan_in((out_channels,), fan_in, rng=rng))
        else:
            self.bias = None

    def forward(self, x: Tensor) -> Tensor:
        return F.conv2d(x, self.weight, self.bias, stride=self.stride, padding=self.padding)

    def __repr__(self) -> str:
        return (
            f"Conv2d({self.in_channels}, {self.out_channels}, kernel_size={self.kernel_size}, "
            f"stride={self.stride}, padding={self.padding})"
        )


class MaxPool2d(Module):
    """2-D max pooling layer."""

    def __init__(self, kernel_size, stride=None, padding=0):
        super().__init__()
        self.kernel_size = kernel_size
        self.stride = stride
        self.padding = padding

    def forward(self, x: Tensor) -> Tensor:
        return F.max_pool2d(x, self.kernel_size, self.stride, self.padding)

    def __repr__(self) -> str:
        return f"MaxPool2d(kernel_size={self.kernel_size})"


class ReLU(Module):
    """Elementwise rectified linear unit."""

    def forward(self, x: Tensor) -> Tensor:
        return F.relu(x)

    def __repr__(self) -> str:
        return "ReLU()"


class Flatten(Module):
    """Flatten trailing dimensions starting at ``start_dim``."""

    def __init__(self, start_dim: int = 1):
        super().__init__()
        self.start_dim = start_dim

    def forward(self, x: Tensor) -> Tensor:
        return F.flatten(x, self.start_dim)

    def __repr__(self) -> str:
        return f"Flatten(start_dim={self.start_dim})"


class Dropout(Module):
    """Inverted dropout; identity in eval mode."""

    def __init__(self, p: float = 0.5, rng: Optional[np.random.Generator] = None):
        super().__init__()
        self.p = p
        self._rng = rng if rng is not None else np.random.default_rng()

    def forward(self, x: Tensor) -> Tensor:
        return F.dropout(x, p=self.p, training=self.training, rng=self._rng)

    def __repr__(self) -> str:
        return f"Dropout(p={self.p})"


class Sequential(Module):
    """Container that applies child modules in order."""

    def __init__(self, *modules: Module):
        super().__init__()
        self._order = []
        for i, module in enumerate(modules):
            name = str(i)
            self.add_module(name, module)
            self._order.append(name)

    def forward(self, x: Tensor) -> Tensor:
        for name in self._order:
            x = self._modules[name](x)
        return x

    def __len__(self) -> int:
        return len(self._order)

    def __getitem__(self, index: int) -> Module:
        return self._modules[self._order[index]]

    def __repr__(self) -> str:
        inner = ", ".join(repr(self._modules[n]) for n in self._order)
        return f"Sequential({inner})"
