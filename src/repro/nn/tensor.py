"""Reverse-mode automatic differentiation on top of numpy arrays.

This module is the substrate that replaces ``torch.Tensor`` for the APPFL
reproduction.  It implements a small but complete dynamic computation graph:
each :class:`Tensor` produced by an operation records its parent tensors and
a backward closure that maps the upstream gradient to per-parent gradients.
Calling :meth:`Tensor.backward` performs a reverse topological traversal and
accumulates gradients into every tensor created with ``requires_grad=True``.

Only the operations required by the federated-learning workloads are
implemented (dense layers, convolution via im2col in :mod:`repro.nn.functional`,
pooling, ReLU, softmax cross-entropy, elementwise arithmetic and reductions),
but the graph machinery is generic and new ops can be added by following the
same pattern.
"""

from __future__ import annotations

import threading
from typing import Callable, List, Optional, Sequence, Tuple, Union

import numpy as np

__all__ = ["Tensor", "no_grad", "is_grad_enabled"]

ArrayLike = Union[np.ndarray, float, int, Sequence]

# Grad mode is thread-local so parallel FL clients (each running forward and
# backward passes on its own model in a worker thread) cannot toggle each
# other's graph recording through ``no_grad``.
_GRAD_STATE = threading.local()


class no_grad:
    """Context manager that disables graph construction (like ``torch.no_grad``)."""

    def __enter__(self) -> "no_grad":
        self._prev = is_grad_enabled()
        _GRAD_STATE.enabled = False
        return self

    def __exit__(self, *exc) -> None:
        _GRAD_STATE.enabled = self._prev


def is_grad_enabled() -> bool:
    """Return whether new operations are being recorded on the autograd graph."""
    return getattr(_GRAD_STATE, "enabled", True)


def _as_array(data: ArrayLike, dtype=np.float64) -> np.ndarray:
    if isinstance(data, np.ndarray):
        if data.dtype != dtype:
            return data.astype(dtype)
        return data
    return np.asarray(data, dtype=dtype)


def _unbroadcast(grad: np.ndarray, shape: Tuple[int, ...]) -> np.ndarray:
    """Sum ``grad`` over the axes that were broadcast to produce it."""
    if grad.shape == shape:
        return grad
    extra = grad.ndim - len(shape)
    if extra > 0:
        grad = grad.sum(axis=tuple(range(extra)))
    axes = tuple(i for i, s in enumerate(shape) if s == 1 and grad.shape[i] != 1)
    if axes:
        grad = grad.sum(axis=axes, keepdims=True)
    return grad.reshape(shape)


# A backward function maps the upstream gradient to one gradient per parent
# (``None`` for parents that do not require grad).
BackwardFn = Callable[[np.ndarray], Tuple[Optional[np.ndarray], ...]]


class Tensor:
    """A numpy-backed array with reverse-mode autodiff support.

    Parameters
    ----------
    data:
        Array data; copied only when a dtype conversion is required.
    requires_grad:
        If True, gradients are accumulated in :attr:`grad` during
        :meth:`backward`.
    dtype:
        Target dtype (default float64).  The float32 pipeline passes the run's
        configured dtype here so batches are not silently upcast.
    """

    __slots__ = ("data", "grad", "requires_grad", "_backward", "_parents", "_op", "_grad_pinned", "_grad_seen", "__weakref__")

    def __init__(self, data: ArrayLike, requires_grad: bool = False, dtype=None):
        self.data: np.ndarray = _as_array(data, np.float64 if dtype is None else dtype)
        self.requires_grad: bool = bool(requires_grad) and is_grad_enabled()
        self.grad: Optional[np.ndarray] = None
        self._backward: Optional[BackwardFn] = None
        self._parents: Tuple["Tensor", ...] = ()
        self._op: str = ""
        self._grad_pinned: bool = False
        self._grad_seen: bool = False

    # ------------------------------------------------------------------ utils
    @property
    def shape(self) -> Tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    @property
    def dtype(self):
        return self.data.dtype

    def numpy(self) -> np.ndarray:
        """Return the underlying numpy array (no copy)."""
        return self.data

    def item(self) -> float:
        return float(self.data.item())

    def detach(self) -> "Tensor":
        """Return a tensor sharing the same data but detached from the graph."""
        return Tensor(self.data, requires_grad=False, dtype=self.data.dtype)

    def copy(self) -> "Tensor":
        return Tensor(self.data.copy(), requires_grad=False, dtype=self.data.dtype)

    def zero_grad(self) -> None:
        if self._grad_pinned and self.grad is not None:
            self.grad.fill(0.0)
        else:
            self.grad = None
        self._grad_seen = False

    def pin_grad(self, buffer: np.ndarray) -> None:
        """Accumulate gradients into ``buffer`` (a preallocated view) forever.

        Once pinned, ``zero_grad`` zero-fills the buffer instead of dropping it,
        so backward passes never allocate per-parameter gradient arrays.  Used
        by the flat-parameter engine (:class:`repro.core.base.ModelVectorizer`).
        ``grad`` is then never ``None``; consumers that need the seed's
        "received no gradient" signal (the optimizers) use :attr:`has_grad`.
        """
        self.grad = buffer
        self._grad_pinned = True
        self._grad_seen = False

    @property
    def has_grad(self) -> bool:
        """Whether a gradient has been accumulated since the last ``zero_grad``.

        Equivalent to ``grad is not None`` for ordinary tensors; for pinned
        gradient buffers (which always exist) it tracks whether any backward
        pass actually reached this tensor.
        """
        if self._grad_pinned:
            return self._grad_seen
        return self.grad is not None

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"Tensor(shape={self.shape}, requires_grad={self.requires_grad}, op={self._op!r})"

    def __len__(self) -> int:
        return len(self.data)

    # --------------------------------------------------------------- plumbing
    @staticmethod
    def _make(data: np.ndarray, parents: Tuple["Tensor", ...], backward: BackwardFn, op: str) -> "Tensor":
        requires = any(p.requires_grad for p in parents) and is_grad_enabled()
        out = Tensor(data, requires_grad=requires, dtype=data.dtype if isinstance(data, np.ndarray) else None)
        if requires:
            out._backward = backward
            out._parents = parents
            out._op = op
        return out

    def backward(self, grad: Optional[np.ndarray] = None) -> None:
        """Backpropagate from this tensor through the recorded graph.

        Gradients are accumulated (summed) into the ``grad`` attribute of every
        reachable tensor with ``requires_grad=True``.
        """
        if not self.requires_grad:
            raise RuntimeError("backward() called on a tensor that does not require grad")
        if grad is None:
            if self.data.size != 1:
                raise RuntimeError("grad must be provided for non-scalar tensors")
            grad = np.ones_like(self.data)
        grad = _as_array(grad, self.data.dtype)
        if grad.shape != self.shape:
            grad = np.broadcast_to(grad, self.shape).astype(self.data.dtype)

        # Reverse topological order of the subgraph reachable from self.
        topo: List[Tensor] = []
        visited: set[int] = set()
        stack: List[Tuple[Tensor, bool]] = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                topo.append(node)
                continue
            if id(node) in visited:
                continue
            visited.add(id(node))
            stack.append((node, True))
            for p in node._parents:
                if p.requires_grad and id(p) not in visited:
                    stack.append((p, False))

        pending: dict[int, np.ndarray] = {id(self): grad}
        for node in reversed(topo):
            g = pending.pop(id(node), None)
            if g is None:
                continue
            if node._backward is None:
                # Leaf tensor: accumulate into .grad (a pinned flat-buffer view
                # when the parameter belongs to a flat-engine model).
                if node.grad is None:
                    node.grad = g.astype(node.data.dtype, copy=True)
                else:
                    node.grad += g
                node._grad_seen = True
                continue
            parent_grads = node._backward(g)
            for parent, pg in zip(node._parents, parent_grads):
                if pg is None or not parent.requires_grad:
                    continue
                key = id(parent)
                if key in pending:
                    pending[key] = pending[key] + pg
                else:
                    pending[key] = pg

    # ----------------------------------------------------------- constructors
    @staticmethod
    def zeros(shape, requires_grad: bool = False) -> "Tensor":
        return Tensor(np.zeros(shape), requires_grad=requires_grad)

    @staticmethod
    def ones(shape, requires_grad: bool = False) -> "Tensor":
        return Tensor(np.ones(shape), requires_grad=requires_grad)

    @staticmethod
    def randn(*shape, rng: Optional[np.random.Generator] = None, requires_grad: bool = False) -> "Tensor":
        rng = rng if rng is not None else np.random.default_rng()
        return Tensor(rng.standard_normal(shape), requires_grad=requires_grad)

    # ------------------------------------------------------------- arithmetic
    def __add__(self, other: ArrayLike) -> "Tensor":
        other = other if isinstance(other, Tensor) else Tensor(other, dtype=self.data.dtype)

        def backward(grad: np.ndarray):
            return (_unbroadcast(grad, self.shape), _unbroadcast(grad, other.shape))

        return Tensor._make(self.data + other.data, (self, other), backward, "add")

    __radd__ = __add__

    def __neg__(self) -> "Tensor":
        def backward(grad: np.ndarray):
            return (-grad,)

        return Tensor._make(-self.data, (self,), backward, "neg")

    def __sub__(self, other: ArrayLike) -> "Tensor":
        other = other if isinstance(other, Tensor) else Tensor(other, dtype=self.data.dtype)

        def backward(grad: np.ndarray):
            return (_unbroadcast(grad, self.shape), _unbroadcast(-grad, other.shape))

        return Tensor._make(self.data - other.data, (self, other), backward, "sub")

    def __rsub__(self, other: ArrayLike) -> "Tensor":
        return Tensor(other, dtype=self.data.dtype) - self

    def __mul__(self, other: ArrayLike) -> "Tensor":
        other = other if isinstance(other, Tensor) else Tensor(other, dtype=self.data.dtype)

        def backward(grad: np.ndarray):
            return (
                _unbroadcast(grad * other.data, self.shape),
                _unbroadcast(grad * self.data, other.shape),
            )

        return Tensor._make(self.data * other.data, (self, other), backward, "mul")

    __rmul__ = __mul__

    def __truediv__(self, other: ArrayLike) -> "Tensor":
        other = other if isinstance(other, Tensor) else Tensor(other, dtype=self.data.dtype)

        def backward(grad: np.ndarray):
            return (
                _unbroadcast(grad / other.data, self.shape),
                _unbroadcast(-grad * self.data / (other.data ** 2), other.shape),
            )

        return Tensor._make(self.data / other.data, (self, other), backward, "div")

    def __rtruediv__(self, other: ArrayLike) -> "Tensor":
        return Tensor(other, dtype=self.data.dtype) / self

    def __pow__(self, exponent: float) -> "Tensor":
        def backward(grad: np.ndarray):
            return (grad * exponent * self.data ** (exponent - 1),)

        return Tensor._make(self.data ** exponent, (self,), backward, "pow")

    def __matmul__(self, other: "Tensor") -> "Tensor":
        other = other if isinstance(other, Tensor) else Tensor(other, dtype=self.data.dtype)

        def backward(grad: np.ndarray):
            ga = grad @ np.swapaxes(other.data, -1, -2)
            gb = np.swapaxes(self.data, -1, -2) @ grad
            return (_unbroadcast(ga, self.shape), _unbroadcast(gb, other.shape))

        return Tensor._make(self.data @ other.data, (self, other), backward, "matmul")

    # -------------------------------------------------------------- reductions
    def sum(self, axis=None, keepdims: bool = False) -> "Tensor":
        def backward(grad: np.ndarray):
            g = np.asarray(grad)
            if axis is not None and not keepdims:
                axes = axis if isinstance(axis, tuple) else (axis,)
                shape = list(self.shape)
                for ax in sorted(a % self.ndim for a in axes):
                    shape[ax] = 1
                g = g.reshape(shape)
            return (np.broadcast_to(g, self.shape).copy(),)

        return Tensor._make(self.data.sum(axis=axis, keepdims=keepdims), (self,), backward, "sum")

    def mean(self, axis=None, keepdims: bool = False) -> "Tensor":
        if axis is None:
            count = self.size
        else:
            axes = axis if isinstance(axis, tuple) else (axis,)
            count = int(np.prod([self.shape[a % self.ndim] for a in axes]))
        return self.sum(axis=axis, keepdims=keepdims) * (1.0 / count)

    def max(self, axis=None, keepdims: bool = False) -> "Tensor":
        data = self.data.max(axis=axis, keepdims=keepdims)

        def backward(grad: np.ndarray):
            full = self.data.max(axis=axis, keepdims=True)
            mask = (self.data == full).astype(self.data.dtype)
            mask /= mask.sum(axis=axis, keepdims=True)
            g = np.asarray(grad)
            if axis is not None and not keepdims:
                g = np.expand_dims(g, axis)
            return (mask * g,)

        return Tensor._make(data, (self,), backward, "max")

    # ------------------------------------------------------------- elementwise
    def exp(self) -> "Tensor":
        data = np.exp(self.data)

        def backward(grad: np.ndarray):
            return (grad * data,)

        return Tensor._make(data, (self,), backward, "exp")

    def log(self) -> "Tensor":
        def backward(grad: np.ndarray):
            return (grad / self.data,)

        return Tensor._make(np.log(self.data), (self,), backward, "log")

    def relu(self) -> "Tensor":
        mask = self.data > 0

        def backward(grad: np.ndarray):
            return (grad * mask,)

        return Tensor._make(np.maximum(self.data, 0), (self,), backward, "relu")

    def tanh(self) -> "Tensor":
        data = np.tanh(self.data)

        def backward(grad: np.ndarray):
            return (grad * (1.0 - data ** 2),)

        return Tensor._make(data, (self,), backward, "tanh")

    def sigmoid(self) -> "Tensor":
        data = 1.0 / (1.0 + np.exp(-self.data))

        def backward(grad: np.ndarray):
            return (grad * data * (1.0 - data),)

        return Tensor._make(data, (self,), backward, "sigmoid")

    # ------------------------------------------------------------------ shape
    def reshape(self, *shape) -> "Tensor":
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        original = self.shape

        def backward(grad: np.ndarray):
            return (grad.reshape(original),)

        return Tensor._make(self.data.reshape(shape), (self,), backward, "reshape")

    def transpose(self, *axes) -> "Tensor":
        if not axes:
            axes = tuple(reversed(range(self.ndim)))
        elif len(axes) == 1 and isinstance(axes[0], (tuple, list)):
            axes = tuple(axes[0])
        inverse = tuple(np.argsort(axes))

        def backward(grad: np.ndarray):
            return (grad.transpose(inverse),)

        return Tensor._make(self.data.transpose(axes), (self,), backward, "transpose")

    def __getitem__(self, index) -> "Tensor":
        def backward(grad: np.ndarray):
            full = np.zeros_like(self.data)
            np.add.at(full, index, grad)
            return (full,)

        return Tensor._make(self.data[index], (self,), backward, "getitem")
