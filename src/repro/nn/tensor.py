"""Reverse-mode automatic differentiation on top of numpy arrays.

This module is the substrate that replaces ``torch.Tensor`` for the APPFL
reproduction.  It implements a small but complete dynamic computation graph:
each :class:`Tensor` produced by an operation records its parent tensors and
a backward closure that maps the upstream gradient to per-parent gradients.
Calling :meth:`Tensor.backward` performs a reverse topological traversal and
accumulates gradients into every tensor created with ``requires_grad=True``.

Only the operations required by the federated-learning workloads are
implemented (dense layers, convolution via im2col in :mod:`repro.nn.functional`,
pooling, ReLU, softmax cross-entropy, elementwise arithmetic and reductions),
but the graph machinery is generic and new ops can be added by following the
same pattern.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence, Tuple, Union

import numpy as np

__all__ = ["Tensor", "no_grad", "is_grad_enabled"]

ArrayLike = Union[np.ndarray, float, int, Sequence]

_GRAD_ENABLED = True


class no_grad:
    """Context manager that disables graph construction (like ``torch.no_grad``)."""

    def __enter__(self) -> "no_grad":
        global _GRAD_ENABLED
        self._prev = _GRAD_ENABLED
        _GRAD_ENABLED = False
        return self

    def __exit__(self, *exc) -> None:
        global _GRAD_ENABLED
        _GRAD_ENABLED = self._prev


def is_grad_enabled() -> bool:
    """Return whether new operations are being recorded on the autograd graph."""
    return _GRAD_ENABLED


def _as_array(data: ArrayLike, dtype=np.float64) -> np.ndarray:
    if isinstance(data, np.ndarray):
        if data.dtype != dtype:
            return data.astype(dtype)
        return data
    return np.asarray(data, dtype=dtype)


def _unbroadcast(grad: np.ndarray, shape: Tuple[int, ...]) -> np.ndarray:
    """Sum ``grad`` over the axes that were broadcast to produce it."""
    if grad.shape == shape:
        return grad
    extra = grad.ndim - len(shape)
    if extra > 0:
        grad = grad.sum(axis=tuple(range(extra)))
    axes = tuple(i for i, s in enumerate(shape) if s == 1 and grad.shape[i] != 1)
    if axes:
        grad = grad.sum(axis=axes, keepdims=True)
    return grad.reshape(shape)


# A backward function maps the upstream gradient to one gradient per parent
# (``None`` for parents that do not require grad).
BackwardFn = Callable[[np.ndarray], Tuple[Optional[np.ndarray], ...]]


class Tensor:
    """A numpy-backed array with reverse-mode autodiff support.

    Parameters
    ----------
    data:
        Array data; copied only when a dtype conversion is required.
    requires_grad:
        If True, gradients are accumulated in :attr:`grad` during
        :meth:`backward`.
    """

    __slots__ = ("data", "grad", "requires_grad", "_backward", "_parents", "_op")

    def __init__(self, data: ArrayLike, requires_grad: bool = False):
        self.data: np.ndarray = _as_array(data)
        self.requires_grad: bool = bool(requires_grad) and _GRAD_ENABLED
        self.grad: Optional[np.ndarray] = None
        self._backward: Optional[BackwardFn] = None
        self._parents: Tuple["Tensor", ...] = ()
        self._op: str = ""

    # ------------------------------------------------------------------ utils
    @property
    def shape(self) -> Tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    @property
    def dtype(self):
        return self.data.dtype

    def numpy(self) -> np.ndarray:
        """Return the underlying numpy array (no copy)."""
        return self.data

    def item(self) -> float:
        return float(self.data.item())

    def detach(self) -> "Tensor":
        """Return a tensor sharing the same data but detached from the graph."""
        return Tensor(self.data, requires_grad=False)

    def copy(self) -> "Tensor":
        return Tensor(self.data.copy(), requires_grad=False)

    def zero_grad(self) -> None:
        self.grad = None

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"Tensor(shape={self.shape}, requires_grad={self.requires_grad}, op={self._op!r})"

    def __len__(self) -> int:
        return len(self.data)

    # --------------------------------------------------------------- plumbing
    @staticmethod
    def _make(data: np.ndarray, parents: Tuple["Tensor", ...], backward: BackwardFn, op: str) -> "Tensor":
        requires = _GRAD_ENABLED and any(p.requires_grad for p in parents)
        out = Tensor(data, requires_grad=requires)
        if requires:
            out._backward = backward
            out._parents = parents
            out._op = op
        return out

    def backward(self, grad: Optional[np.ndarray] = None) -> None:
        """Backpropagate from this tensor through the recorded graph.

        Gradients are accumulated (summed) into the ``grad`` attribute of every
        reachable tensor with ``requires_grad=True``.
        """
        if not self.requires_grad:
            raise RuntimeError("backward() called on a tensor that does not require grad")
        if grad is None:
            if self.data.size != 1:
                raise RuntimeError("grad must be provided for non-scalar tensors")
            grad = np.ones_like(self.data)
        grad = _as_array(grad)
        if grad.shape != self.shape:
            grad = np.broadcast_to(grad, self.shape).astype(np.float64)

        # Reverse topological order of the subgraph reachable from self.
        topo: List[Tensor] = []
        visited: set[int] = set()
        stack: List[Tuple[Tensor, bool]] = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                topo.append(node)
                continue
            if id(node) in visited:
                continue
            visited.add(id(node))
            stack.append((node, True))
            for p in node._parents:
                if p.requires_grad and id(p) not in visited:
                    stack.append((p, False))

        pending: dict[int, np.ndarray] = {id(self): grad}
        for node in reversed(topo):
            g = pending.pop(id(node), None)
            if g is None:
                continue
            if node._backward is None:
                # Leaf tensor: accumulate into .grad.
                if node.grad is None:
                    node.grad = g.astype(np.float64, copy=True)
                else:
                    node.grad += g
                continue
            parent_grads = node._backward(g)
            for parent, pg in zip(node._parents, parent_grads):
                if pg is None or not parent.requires_grad:
                    continue
                key = id(parent)
                if key in pending:
                    pending[key] = pending[key] + pg
                else:
                    pending[key] = pg

    # ----------------------------------------------------------- constructors
    @staticmethod
    def zeros(shape, requires_grad: bool = False) -> "Tensor":
        return Tensor(np.zeros(shape), requires_grad=requires_grad)

    @staticmethod
    def ones(shape, requires_grad: bool = False) -> "Tensor":
        return Tensor(np.ones(shape), requires_grad=requires_grad)

    @staticmethod
    def randn(*shape, rng: Optional[np.random.Generator] = None, requires_grad: bool = False) -> "Tensor":
        rng = rng if rng is not None else np.random.default_rng()
        return Tensor(rng.standard_normal(shape), requires_grad=requires_grad)

    # ------------------------------------------------------------- arithmetic
    def __add__(self, other: ArrayLike) -> "Tensor":
        other = other if isinstance(other, Tensor) else Tensor(other)

        def backward(grad: np.ndarray):
            return (_unbroadcast(grad, self.shape), _unbroadcast(grad, other.shape))

        return Tensor._make(self.data + other.data, (self, other), backward, "add")

    __radd__ = __add__

    def __neg__(self) -> "Tensor":
        def backward(grad: np.ndarray):
            return (-grad,)

        return Tensor._make(-self.data, (self,), backward, "neg")

    def __sub__(self, other: ArrayLike) -> "Tensor":
        other = other if isinstance(other, Tensor) else Tensor(other)

        def backward(grad: np.ndarray):
            return (_unbroadcast(grad, self.shape), _unbroadcast(-grad, other.shape))

        return Tensor._make(self.data - other.data, (self, other), backward, "sub")

    def __rsub__(self, other: ArrayLike) -> "Tensor":
        return Tensor(other) - self

    def __mul__(self, other: ArrayLike) -> "Tensor":
        other = other if isinstance(other, Tensor) else Tensor(other)

        def backward(grad: np.ndarray):
            return (
                _unbroadcast(grad * other.data, self.shape),
                _unbroadcast(grad * self.data, other.shape),
            )

        return Tensor._make(self.data * other.data, (self, other), backward, "mul")

    __rmul__ = __mul__

    def __truediv__(self, other: ArrayLike) -> "Tensor":
        other = other if isinstance(other, Tensor) else Tensor(other)

        def backward(grad: np.ndarray):
            return (
                _unbroadcast(grad / other.data, self.shape),
                _unbroadcast(-grad * self.data / (other.data ** 2), other.shape),
            )

        return Tensor._make(self.data / other.data, (self, other), backward, "div")

    def __rtruediv__(self, other: ArrayLike) -> "Tensor":
        return Tensor(other) / self

    def __pow__(self, exponent: float) -> "Tensor":
        def backward(grad: np.ndarray):
            return (grad * exponent * self.data ** (exponent - 1),)

        return Tensor._make(self.data ** exponent, (self,), backward, "pow")

    def __matmul__(self, other: "Tensor") -> "Tensor":
        other = other if isinstance(other, Tensor) else Tensor(other)

        def backward(grad: np.ndarray):
            ga = grad @ np.swapaxes(other.data, -1, -2)
            gb = np.swapaxes(self.data, -1, -2) @ grad
            return (_unbroadcast(ga, self.shape), _unbroadcast(gb, other.shape))

        return Tensor._make(self.data @ other.data, (self, other), backward, "matmul")

    # -------------------------------------------------------------- reductions
    def sum(self, axis=None, keepdims: bool = False) -> "Tensor":
        def backward(grad: np.ndarray):
            g = np.asarray(grad)
            if axis is not None and not keepdims:
                axes = axis if isinstance(axis, tuple) else (axis,)
                shape = list(self.shape)
                for ax in sorted(a % self.ndim for a in axes):
                    shape[ax] = 1
                g = g.reshape(shape)
            return (np.broadcast_to(g, self.shape).copy(),)

        return Tensor._make(self.data.sum(axis=axis, keepdims=keepdims), (self,), backward, "sum")

    def mean(self, axis=None, keepdims: bool = False) -> "Tensor":
        if axis is None:
            count = self.size
        else:
            axes = axis if isinstance(axis, tuple) else (axis,)
            count = int(np.prod([self.shape[a % self.ndim] for a in axes]))
        return self.sum(axis=axis, keepdims=keepdims) * (1.0 / count)

    def max(self, axis=None, keepdims: bool = False) -> "Tensor":
        data = self.data.max(axis=axis, keepdims=keepdims)

        def backward(grad: np.ndarray):
            full = self.data.max(axis=axis, keepdims=True)
            mask = (self.data == full).astype(np.float64)
            mask /= mask.sum(axis=axis, keepdims=True)
            g = np.asarray(grad)
            if axis is not None and not keepdims:
                g = np.expand_dims(g, axis)
            return (mask * g,)

        return Tensor._make(data, (self,), backward, "max")

    # ------------------------------------------------------------- elementwise
    def exp(self) -> "Tensor":
        data = np.exp(self.data)

        def backward(grad: np.ndarray):
            return (grad * data,)

        return Tensor._make(data, (self,), backward, "exp")

    def log(self) -> "Tensor":
        def backward(grad: np.ndarray):
            return (grad / self.data,)

        return Tensor._make(np.log(self.data), (self,), backward, "log")

    def relu(self) -> "Tensor":
        mask = self.data > 0

        def backward(grad: np.ndarray):
            return (grad * mask,)

        return Tensor._make(self.data * mask, (self,), backward, "relu")

    def tanh(self) -> "Tensor":
        data = np.tanh(self.data)

        def backward(grad: np.ndarray):
            return (grad * (1.0 - data ** 2),)

        return Tensor._make(data, (self,), backward, "tanh")

    def sigmoid(self) -> "Tensor":
        data = 1.0 / (1.0 + np.exp(-self.data))

        def backward(grad: np.ndarray):
            return (grad * data * (1.0 - data),)

        return Tensor._make(data, (self,), backward, "sigmoid")

    # ------------------------------------------------------------------ shape
    def reshape(self, *shape) -> "Tensor":
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        original = self.shape

        def backward(grad: np.ndarray):
            return (grad.reshape(original),)

        return Tensor._make(self.data.reshape(shape), (self,), backward, "reshape")

    def transpose(self, *axes) -> "Tensor":
        if not axes:
            axes = tuple(reversed(range(self.ndim)))
        elif len(axes) == 1 and isinstance(axes[0], (tuple, list)):
            axes = tuple(axes[0])
        inverse = tuple(np.argsort(axes))

        def backward(grad: np.ndarray):
            return (grad.transpose(inverse),)

        return Tensor._make(self.data.transpose(axes), (self,), backward, "transpose")

    def __getitem__(self, index) -> "Tensor":
        def backward(grad: np.ndarray):
            full = np.zeros_like(self.data)
            np.add.at(full, index, grad)
            return (full,)

        return Tensor._make(self.data[index], (self,), backward, "getitem")
