"""Batched (vmap-style) kernels for stacked multi-client execution.

One federated client on the flat-parameter engine is a single contiguous
vector ``z ∈ R^dim`` (see :class:`repro.core.base.ModelVectorizer`), and a
tiny linear/MLP model's local step is a handful of small GEMMs whose numpy
dispatch overhead dwarfs the arithmetic.  These kernels run *B* such clients
at once: their parameter vectors stacked into a ``(B, dim)`` matrix, their
mini-batches into a ``(B, n, features)`` block, and every forward/backward
step expressed as batched 3-D ``np.matmul`` + broadcast ufunc calls — one
kernel dispatch per cohort instead of one autograd graph per client.

Equivalence contract
--------------------
The kernels mirror the exact operation sequence of the per-client autograd
trace (``nn.functional.linear`` → ``relu`` → fused ``cross_entropy``
backward, accumulated into zero-filled pinned gradient views):

* every lane ``b`` of a stacked 3-D ``np.matmul`` presents the *same* 2-D
  operand shapes and strides to the BLAS slice dispatch as the standalone
  per-client call, so each lane's GEMM is the bit-identical computation;
* broadcast elementwise ufuncs and the per-row (last-axis) softmax
  reductions have no cross-lane interaction;
* the bias-gradient reduction ``g.sum(axis=1)`` of a ``(B, n, out)`` stack
  performs, per lane, the same sequential row-accumulation as the
  per-client ``grad.sum(axis=0)`` of its ``(n, out)`` slice.

``tests/test_batched.py`` regression-tests the resulting histories bitwise
at float64 (documented tolerance at float32) across all three algorithms.

A *layer spec* is a tuple of ops compiled from a supported model (see
:func:`repro.core.batched.compile_model_spec`):

* ``("linear", weight_offset, out_features, in_features, bias_offset)`` —
  offsets into the flat parameter vector;
* ``("relu",)``.

Intermediates are recycled through the thread-local scratch pool shared
with the im2col/GEMM kernels (:data:`repro.nn.functional._pool`), so a
long cohort wave allocates its activation/gradient blocks once.
"""

from __future__ import annotations

from typing import Sequence, Tuple

import numpy as np

from .functional import _pool

__all__ = ["batched_step_gradient", "spec_dim_check"]


def spec_dim_check(spec: Sequence[Tuple], dim: int) -> bool:
    """True when every op's parameter slice lies inside a ``dim`` vector."""
    for op in spec:
        if op[0] == "linear":
            _, woff, out_f, in_f, boff = op
            if woff + out_f * in_f > dim or boff + out_f > dim:
                return False
    return True


def _matmul(a: np.ndarray, b: np.ndarray, key, shape, dtype) -> np.ndarray:
    out = _pool.acquire(key, shape, dtype)
    if out.shape != shape:  # pool hit from a different geometry tag — paranoia
        out = np.empty(shape, dtype=dtype)
    np.matmul(a, b, out=out)
    return out


def batched_step_gradient(
    spec: Sequence[Tuple],
    Z: np.ndarray,
    G: np.ndarray,
    xb: np.ndarray,
    yb: np.ndarray,
) -> None:
    """Mean cross-entropy gradient of B stacked clients in one pass.

    Parameters
    ----------
    spec:
        Compiled layer spec (see module docstring).
    Z:
        ``(B, dim)`` stacked flat parameter vectors (read-only here).
    G:
        ``(B, dim)`` stacked gradient output — zero-filled then accumulated,
        mirroring the per-client ``zero_grad()`` + pinned ``grad +=`` path.
    xb:
        ``(B, n, ...)`` stacked input block (one mini-batch per lane).
    yb:
        ``(B, n)`` stacked integer class targets.
    """
    B, dim = Z.shape
    n = xb.shape[1]
    dtype = Z.dtype
    a = xb
    if a.ndim > 3:
        # Mirrors MLP.forward's flatten of trailing dims (a reshape view).
        a = a.reshape(B, n, -1)

    # Forward: cache each linear layer's input activation and each relu mask,
    # exactly what the autograd graph would have retained.
    acts = []
    masks = []
    released = []
    for op in spec:
        if op[0] == "linear":
            _, woff, out_f, in_f, boff = op
            Wv = Z[:, woff : woff + out_f * in_f].reshape(B, out_f, in_f)
            bv = Z[:, boff : boff + out_f].reshape(B, 1, out_f)
            acts.append(a)
            key = ("bmm_fwd", B, n, out_f, dtype.str)
            h = _matmul(a, Wv.transpose(0, 2, 1), key, (B, n, out_f), dtype)
            # `out + bias` allocates a fresh array per client; reuse a pooled
            # block for the batched equivalent (same elementwise values).
            key2 = ("badd", B, n, out_f, dtype.str)
            h2 = _pool.acquire(key2, (B, n, out_f), dtype)
            np.add(h, bv, out=h2)
            _pool.release(key, h)
            released.append((key2, h2))
            a = h2
        else:  # relu
            mkey = ("bmask", B) + a.shape[1:] + (a.dtype.str,)
            mask = _pool.acquire(mkey, a.shape, np.bool_)
            np.greater(a, 0, out=mask)
            masks.append((mkey, mask))
            rkey = ("brelu", B) + a.shape[1:] + (a.dtype.str,)
            r = _pool.acquire(rkey, a.shape, dtype)
            np.maximum(a, 0, out=r)
            released.append((rkey, r))
            a = r

    # Fused softmax cross-entropy backward (mean reduction), per lane the
    # same `probs.copy(); probs[i, y] -= 1; * (1/n)` as nn.functional.
    logits = a
    z_shift = logits - logits.max(axis=2, keepdims=True)
    np.exp(z_shift, out=z_shift)
    probs = z_shift
    probs /= probs.sum(axis=2, keepdims=True)
    probs[np.arange(B)[:, None], np.arange(n)[None, :], yb] -= 1.0
    g = probs * (1.0 * (1.0 / n))

    # Backward in reverse layer order, accumulating into the zero-filled
    # gradient stack exactly as the pinned per-parameter views would.
    G.fill(0.0)
    li = len(acts)
    mi = len(masks)
    for op in reversed(spec):
        if op[0] == "relu":
            mi -= 1
            g = g * masks[mi][1]
            continue
        li -= 1
        _, woff, out_f, in_f, boff = op
        a_in = acts[li]
        Gb = G[:, boff : boff + out_f]
        Gb += g.sum(axis=1)
        Gw = G[:, woff : woff + out_f * in_f].reshape(B, out_f, in_f)
        key = ("bmm_gw", B, in_f, out_f, dtype.str)
        GwT = _matmul(a_in.transpose(0, 2, 1), g, key, (B, in_f, out_f), dtype)
        Gw += GwT.transpose(0, 2, 1)
        _pool.release(key, GwT)
        if li > 0:
            # Upstream gradient for the previous layer's output (the input
            # never requires grad, so layer 0 skips this GEMM).
            Wv = Z[:, woff : woff + out_f * in_f].reshape(B, out_f, in_f)
            g = np.matmul(g, Wv)

    for key, buf in released:
        _pool.release(key, buf)
    for mkey, mask in masks:
        _pool.release(mkey, mask)
