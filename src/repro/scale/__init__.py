"""Client virtualization and deterministic checkpoint/resume (see ISSUE 4).

Population size becomes a *virtual* quantity: a
:class:`~repro.scale.store.ClientStateStore` keeps each client's persistent
state as a compact serialized blob and materialises at most ``live_cap`` full
:class:`~repro.core.base.BaseClient` instances at a time, so a 10,000-client
simulation runs in client-state memory proportional to the cap, not the
population.  :class:`~repro.scale.checkpoint.RunCheckpoint` snapshots a
running federation — sync or async — for bit-identical resume.
"""

from .checkpoint import (
    RunCheckpoint,
    edge_slice_state,
    load_checkpoint,
    restore_edge_slice,
    save_checkpoint,
)
from .store import ClientStateStore, StoreStats
from .virtual import build_virtual_async_federation, build_virtual_federation, make_client_factory

__all__ = [
    "ClientStateStore",
    "StoreStats",
    "RunCheckpoint",
    "save_checkpoint",
    "load_checkpoint",
    "edge_slice_state",
    "restore_edge_slice",
    "make_client_factory",
    "build_virtual_federation",
    "build_virtual_async_federation",
]
