"""Memory-bounded client virtualization: the :class:`ClientStateStore`.

Cross-device federations are written against populations of thousands to
millions of clients, but a materialised :class:`~repro.core.base.BaseClient`
is heavy: a full model replica re-homed into flat parameter/gradient buffers
(PR 1), a scratch vector, a materialised :class:`~repro.data.DataLoader`, and
(for CNNs) per-thread conv buffer pools.  Keeping one per client makes RSS
grow with the *population*, which caps simulations at a few hundred clients.

The store makes population size a virtual quantity:

* each client's **persistent** cross-round state (the ADMM dual/primal flat
  vectors, round counter, RNG bit-generator state — see
  :meth:`~repro.core.base.BaseClient.client_state`) lives as one compact
  serialized blob;
* at most ``live_cap`` full ``BaseClient`` instances exist at any moment, in
  an LRU of *live* clients;
* :meth:`checkout` lazily materialises a client when the runner/sampler picks
  it — building a fresh instance via the user factory and restoring its blob
  (bit-exactly) — and pins it against eviction while the runner holds it;
* :meth:`release` unpins; a later checkout that needs the slot spills the
  least-recently-used unpinned client back to its blob.

Blobs reuse the wire machinery of PR 3: the state's arrays are encoded into
one :class:`~repro.comm.codecs.UpdatePacket` through a configurable codec
stack (``state_codec="identity"`` by default — bit-exact, which checkpoint /
resume requires; ``"fp16"``/``"int8"`` trade exactness for a 4-8x smaller
store) and the remaining scalars through
:func:`~repro.comm.serialization.encode_state_blob`.  ``compress="zlib"``
additionally DEFLATE-compresses the whole blob (zstd is not available in the
toolchain; zlib is the stdlib stand-in).

Accounting (:attr:`stats`) is first-class because tests assert the memory
bound through it: ``peak_live`` never exceeds ``live_cap``, and
``store_nbytes``/``blob_nbytes`` expose how much the spilled population
costs — the ``clients/GB`` gauge of ``benchmarks/bench_hotpath.py``.
"""

from __future__ import annotations

import time
import zlib
from collections import OrderedDict
from dataclasses import dataclass
from typing import Callable, Dict, Mapping, Optional

import numpy as np

from ..comm.codecs import UpdatePacket, resolve_codec
from ..comm.serialization import decode_state_blob, encode_state_blob
from ..core.base import BaseClient
from ..obs import current_tracer

__all__ = ["StoreStats", "ClientStateStore"]

_RAW = b"R"
_ZLIB = b"Z"


@dataclass
class StoreStats:
    """Counters the memory-bound assertions and benches read."""

    #: factory constructions (fresh or blob-restored)
    materializations: int = 0
    #: materialisations that restored a previously spilled blob
    restores: int = 0
    #: live clients spilled back to their blob
    evictions: int = 0
    #: checkouts served straight from the live LRU (no construction)
    hits: int = 0
    #: maximum number of simultaneously live clients ever observed
    peak_live: int = 0
    #: cumulative microseconds spent materialising / evicting (gauges for
    #: benchmarks/bench_hotpath.py's "scale" section)
    materialize_us: float = 0.0
    evict_us: float = 0.0
    #: high-water mark of ``store_nbytes`` (spilled-blob bytes) — the memory
    #: watermark :class:`repro.obs.health.MemoryWatchdog` checks against
    peak_store_bytes: int = 0


class ClientStateStore:
    """LRU of live clients over a population of serialized state blobs.

    Parameters
    ----------
    factory:
        ``factory(cid) -> BaseClient`` building client ``cid`` in its *initial*
        (round-0) state.  It must be deterministic per call — the builders in
        :mod:`repro.scale.virtual` construct the model from the same seeded
        ``model_fn`` and load the shared initial state dict, exactly as
        :func:`repro.core.runner.build_endpoints` does eagerly.
    num_clients:
        Population size (client ids are ``0..num_clients-1``).
    live_cap:
        Maximum number of live ``BaseClient`` instances.  Runner memory for
        client state is proportional to this, not to ``num_clients``.
    state_codec:
        Codec stack (PR 3 spec string) applied to the state's arrays inside
        the blob.  The default ``"identity"`` is bit-exact — required for
        deterministic checkpoint/resume; lossy stacks shrink the store at the
        cost of exact resume.
    compress:
        ``None`` (default) or ``"zlib"`` to DEFLATE the whole blob.
    """

    def __init__(
        self,
        factory: Callable[[int], BaseClient],
        num_clients: int,
        live_cap: int,
        state_codec: str = "identity",
        compress: Optional[str] = None,
        config=None,
    ):
        if num_clients <= 0:
            raise ValueError("num_clients must be positive")
        if live_cap <= 0:
            raise ValueError("live_cap must be positive")
        if compress not in (None, "zlib"):
            raise ValueError("compress must be None or 'zlib'")
        self.factory = factory
        self.num_clients = int(num_clients)
        self.live_cap = int(live_cap)
        self.pipeline = resolve_codec(state_codec)
        self.compress = compress
        #: the run config the factory builds clients with (used by the runners
        #: for the shared-codec-stack check); optional.
        self.config = config
        self._live: "OrderedDict[int, BaseClient]" = OrderedDict()
        self._pins: Dict[int, int] = {}
        self._blobs: Dict[int, bytes] = {}
        self.stats = StoreStats()

    # ------------------------------------------------------------ blob codec
    def _encode_state(self, state: Mapping[str, object]) -> bytes:
        arrays = {k: v for k, v in state.items() if isinstance(v, np.ndarray)}
        rest = {k: v for k, v in state.items() if not isinstance(v, np.ndarray)}
        packet = self.pipeline.encode_state(arrays)
        blob = encode_state_blob({"arrays": packet, "rest": rest})
        if self.compress == "zlib":
            return _ZLIB + zlib.compress(blob)
        return _RAW + blob

    def _decode_state(self, blob: bytes) -> Dict[str, object]:
        body = zlib.decompress(blob[1:]) if blob[:1] == _ZLIB else blob[1:]
        tree = decode_state_blob(body)
        packet: UpdatePacket = tree["arrays"]
        state = dict(resolve_codec(packet.codec).decode_state(packet))
        state.update(tree["rest"])
        return state

    # --------------------------------------------------------------- pinning
    def _check_cid(self, cid: int) -> int:
        cid = int(cid)
        if not 0 <= cid < self.num_clients:
            raise KeyError(f"client id {cid} outside population [0, {self.num_clients})")
        return cid

    def _spill(self, cid: int) -> None:
        """Serialise one (unpinned) live client back to its blob."""
        tick = time.perf_counter()
        client = self._live.pop(cid)
        self._blobs[cid] = self._encode_state(client.client_state())
        now = time.perf_counter()
        self.stats.evictions += 1
        self.stats.evict_us += (now - tick) * 1e6
        self.stats.peak_store_bytes = max(
            self.stats.peak_store_bytes, self.store_nbytes
        )
        tracer = current_tracer()
        if tracer is not None:
            tracer.emit_span(
                "evict", "store", tick, now, lane="store",
                client=cid, nbytes=len(self._blobs[cid]),
            )

    def _evict_one(self) -> None:
        """Spill the least-recently-used *unpinned* live client."""
        for cid in self._live:
            if self._pins.get(cid, 0) == 0:
                self._spill(cid)
                return
        raise RuntimeError(
            f"ClientStateStore live_cap={self.live_cap} is exhausted by pinned "
            f"clients; raise live_cap above the runner's concurrent checkouts"
        )

    def checkout(self, cid: int) -> BaseClient:
        """Return the live client ``cid``, materialising it if needed.

        Pins the client (nested checkouts stack) until the matching
        :meth:`release`; a pinned client is never evicted, so the instance —
        including its flat model buffers — stays valid across the runner's
        update/encode/reconcile sequence.
        """
        cid = self._check_cid(cid)
        client = self._live.get(cid)
        if client is not None:
            self._live.move_to_end(cid)
            self._pins[cid] = self._pins.get(cid, 0) + 1
            self.stats.hits += 1
            return client
        while len(self._live) >= self.live_cap:
            self._evict_one()
        tick = time.perf_counter()
        client = self.factory(cid)
        if client.client_id != cid:
            raise ValueError(f"factory built client {client.client_id} for id {cid}")
        blob = self._blobs.pop(cid, None)
        if blob is not None:
            client.load_client_state(self._decode_state(blob))
            self.stats.restores += 1
        self.stats.materializations += 1
        now = time.perf_counter()
        self.stats.materialize_us += (now - tick) * 1e6
        tracer = current_tracer()
        if tracer is not None:
            tracer.emit_span(
                "materialize", "store", tick, now, lane="store",
                client=cid, restored=blob is not None,
            )
        self._live[cid] = client
        self._pins[cid] = self._pins.get(cid, 0) + 1
        self.stats.peak_live = max(self.stats.peak_live, len(self._live))
        return client

    def release(self, cid: int) -> None:
        """Unpin one checkout of ``cid`` (the client stays live until a later
        checkout needs its LRU slot)."""
        cid = self._check_cid(cid)
        pins = self._pins.get(cid, 0)
        if pins <= 0 or cid not in self._live:
            raise RuntimeError(f"release of client {cid} without a matching checkout")
        if pins == 1:
            del self._pins[cid]
        else:
            self._pins[cid] = pins - 1

    # ------------------------------------------------------------ inspection
    @property
    def live_count(self) -> int:
        """Number of currently materialised clients."""
        return len(self._live)

    @property
    def pinned_count(self) -> int:
        return sum(1 for v in self._pins.values() if v > 0)

    def is_live(self, cid: int) -> bool:
        return int(cid) in self._live

    @property
    def store_nbytes(self) -> int:
        """Total bytes of all spilled state blobs currently held."""
        return sum(len(b) for b in self._blobs.values())

    def blob_nbytes(self, cid: int) -> Optional[int]:
        """Size of one client's spilled blob (``None`` while live / untouched)."""
        blob = self._blobs.get(self._check_cid(cid))
        return None if blob is None else len(blob)

    # --------------------------------------------------------- serialization
    def flush(self) -> None:
        """Spill every unpinned live client to its blob (frees the LRU)."""
        for cid in [c for c in self._live if self._pins.get(c, 0) == 0]:
            self._spill(cid)

    def snapshot(self) -> Dict[str, object]:
        """Serializable snapshot of the whole population's state.

        Live clients are serialized in place (they stay live and pinnable);
        clients never materialised have no entry — they are implicitly in
        their initial state, which the factory reproduces.
        """
        blobs = dict(self._blobs)
        for cid, client in self._live.items():
            blobs[cid] = self._encode_state(client.client_state())
        return {"blobs": blobs}

    def restore(self, snapshot: Mapping[str, object]) -> None:
        """Replace the population state with ``snapshot`` (from any store with
        a compatible factory).  Requires no outstanding checkouts."""
        if self._pins:
            raise RuntimeError("cannot restore a ClientStateStore with pinned clients")
        self._live.clear()
        self._blobs = {int(c): bytes(b) for c, b in snapshot["blobs"].items()}  # type: ignore[union-attr]
