"""Builders for store-backed (virtual-population) federations.

These mirror :func:`repro.core.runner.build_federation` and
:func:`repro.asyncfl.runner.build_async_federation` exactly — same registry
lookup, same initial-state synchronisation (every client starts from the
server model's parameters, the shared ``z^1`` of Algorithm 1), same
``seed + 1000 + client_id`` per-client RNG streams — but instead of
materialising one :class:`~repro.core.base.BaseClient` per population member
they hand the runner a :class:`~repro.scale.store.ClientStateStore` that
materialises at most ``live_cap`` clients at a time.

With the default bit-exact store settings (``state_codec="identity"``) and
the default :class:`~repro.comm.serial.SerialCommunicator`, a virtual run's
:class:`~repro.core.runner.TrainingHistory` is bit-for-bit the eager run's
(regression-tested in ``tests/test_scale.py``); only the peak memory differs.

Batched cohort execution: with ``FLConfig.client_batch > 1``, each
store-backed wave of checked-out clients is executed as stacked cohorts by
the runner's shared gate (:meth:`~repro.core.runner.FederatedRunner.
_update_clients` → :mod:`repro.core.batched`) — so the cohort size is
effectively ``min(client_batch, live_cap)``.  Size ``live_cap`` accordingly
when benchmarking large cohorts (the ``scale/`` throughput benchmarks use
``live_cap >= 1024`` so ``B = 256`` cohorts form whole).  Batched waves stay
bit-identical to per-client waves at float64.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence

import numpy as np

from .. import nn
from ..comm import Communicator
from ..core.base import BaseClient, BaseServer
from ..core.config import FLConfig
from ..core.metrics import Evaluator
from ..core.registry import get_algorithm
from ..core.runner import FederatedRunner
from ..data import Dataset
from .store import ClientStateStore

__all__ = [
    "ClientFactory",
    "make_client_factory",
    "build_virtual_federation",
    "build_virtual_async_federation",
]


class ClientFactory:
    """``factory(cid)`` building client ``cid`` exactly as ``build_endpoints``
    would have: a fresh ``model_fn()`` synchronised to ``initial_state`` and
    the canonical ``seed + 1000 + cid`` RNG stream.  ``model_fn`` must be
    deterministic per call (the repo's builders seed internally), since the
    store invokes it lazily in checkout order rather than id order.

    A module-level class rather than a closure so instances pickle — the
    process execution backend ships the factory to its worker processes
    (``model_fn`` must pickle too; see
    :class:`repro.core.models.SeededModelFn`).
    """

    def __init__(
        self,
        config: FLConfig,
        model_fn: Callable[[], nn.Module],
        client_datasets: Sequence[Dataset],
        initial_state,
        seed: Optional[int] = None,
    ):
        self.config = config
        self.model_fn = model_fn
        self.client_datasets = list(client_datasets)
        self.initial_state = initial_state
        self.seed = config.seed if seed is None else seed

    def __call__(self, cid: int) -> BaseClient:
        _, client_cls = get_algorithm(self.config.algorithm)
        model = self.model_fn()
        model.load_state_dict(self.initial_state)
        return client_cls(
            cid,
            model,
            self.client_datasets[cid],
            self.config,
            rng=np.random.default_rng(self.seed + 1000 + cid),
        )


def make_client_factory(
    config: FLConfig,
    model_fn: Callable[[], nn.Module],
    client_datasets: Sequence[Dataset],
    initial_state,
    seed: Optional[int] = None,
) -> Callable[[int], BaseClient]:
    """Build a :class:`ClientFactory` (kept as a function for API stability)."""
    return ClientFactory(config, model_fn, client_datasets, initial_state, seed=seed)


def _build_server_and_store(
    config: FLConfig,
    model_fn: Callable[[], nn.Module],
    client_datasets: Sequence[Dataset],
    live_cap: int,
    seed: Optional[int],
    state_codec: str,
    compress: Optional[str],
):
    server_cls, _ = get_algorithm(config.algorithm)
    server_model = model_fn()
    initial_state = server_model.state_dict()
    sample_counts: List[int] = [len(d) for d in client_datasets]
    server: BaseServer = server_cls(
        server_model, config, num_clients=len(client_datasets), client_sample_counts=sample_counts
    )
    factory = make_client_factory(config, model_fn, client_datasets, initial_state, seed=seed)
    store = ClientStateStore(
        factory,
        num_clients=len(client_datasets),
        live_cap=live_cap,
        state_codec=state_codec,
        compress=compress,
        config=config,
    )
    return server, store


def build_virtual_federation(
    config: FLConfig,
    model_fn: Callable[[], nn.Module],
    client_datasets: Sequence[Dataset],
    live_cap: int,
    test_dataset: Optional[Dataset] = None,
    communicator: Optional[Communicator] = None,
    seed: Optional[int] = None,
    state_codec: str = "identity",
    compress: Optional[str] = None,
) -> FederatedRunner:
    """A synchronous :class:`FederatedRunner` over a virtual population.

    ``live_cap`` bounds simultaneously materialised clients; each round runs
    the population through the store in waves of that size.
    """
    server, store = _build_server_and_store(
        config, model_fn, client_datasets, live_cap, seed, state_codec, compress
    )
    evaluator = Evaluator(test_dataset) if test_dataset is not None else None
    return FederatedRunner(
        server, communicator=communicator, evaluator=evaluator, client_store=store
    )


def build_virtual_async_federation(
    config: FLConfig,
    model_fn: Callable[[], nn.Module],
    client_datasets: Sequence[Dataset],
    live_cap: int,
    test_dataset: Optional[Dataset] = None,
    seed: Optional[int] = None,
    state_codec: str = "identity",
    compress: Optional[str] = None,
    **runner_kwargs,
) -> "AsyncRunner":
    """An event-driven :class:`~repro.asyncfl.runner.AsyncRunner` over a
    virtual population: clients materialise on dispatch (when the sampler
    picks them), stay pinned while in flight, and spill back to the store
    after their upload is encoded.  ``runner_kwargs`` pass through to the
    :class:`AsyncRunner` constructor (strategy, sampler, devices, links,
    concurrency, cost model...); ``concurrency`` defaults to ``live_cap``.
    """
    from ..asyncfl.runner import AsyncRunner
    from ..asyncfl.sampling import UniformSampler

    server, store = _build_server_and_store(
        config, model_fn, client_datasets, live_cap, seed, state_codec, compress
    )
    if runner_kwargs.get("sampler") is None and config.client_fraction < 1.0:
        runner_kwargs["sampler"] = UniformSampler(
            len(client_datasets),
            fraction=config.client_fraction,
            seed=config.seed if seed is None else seed,
        )
    evaluator = Evaluator(test_dataset) if test_dataset is not None else None
    return AsyncRunner(server, evaluator=evaluator, client_store=store, **runner_kwargs)
