"""Deterministic checkpoint/resume for federated runs.

:class:`RunCheckpoint` snapshots *everything* a run's future depends on —
server state (global vector, ADMM primal/dual replicas, ρ), every client's
persistent state (via the :class:`~repro.scale.store.ClientStateStore`
snapshot for virtual populations, or per-client
:meth:`~repro.core.base.BaseClient.client_state` trees for eager ones), the
privacy-accountant ledger, the recorded history, and — for event-driven runs
— the sampler RNG, the strategy's buffered uploads, the
:class:`~repro.asyncfl.events.EventLoop` clock/sequence/pending events, and
the runner's in-flight bookkeeping.  A run killed at round *k* (synchronous)
or after an arbitrary number of timeline events (asynchronous) and resumed
from its checkpoint produces a history **bitwise identical** to the
uninterrupted run (``tests/test_checkpoint.py``).

Hierarchical runs (:class:`repro.hier.runner.HierRunner`) checkpoint between
rounds as kind ``"hier"``: the root's state plus, per edge, the shard
server's state (dual replicas, ρ) and its client population (eager states or
the per-edge store snapshot) — resumed runs are bitwise identical too
(``tests/test_hier.py``).

Two invariants make the asynchronous case exact:

* before capture the runner is :meth:`~repro.asyncfl.runner.AsyncRunner.
  quiesce`\\ d — every pending ``compute_done`` event's local update is forced
  to completion and its result attached to the event, which is bit-identical
  to running it at pop time because client updates depend only on the
  dispatched payload snapshot and the client's own state (the eager
  thread-pool argument of PR 2);
* pending events keep their original ``(time, seq)`` pairs, so tie-breaking
  after resume is exactly the uninterrupted order.

Wall-clock ``phase_seconds`` are restored for reporting continuity but are
real-time measurements and naturally differ between runs; every *simulated*
quantity (virtual clock, comm bytes/seconds, round metrics) is exact.

The on-disk format is one :func:`repro.comm.serialization.encode_state_blob`
tree — the same machinery the store's eviction blobs use.
"""

from __future__ import annotations

import time
from dataclasses import fields
from pathlib import Path
from typing import Dict, Optional, Union

import numpy as np

from ..comm.serialization import decode_state_blob, encode_state_blob
from ..core.runner import FederatedRunner, RoundResult, TrainingHistory
from ..obs import current_tracer

__all__ = [
    "RunCheckpoint",
    "save_checkpoint",
    "load_checkpoint",
    "edge_slice_state",
    "restore_edge_slice",
]

_FORMAT = 1


def _history_state(history: TrainingHistory) -> list:
    names = [f.name for f in fields(RoundResult)]
    return [{name: getattr(r, name) for name in names} for r in history.rounds]


def _load_history(state) -> TrainingHistory:
    history = TrainingHistory()
    for row in state:
        row = dict(row)
        for field in ("participating_clients", "failed_clients", "recovered_edges"):
            if row.get(field) is not None:
                row[field] = tuple(int(c) for c in row[field])
        history.add(RoundResult(**row))
    return history


def _clients_state(runner) -> Dict[str, object]:
    """Client-population state of a runner *or* a hier EdgeAggregator (both
    expose ``clients`` / ``_store``)."""
    # Under execution_backend="process" the worker processes hold the
    # authoritative client state between rounds — pull it home first so the
    # snapshot covers what actually ran.
    pool = getattr(runner, "_pool", None)
    if pool is not None:
        pool.sync_parent()
    store = getattr(runner, "_store", None)
    if store is not None:
        return {"mode": "store", "snapshot": store.snapshot()}
    return {
        "mode": "eager",
        "states": {c.client_id: c.client_state() for c in runner.clients},
    }


def _restore_clients(runner, state) -> None:
    store = getattr(runner, "_store", None)
    if state["mode"] == "store":
        if store is None:
            raise ValueError("checkpoint holds a client store but the runner is eager")
        store.restore(state["snapshot"])
    else:
        if store is not None:
            raise ValueError("checkpoint holds eager clients but the runner is store-backed")
        by_id = {c.client_id: c for c in runner.clients}
        for cid, client_state in state["states"].items():
            by_id[int(cid)].load_client_state(client_state)
    # Mirror the restored state back into any live process workers, so the
    # next pooled round resumes from the checkpoint bitwise.
    pool = getattr(runner, "_pool", None)
    if pool is not None:
        pool.push_from_parent()


def edge_slice_state(edge) -> Dict[str, object]:
    """One edge's checkpoint slice: its shard server + client population.

    This is the unit :meth:`RunCheckpoint.restore_edge` (hier crash
    recovery) restores independently of the rest of the federation.
    """
    return {
        "server": edge.server.server_state(),
        "clients": _clients_state(edge),
    }


def restore_edge_slice(edge, state) -> None:
    """Load one :func:`edge_slice_state` tree back into ``edge``."""
    edge.server.load_server_state(state["server"])
    # The edge's working global is whatever its server last held
    # (the root broadcast it trained its previous round on).
    edge._global = edge.server.global_params
    edge.begin_collect()
    _restore_clients(edge, state["clients"])


class RunCheckpoint:
    """A captured run state; see the module docstring for what it contains.

    The canonical form is the serialized blob: :meth:`capture` encodes the
    runner's state *immediately*, so a checkpoint is frozen at its capture
    point even while the captured runner keeps running and mutating the very
    dicts/arrays the snapshot walked.  :attr:`payload` is a decoded (fresh,
    owned) view for inspection and restore.
    """

    def __init__(self, raw: bytes):
        self._raw = bytes(raw)
        self._payload: Optional[Dict[str, object]] = None

    @property
    def payload(self) -> Dict[str, object]:
        """The decoded checkpoint tree (arrays owned by this checkpoint)."""
        if self._payload is None:
            self._payload = decode_state_blob(self._raw)
        return self._payload

    # ----------------------------------------------------------------- capture
    @classmethod
    def capture(cls, runner) -> "RunCheckpoint":
        """Snapshot a :class:`FederatedRunner` or ``AsyncRunner`` in place.

        Safe points: between rounds for the synchronous runner; anywhere the
        event loop is not mid-``pop`` for the asynchronous one (e.g. after a
        ``run(..., max_events=N)`` return).  Capturing quiesces pending
        asynchronous local updates (see module docstring) but leaves the
        runner fully consistent — it may keep running afterwards (the
        snapshot is serialized at capture time, so later mutation of the
        runner cannot leak into it).
        """
        from ..asyncfl.runner import AsyncRunner  # local import: optional dep direction
        from ..core.runner import FederatedRunner as _SyncRunner
        from ..hier.runner import HierRunner

        tick = time.perf_counter()
        config = runner.server.config
        if isinstance(runner, AsyncRunner):
            kind = "async"
        elif isinstance(runner, HierRunner):
            kind = "hier"
        elif isinstance(runner, _SyncRunner):
            kind = "sync"
        else:
            raise TypeError(
                f"checkpointing supports FederatedRunner, AsyncRunner, and the "
                f"synchronous HierRunner; got {type(runner).__name__}"
            )
        payload: Dict[str, object] = {
            "format": _FORMAT,
            "kind": kind,
            "meta": {
                "algorithm": config.algorithm,
                "codec": runner.exchange.spec,
                "dtype": config.dtype,
                "num_clients": runner.server.num_clients,
            },
            "server": runner.server.server_state(),
            "history": _history_state(runner.history),
            "accountant": runner.accountant.accountant_state(),
            "phase_seconds": dict(runner.phase_seconds),
        }
        if isinstance(runner, HierRunner):
            # Safe points are between rounds (or at a hier round *start*,
            # before any shard loop ran): every edge's summary fold is then
            # empty, so shard-server state + client populations are the whole
            # story.  Per-edge stores snapshot like any other store.  A
            # mid-wave capture would silently lose the half-folded uploads
            # and the pinned clients' in-flight progress — reject it.
            for edge in runner.edges:
                store = getattr(edge, "_store", None)
                if edge._participants or (store is not None and store.pinned_count > 0):
                    raise RuntimeError(
                        f"cannot checkpoint a HierRunner mid-wave: edge "
                        f"{edge.edge_id} has "
                        f"{len(edge._participants)} half-folded uploads and "
                        f"{store.pinned_count if store is not None else 0} pinned "
                        f"clients; let run_round() finish (or capture before the "
                        f"shard loops start) so every edge's fold is empty"
                    )
            payload["meta"]["num_edges"] = len(runner.edges)  # type: ignore[index]
            payload["edges"] = {edge.edge_id: edge_slice_state(edge) for edge in runner.edges}
            payload["clients"] = {"mode": "hier"}
            return cls(cls._finish_capture(payload, kind, tick))
        if isinstance(runner, AsyncRunner):
            runner.quiesce()
            payload["async"] = {
                "async_server": runner.async_server.server_state(),
                "strategy": runner.strategy.strategy_state(),
                "sampler": runner.sampler.sampler_state(),
                "loop": {
                    "now": runner._clock.now,
                    "seq": runner._clock.sequence,
                    "events": [
                        (
                            ev.time,
                            ev.seq,
                            ev.kind,
                            {k: v for k, v in ev.data.items() if k != "future"},
                        )
                        for ev in runner._clock.snapshot_events()
                    ],
                },
                "in_flight": sorted(runner._in_flight),
                "pending_slots": list(runner._pending_slots),
                "need_cohort": runner._need_cohort,
                "primed": runner._primed,
                "events_processed": runner.events_processed,
                "comm_bytes": runner._comm_bytes,
                "comm_bytes_last": runner._comm_bytes_last,
                "sim_comm_seconds": runner._sim_comm_seconds,
                "sim_comm_seconds_last": runner._sim_comm_seconds_last,
                "round_timings": dict(runner._round_timings),
            }
        # Clients last: the async quiesce above may advance client state.
        payload["clients"] = _clients_state(runner)
        return cls(cls._finish_capture(payload, kind, tick))

    @staticmethod
    def _finish_capture(payload: Dict[str, object], kind: str, tick: float) -> bytes:
        """Serialize the capture payload and, with a tracer armed, emit the
        ``checkpoint_capture`` span covering walk + encode."""
        raw = encode_state_blob(payload)
        tracer = current_tracer()
        if tracer is not None:
            tracer.emit_span(
                "checkpoint_capture", "checkpoint", tick, time.perf_counter(),
                lane="checkpoint", kind=kind, nbytes=len(raw),
            )
        return raw

    # ----------------------------------------------------------------- restore
    def restore(self, runner):
        """Load this checkpoint into a freshly built, equivalent runner.

        The runner must have been constructed with the same topology as the
        captured one (algorithm, codec stack, population size, strategy /
        sampler / device / link configuration); mismatches in the validated
        subset raise ``ValueError``.  Returns the runner.
        """
        from ..asyncfl.runner import AsyncRunner
        from ..hier.runner import HierRunner

        tick = time.perf_counter()
        if isinstance(runner, AsyncRunner):
            kind = "async"
        elif isinstance(runner, HierRunner):
            kind = "hier"
        else:
            kind = "sync"
        if self.payload.get("format") != _FORMAT:
            raise ValueError(f"unsupported checkpoint format {self.payload.get('format')!r}")
        if self.payload["kind"] != kind:
            raise ValueError(f"checkpoint is {self.payload['kind']!r} but the runner is {kind!r}")
        meta = self.payload["meta"]
        config = runner.server.config
        observed = {
            "algorithm": config.algorithm,
            "codec": runner.exchange.spec,
            "dtype": config.dtype,
            "num_clients": runner.server.num_clients,
        }
        if kind == "hier":
            observed["num_edges"] = len(runner.edges)
        if dict(meta) != observed:
            raise ValueError(f"checkpoint meta {dict(meta)} does not match runner {observed}")

        runner.server.load_server_state(self.payload["server"])
        if kind == "hier":
            edges_state = self.payload["edges"]
            for edge in runner.edges:
                restore_edge_slice(edge, edges_state[edge.edge_id])
        else:
            _restore_clients(runner, self.payload["clients"])
        runner.history = _load_history(self.payload["history"])
        runner.accountant.load_accountant_state(self.payload["accountant"])
        runner.phase_seconds = {k: float(v) for k, v in self.payload["phase_seconds"].items()}

        if kind == "async":
            state = self.payload["async"]
            runner.async_server.load_server_state(state["async_server"])
            runner.strategy.load_strategy_state(state["strategy"])
            runner.sampler.load_sampler_state(state["sampler"])
            loop = state["loop"]
            runner._clock.load(loop["now"], loop["seq"], loop["events"])
            runner._in_flight = set(int(c) for c in state["in_flight"])
            runner._pending_slots = [int(c) for c in state["pending_slots"]]
            runner._need_cohort = bool(state["need_cohort"])
            runner._primed = bool(state["primed"])
            runner.events_processed = int(state["events_processed"])
            runner._comm_bytes = int(state["comm_bytes"])
            runner._comm_bytes_last = int(state["comm_bytes_last"])
            runner._sim_comm_seconds = float(state["sim_comm_seconds"])
            runner._sim_comm_seconds_last = float(state["sim_comm_seconds_last"])
            runner._round_timings = {k: float(v) for k, v in state["round_timings"].items()}
            runner._dispatch_cache = None
            runner._active = {}
        tracer = current_tracer()
        if tracer is not None:
            tracer.emit_span(
                "checkpoint_restore", "checkpoint", tick, time.perf_counter(),
                lane="checkpoint", kind=kind, nbytes=len(self._raw),
            )
        return runner

    def restore_edge(self, edge) -> None:
        """Restore one edge's slice of a ``"hier"`` checkpoint into ``edge``
        — the crash-recovery primitive: the rest of the federation keeps its
        live state and only the dead edge rolls back to the capture point.

        Decodes a fresh copy of the slice from the raw blob so repeated
        recoveries (or a recovery after the cached :attr:`payload` was handed
        to other code) never alias arrays already given out.
        """
        if self.payload["kind"] != "hier":
            raise ValueError(f"restore_edge needs a 'hier' checkpoint, got {self.payload['kind']!r}")
        fresh = decode_state_blob(self._raw)
        edges_state = fresh["edges"]
        if edge.edge_id not in edges_state:
            raise ValueError(f"checkpoint has no slice for edge {edge.edge_id}")
        restore_edge_slice(edge, edges_state[edge.edge_id])

    # -------------------------------------------------------------------- I/O
    def to_bytes(self) -> bytes:
        return self._raw

    @classmethod
    def from_bytes(cls, raw: bytes) -> "RunCheckpoint":
        return cls(raw)

    @classmethod
    def save(cls, runner, path: Union[str, Path, None] = None) -> "RunCheckpoint":
        """Capture ``runner`` (and write the blob to ``path`` when given)."""
        ckpt = cls.capture(runner)
        if path is not None:
            Path(path).write_bytes(ckpt.to_bytes())
        return ckpt

    @classmethod
    def load(cls, path: Union[str, Path]) -> "RunCheckpoint":
        """Read a checkpoint blob written by :meth:`save`."""
        return cls.from_bytes(Path(path).read_bytes())


def save_checkpoint(runner, path: Union[str, Path]) -> RunCheckpoint:
    """Convenience wrapper: ``RunCheckpoint.save(runner, path)``."""
    return RunCheckpoint.save(runner, path)


def load_checkpoint(path: Union[str, Path], runner) -> "FederatedRunner":
    """Convenience wrapper: load ``path`` and restore it into ``runner``."""
    return RunCheckpoint.load(path).restore(runner)
