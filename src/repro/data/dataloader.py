"""Mini-batch data loader mirroring ``torch.utils.data.DataLoader``.

Provides shuffling and mini-batch iteration over any :class:`repro.data.Dataset`.
Batches are dense numpy arrays so the model forward pass is fully vectorised.
"""

from __future__ import annotations

from typing import Iterator, Optional, Tuple

import numpy as np

from .dataset import Dataset, TensorDataset, stack_dataset

__all__ = ["DataLoader"]


class DataLoader:
    """Iterate over a dataset in mini-batches of ``(inputs, labels)`` arrays.

    Parameters
    ----------
    dataset:
        Source dataset.
    batch_size:
        Maximum number of samples per batch (the paper uses 64 for FedAvg and
        IIADMM local updates).
    shuffle:
        Reshuffle sample order at the start of every epoch.
    drop_last:
        Drop the final incomplete batch.
    rng:
        Random generator used for shuffling (explicit for reproducibility).
    dtype:
        Optional dtype the materialised inputs are cast to *once* (the
        float32 pipeline passes the run's dtype here so the forward pass
        never converts per batch).  ``None`` keeps the dataset's dtype.
    """

    def __init__(
        self,
        dataset: Dataset,
        batch_size: int = 64,
        shuffle: bool = False,
        drop_last: bool = False,
        rng: Optional[np.random.Generator] = None,
        dtype=None,
    ):
        if batch_size <= 0:
            raise ValueError("batch_size must be positive")
        self.dataset = dataset
        self.batch_size = int(batch_size)
        self.shuffle = shuffle
        self.drop_last = drop_last
        self._rng = rng if rng is not None else np.random.default_rng()
        # Materialise once; per-epoch iteration then only does fancy indexing.
        self._inputs, self._labels = stack_dataset(dataset)
        if dtype is not None and self._inputs.dtype != np.dtype(dtype):
            self._inputs = self._inputs.astype(dtype)
        # Reusable index buffers: `_order` is refilled from `_arange` and
        # shuffled in place every epoch instead of allocating a fresh
        # permutation array per epoch.
        n = len(dataset)
        self._arange = np.arange(n)
        self._order = np.arange(n)
        # Read-only views served by the whole-dataset fast path: mutating a
        # yielded batch must not corrupt the cached dataset (batches from the
        # gather path are fresh copies, as before).
        self._inputs_ro = self._inputs.view()
        self._inputs_ro.flags.writeable = False
        self._labels_ro = self._labels.view()
        self._labels_ro.flags.writeable = False

    def __len__(self) -> int:
        n = len(self.dataset)
        if self.drop_last:
            return n // self.batch_size
        return (n + self.batch_size - 1) // self.batch_size

    @property
    def num_samples(self) -> int:
        return len(self.dataset)

    def __iter__(self) -> Iterator[Tuple[np.ndarray, np.ndarray]]:
        n = len(self.dataset)
        if self.shuffle:
            order = self._order
            np.copyto(order, self._arange)
            self._rng.shuffle(order)
        else:
            order = self._arange
            # Whole-dataset fast path: a single in-order batch needs no
            # fancy-indexing copy — serve read-only views of the materialised
            # arrays. (Shuffled epochs still gather, so batches stay permuted.)
            if n and self.batch_size >= n and not self.drop_last:
                yield self._inputs_ro, self._labels_ro
                return
        end = (n // self.batch_size) * self.batch_size if self.drop_last else n
        for start in range(0, end, self.batch_size):
            idx = order[start : start + self.batch_size]
            yield self._inputs[idx], self._labels[idx]

    def full_batch(self) -> Tuple[np.ndarray, np.ndarray]:
        """Return the entire dataset as one batch (used by ICEADMM, which
        computes the gradient on all local data points)."""
        return self._inputs, self._labels
