"""Mini-batch data loader mirroring ``torch.utils.data.DataLoader``.

Provides shuffling and mini-batch iteration over any :class:`repro.data.Dataset`.
Batches are dense numpy arrays so the model forward pass is fully vectorised.
"""

from __future__ import annotations

from typing import Iterator, Optional, Sequence, Tuple

import numpy as np

from .dataset import Dataset, TensorDataset, stack_dataset

__all__ = ["DataLoader", "CohortLoader"]


class DataLoader:
    """Iterate over a dataset in mini-batches of ``(inputs, labels)`` arrays.

    Parameters
    ----------
    dataset:
        Source dataset.
    batch_size:
        Maximum number of samples per batch (the paper uses 64 for FedAvg and
        IIADMM local updates).
    shuffle:
        Reshuffle sample order at the start of every epoch.
    drop_last:
        Drop the final incomplete batch.
    rng:
        Random generator used for shuffling (explicit for reproducibility).
    dtype:
        Optional dtype the materialised inputs are cast to *once* (the
        float32 pipeline passes the run's dtype here so the forward pass
        never converts per batch).  ``None`` keeps the dataset's dtype.
    """

    def __init__(
        self,
        dataset: Dataset,
        batch_size: int = 64,
        shuffle: bool = False,
        drop_last: bool = False,
        rng: Optional[np.random.Generator] = None,
        dtype=None,
    ):
        if batch_size <= 0:
            raise ValueError("batch_size must be positive")
        self.dataset = dataset
        self.batch_size = int(batch_size)
        self.shuffle = shuffle
        self.drop_last = drop_last
        self._rng = rng if rng is not None else np.random.default_rng()
        # Materialise once; per-epoch iteration then only does fancy indexing.
        self._inputs, self._labels = stack_dataset(dataset)
        if dtype is not None and self._inputs.dtype != np.dtype(dtype):
            self._inputs = self._inputs.astype(dtype)
        # Reusable index buffers: `_order` is refilled from `_arange` and
        # shuffled in place every epoch instead of allocating a fresh
        # permutation array per epoch.
        n = len(dataset)
        self._arange = np.arange(n)
        self._order = np.arange(n)
        # Read-only views served by the whole-dataset fast path: mutating a
        # yielded batch must not corrupt the cached dataset (batches from the
        # gather path are fresh copies, as before).
        self._inputs_ro = self._inputs.view()
        self._inputs_ro.flags.writeable = False
        self._labels_ro = self._labels.view()
        self._labels_ro.flags.writeable = False

    def __len__(self) -> int:
        n = len(self.dataset)
        if self.drop_last:
            return n // self.batch_size
        return (n + self.batch_size - 1) // self.batch_size

    @property
    def num_samples(self) -> int:
        return len(self.dataset)

    def __iter__(self) -> Iterator[Tuple[np.ndarray, np.ndarray]]:
        n = len(self.dataset)
        if self.shuffle:
            order = self._order
            np.copyto(order, self._arange)
            self._rng.shuffle(order)
        else:
            order = self._arange
            # Whole-dataset fast path: a single in-order batch needs no
            # fancy-indexing copy — serve read-only views of the materialised
            # arrays. (Shuffled epochs still gather, so batches stay permuted.)
            if n and self.batch_size >= n and not self.drop_last:
                yield self._inputs_ro, self._labels_ro
                return
        end = (n // self.batch_size) * self.batch_size if self.drop_last else n
        for start in range(0, end, self.batch_size):
            idx = order[start : start + self.batch_size]
            yield self._inputs[idx], self._labels[idx]

    def full_batch(self) -> Tuple[np.ndarray, np.ndarray]:
        """Return the entire dataset as one batch (used by ICEADMM, which
        computes the gradient on all local data points)."""
        return self._inputs, self._labels


class CohortLoader:
    """Stacked mini-batch fetch across ``B`` same-shaped :class:`DataLoader`\\ s.

    The batched client-execution engine (:mod:`repro.core.batched`) runs a
    cohort of clients' local updates as single stacked kernel calls; this is
    the matching data movement.  Lane ``b``'s rows come from loader ``b``'s
    materialised arrays (stacked once per cohort into a ``(B, n, ...)``
    block), and each mini-batch step then materialises one ``(B, batch, ...)``
    block in a *single* ``take`` over the flattened row stack — instead of
    ``B`` per-client fancy-indexing gathers — reusing one flat index buffer
    and one block buffer per batch geometry across the whole wave.

    RNG fidelity: :meth:`epoch` drives each underlying loader's *own* index
    buffer and generator exactly as ``DataLoader.__iter__`` would, so a
    client executed through a cohort consumes the same random state as one
    iterated per client — checkpoints and store spills stay bit-identical,
    and every lane of a yielded block holds exactly the rows (in exactly the
    order) the per-client iteration would have produced.

    All loaders must hold equally many samples of equal shape/dtype and share
    one batch size; the cohort builder groups clients so this holds.  Pass a
    buffer pool with ``acquire(key, shape, dtype)`` / ``release(key, buf)``
    (e.g. :data:`repro.nn.functional._pool`) to recycle the stacked arrays
    across cohorts; call :meth:`close` when done to return them.
    """

    def __init__(self, loaders: "Sequence[DataLoader]", pool=None):
        loaders = list(loaders)
        if not loaders:
            raise ValueError("CohortLoader needs at least one DataLoader")
        first = loaders[0]
        n = len(first.dataset)
        for ld in loaders:
            if ld._inputs.shape != first._inputs.shape or ld._labels.shape != first._labels.shape:
                raise ValueError("cohort loaders must hold same-shaped datasets")
            if ld._inputs.dtype != first._inputs.dtype or ld._labels.dtype != first._labels.dtype:
                raise ValueError("cohort loaders must share input/label dtypes")
            if ld.batch_size != first.batch_size:
                raise ValueError("cohort loaders must share one batch size")
        self._loaders = loaders
        B = len(loaders)
        self.B = B
        self.batch_size = first.batch_size
        self._n = n
        self._pool = pool
        self._held = []
        x0, y0 = first._inputs, first._labels
        self._inputs = self._acquire(
            ("cohort_x", B) + x0.shape + (x0.dtype.str,), (B,) + x0.shape, x0.dtype
        )
        self._labels = self._acquire(
            ("cohort_y", B) + y0.shape + (y0.dtype.str,), (B,) + y0.shape, y0.dtype
        )
        for b, ld in enumerate(loaders):
            np.copyto(self._inputs[b], ld._inputs)
            np.copyto(self._labels[b], ld._labels)
        self._orders = self._acquire(("cohort_order", B, n), (B, n), np.intp)
        self._flat = self._acquire(("cohort_flat", B, self.batch_size), (B, self.batch_size), np.intp)
        self._lane_base = np.arange(B)[:, None] * n
        # Flattened row views served by the one-take gather.
        self._x_rows = self._inputs.reshape((B * n,) + x0.shape[1:])
        self._y_rows = self._labels.reshape(B * n)
        self._xblocks = {}
        self._yblocks = {}

    def _acquire(self, key, shape, dtype) -> np.ndarray:
        if self._pool is None:
            return np.empty(shape, dtype=dtype)
        buf = self._pool.acquire(key, shape, dtype)
        self._held.append((key, buf))
        return buf

    def __len__(self) -> int:
        """Batches per epoch (mirrors the underlying loaders)."""
        return (self._n + self.batch_size - 1) // self.batch_size

    def epoch(self) -> None:
        """Start a new shuffled pass, via each lane's own RNG and index buffer."""
        for b, ld in enumerate(self._loaders):
            np.copyto(ld._order, ld._arange)
            ld._rng.shuffle(ld._order)
            np.copyto(self._orders[b], ld._order)

    def batches(self) -> Iterator[Tuple[np.ndarray, np.ndarray]]:
        """Yield ``((B, k, ...), (B, k))`` blocks for the current epoch order.

        Yielded blocks are reused buffers — consume each before the next step.
        """
        n, bs, B = self._n, self.batch_size, self.B
        tail = self._inputs.shape[2:]
        for start in range(0, n, bs):
            idx = self._orders[:, start : start + bs]
            k = idx.shape[1]
            flat = self._flat[:, :k]
            np.add(idx, self._lane_base, out=flat)
            rows = flat.reshape(-1)
            xb = self._xblocks.get(k)
            if xb is None:
                xb = self._acquire(
                    ("cohort_xb", B, k) + tail + (self._inputs.dtype.str,),
                    (B * k,) + tail,
                    self._inputs.dtype,
                )
                self._xblocks[k] = xb
            yb = self._yblocks.get(k)
            if yb is None:
                yb = self._acquire(
                    ("cohort_yb", B, k, self._labels.dtype.str), (B * k,), self._labels.dtype
                )
                self._yblocks[k] = yb
            np.take(self._x_rows, rows, axis=0, out=xb)
            np.take(self._y_rows, rows, axis=0, out=yb)
            yield xb.reshape((B, k) + tail), yb.reshape(B, k)

    def full_stack(self) -> Tuple[np.ndarray, np.ndarray]:
        """The whole stacked dataset (ICEADMM's full-gradient path)."""
        return self._inputs, self._labels

    def close(self) -> None:
        """Return pooled buffers to the pool (no-op without a pool)."""
        if self._pool is not None:
            for key, buf in self._held:
                self._pool.release(key, buf)
            self._held = []
