"""Client partitioning strategies for federated-learning simulations.

The paper splits MNIST/CIFAR10/CoronaHack evenly into 4 clients and uses a
LEAF-style non-IID split of FEMNIST over 203 clients.  This module provides
those strategies plus a Dirichlet label-skew partitioner commonly used in FL
benchmarks.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from .dataset import Dataset, Subset, TensorDataset, stack_dataset

__all__ = [
    "iid_partition",
    "shard_partition",
    "dirichlet_partition",
    "by_writer_partition",
    "partition_sizes",
]


def _check_num_clients(n_samples: int, num_clients: int) -> None:
    if num_clients <= 0:
        raise ValueError("num_clients must be positive")
    if num_clients > n_samples:
        raise ValueError(f"cannot split {n_samples} samples across {num_clients} clients")


def iid_partition(
    dataset: Dataset, num_clients: int, rng: Optional[np.random.Generator] = None
) -> List[Subset]:
    """Shuffle and split a dataset into ``num_clients`` near-equal IID shards."""
    rng = rng if rng is not None else np.random.default_rng()
    n = len(dataset)
    _check_num_clients(n, num_clients)
    order = rng.permutation(n)
    splits = np.array_split(order, num_clients)
    return [Subset(dataset, idx) for idx in splits]


def shard_partition(
    dataset: Dataset,
    num_clients: int,
    shards_per_client: int = 2,
    rng: Optional[np.random.Generator] = None,
) -> List[Subset]:
    """Label-sorted shard partition (the non-IID scheme of the FedAvg paper).

    Samples are sorted by label, cut into ``num_clients * shards_per_client``
    contiguous shards, and each client receives ``shards_per_client`` random
    shards, giving each client only a few classes.
    """
    rng = rng if rng is not None else np.random.default_rng()
    n = len(dataset)
    _check_num_clients(n, num_clients)
    _, labels = stack_dataset(dataset)
    order = np.argsort(labels, kind="stable")
    num_shards = num_clients * shards_per_client
    shards = np.array_split(order, num_shards)
    shard_ids = rng.permutation(num_shards)
    clients = []
    for c in range(num_clients):
        ids = shard_ids[c * shards_per_client : (c + 1) * shards_per_client]
        idx = np.concatenate([shards[i] for i in ids])
        clients.append(Subset(dataset, idx))
    return clients


def dirichlet_partition(
    dataset: Dataset,
    num_clients: int,
    alpha: float = 0.5,
    rng: Optional[np.random.Generator] = None,
    min_samples: int = 1,
) -> List[Subset]:
    """Label-skew partition: class proportions per client drawn from Dir(alpha).

    Smaller ``alpha`` yields more heterogeneous (non-IID) clients.
    """
    if alpha <= 0:
        raise ValueError("alpha must be positive")
    rng = rng if rng is not None else np.random.default_rng()
    n = len(dataset)
    _check_num_clients(n, num_clients)
    _, labels = stack_dataset(dataset)
    classes = np.unique(labels)

    while True:
        client_indices: List[List[int]] = [[] for _ in range(num_clients)]
        for cls in classes:
            cls_idx = np.where(labels == cls)[0]
            rng.shuffle(cls_idx)
            proportions = rng.dirichlet(np.full(num_clients, alpha))
            cuts = (np.cumsum(proportions) * len(cls_idx)).astype(int)[:-1]
            for client_id, part in enumerate(np.split(cls_idx, cuts)):
                client_indices[client_id].extend(part.tolist())
        if min(len(ci) for ci in client_indices) >= min_samples:
            break
    return [Subset(dataset, np.asarray(sorted(ci), dtype=np.int64)) for ci in client_indices]


def by_writer_partition(
    dataset: Dataset,
    writer_ids: Sequence[int],
) -> List[Subset]:
    """LEAF/FEMNIST-style partition: each distinct writer id becomes one client.

    ``writer_ids[i]`` gives the writer of sample ``i``; clients are returned in
    ascending writer-id order.  This reproduces the naturally non-IID,
    unbalanced FEMNIST split (203 clients in the paper's 5% sample).
    """
    writer_ids = np.asarray(writer_ids)
    if len(writer_ids) != len(dataset):
        raise ValueError("writer_ids must have one entry per sample")
    clients = []
    for writer in np.unique(writer_ids):
        idx = np.where(writer_ids == writer)[0]
        clients.append(Subset(dataset, idx))
    return clients


def partition_sizes(clients: Sequence[Dataset]) -> np.ndarray:
    """Return the number of samples held by each client."""
    return np.array([len(c) for c in clients], dtype=np.int64)
