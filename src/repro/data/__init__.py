"""Datasets, data loaders, client partitioners, and synthetic dataset generators."""

from .dataloader import CohortLoader, DataLoader
from .dataset import ConcatDataset, Dataset, Subset, TensorDataset, stack_dataset
from .partition import (
    by_writer_partition,
    dirichlet_partition,
    iid_partition,
    partition_sizes,
    shard_partition,
)
from .synthetic import (
    DATASET_SPECS,
    SyntheticSpec,
    load_dataset,
    make_classification_images,
    synthetic_cifar10,
    synthetic_coronahack,
    synthetic_femnist,
    synthetic_mnist,
)
from .transforms import Compose, FlattenTransform, Normalize, standardize_dataset

__all__ = [
    "Dataset",
    "TensorDataset",
    "Subset",
    "ConcatDataset",
    "stack_dataset",
    "DataLoader",
    "CohortLoader",
    "iid_partition",
    "shard_partition",
    "dirichlet_partition",
    "by_writer_partition",
    "partition_sizes",
    "SyntheticSpec",
    "DATASET_SPECS",
    "load_dataset",
    "make_classification_images",
    "synthetic_mnist",
    "synthetic_cifar10",
    "synthetic_femnist",
    "synthetic_coronahack",
    "Compose",
    "Normalize",
    "FlattenTransform",
    "standardize_dataset",
]
