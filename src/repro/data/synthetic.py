"""Synthetic stand-ins for the four datasets used in the APPFL paper.

The paper evaluates on MNIST, CIFAR10, FEMNIST (LEAF), and CoronaHack chest
X-rays.  None of those can be downloaded in this offline reproduction, so each
is replaced with a deterministic synthetic dataset of the same shape, class
count, and client structure, generated from a class-prototype model:

* every class ``c`` gets a smooth random prototype image ``P_c``;
* a sample of class ``c`` is ``P_c + noise`` with optional per-client style
  shifts (for the naturally non-IID FEMNIST writers).

This keeps the learning problem non-trivial (classes overlap through noise)
while being learnable by the small CNN/MLP models used in the experiments, so
the *relative* behaviour of FedAvg / ICEADMM / IIADMM under differential
privacy (Figure 2) is preserved.

Sizes default to a scaled-down CI-friendly regime; pass ``train_size`` /
``test_size`` explicitly to approach paper scale.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from .dataset import TensorDataset
from .partition import by_writer_partition, iid_partition

__all__ = [
    "SyntheticSpec",
    "make_classification_images",
    "synthetic_mnist",
    "synthetic_cifar10",
    "synthetic_femnist",
    "synthetic_coronahack",
    "load_dataset",
    "DATASET_SPECS",
]


@dataclass(frozen=True)
class SyntheticSpec:
    """Shape/class metadata describing one of the paper's datasets."""

    name: str
    channels: int
    height: int
    width: int
    num_classes: int
    default_clients: int
    noise: float = 0.6

    @property
    def image_shape(self) -> Tuple[int, int, int]:
        return (self.channels, self.height, self.width)


DATASET_SPECS = {
    "mnist": SyntheticSpec("mnist", 1, 28, 28, 10, default_clients=4, noise=2.0),
    "cifar10": SyntheticSpec("cifar10", 3, 32, 32, 10, default_clients=4, noise=3.0),
    "femnist": SyntheticSpec("femnist", 1, 28, 28, 62, default_clients=203, noise=2.2),
    "coronahack": SyntheticSpec("coronahack", 1, 32, 32, 3, default_clients=4, noise=2.5),
}


def _smooth_prototypes(
    rng: np.random.Generator, num_classes: int, shape: Tuple[int, int, int], smoothing: int = 3
) -> np.ndarray:
    """Generate one smooth random prototype image per class.

    Smoothing is a separable box filter applied via cumulative sums, which
    keeps prototypes spatially correlated (image-like) rather than white noise.
    """
    c, h, w = shape
    protos = rng.standard_normal((num_classes, c, h, w))
    if smoothing > 1:
        kernel = np.ones(smoothing) / smoothing
        # Separable smoothing along H and W with edge padding.
        protos = np.apply_along_axis(lambda v: np.convolve(v, kernel, mode="same"), 2, protos)
        protos = np.apply_along_axis(lambda v: np.convolve(v, kernel, mode="same"), 3, protos)
    # Normalise each prototype to unit RMS so classes are equally separable.
    rms = np.sqrt((protos ** 2).mean(axis=(1, 2, 3), keepdims=True))
    return protos / np.maximum(rms, 1e-12)


def make_classification_images(
    spec: SyntheticSpec,
    num_samples: int,
    rng: np.random.Generator,
    class_probs: Optional[np.ndarray] = None,
    style_shift: float = 0.0,
    prototypes: Optional[np.ndarray] = None,
) -> Tuple[np.ndarray, np.ndarray]:
    """Sample ``num_samples`` images and labels from the prototype model."""
    protos = prototypes if prototypes is not None else _smooth_prototypes(rng, spec.num_classes, spec.image_shape)
    if class_probs is None:
        labels = rng.integers(0, spec.num_classes, num_samples)
    else:
        class_probs = np.asarray(class_probs, dtype=np.float64)
        class_probs = class_probs / class_probs.sum()
        labels = rng.choice(spec.num_classes, size=num_samples, p=class_probs)
    images = protos[labels] + spec.noise * rng.standard_normal((num_samples,) + spec.image_shape)
    if style_shift:
        images = images + style_shift * rng.standard_normal(spec.image_shape)
    return images.astype(np.float64), labels.astype(np.int64)


def _make_train_test(
    spec: SyntheticSpec, train_size: int, test_size: int, seed: int
) -> Tuple[TensorDataset, TensorDataset, np.ndarray]:
    rng = np.random.default_rng(seed)
    protos = _smooth_prototypes(rng, spec.num_classes, spec.image_shape)
    xtr, ytr = make_classification_images(spec, train_size, rng, prototypes=protos)
    xte, yte = make_classification_images(spec, test_size, rng, prototypes=protos)
    return TensorDataset(xtr, ytr), TensorDataset(xte, yte), protos


def synthetic_mnist(
    train_size: int = 2000, test_size: int = 400, seed: int = 0
) -> Tuple[TensorDataset, TensorDataset]:
    """Synthetic MNIST: 1×28×28 grayscale, 10 classes."""
    train, test, _ = _make_train_test(DATASET_SPECS["mnist"], train_size, test_size, seed)
    return train, test


def synthetic_cifar10(
    train_size: int = 2000, test_size: int = 400, seed: int = 1
) -> Tuple[TensorDataset, TensorDataset]:
    """Synthetic CIFAR10: 3×32×32 colour, 10 classes, noisier than MNIST."""
    train, test, _ = _make_train_test(DATASET_SPECS["cifar10"], train_size, test_size, seed)
    return train, test


def synthetic_coronahack(
    train_size: int = 1200, test_size: int = 300, seed: int = 2
) -> Tuple[TensorDataset, TensorDataset]:
    """Synthetic CoronaHack chest X-ray: 1×32×32 grayscale, 3 classes
    (normal / bacterial pneumonia / viral pneumonia)."""
    train, test, _ = _make_train_test(DATASET_SPECS["coronahack"], train_size, test_size, seed)
    return train, test


def synthetic_femnist(
    num_writers: int = 203,
    samples_per_writer: Tuple[int, int] = (70, 360),
    test_fraction: float = 0.1,
    seed: int = 3,
    num_classes: Optional[int] = None,
) -> Tuple[TensorDataset, TensorDataset, np.ndarray]:
    """Synthetic FEMNIST: naturally non-IID, unbalanced, partitioned by writer.

    Each of the ``num_writers`` writers (203 in the paper's 5% LEAF sample)
    contributes a log-uniform number of samples in ``samples_per_writer`` and a
    writer-specific style shift plus a skewed class distribution, reproducing
    the non-IID structure the paper's FEMNIST experiments rely on.

    Returns ``(train, test, writer_ids)``; ``writer_ids`` aligns with the train
    set and can be passed to :func:`repro.data.partition.by_writer_partition`.
    """
    spec = DATASET_SPECS["femnist"]
    if num_classes is not None:
        spec = SyntheticSpec(
            spec.name, spec.channels, spec.height, spec.width, num_classes, spec.default_clients, spec.noise
        )
    rng = np.random.default_rng(seed)
    protos = _smooth_prototypes(rng, spec.num_classes, spec.image_shape)

    lo, hi = samples_per_writer
    if lo <= 0 or hi < lo:
        raise ValueError("samples_per_writer must satisfy 0 < lo <= hi")
    train_x, train_y, writer_ids = [], [], []
    test_x, test_y = [], []
    for writer in range(num_writers):
        count = int(np.exp(rng.uniform(np.log(lo), np.log(hi))))
        count = max(count, 2)
        # Each writer favours a random subset of classes (label skew).
        probs = rng.dirichlet(np.full(spec.num_classes, 0.3))
        x, y = make_classification_images(
            spec, count, rng, class_probs=probs, style_shift=0.3, prototypes=protos
        )
        n_test = max(1, int(round(count * test_fraction)))
        test_x.append(x[:n_test])
        test_y.append(y[:n_test])
        train_x.append(x[n_test:])
        train_y.append(y[n_test:])
        writer_ids.extend([writer] * (count - n_test))

    train = TensorDataset(np.concatenate(train_x), np.concatenate(train_y))
    test = TensorDataset(np.concatenate(test_x), np.concatenate(test_y))
    return train, test, np.asarray(writer_ids, dtype=np.int64)


def load_dataset(
    name: str,
    num_clients: Optional[int] = None,
    train_size: Optional[int] = None,
    test_size: Optional[int] = None,
    seed: int = 0,
    rng: Optional[np.random.Generator] = None,
):
    """Load a named synthetic dataset already partitioned into clients.

    Returns ``(client_datasets, test_dataset, spec)``.  This is the high-level
    entry point the examples and benchmark harnesses use; it mirrors how the
    paper's demonstration code prepares per-client PyTorch datasets.
    """
    name = name.lower()
    if name not in DATASET_SPECS:
        raise KeyError(f"unknown dataset {name!r}; available: {sorted(DATASET_SPECS)}")
    spec = DATASET_SPECS[name]
    rng = rng if rng is not None else np.random.default_rng(seed)

    if name == "femnist":
        num_writers = num_clients if num_clients is not None else spec.default_clients
        kwargs = {}
        if train_size is not None:
            per_writer = max(4, train_size // num_writers)
            kwargs["samples_per_writer"] = (max(2, per_writer // 4), per_writer * 2)
        train, test, writer_ids = synthetic_femnist(num_writers=num_writers, seed=seed, **kwargs)
        clients = by_writer_partition(train, writer_ids)
        return clients, test, spec

    maker = {
        "mnist": synthetic_mnist,
        "cifar10": synthetic_cifar10,
        "coronahack": synthetic_coronahack,
    }[name]
    kwargs = {"seed": seed}
    if train_size is not None:
        kwargs["train_size"] = train_size
    if test_size is not None:
        kwargs["test_size"] = test_size
    train, test = maker(**kwargs)
    n_clients = num_clients if num_clients is not None else spec.default_clients
    clients = iid_partition(train, n_clients, rng=rng)
    return clients, test, spec
