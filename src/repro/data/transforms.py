"""Lightweight input transforms (normalisation, flattening, composition).

The paper relies on torchvision transforms for dataset preprocessing; these
are the numpy equivalents used by the examples.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

__all__ = ["Compose", "Normalize", "FlattenTransform", "standardize_dataset"]


class Compose:
    """Apply a sequence of transforms left to right."""

    def __init__(self, transforms: Sequence[Callable[[np.ndarray], np.ndarray]]):
        self.transforms = list(transforms)

    def __call__(self, x: np.ndarray) -> np.ndarray:
        for t in self.transforms:
            x = t(x)
        return x


class Normalize:
    """Normalise with fixed mean/std (per-channel broadcastable)."""

    def __init__(self, mean, std):
        self.mean = np.asarray(mean, dtype=np.float64)
        self.std = np.asarray(std, dtype=np.float64)
        if np.any(self.std == 0):
            raise ValueError("std must be nonzero")

    def __call__(self, x: np.ndarray) -> np.ndarray:
        mean = self.mean.reshape((-1,) + (1,) * (x.ndim - 1)) if self.mean.ndim == 1 else self.mean
        std = self.std.reshape((-1,) + (1,) * (x.ndim - 1)) if self.std.ndim == 1 else self.std
        return (x - mean) / std


class FlattenTransform:
    """Flatten an image to a vector (for MLP models)."""

    def __call__(self, x: np.ndarray) -> np.ndarray:
        return x.reshape(-1)


def standardize_dataset(inputs: np.ndarray) -> np.ndarray:
    """Zero-mean / unit-variance standardisation over the whole array."""
    mean = inputs.mean()
    std = inputs.std()
    return (inputs - mean) / (std if std > 0 else 1.0)
