"""Dataset abstractions mirroring ``torch.utils.data.Dataset``.

The APPFL paper requires each client to wrap its private data in a class that
inherits the PyTorch ``Dataset``; this module provides the equivalent
contract.  A dataset is any object exposing ``__len__`` and ``__getitem__``
returning ``(input, label)`` pairs.
"""

from __future__ import annotations

from typing import Sequence, Tuple

import numpy as np

__all__ = ["Dataset", "TensorDataset", "Subset", "ConcatDataset"]


class Dataset:
    """Abstract map-style dataset: ``len(ds)`` items accessible by index."""

    def __len__(self) -> int:  # pragma: no cover - abstract
        raise NotImplementedError

    def __getitem__(self, index: int) -> Tuple[np.ndarray, int]:  # pragma: no cover - abstract
        raise NotImplementedError


class TensorDataset(Dataset):
    """Dataset backed by in-memory arrays ``inputs`` and integer ``labels``."""

    def __init__(self, inputs: np.ndarray, labels: np.ndarray):
        inputs = np.asarray(inputs)
        labels = np.asarray(labels)
        if len(inputs) != len(labels):
            raise ValueError(f"inputs ({len(inputs)}) and labels ({len(labels)}) length mismatch")
        self.inputs = inputs
        self.labels = labels

    def __len__(self) -> int:
        return len(self.inputs)

    def __getitem__(self, index: int) -> Tuple[np.ndarray, int]:
        return self.inputs[index], int(self.labels[index])

    @property
    def num_classes(self) -> int:
        """Number of distinct labels present."""
        return int(self.labels.max()) + 1 if len(self.labels) else 0

    def arrays(self) -> Tuple[np.ndarray, np.ndarray]:
        """Return the underlying ``(inputs, labels)`` arrays (no copy)."""
        return self.inputs, self.labels


class Subset(Dataset):
    """View of a dataset restricted to ``indices``."""

    def __init__(self, dataset: Dataset, indices: Sequence[int]):
        self.dataset = dataset
        self.indices = np.asarray(indices, dtype=np.int64)

    def __len__(self) -> int:
        return len(self.indices)

    def __getitem__(self, index: int) -> Tuple[np.ndarray, int]:
        return self.dataset[int(self.indices[index])]


class ConcatDataset(Dataset):
    """Concatenation of several datasets, indexed end-to-end."""

    def __init__(self, datasets: Sequence[Dataset]):
        if not datasets:
            raise ValueError("ConcatDataset requires at least one dataset")
        self.datasets = list(datasets)
        self._offsets = np.cumsum([0] + [len(d) for d in self.datasets])

    def __len__(self) -> int:
        return int(self._offsets[-1])

    def __getitem__(self, index: int) -> Tuple[np.ndarray, int]:
        if index < 0:
            index += len(self)
        if not 0 <= index < len(self):
            raise IndexError(index)
        ds_idx = int(np.searchsorted(self._offsets, index, side="right")) - 1
        return self.datasets[ds_idx][index - int(self._offsets[ds_idx])]


def stack_dataset(dataset: Dataset) -> Tuple[np.ndarray, np.ndarray]:
    """Materialise any map-style dataset into dense ``(inputs, labels)`` arrays."""
    if isinstance(dataset, TensorDataset):
        return dataset.inputs, dataset.labels
    xs, ys = [], []
    for i in range(len(dataset)):
        x, y = dataset[i]
        xs.append(np.asarray(x))
        ys.append(y)
    return np.stack(xs), np.asarray(ys)
