"""Gradient / update clipping used to bound DP sensitivity.

Section III-B of the paper: "Clipping the gradient by a positive constant C
leads to ||g|| ≤ C, which allows us to set Δ = 2C/(ρ+ζ)."
"""

from __future__ import annotations

from typing import Dict, Mapping, Tuple

import numpy as np

__all__ = ["clip_by_norm", "clip_state_by_global_norm", "global_norm"]


def global_norm(state: Mapping[str, np.ndarray]) -> float:
    """L2 norm of a state dict viewed as one concatenated vector."""
    total = 0.0
    for value in state.values():
        v = np.asarray(value, dtype=np.float64)
        total += float(np.dot(v.reshape(-1), v.reshape(-1)))
    return float(np.sqrt(total))


def clip_by_norm(values: np.ndarray, max_norm: float) -> np.ndarray:
    """Scale ``values`` so its L2 norm does not exceed ``max_norm``."""
    if max_norm <= 0:
        raise ValueError("max_norm must be positive")
    norm = float(np.linalg.norm(values))
    if norm <= max_norm or norm == 0.0:
        return np.array(values, copy=True)
    return values * (max_norm / norm)


def clip_state_by_global_norm(state: Mapping[str, np.ndarray], max_norm: float) -> Tuple[Dict[str, np.ndarray], float]:
    """Clip a whole state dict by its global L2 norm.

    Returns ``(clipped_state, original_norm)``.  All arrays are scaled by the
    same factor so the clipped concatenated vector has norm ≤ ``max_norm``.
    """
    if max_norm <= 0:
        raise ValueError("max_norm must be positive")
    norm = global_norm(state)
    if norm <= max_norm or norm == 0.0:
        return {k: np.array(v, copy=True) for k, v in state.items()}, norm
    scale = max_norm / norm
    return {k: np.asarray(v) * scale for k, v in state.items()}, norm
