"""Per-algorithm sensitivity rules for the output-perturbation mechanism.

Section III-B / IV-B of the paper: the sensitivity Δ of the transmitted local
model parameters "is computed automatically based on the dataset and algorithm
chosen in APPFL", and depends on the algorithm's hyper-parameters:

* IADMM-family algorithms (IIADMM, ICEADMM) update the local model with the
  closed-form step of Eq. (4); with the gradient clipped to ``||g|| ≤ C`` the
  update magnitude is bounded by ``Δ = 2C / (ρ + ζ)``.
* FedAvg updates the local model with SGD steps ``z ← z − η·g``; the
  corresponding bound on one transmitted update is ``Δ = 2C·η`` ("the
  sensitivity in FedAvg depends on the learning rate").
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["SensitivityRule", "IADMMSensitivity", "FedAvgSensitivity", "FixedSensitivity"]


@dataclass(frozen=True)
class SensitivityRule:
    """Base class: computes the DP sensitivity Δ of one local update."""

    clip_norm: float = 1.0

    def sensitivity(self) -> float:  # pragma: no cover - abstract
        raise NotImplementedError

    def __post_init__(self) -> None:
        if self.clip_norm <= 0:
            raise ValueError("clip_norm must be positive")


@dataclass(frozen=True)
class IADMMSensitivity(SensitivityRule):
    """Δ = 2C / (ρ + ζ) for IIADMM / ICEADMM (paper Section III-B)."""

    rho: float = 1.0
    zeta: float = 0.0

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.rho + self.zeta <= 0:
            raise ValueError("rho + zeta must be positive")

    def sensitivity(self) -> float:
        return 2.0 * self.clip_norm / (self.rho + self.zeta)


@dataclass(frozen=True)
class FedAvgSensitivity(SensitivityRule):
    """Δ = 2C·η·K for FedAvg.

    "The sensitivity in FedAvg depends on the learning rate" (Section IV-B).
    One clipped SGD step moves the parameters by at most ``C·η``; the
    transmitted quantity is the local model after ``K = L·B_p`` such steps, so
    the worst-case change from swapping one data point compounds over the
    steps, giving ``Δ = 2·C·η·K``.  (The IADMM update, by contrast, is
    anchored to the global model by its proximal term, so its sensitivity
    ``2C/(ρ+ζ)`` does not grow with the number of local steps — this is the
    mechanism behind Figure 2's observation that IIADMM degrades less than
    FedAvg at small ε.)
    """

    lr: float = 0.01
    num_steps: int = 1

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.lr <= 0:
            raise ValueError("lr must be positive")
        if self.num_steps <= 0:
            raise ValueError("num_steps must be positive")

    def sensitivity(self) -> float:
        return 2.0 * self.clip_norm * self.lr * self.num_steps


@dataclass(frozen=True)
class FixedSensitivity(SensitivityRule):
    """A user-supplied constant Δ (escape hatch for custom algorithms)."""

    value: float = 1.0

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.value <= 0:
            raise ValueError("value must be positive")

    def sensitivity(self) -> float:
        return self.value
