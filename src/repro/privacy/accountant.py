"""Privacy-budget accounting across communication rounds.

The paper applies the Laplace mechanism "for any communication round", i.e.
each round consumes ε̄ of budget on the data released in that round.  The
accountant tracks per-client spend under basic (sequential) composition so
experiments can report the cumulative budget consumed over T rounds — a
useful diagnostic even though the paper itself reports only the per-round ε̄.

Charging discipline
-------------------
Budget is consumed when data is *released*, which happens exactly once per
client update no matter how the bytes travel: a retried upload, a replayed
edge shard (crash recovery), or a duplicated packet re-sends the *same*
noised release and must not charge ε again.  The runners therefore charge at
their accepted-ingest points and pass a ``key`` identifying the release —
``(round or version, crc32 of the dispatched global)`` via
:func:`dispatch_fingerprint` — and :meth:`PrivacyAccountant.record` dedupes
on ``(client_id, key)``.  Keyless records (direct/legacy callers) keep the
old charge-every-call behaviour.
"""

from __future__ import annotations

import math
import zlib
from collections import defaultdict
from typing import Dict, List, Optional, Tuple

import numpy as np

__all__ = ["PrivacyAccountant", "dispatch_fingerprint"]


def dispatch_fingerprint(round_idx: int, dispatched_global) -> Tuple[int, int]:
    """A dedupe key identifying one logical release: the round (or async
    model version) plus the CRC-32 of the exact dispatched-global bytes the
    client trained against."""
    arr = np.ascontiguousarray(np.asarray(dispatched_global))
    crc = zlib.crc32(arr.view(np.uint8)) if arr.nbytes else 0
    return (int(round_idx), crc)


class PrivacyAccountant:
    """Tracks (ε, δ) spend per client under sequential composition."""

    def __init__(self) -> None:
        self._spend: Dict[int, List[Tuple[float, float]]] = defaultdict(list)
        #: (client_id, *key) tuples already charged — the dedupe ledger
        self._seen: set = set()

    def record(
        self,
        client_id: int,
        epsilon: float,
        delta: float = 0.0,
        key: Optional[Tuple[int, ...]] = None,
    ) -> bool:
        """Record one release by ``client_id`` with per-release budget (ε, δ).

        ``key`` identifies the logical release (see
        :func:`dispatch_fingerprint`); a repeated ``(client_id, key)`` — a
        retransmission or a crash-recovery replay of data already released —
        is a no-op.  Returns ``True`` when the release was charged.
        """
        if epsilon < 0 or delta < 0:
            raise ValueError("epsilon and delta must be non-negative")
        if not math.isfinite(epsilon):
            # Non-private release: nothing to account for.
            return False
        if key is not None:
            seen_key = (int(client_id),) + tuple(int(k) for k in key)
            if seen_key in self._seen:
                return False
            self._seen.add(seen_key)
        self._spend[client_id].append((float(epsilon), float(delta)))
        return True

    def releases(self, client_id: int) -> int:
        """Number of private releases recorded for a client."""
        return len(self._spend.get(client_id, []))

    def epsilon_spent(self, client_id: int) -> float:
        """Total ε consumed by a client (basic composition: sum over releases)."""
        return float(sum(e for e, _ in self._spend.get(client_id, [])))

    def delta_spent(self, client_id: int) -> float:
        """Total δ consumed by a client (basic composition)."""
        return float(sum(d for _, d in self._spend.get(client_id, [])))

    def max_epsilon_spent(self) -> float:
        """Worst-case ε across clients (0.0 when nothing recorded)."""
        if not self._spend:
            return 0.0
        return max(self.epsilon_spent(cid) for cid in self._spend)

    # ------------------------------------------------------- persistent state
    def accountant_state(self) -> Dict[str, object]:
        """Spend ledger + dedupe set as a plain tree (for run checkpoints)."""
        return {
            "spend": {cid: list(spends) for cid, spends in self._spend.items()},
            "seen": sorted(list(k) for k in self._seen),
        }

    def load_accountant_state(self, state) -> None:
        """Restore a ledger captured by :meth:`accountant_state` (also accepts
        the pre-dedupe flat ``{cid: [(ε, δ), ...]}`` format)."""
        if isinstance(state, dict) and "spend" in state:
            spend, seen = state["spend"], state.get("seen", [])
        else:
            # Old flat format: every top-level key is a client id.
            spend, seen = state, []
        self._spend = defaultdict(list)
        for cid, spends in spend.items():
            self._spend[int(cid)] = [(float(e), float(d)) for e, d in spends]
        self._seen = {tuple(int(x) for x in k) for k in seen}

    def summary(self) -> Dict[int, Dict[str, float]]:
        """Per-client accounting summary."""
        return {
            cid: {
                "releases": float(self.releases(cid)),
                "epsilon": self.epsilon_spent(cid),
                "delta": self.delta_spent(cid),
            }
            for cid in sorted(self._spend)
        }
