"""Privacy-budget accounting across communication rounds.

The paper applies the Laplace mechanism "for any communication round", i.e.
each round consumes ε̄ of budget on the data released in that round.  The
accountant tracks per-client spend under basic (sequential) composition so
experiments can report the cumulative budget consumed over T rounds — a
useful diagnostic even though the paper itself reports only the per-round ε̄.
"""

from __future__ import annotations

import math
from collections import defaultdict
from typing import Dict, List, Tuple

__all__ = ["PrivacyAccountant"]


class PrivacyAccountant:
    """Tracks (ε, δ) spend per client under sequential composition."""

    def __init__(self) -> None:
        self._spend: Dict[int, List[Tuple[float, float]]] = defaultdict(list)

    def record(self, client_id: int, epsilon: float, delta: float = 0.0) -> None:
        """Record one release by ``client_id`` with per-release budget (ε, δ)."""
        if epsilon < 0 or delta < 0:
            raise ValueError("epsilon and delta must be non-negative")
        if not math.isfinite(epsilon):
            # Non-private release: nothing to account for.
            return
        self._spend[client_id].append((float(epsilon), float(delta)))

    def releases(self, client_id: int) -> int:
        """Number of private releases recorded for a client."""
        return len(self._spend.get(client_id, []))

    def epsilon_spent(self, client_id: int) -> float:
        """Total ε consumed by a client (basic composition: sum over releases)."""
        return float(sum(e for e, _ in self._spend.get(client_id, [])))

    def delta_spent(self, client_id: int) -> float:
        """Total δ consumed by a client (basic composition)."""
        return float(sum(d for _, d in self._spend.get(client_id, [])))

    def max_epsilon_spent(self) -> float:
        """Worst-case ε across clients (0.0 when nothing recorded)."""
        if not self._spend:
            return 0.0
        return max(self.epsilon_spent(cid) for cid in self._spend)

    # ------------------------------------------------------- persistent state
    def accountant_state(self) -> Dict[int, list]:
        """Per-client spend ledger as a plain tree (for run checkpoints)."""
        return {cid: list(spends) for cid, spends in self._spend.items()}

    def load_accountant_state(self, state: Dict[int, list]) -> None:
        """Restore a ledger captured by :meth:`accountant_state`."""
        self._spend = defaultdict(list)
        for cid, spends in state.items():
            self._spend[int(cid)] = [(float(e), float(d)) for e, d in spends]

    def summary(self) -> Dict[int, Dict[str, float]]:
        """Per-client accounting summary."""
        return {
            cid: {
                "releases": float(self.releases(cid)),
                "epsilon": self.epsilon_spent(cid),
                "delta": self.delta_spent(cid),
            }
            for cid in sorted(self._spend)
        }
