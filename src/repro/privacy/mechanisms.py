"""Differential-privacy mechanisms (output perturbation).

The APPFL paper (Section III-B) protects local model parameters with the
*output perturbation* method: before a client sends its update to the server,
Laplacian noise with scale ``b = Δ/ε`` is added elementwise, where ``Δ`` is an
upper bound on the sensitivity of the update and ``ε`` is the privacy budget
(smaller ε = stronger privacy).  ``ε = ∞`` disables the mechanism.

A Gaussian mechanism is also provided as an extension point (the paper lists
more advanced DP methods as future work).

Ordering with wire codecs: clipping and perturbation run inside
``BaseClient.update`` — *before* the payload reaches the codec stack
(``FLConfig.codec``) in the exchange layer.  Quantization, sparsification,
and delta encoding are therefore post-processing of an already-released
value, which cannot weaken the ε-DP guarantee (the post-processing
invariance of differential privacy).  The reverse order — noising quantized
values — would let the discrete grid leak information, so the pipeline never
encodes before perturbing.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from typing import Dict, Mapping, Optional

import numpy as np

__all__ = ["Mechanism", "NoPrivacy", "LaplaceMechanism", "GaussianMechanism", "make_mechanism"]


class Mechanism(ABC):
    """A randomised function applied to a model update before transmission."""

    #: privacy budget ε (math.inf means no privacy)
    epsilon: float = math.inf

    @abstractmethod
    def perturb_array(self, values: np.ndarray, sensitivity: float) -> np.ndarray:
        """Return a perturbed copy of ``values`` calibrated to ``sensitivity``."""

    def perturb_state(self, state: Mapping[str, np.ndarray], sensitivity: float) -> Dict[str, np.ndarray]:
        """Apply :meth:`perturb_array` to every array of a state dict."""
        return {name: self.perturb_array(np.asarray(value), sensitivity) for name, value in state.items()}

    @property
    def is_private(self) -> bool:
        """True when the mechanism actually adds noise."""
        return math.isfinite(self.epsilon)


class NoPrivacy(Mechanism):
    """The identity mechanism (ε = ∞), used for non-private baselines."""

    epsilon = math.inf

    def perturb_array(self, values: np.ndarray, sensitivity: float) -> np.ndarray:
        return np.array(values, copy=True)


class LaplaceMechanism(Mechanism):
    """ε-DP output perturbation with Laplace(0, Δ/ε) noise.

    Parameters
    ----------
    epsilon:
        Privacy budget ε̄ from Definition 1 of the paper.  ``math.inf``
        degenerates to the identity.
    rng:
        Random generator (explicit for reproducibility).
    """

    def __init__(self, epsilon: float, rng: Optional[np.random.Generator] = None):
        if epsilon <= 0:
            raise ValueError("epsilon must be positive (use math.inf for non-private)")
        self.epsilon = float(epsilon)
        self.rng = rng if rng is not None else np.random.default_rng()

    def scale(self, sensitivity: float) -> float:
        """Laplace scale parameter b = Δ/ε."""
        if sensitivity < 0:
            raise ValueError("sensitivity must be non-negative")
        if not math.isfinite(self.epsilon):
            return 0.0
        return sensitivity / self.epsilon

    def perturb_array(self, values: np.ndarray, sensitivity: float) -> np.ndarray:
        b = self.scale(sensitivity)
        if b == 0.0:
            return np.array(values, copy=True)
        return values + self.rng.laplace(0.0, b, size=values.shape)


class GaussianMechanism(Mechanism):
    """(ε, δ)-DP output perturbation with Gaussian noise.

    Uses the classic calibration ``σ = Δ · sqrt(2 ln(1.25/δ)) / ε`` (valid for
    ε ≤ 1; used here as an extension point mirroring the paper's future-work
    list of "more advanced DP methods").
    """

    def __init__(self, epsilon: float, delta: float = 1e-5, rng: Optional[np.random.Generator] = None):
        if epsilon <= 0:
            raise ValueError("epsilon must be positive")
        if not 0 < delta < 1:
            raise ValueError("delta must be in (0, 1)")
        self.epsilon = float(epsilon)
        self.delta = float(delta)
        self.rng = rng if rng is not None else np.random.default_rng()

    def sigma(self, sensitivity: float) -> float:
        """Gaussian noise standard deviation for a given L2 sensitivity."""
        if sensitivity < 0:
            raise ValueError("sensitivity must be non-negative")
        if not math.isfinite(self.epsilon):
            return 0.0
        return sensitivity * math.sqrt(2.0 * math.log(1.25 / self.delta)) / self.epsilon

    def perturb_array(self, values: np.ndarray, sensitivity: float) -> np.ndarray:
        s = self.sigma(sensitivity)
        if s == 0.0:
            return np.array(values, copy=True)
        return values + self.rng.normal(0.0, s, size=values.shape)


def make_mechanism(
    epsilon: float, kind: str = "laplace", rng: Optional[np.random.Generator] = None, **kwargs
) -> Mechanism:
    """Factory: build a mechanism from a privacy budget.

    ``epsilon = math.inf`` (or ``None``) returns :class:`NoPrivacy` regardless
    of ``kind``, matching the paper's ε ∈ {3, 5, 10, ∞} sweeps.
    """
    if epsilon is None or (isinstance(epsilon, float) and math.isinf(epsilon)):
        return NoPrivacy()
    kind = kind.lower()
    if kind == "laplace":
        return LaplaceMechanism(epsilon, rng=rng)
    if kind == "gaussian":
        return GaussianMechanism(epsilon, rng=rng, **kwargs)
    raise ValueError(f"unknown mechanism kind {kind!r}")
