"""Differential-privacy mechanisms, sensitivity rules, clipping, and accounting."""

from .accountant import PrivacyAccountant, dispatch_fingerprint
from .clipping import clip_by_norm, clip_state_by_global_norm, global_norm
from .mechanisms import (
    GaussianMechanism,
    LaplaceMechanism,
    Mechanism,
    NoPrivacy,
    make_mechanism,
)
from .sensitivity import FedAvgSensitivity, FixedSensitivity, IADMMSensitivity, SensitivityRule

__all__ = [
    "Mechanism",
    "NoPrivacy",
    "LaplaceMechanism",
    "GaussianMechanism",
    "make_mechanism",
    "SensitivityRule",
    "IADMMSensitivity",
    "FedAvgSensitivity",
    "FixedSensitivity",
    "clip_by_norm",
    "clip_state_by_global_norm",
    "global_norm",
    "PrivacyAccountant",
    "dispatch_fingerprint",
]
