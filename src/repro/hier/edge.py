"""The edge aggregator: one shard's server-side half, folded to a summary.

An :class:`EdgeAggregator` owns one shard of the client population and the
algorithm's *server-side per-client machinery* for exactly that shard: its
``server`` is the registered algorithm server built with
``shard=<its client ids>`` (so an IIADMM edge holds the dual replicas of its
own clients and replays line 6 for their uploads — the same
:meth:`~repro.core.base.BaseServer.ingest` code path the flat server runs,
including the lossy-codec reconcile contract with
:meth:`~repro.core.base.BaseClient.reconcile_upload`).

What an edge does *not* do is produce a global model: after folding its
shard's decoded uploads it emits one **shard summary** — the packed
:class:`~repro.core.partial.ExactPartial` of its clients'
:meth:`~repro.core.base.BaseServer.partial_term` contributions — and the
root combines the E summaries.  Because the partials are exact, the
two-tier fold is bit-for-bit the flat aggregation, while root traffic drops
from O(clients) to O(edges) packets per round.

Clients attach either eagerly (a list of :class:`~repro.core.base.
BaseClient`) or virtually (a per-edge :class:`~repro.scale.store.
ClientStateStore`); store-backed shards run in waves of the store's
``live_cap``, exactly like :class:`~repro.core.runner.FederatedRunner`'s
virtual mode, so a 100k-client population runs under a bounded live set.

The client↔edge hop has its own codec stack (``FLConfig.edge_codec``): the
edge re-encodes the root's global for its shard and is the single decode
point for its clients' uploads.
"""

from __future__ import annotations

import time
from concurrent.futures import ThreadPoolExecutor
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..comm import Communicator, client_endpoint
from ..comm.records import DeadLetter
from ..core.base import GLOBAL_KEY, BaseClient, BaseServer
from ..core.batched import count_client_steps, run_batched_updates
from ..core.exchange import PacketExchange
from ..core.partial import ExactPartial, pack_partial
from ..core.runner import PHASES
from ..mp import resolve_workers
from ..obs import current_monitor, current_tracer, timed_call
from ..privacy import dispatch_fingerprint

__all__ = ["EdgeAggregator"]


class EdgeAggregator:
    """One edge: a shard of clients plus the shard-scoped algorithm server.

    Parameters
    ----------
    edge_id:
        This edge's index in the topology.
    server:
        The algorithm server built with ``shard=`` this edge's client ids
        (and the *global* ``num_clients`` / sample counts, so its per-client
        terms match the flat server's bitwise).
    clients / client_store:
        The shard's clients — eager instances or a per-edge
        :class:`~repro.scale.store.ClientStateStore` (exactly one of the
        two).
    exchange:
        The client↔edge hop's :class:`~repro.core.exchange.PacketExchange`.
    communicator:
        Charges the client↔edge hop's bytes/seconds (shared across edges by
        the synchronous runner; endpoint names stay globally unique because
        client ids are global).
    max_workers:
        Thread-pool width for client updates (``FLConfig.parallel_clients``
        semantics; 0 = one per core).
    """

    def __init__(
        self,
        edge_id: int,
        server: BaseServer,
        clients: Optional[Sequence[BaseClient]] = None,
        client_store=None,
        exchange: Optional[PacketExchange] = None,
        communicator: Optional[Communicator] = None,
        max_workers: Optional[int] = None,
    ):
        if (clients is None or not list(clients)) and client_store is None:
            raise ValueError("an edge needs clients or a client_store")
        if clients and client_store is not None:
            raise ValueError("pass either clients or client_store, not both")
        self.edge_id = int(edge_id)
        self.server = server
        self.shard: Tuple[int, ...] = server.shard
        self.clients = list(clients) if clients else []
        self._store = client_store
        if self.clients and sorted(c.client_id for c in self.clients) != list(self.shard):
            raise ValueError(
                f"edge {edge_id}'s clients {sorted(c.client_id for c in self.clients)} "
                f"do not match its shard {list(self.shard)}"
            )
        self._client_by_id = {c.client_id: c for c in self.clients}
        self.exchange = exchange if exchange is not None else PacketExchange(server.config.codec)
        # Clients derive their lossy-wire bookkeeping (IIADMM's reconcile
        # stash) from their own config's codec — a mismatch with this hop's
        # stack would silently desynchronise the dual replicas.  Fail fast.
        endpoint_codecs = {c.config.codec for c in self.clients}
        store_config = getattr(client_store, "config", None)
        if store_config is not None:
            endpoint_codecs.add(store_config.codec)
        for codec in endpoint_codecs:
            if PacketExchange(codec).spec != self.exchange.spec:
                raise ValueError(
                    f"edge {edge_id}'s clients were built with codec {codec!r} but its "
                    f"client-hop exchange uses {self.exchange.spec!r}; hier clients "
                    f"must carry the edge-hop codec"
                )
        self.communicator = communicator
        if max_workers is None:
            max_workers = server.config.parallel_clients
        self.max_workers = resolve_workers(max_workers)
        self.backend = str(getattr(server.config, "execution_backend", "thread"))
        if self.backend == "process" and self.exchange.lossy:
            raise ValueError(
                f"execution_backend='process' requires a lossless client-hop "
                f"codec; {self.exchange.spec!r} is lossy and its reconcile "
                f"step needs parent-side client state"
            )
        self._pool = None  # ProcessWorkerPool over this edge's shard
        self.worker_telemetry = None  # banked metrics from retired pools
        self._executor: Optional[ThreadPoolExecutor] = None
        self._executor_width = 0
        self._pending_steps: Dict[int, int] = {}
        #: the latest global model received from the root (decoded)
        self._global: np.ndarray = server.global_params.copy()
        #: ADMM-family servers absorb uploads in ingest(); FedAvg-style ones
        #: contribute per-upload terms, folded incrementally so a store-backed
        #: shard never holds more than a wave of decoded payloads.
        self._streaming = hasattr(server, "aggregate_global")
        self._fold: Optional[ExactPartial] = None
        self._participants: List[int] = []
        #: cumulative client optimizer steps this edge executed (see
        #: FederatedRunner.client_steps; the hier runner sums edges per round).
        self.client_steps: int = 0
        self.begin_collect()

    # ------------------------------------------------------------ global hop
    def receive_global(self, payload: "Dict[str, np.ndarray]") -> None:
        """Install the root's (decoded) broadcast as this edge's current
        global model — the ``w`` every subsequent shard dispatch carries and
        the dual-replay reference its uploads are ingested against."""
        self._global = np.asarray(payload[GLOBAL_KEY]).copy()
        self.server.global_params = self._global
        self.server.sync_model()

    @property
    def current_global(self) -> np.ndarray:
        return self._global

    # -------------------------------------------------------------- folding
    def begin_collect(self) -> None:
        """Reset the summary fold (called at the start of a collection
        window: a synchronous round, or an async buffer window)."""
        self._participants = []
        if not self._streaming:
            self._fold = ExactPartial(self.server.vectorizer.dim, self.server.vectorizer.dtype)

    def ingest_upload(self, cid: int, payload, dispatched_global: np.ndarray) -> None:
        """Decode + absorb one client upload (the shard's single decode
        point).  ``dispatched_global`` must be the global snapshot *this
        client* trained on — under async staleness that is the dispatch-time
        ``w``, not the edge's current one."""
        decoded = self.server.ingest(cid, payload, dispatched_global)
        self._participants.append(int(cid))
        if not self._streaming:
            self._fold.add(self.server.partial_term(cid, decoded))
        tracer = current_tracer()
        if tracer is not None:
            tracer.event(
                "edge_ingest", "edge", lane=f"edge:{self.edge_id}",
                edge=self.edge_id, client=int(cid),
            )

    def summarize(self) -> Tuple[Dict[str, np.ndarray], Tuple[int, ...]]:
        """Fold the collection window into one shard summary.

        Returns the packed partial (``psum:<i>`` tensors, ready for the
        edge→root codec) and the participating global client ids.  ADMM
        summaries cover the whole shard's last-known state (the
        partial-participation form of the global update); FedAvg summaries
        cover exactly the window's uploads.  Resets the fold.
        """
        participants = tuple(sorted(self._participants))
        partial = self.server.partial_sum() if self._streaming else self._fold
        summary = pack_partial(partial)
        self.server.round += 1
        self.begin_collect()
        tracer = current_tracer()
        if tracer is not None:
            tracer.event(
                "edge_summary", "edge", lane=f"edge:{self.edge_id}",
                edge=self.edge_id, participants=len(participants),
            )
        return summary, participants

    def initial_summary(self) -> Tuple[Dict[str, np.ndarray], Tuple[int, ...]]:
        """The shard's round-0 summary (ADMM family only: the fold of the
        initial primal/dual state every client implicitly shares).  Lets an
        asynchronous root combine over *all* edges before slow ones report."""
        if not self._streaming:
            raise ValueError("initial summaries only exist for ADMM-family servers")
        return pack_partial(self.server.partial_sum()), ()

    # ------------------------------------------------------ client execution
    def _acquire(self, cid: int) -> BaseClient:
        if self._store is None:
            return self._client_by_id[cid]
        return self._store.checkout(cid)

    def _release(self, cid: int) -> None:
        if self._store is not None:
            self._store.release(cid)

    def _update_clients(self, clients: Sequence[BaseClient], payloads) -> Dict[int, Dict]:
        # Same cohort gate as FederatedRunner._update_clients: with
        # client_batch > 1 and a lossless client-hop, eligible shard members
        # run as stacked cohorts (bitwise identical at float64) and the rest
        # fall back to the per-client path below.
        cfg = self.server.config
        client_batch = int(getattr(cfg, "client_batch", 1) or 1)
        self._pending_steps = {}
        if self.backend == "process" and self._store is None and len(clients) > 1:
            uploads = self._update_clients_process(clients, payloads)
            if uploads is not None:
                return uploads
        if client_batch > 1 and len(clients) > 1 and not self.exchange.lossy:
            batched = run_batched_updates(
                clients, payloads, client_batch, tracer=current_tracer()
            )
            if batched is not None:
                uploads, leftover, _steps = batched
                if leftover:
                    uploads.update(self._update_clients_eager(leftover, payloads))
                self._pending_steps = {c.client_id: count_client_steps(c) for c in clients}
                return {c.client_id: uploads[c.client_id] for c in clients}
        uploads = self._update_clients_eager(clients, payloads)
        self._pending_steps = {c.client_id: count_client_steps(c) for c in clients}
        return uploads

    def _settle_steps(self, gathered) -> None:
        """Fold pending step counts of surviving clients only (see
        FederatedRunner._settle_steps — uplink dead letters must not count)."""
        self.client_steps += sum(self._pending_steps.get(cid, 0) for cid in gathered)
        self._pending_steps = {}

    def _ensure_pool(self):
        if self._pool is None:
            from ..mp.pool import ProcessWorkerPool

            client_batch = int(getattr(self.server.config, "client_batch", 1) or 1)
            workers = min(self.max_workers, len(self.shard))
            if self._store is not None:
                self._pool = ProcessWorkerPool.from_store(
                    self._store, workers, client_batch=client_batch,
                    ids=self.shard,
                )
            else:
                self._pool = ProcessWorkerPool.from_eager_clients(
                    self.clients, workers, client_batch=client_batch
                )
        return self._pool

    def _retire_pool(self) -> None:
        """Pull worker state home and discard the pool (see
        FederatedRunner._retire_pool) — an in-process fallback round would
        otherwise leave the workers stale and a later pooled round (or a
        second fallback's ``sync_parent``) would silently diverge."""
        if self._pool is not None:
            try:
                self._pool.sync_parent()
            finally:
                self._bank_pool_telemetry()
                self._pool.close()
                self._pool = None

    def _bank_pool_telemetry(self) -> None:
        """Fold the dying pool's worker metrics into a registry that outlives
        it, so a fallback round doesn't silently drop worker telemetry."""
        telemetry = getattr(self._pool, "telemetry", None)
        if telemetry is None or not telemetry.snapshot()["counters"]:
            return
        if self.worker_telemetry is None:
            from ..obs import MetricsRegistry

            self.worker_telemetry = MetricsRegistry()
        self.worker_telemetry.merge(telemetry)

    def _emit_worker_spans(self, ids, timings) -> None:
        tracer = current_tracer()
        monitor = current_monitor()
        if tracer is None and monitor is None:
            return
        for cid in ids:
            t = timings.get(cid)
            if t is not None:
                if tracer is not None:
                    tracer.emit_span(
                        "local_update", "client", t[0], t[1],
                        lane=f"client:{cid}", client=cid, edge=self.edge_id,
                        backend="process",
                    )
                if monitor is not None:
                    monitor.observe_local_update(t[1] - t[0], client=cid)

    def _update_clients_process(self, clients, payloads):
        """Run this (eager) shard's updates on the edge's process pool; see
        FederatedRunner._update_clients_process."""
        from ..mp.pool import payload_template

        ids = [c.client_id for c in clients]
        template = payload_template(payloads, ids)
        if template is None:
            # Re-home the workers' authoritative state and drop the now-stale
            # pool before running this shard in-process.
            self._retire_pool()
            return None
        uploads, steps, timings = self._ensure_pool().run_round(ids, template)
        self._pending_steps = steps
        self._emit_worker_spans(ids, timings)
        return {cid: uploads[cid] for cid in ids}

    def _update_clients_eager(self, clients: Sequence[BaseClient], payloads) -> Dict[int, Dict]:
        # With a tracer armed, updates are timed in place and the spans
        # emitted afterwards from this thread in client order (see
        # FederatedRunner._update_clients) — order and results are unchanged.
        tracer = current_tracer()
        monitor = current_monitor()
        if self.backend != "serial" and self.max_workers > 1 and len(clients) > 1:
            # Size by this call's participants, not the whole shard — degraded
            # rounds would over-provision.  Grow-only, like the flat runner.
            needed = min(self.max_workers, len(clients))
            if self._executor is None or self._executor_width < needed:
                if self._executor is not None:
                    self._executor.shutdown(wait=True)
                self._executor = ThreadPoolExecutor(
                    max_workers=needed,
                    thread_name_prefix=f"hier-edge{self.edge_id}",
                )
                self._executor_width = needed
            if tracer is None and monitor is None:
                results = list(self._executor.map(lambda c: c.update(payloads[c.client_id]), clients))
                return {c.client_id: r for c, r in zip(clients, results)}
            timed = list(
                self._executor.map(lambda c: timed_call(c.update, payloads[c.client_id]), clients)
            )
            for client, (_, t0, t1) in zip(clients, timed):
                if tracer is not None:
                    tracer.emit_span(
                        "local_update", "client", t0, t1,
                        lane=f"client:{client.client_id}",
                        client=client.client_id, edge=self.edge_id,
                    )
                if monitor is not None:
                    monitor.observe_local_update(t1 - t0, client=client.client_id)
            return {c.client_id: r for c, (r, _, _) in zip(clients, timed)}
        if tracer is None and monitor is None:
            return {c.client_id: c.update(payloads[c.client_id]) for c in clients}
        uploads: Dict[int, Dict] = {}
        for client in clients:
            upload, t0, t1 = timed_call(client.update, payloads[client.client_id])
            if tracer is not None:
                tracer.emit_span(
                    "local_update", "client", t0, t1,
                    lane=f"client:{client.client_id}",
                    client=client.client_id, edge=self.edge_id,
                )
            if monitor is not None:
                monitor.observe_local_update(t1 - t0, client=client.client_id)
            uploads[client.client_id] = upload
        return uploads

    def _local_round_process(
        self, round_idx, active_ids, received, dispatched_global, accountant,
        timings, tracer, lane,
    ) -> bool:
        """This shard's client phases on the edge's process pool (see
        FederatedRunner._virtual_round_process — same structure, with the
        edge's ingest/summary fold instead of a server finalize)."""
        from ..mp.pool import payload_template

        def end_phase(phase: str, t0: float) -> float:
            now = time.perf_counter()
            timings[phase] += now - t0
            if tracer is not None:
                tracer.emit_span(
                    phase, "phase", t0, now, lane=lane, edge=self.edge_id, round=round_idx
                )
            return now

        tick = time.perf_counter()
        payloads = {cid: self.exchange.open_dispatch(received[cid]) for cid in active_ids}
        template = payload_template(payloads, active_ids)
        if template is None:
            self._retire_pool()
            end_phase("broadcast", tick)
            return False
        tick = end_phase("broadcast", tick)

        uploads, steps, wtimings = self._ensure_pool().run_round(active_ids, template)
        self._emit_worker_spans(active_ids, wtimings)
        tick = end_phase("local_update", tick)

        # Lossless client hop is enforced for this backend — no reconcile.
        packets = {
            cid: self.exchange.encode_upload(uploads[cid], payloads[cid][GLOBAL_KEY])
            for cid in active_ids
        }
        if self.communicator is not None:
            gathered = self.communicator.collect(round_idx, packets)
        else:
            gathered = packets
        self.client_steps += sum(steps.get(cid, 0) for cid in gathered)
        tick = end_phase("gather", tick)

        cfg = self._store.config if self._store.config is not None else self.server.config
        privacy_key = None
        for cid in active_ids:
            if cid not in gathered:
                continue
            self.ingest_upload(cid, gathered[cid], dispatched_global)
            if accountant is not None and cfg.privacy.enabled:
                if privacy_key is None:
                    privacy_key = dispatch_fingerprint(round_idx, dispatched_global)
                accountant.record(cid, cfg.privacy.epsilon, key=privacy_key)
        end_phase("aggregate", tick)
        return True

    def run_local_round(
        self,
        round_idx: int,
        accountant=None,
        timings: Optional[Dict[str, float]] = None,
    ) -> Tuple[Dict[str, np.ndarray], Tuple[int, ...]]:
        """One synchronous shard round: dispatch → update → gather → ingest.

        Mirrors :meth:`FederatedRunner.run_round`'s client loop over this
        shard (wave-limited when store-backed), then folds the uploads into
        the shard summary via :meth:`summarize`.  ``timings`` (when given)
        accumulates the runner's phase keys.
        """
        timings = timings if timings is not None else {}
        for phase in PHASES[:4]:  # the shard loop has no evaluate phase
            timings.setdefault(phase, 0.0)
        shard = list(self.shard)
        injector = self.communicator.injector if self.communicator is not None else None
        tracer = current_tracer()
        monitor = current_monitor()
        lane = f"edge:{self.edge_id}"

        def end_phase(phase: str) -> None:
            now = time.perf_counter()
            timings[phase] += now - tick
            if tracer is not None:
                tracer.emit_span(
                    phase, "phase", tick, now, lane=lane, edge=self.edge_id, round=round_idx
                )

        tick = time.perf_counter()
        broadcast_payload = {GLOBAL_KEY: self._global.copy()}
        packet = self.exchange.encode_dispatch(broadcast_payload)
        if self.communicator is not None:
            received = self.communicator.broadcast(round_idx, packet, shard)
        else:
            received = {cid: packet for cid in shard}
        if self.exchange.lossy:
            dispatched_global = self.exchange.open_dispatch(packet)[GLOBAL_KEY]
        else:
            dispatched_global = broadcast_payload[GLOBAL_KEY]
        # Same degraded-cohort rules as the flat runner: unreachable clients
        # sit the round out, crashed ones die before computing (their local
        # state — and this edge's server-side replica of it — must not
        # advance), and their unsent uploads are dead-lettered.
        active_ids = [cid for cid in shard if cid in received]
        if injector is not None:
            crashed = [cid for cid in active_ids if injector.client_crashed(cid, round_idx)]
            if crashed:
                crashed_set = set(crashed)
                active_ids = [cid for cid in active_ids if cid not in crashed_set]
                for cid in crashed:
                    injector.count("crash")
                    self.communicator.log.add_dead_letter(
                        DeadLetter(round_idx, client_endpoint(cid), "send_local", 0, 0, "crash")
                    )
        end_phase("broadcast")

        privacy_key = None
        # Store-backed shard on the process backend: one pool call, each
        # worker waving through its sub-shard (eager shards route through
        # _update_clients' gate inside the wave loop instead).
        pooled = (
            self.backend == "process" and self._store is not None and len(active_ids) > 1
        )
        if pooled:
            pooled = self._local_round_process(
                round_idx, active_ids, received, dispatched_global, accountant,
                timings, tracer, lane,
            )
        wave = max(1, int(self._store.live_cap)) if self._store is not None else len(shard)
        wave_ids = [] if pooled else active_ids
        for start in range(0, len(wave_ids), wave):
            ids = wave_ids[start : start + wave]
            wave_start = tick = time.perf_counter()
            clients = [self._acquire(cid) for cid in ids]
            payloads = {cid: self.exchange.open_dispatch(received[cid]) for cid in ids}
            end_phase("broadcast")

            tick = time.perf_counter()
            uploads = self._update_clients(clients, payloads)
            end_phase("local_update")

            tick = time.perf_counter()
            packets = {}
            for client in clients:
                cid = client.client_id
                packets[cid] = self.exchange.encode_upload(uploads[cid], payloads[cid][GLOBAL_KEY])
                self.exchange.reconcile(client, uploads[cid], packets[cid], payloads[cid][GLOBAL_KEY])
            if self.communicator is not None:
                gathered = self.communicator.collect(round_idx, packets)
            else:
                gathered = packets
            self._settle_steps(gathered)
            end_phase("gather")

            tick = time.perf_counter()
            # Privacy is charged per *accepted* ingest, keyed on the exact
            # dispatched-global bytes so a crash-recovery replay of this shard
            # round never double-spends the budget.
            for client in clients:
                cid = client.client_id
                if cid not in gathered:
                    continue
                self.ingest_upload(cid, gathered[cid], dispatched_global)
                if accountant is not None and client.config.privacy.enabled:
                    if privacy_key is None:
                        privacy_key = dispatch_fingerprint(round_idx, dispatched_global)
                    accountant.record(cid, client.config.privacy.epsilon, key=privacy_key)
            end_phase("aggregate")
            for cid in ids:
                self._release(cid)
            if tracer is not None:
                tracer.emit_span(
                    "wave", "round", wave_start, time.perf_counter(),
                    lane=lane, edge=self.edge_id, round=round_idx,
                    wave=start // wave, clients=len(ids),
                )
            if monitor is not None:
                monitor.on_wave(self, round_idx, start // wave)

        tick = time.perf_counter()
        summary, participants = self.summarize()
        end_phase("aggregate")
        return summary, participants

    # -------------------------------------------------------------- plumbing
    def close(self) -> None:
        self._retire_pool()
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None
            self._executor_width = 0
