"""Hierarchical multi-tier federation: root ↔ edge aggregators ↔ clients.

The flat runners aggregate every client at one server, which caps a
federation at one tier no matter how many virtual clients the
:mod:`repro.scale` store can hold.  This subsystem shards the population
behind **edge aggregators**: a :class:`~repro.hier.topology.Topology`
deterministically partitions clients into E shards (spec strings like
``"edges:8"`` / ``"edges:8:by-label"``, or explicit maps), each
:class:`~repro.hier.edge.EdgeAggregator` runs its shard's server-side
machinery (ingest, ADMM dual replays, lossy-codec reconcile) and folds the
shard into one **exact** partial sum
(:class:`~repro.core.partial.ExactPartial`), and the root combines the E
shard summaries — so root traffic is O(edges) packets per round and, with
identity per-hop codecs, the result is **bit-for-bit** the flat run for
FedAvg, ICEADMM and IIADMM.

Two runners mirror the flat APIs: the synchronous
:class:`~repro.hier.runner.HierRunner` and the event-driven
:class:`~repro.hier.async_runner.HierAsyncRunner`, where every edge is an
actor on its own virtual clock and the root applies staleness-aware
strategies over shard summaries.  Per-edge
:class:`~repro.scale.store.ClientStateStore`\\ s bound the live client set,
and each hop (client↔edge, edge↔root) carries its own codec stack and link
model.
"""

from .async_runner import (
    HierAsyncRunner,
    RootFedAsync,
    RootFedBuff,
    RootStrategy,
    build_hier_async_federation,
)
from .edge import EdgeAggregator
from .runner import HierRunner, build_hier_federation
from .topology import Topology, TopologySpec, build_topology, majority_labels, parse_topology

__all__ = [
    "Topology",
    "TopologySpec",
    "parse_topology",
    "build_topology",
    "majority_labels",
    "EdgeAggregator",
    "HierRunner",
    "build_hier_federation",
    "RootStrategy",
    "RootFedBuff",
    "RootFedAsync",
    "HierAsyncRunner",
    "build_hier_async_federation",
]
