"""Synchronous hierarchical federation: root ↔ edges ↔ clients.

:class:`HierRunner` mirrors :class:`~repro.core.runner.FederatedRunner`'s
API (``history``, ``phase_seconds``, ``run()``/``run_round()``, context
management) over a two-tier topology: every round the root's global model is
broadcast once per edge (the edge↔root hop's codec and communicator), each
:class:`~repro.hier.edge.EdgeAggregator` runs its shard's client loop
(client↔edge hop) and folds the uploads into one exact shard summary, and
the root combines the E summaries into the next global model.

Exactness: with identity codecs on both hops the resulting
:class:`~repro.core.runner.TrainingHistory` — accuracies, losses, the global
parameter vector, and the ADMM dual replicas — is **bit-for-bit** the flat
``FederatedRunner`` run over the same clients, for FedAvg, ICEADMM and
IIADMM alike (see :mod:`repro.core.partial` for why grouping cannot change a
bit, and ``tests/test_hier.py`` for the regression).  Communication metrics
legitimately differ: the hierarchy measures two wires where the flat run
measures one, reported per tier in ``RoundResult.comm_bytes_by_tier``.

Scale: root traffic is O(edges) packets per round instead of O(clients),
and with per-edge :class:`~repro.scale.store.ClientStateStore`s
(``live_cap=`` in :func:`build_hier_federation`) the live client set is
bounded by ``edges × live_cap`` regardless of population size.
"""

from __future__ import annotations

import time
from dataclasses import replace
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from .. import nn
from ..comm import Communicator, SerialCommunicator, edge_endpoint
from ..core.base import BaseServer
from ..core.config import FLConfig
from ..core.exchange import PacketExchange
from ..core.metrics import Evaluator
from ..core.registry import get_algorithm
from ..core.runner import PHASES, RoundResult, TrainingHistory
from ..data import Dataset
from ..obs import current_monitor, current_tracer, timed_call
from ..privacy import PrivacyAccountant
from .edge import EdgeAggregator
from .topology import Topology, build_topology, majority_labels, parse_topology
from ..core.partial import unpack_partial

__all__ = ["HierRunner", "build_hier_federation"]

CLIENT_EDGE = "client_edge"
EDGE_ROOT = "edge_root"


def _hop_codecs(config: FLConfig) -> Tuple[str, str]:
    """The (client↔edge, edge↔root) codec specs a config implies."""
    edge = config.edge_codec if config.edge_codec is not None else config.codec
    root = config.root_codec if config.root_codec is not None else config.codec
    return edge, root


def _check_hier_server(server: BaseServer) -> None:
    if not server.supports_partials:
        raise ValueError(
            f"algorithm server {type(server).__name__} does not implement the "
            f"partial_term/combine_partials split required for hierarchical runs"
        )
    if server.config.adaptive_rho and hasattr(server, "duals"):
        # Root and edges would each grow rho on their own schedule and the
        # per-client dual replays would silently desynchronise — same
        # restriction repro.asyncfl enforces.
        raise ValueError(
            "adaptive_rho is not supported by hierarchical runs for "
            "ADMM-family algorithms: root and edge rho schedules diverge"
        )


class HierRunner:
    """Runs the synchronous two-tier federated-learning loop."""

    def __init__(
        self,
        root: BaseServer,
        edges: Sequence[EdgeAggregator],
        evaluator: Optional[Evaluator] = None,
        accountant: Optional[PrivacyAccountant] = None,
        root_communicator: Optional[Communicator] = None,
        client_communicator: Optional[Communicator] = None,
    ):
        if not list(edges):
            raise ValueError("at least one edge is required")
        _check_hier_server(root)
        self.server = root  # FederatedRunner-compatible attribute name
        self.edges = list(edges)
        covered = sorted(cid for edge in self.edges for cid in edge.shard)
        if covered != list(range(root.num_clients)):
            raise ValueError(
                f"edges cover {len(covered)} client ids but the root expects "
                f"[0, {root.num_clients})"
            )
        self.num_clients = root.num_clients
        edge_spec, root_spec = _hop_codecs(root.config)
        self.exchange = PacketExchange(root_spec)  # the edge↔root hop
        for edge in self.edges:
            if edge.exchange.spec != PacketExchange(edge_spec).spec:
                raise ValueError(
                    f"edge {edge.edge_id} uses client-hop codec {edge.exchange.spec!r} "
                    f"but the config implies {edge_spec!r}"
                )
        if root_communicator is not None and root_communicator is client_communicator:
            # One log cannot serve both tiers: the per-tier byte split below
            # computes per-communicator deltas, so sharing would double-count
            # every round and mislabel every record.
            raise ValueError("root_communicator and client_communicator must be distinct instances")
        self.root_communicator = (
            root_communicator if root_communicator is not None else SerialCommunicator()
        )
        # The runner owns this tier's log naming: records read "edge:<id>".
        # (Plain function as an *instance* attribute — no self-binding on
        # lookup.)  Don't reuse the instance for a flat run afterwards.
        self.root_communicator.endpoint_namer = edge_endpoint
        self.client_communicator = (
            client_communicator if client_communicator is not None else SerialCommunicator()
        )
        for edge in self.edges:
            if edge.communicator is None:
                edge.communicator = self.client_communicator
        self.evaluator = evaluator
        self.accountant = accountant if accountant is not None else PrivacyAccountant()
        self.history = TrainingHistory()
        self.phase_seconds: Dict[str, float] = {phase: 0.0 for phase in PHASES}
        #: cumulative client optimizer steps across all edges and rounds (the
        #: numerator of the client_steps_per_sec throughput metric)
        self.client_steps: int = 0
        #: fault layer (see :meth:`enable_faults`); ``None`` keeps every code
        #: path bit-identical to the fault-free runner
        self.injector = None
        #: last shard summary the root received per edge (decoded), the
        #: stale stand-in ADMM combines for an unreachable edge
        self._last_summary: Dict[int, Dict[str, np.ndarray]] = {}
        #: round-start snapshot crashed edges recover from
        self._ckpt = None

    # ---------------------------------------------------------------- faults
    def enable_faults(self, faults, retry=None) -> "HierRunner":
        """Arm fault injection across the whole two-tier federation.

        ``faults`` is a :class:`repro.faults.FaultPlan` or injector; it is
        installed on *both* communicators (client↔edge and edge↔root link
        faults, client crashes at the uplink seam) and drives the runner's
        own edge-crash/recovery machinery: an edge in the plan's
        ``edge_crash_rounds`` loses its in-memory state mid-round — the root
        detects the death, restores that edge's slice of the round-start
        :class:`~repro.scale.RunCheckpoint`, and replays its shard round.
        ADMM-family roots combine a stale cached summary for edges that stay
        unreachable (their clients' last-known state — the algorithms'
        partial-participation form); FedAvg omits them and renormalises.
        """
        from ..faults.injector import FaultInjector
        from ..faults.plan import FaultPlan

        if isinstance(faults, FaultPlan):
            faults = FaultInjector(faults)
        self.injector = faults
        self.client_communicator.install_faults(faults, retry)
        self.root_communicator.install_faults(faults, retry)
        if hasattr(self.server, "aggregate_global"):
            from ..core.partial import pack_partial

            # Seed the stale-summary cache with each shard's current
            # last-known fold, so an edge unreachable on the very first
            # faulted round still contributes its (initial) state.
            for edge in self.edges:
                self._last_summary[edge.edge_id] = pack_partial(edge.server.partial_sum())
        return self

    # ------------------------------------------------------------------- run
    def run_round(self, round_idx: int) -> RoundResult:
        """Execute one two-tier communication round and return its metrics."""
        timings: Dict[str, float] = {k: 0.0 for k in self.phase_seconds}
        tracer = current_tracer()
        round_start = time.perf_counter()

        def end_phase(phase: str) -> None:
            # Root-tier phase interval; edge-tier intervals are timed (and
            # traced) inside EdgeAggregator.run_local_round on the edge lanes.
            now = time.perf_counter()
            timings[phase] += now - tick
            if tracer is not None:
                tracer.emit_span(phase, "phase", tick, now, lane="root", round=round_idx)
        client_bytes_before = self.client_communicator.total_bytes()
        root_bytes_before = self.root_communicator.total_bytes()
        seconds_before = (
            self.client_communicator.log.total_seconds()
            + self.root_communicator.log.total_seconds()
        )
        edge_ids = [edge.edge_id for edge in self.edges]
        steps_before = sum(edge.client_steps for edge in self.edges)
        injector = self.injector
        faulted_before = (
            self.client_communicator.log.failed_attempts()
            + self.root_communicator.log.failed_attempts()
            if injector is not None
            else 0
        )
        if injector is not None and injector.plan.edge_crash_rounds:
            # Round-start snapshot: the slice a mid-round edge death rolls
            # back to.  Taken before the broadcast mutates any edge, so a
            # recovered edge re-applies this round's global and replays its
            # shard round bit-identically.
            from ..scale.checkpoint import RunCheckpoint

            self._ckpt = RunCheckpoint.capture(self)

        # Root → edges: one packet, E simulated downlinks; each edge decodes
        # its own copy — with a lossy root hop every edge trains its shard on
        # the *decoded* global, exactly what it will be ingested against.
        # Edges whose downlink dead-lettered sit the round out with their
        # previous state intact.
        tick = time.perf_counter()
        packet = self.exchange.encode_dispatch(self.server.broadcast_payload())
        received = self.root_communicator.broadcast(round_idx, packet, edge_ids)
        live_edges = [edge for edge in self.edges if edge.edge_id in received]
        for edge in live_edges:
            edge.receive_global(self.exchange.open_dispatch(received[edge.edge_id]))
        end_phase("broadcast")

        # Edges: the shard client loops (client↔edge hop), folded to
        # summaries.  Edge order is fixed but irrelevant to the result —
        # summaries are exact partials.  A planned edge crash loses the
        # summary with the edge's memory; the root restores the edge's
        # checkpoint slice, re-sends this round's global, and the replay —
        # same round, same keyed fault draws, rolled-back clients — yields
        # the exact summary the crash destroyed (privacy dedupe keeps the
        # replayed releases from double-charging the budget).
        summaries: Dict[int, Dict[str, np.ndarray]] = {}
        parts_by_edge: Dict[int, Tuple[int, ...]] = {}
        recovered: List[int] = []
        for edge in live_edges:
            (summary, part), e0, e1 = timed_call(
                edge.run_local_round, round_idx, accountant=self.accountant, timings=timings
            )
            if tracer is not None:
                tracer.emit_span(
                    "edge_round", "edge", e0, e1,
                    lane=f"edge:{edge.edge_id}", edge=edge.edge_id, round=round_idx,
                )
            if injector is not None and injector.edge_crashed(edge.edge_id, round_idx):
                injector.stats.edge_kills += 1
                if tracer is not None:
                    tracer.event("edge_kill", "fault", lane="faults", edge=edge.edge_id, round=round_idx)
                tick = time.perf_counter()
                self._ckpt.restore_edge(edge)
                edge.receive_global(self.exchange.open_dispatch(received[edge.edge_id]))
                end_phase("broadcast")
                (summary, part), e0, e1 = timed_call(
                    edge.run_local_round, round_idx, accountant=self.accountant, timings=timings
                )
                if tracer is not None:
                    tracer.emit_span(
                        "edge_round", "edge", e0, e1,
                        lane=f"edge:{edge.edge_id}", edge=edge.edge_id, round=round_idx, replay=True,
                    )
                injector.stats.recoveries += 1
                recovered.append(edge.edge_id)
                if tracer is not None:
                    tracer.event(
                        "edge_recover", "fault", lane="faults", edge=edge.edge_id, round=round_idx
                    )
            summaries[edge.edge_id] = summary
            parts_by_edge[edge.edge_id] = part

        # Edges → root: one summary packet per live edge over the root hop.
        tick = time.perf_counter()
        packets = {
            eid: self.exchange.pipeline.encode_state(summary) for eid, summary in summaries.items()
        }
        gathered = self.root_communicator.collect(round_idx, packets)
        end_phase("gather")

        # Root: decode each summary once and combine the exact partials.
        tick = time.perf_counter()
        participants: List[int] = []
        if injector is None:
            participants = [cid for eid in edge_ids for cid in parts_by_edge[eid]]
            partials = [
                unpack_partial(self.exchange.pipeline.decode_state(gathered[eid])) for eid in edge_ids
            ]
            self.server.combine_partials(partials, participants)
        else:
            # Degraded combine: only delivered summaries count as this
            # round's participants.  ADMM-family roots substitute the cached
            # last-delivered summary for a missing edge (its clients'
            # last-known state — the partial-participation form those
            # algorithms already define); FedAvg omits the missing shard and
            # renormalises over who actually reported.
            streaming = hasattr(self.server, "aggregate_global")
            partials = []
            for eid in edge_ids:
                if eid in gathered:
                    decoded = self.exchange.pipeline.decode_state(gathered[eid])
                    self._last_summary[eid] = decoded
                    partials.append(unpack_partial(decoded))
                    participants.extend(parts_by_edge[eid])
                elif streaming and eid in self._last_summary:
                    partials.append(unpack_partial(self._last_summary[eid]))
            if streaming or participants:
                self.server.combine_partials(partials, participants)
            # else: the whole cohort was lost — keep the current global.
        end_phase("aggregate")

        accuracy = loss = None
        tick = time.perf_counter()
        if self.evaluator is not None:
            self.server.sync_model()
            accuracy, loss = self.evaluator(self.server.model)
        end_phase("evaluate")

        for phase, seconds in timings.items():
            self.phase_seconds[phase] += seconds
        round_steps = sum(edge.client_steps for edge in self.edges) - steps_before
        self.client_steps += round_steps
        if tracer is not None:
            tracer.emit_span(
                "round", "round", round_start, time.perf_counter(),
                lane="root", round=round_idx, edges=len(live_edges),
            )

        client_bytes = self.client_communicator.total_bytes() - client_bytes_before
        root_bytes = self.root_communicator.total_bytes() - root_bytes_before
        result = RoundResult(
            round=round_idx,
            test_accuracy=accuracy,
            test_loss=loss,
            comm_bytes=client_bytes + root_bytes,
            comm_seconds=(
                self.client_communicator.log.total_seconds()
                + self.root_communicator.log.total_seconds()
                - seconds_before
            ),
            phase_seconds=timings,
            participating_clients=tuple(sorted(participants)),
            comm_bytes_by_tier={CLIENT_EDGE: client_bytes, EDGE_ROOT: root_bytes},
            failed_clients=(
                tuple(sorted(set(range(self.num_clients)) - set(participants)))
                if injector is not None
                else None
            ),
            retries=(
                self.client_communicator.log.failed_attempts()
                + self.root_communicator.log.failed_attempts()
                - faulted_before
                if injector is not None
                else None
            ),
            recovered_edges=tuple(sorted(recovered)) if injector is not None else None,
            client_steps=round_steps,
        )
        self.history.add(result)
        monitor = current_monitor()
        if monitor is not None:
            monitor.on_round(self, result)
        return result

    def run(
        self,
        num_rounds: Optional[int] = None,
        callback: Optional[Callable[[RoundResult], None]] = None,
    ) -> TrainingHistory:
        """Run ``num_rounds`` further rounds (default: the config's
        ``num_rounds``); round indices continue from the recorded history."""
        total = num_rounds if num_rounds is not None else self.server.config.num_rounds
        start = len(self.history)
        try:
            for t in range(start, start + total):
                result = self.run_round(t)
                if callback is not None:
                    callback(result)
        finally:
            self.close()
        return self.history

    # -------------------------------------------------------------- plumbing
    def close(self) -> None:
        """Release the edges' worker pools (recreated lazily if needed)."""
        for edge in self.edges:
            edge.close()

    def __enter__(self) -> "HierRunner":
        return self

    def __exit__(self, exc_type, exc_value, traceback) -> None:
        self.close()


def build_hier_federation(
    config: FLConfig,
    model_fn: Callable[[], nn.Module],
    client_datasets: Sequence[Dataset],
    test_dataset: Optional[Dataset] = None,
    topology: Union[str, Topology, Sequence[Sequence[int]], None] = None,
    live_cap: Optional[int] = None,
    seed: Optional[int] = None,
    labels: Optional[Sequence[int]] = None,
    root_communicator: Optional[Communicator] = None,
    client_communicator: Optional[Communicator] = None,
    state_codec: str = "identity",
    compress: Optional[str] = None,
) -> HierRunner:
    """Construct a :class:`HierRunner` for a named algorithm.

    Mirrors :func:`repro.core.runner.build_federation`: same registry lookup,
    same initial-state synchronisation (every endpoint starts from the root
    model's parameters), same ``seed + 1000 + cid`` client RNG streams — so
    with identity per-hop codecs the hierarchical history is bit-for-bit the
    flat one.

    ``topology`` defaults to ``config.topology`` (one of the two is
    required); ``by-label`` specs derive per-client ``labels`` from the
    datasets' majority label when not given.  ``live_cap`` switches every
    edge to a :class:`~repro.scale.store.ClientStateStore` of that capacity
    (the whole run then materialises at most ``edges × live_cap`` clients).
    """
    from ..scale.virtual import make_client_factory
    from ..scale.store import ClientStateStore

    seed = config.seed if seed is None else seed
    topo_src = topology if topology is not None else config.topology
    if topo_src is None:
        raise ValueError("a topology is required: pass topology= or set FLConfig.topology")
    if isinstance(topo_src, (str,)) and labels is None:
        if parse_topology(topo_src).mode == "by-label":
            labels = majority_labels(client_datasets)
    topo = build_topology(topo_src, len(client_datasets), labels=labels, seed=seed)

    server_cls, client_cls = get_algorithm(config.algorithm)
    root_model = model_fn()
    initial_state = root_model.state_dict()
    sample_counts = [len(d) for d in client_datasets]
    root = server_cls(
        root_model, config, num_clients=len(client_datasets),
        client_sample_counts=sample_counts, shard=(),
    )
    _check_hier_server(root)

    edge_codec, _ = _hop_codecs(config)
    # A hier client's only wire is the client↔edge hop, and stateful clients
    # derive their lossy-wire bookkeeping (IIADMM's reconcile stash) from
    # their own config's codec — so clients are built with the hop codec.
    client_config = config if edge_codec == config.codec else replace(config, codec=edge_codec)
    edges: List[EdgeAggregator] = []
    factory = make_client_factory(client_config, model_fn, client_datasets, initial_state, seed=seed)
    for eid, shard in enumerate(topo.shards):
        edge_model = model_fn()
        edge_model.load_state_dict(initial_state)
        edge_server = server_cls(
            edge_model, config, num_clients=len(client_datasets),
            client_sample_counts=sample_counts, shard=shard,
        )
        if live_cap is not None:
            store = ClientStateStore(
                factory,
                num_clients=len(client_datasets),
                live_cap=live_cap,
                state_codec=state_codec,
                compress=compress,
                config=client_config,
            )
            clients = None
        else:
            store = None
            clients = [
                client_cls(
                    cid,
                    _synced_model(model_fn, initial_state),
                    client_datasets[cid],
                    client_config,
                    rng=np.random.default_rng(seed + 1000 + cid),
                )
                for cid in shard
            ]
        edges.append(
            EdgeAggregator(
                eid,
                edge_server,
                clients=clients,
                client_store=store,
                exchange=PacketExchange(edge_codec),
            )
        )
    evaluator = Evaluator(test_dataset) if test_dataset is not None else None
    return HierRunner(
        root,
        edges,
        evaluator=evaluator,
        root_communicator=root_communicator,
        client_communicator=client_communicator,
    )


def _synced_model(model_fn, initial_state):
    model = model_fn()
    model.load_state_dict(initial_state)
    return model
