"""Topology layer: deterministic client→edge sharding + per-hop wiring.

A hierarchical federation (see :mod:`repro.hier`) is described by a
:class:`Topology`: which edge aggregator owns which clients, and — per hop —
which wire-codec stack and :class:`~repro.comm.latency.LinkModel` apply.
Topologies come from three equivalent sources:

* a **spec string** (storable in ``FLConfig.topology``)::

      "edges:8"            # 8 seeded near-equal shards
      "edges:8:by-label"   # 8 shards contiguous in label-sorted order

* an **explicit shard map** — a sequence of client-id sequences, one per
  edge (every client must appear on exactly one edge);
* an existing :class:`Topology` (passed through).

Sharding is deterministic: ``edges:E`` permutes client ids with
``np.random.default_rng(seed)`` and splits the permutation into ``E``
near-equal shards, so a fixed seed always yields the same shards;
``by-label`` sorts clients by ``(label, client_id)`` and cuts contiguous
blocks, so each shard covers a contiguous label range (label locality: a
label is split across at most two adjacent edges when a block boundary lands
inside it).  Both properties are hypothesis-tested in
``tests/test_topology_property.py``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence, Tuple, Union

import numpy as np

from ..comm.latency import LinkModel

__all__ = [
    "TopologySpec",
    "Topology",
    "parse_topology",
    "build_topology",
    "contiguous_shards",
    "majority_labels",
]

_ACCEPTED_FORMS = "'edges:<E>' or 'edges:<E>:by-label' (E a positive integer)"


@dataclass(frozen=True)
class TopologySpec:
    """A parsed topology spec string (no population bound yet)."""

    num_edges: int
    mode: str  # "seeded" | "by-label"

    @property
    def spec(self) -> str:
        """Canonical spec string."""
        suffix = ":by-label" if self.mode == "by-label" else ""
        return f"edges:{self.num_edges}{suffix}"


def parse_topology(spec: Union[str, TopologySpec]) -> TopologySpec:
    """Parse (and validate) a topology spec string.

    Raises ``ValueError`` naming the offending token and listing the accepted
    forms — this runs at ``FLConfig`` construction so typos fail before any
    federation is built.
    """
    if isinstance(spec, TopologySpec):
        return spec
    parts = str(spec).split(":")
    if not parts or parts[0].strip().lower() != "edges":
        raise ValueError(
            f"unknown topology form {parts[0]!r} in spec {spec!r}; accepted: {_ACCEPTED_FORMS}"
        )
    if len(parts) < 2 or not parts[1].strip():
        raise ValueError(f"topology spec {spec!r} is missing the edge count; accepted: {_ACCEPTED_FORMS}")
    try:
        num_edges = int(parts[1].strip())
    except ValueError:
        raise ValueError(
            f"bad edge count {parts[1]!r} in topology spec {spec!r}; accepted: {_ACCEPTED_FORMS}"
        ) from None
    if num_edges <= 0:
        raise ValueError(
            f"edge count must be positive in topology spec {spec!r} (got {num_edges}); "
            f"accepted: {_ACCEPTED_FORMS}"
        )
    mode = "seeded"
    if len(parts) >= 3:
        token = parts[2].strip().lower()
        if token != "by-label":
            raise ValueError(
                f"unknown sharding mode {parts[2]!r} in topology spec {spec!r}; "
                f"accepted modes: 'by-label' (omit for seeded sharding)"
            )
        mode = "by-label"
    if len(parts) > 3:
        raise ValueError(f"trailing tokens {parts[3:]!r} in topology spec {spec!r}; accepted: {_ACCEPTED_FORMS}")
    return TopologySpec(num_edges=num_edges, mode=mode)


@dataclass(frozen=True)
class Topology:
    """A concrete client→edge assignment plus per-hop wiring.

    ``shards[e]`` are the (ascending) global client ids owned by edge ``e``;
    every client id in ``[0, num_clients)`` appears on exactly one edge.
    ``client_link``/``root_link`` are the per-hop latency models the
    event-driven :class:`~repro.hier.async_runner.HierAsyncRunner` charges
    (the synchronous runner uses its communicators instead); ``None`` means a
    free link.
    """

    shards: Tuple[Tuple[int, ...], ...]
    spec: str = "explicit"
    client_link: Optional[LinkModel] = None
    root_link: Optional[LinkModel] = None
    _edge_of: Tuple[int, ...] = field(init=False, repr=False, compare=False, default=())

    def __post_init__(self) -> None:
        seen = {}
        for e, shard in enumerate(self.shards):
            if not shard:
                raise ValueError(f"edge {e} owns no clients (empty shard)")
            if tuple(shard) != tuple(sorted(shard)):
                raise ValueError(f"edge {e}'s shard must be sorted ascending")
            for cid in shard:
                if cid in seen:
                    raise ValueError(f"client {cid} assigned to both edge {seen[cid]} and edge {e}")
                seen[cid] = e
        expected = set(range(len(seen)))
        if set(seen) != expected:
            missing = sorted(expected - set(seen))[:5]
            extra = sorted(set(seen) - expected)[:5]
            raise ValueError(
                f"shards must cover exactly the ids [0, {len(seen)}): "
                f"missing {missing}, out-of-range {extra}"
            )
        edge_of = [0] * len(seen)
        for cid, e in seen.items():
            edge_of[cid] = e
        object.__setattr__(self, "_edge_of", tuple(edge_of))

    @property
    def num_edges(self) -> int:
        return len(self.shards)

    @property
    def num_clients(self) -> int:
        return len(self._edge_of)

    def edge_of(self, cid: int) -> int:
        """The edge owning client ``cid``."""
        return self._edge_of[int(cid)]


def contiguous_shards(ids: Sequence[int], num_shards: int) -> Tuple[Tuple[int, ...], ...]:
    """Split ``ids`` (order preserved) into at most ``num_shards`` contiguous
    near-equal blocks, dropping empty blocks when ``num_shards > len(ids)``.

    The same ``np.array_split`` cut as seeded edge sharding, minus the
    permutation — used by :class:`~repro.mp.pool.ProcessWorkerPool` to give
    each process worker a contiguous slice of the caller's client order.
    """
    if num_shards <= 0:
        raise ValueError(f"num_shards must be positive, got {num_shards}")
    blocks = np.array_split(np.asarray(list(ids), dtype=np.int64), num_shards)
    return tuple(tuple(int(c) for c in block) for block in blocks if len(block))


def majority_labels(client_datasets: Sequence) -> np.ndarray:
    """One representative label per client: its most frequent sample label
    (ties broken toward the smaller label, deterministically)."""
    from ..data.dataset import stack_dataset

    labels = np.empty(len(client_datasets), dtype=np.int64)
    for cid, dataset in enumerate(client_datasets):
        _, y = stack_dataset(dataset)
        values, counts = np.unique(np.asarray(y), return_counts=True)
        labels[cid] = int(values[np.argmax(counts)])
    return labels


def build_topology(
    topology: Union[str, TopologySpec, Topology, Sequence[Sequence[int]]],
    num_clients: int,
    labels: Optional[Sequence[int]] = None,
    seed: int = 0,
    client_link: Optional[LinkModel] = None,
    root_link: Optional[LinkModel] = None,
) -> Topology:
    """Materialise a :class:`Topology` over ``num_clients`` clients.

    ``topology`` may be a spec string / :class:`TopologySpec`, an explicit
    shard map, or an existing :class:`Topology` (links are re-attached when
    given).  ``labels`` (one per client) are required for ``by-label`` specs
    — see :func:`majority_labels`.
    """
    if isinstance(topology, Topology):
        return Topology(
            topology.shards,
            topology.spec,
            client_link if client_link is not None else topology.client_link,
            root_link if root_link is not None else topology.root_link,
        )
    if isinstance(topology, (str, TopologySpec)):
        spec = parse_topology(topology)
        if spec.num_edges > num_clients:
            raise ValueError(
                f"topology {spec.spec!r} needs at least {spec.num_edges} clients, got {num_clients}"
            )
        if spec.mode == "by-label":
            if labels is None:
                raise ValueError(
                    f"topology {spec.spec!r} needs per-client labels "
                    f"(pass labels=, e.g. repro.hier.majority_labels(client_datasets))"
                )
            labels = np.asarray(labels)
            if labels.shape != (num_clients,):
                raise ValueError(f"need one label per client ({num_clients}), got shape {labels.shape}")
            order = np.lexsort((np.arange(num_clients), labels))
        else:
            order = np.random.default_rng(seed).permutation(num_clients)
        blocks = np.array_split(order, spec.num_edges)
        shards = tuple(tuple(int(c) for c in sorted(block)) for block in blocks)
        return Topology(shards, spec.spec, client_link, root_link)
    # Explicit shard map.
    shards = tuple(tuple(int(c) for c in sorted(shard)) for shard in topology)
    built = Topology(shards, "explicit", client_link, root_link)
    if built.num_clients != num_clients:
        raise ValueError(
            f"explicit shard map covers {built.num_clients} clients but the federation has {num_clients}"
        )
    return built
