"""Event-driven hierarchical federation: edge actors on their own clocks.

:class:`HierAsyncRunner` is the asynchronous counterpart of
:class:`~repro.hier.runner.HierRunner`.  Every edge is an *actor* with its
own :class:`~repro.asyncfl.events.EventLoop`: it dispatches the latest
global model it holds to a sampled cohort of its shard, pays per-client
download/compute/upload times (device cost model + the topology's
client↔edge :class:`~repro.comm.latency.LinkModel`), ingests arrivals into
its shard server (the same single-decode/dual-replay/reconcile path as
everywhere else), and when its cohort completes it folds the window into one
exact shard summary and sends it up the edge↔root link.  The root reacts to
*summary arrivals* through a :class:`RootStrategy`:

* :class:`RootFedBuff` — combine once ``buffer_size`` distinct edges have
  reported since the last global update, over **every** edge's last-known
  summary (slow edges contribute their previous state — the
  partial-participation form of the ADMM global update, made exact by the
  associative partials);
* :class:`RootFedAsync` — staleness-weighted mixing of each arriving shard
  summary's average into the global model (FedAvg-family only).

Staleness is measured in root model versions between an edge's download of
``w`` and its summary's arrival, and logged per summary.

The loops are merged deterministically by
:func:`~repro.asyncfl.events.next_event_loop` (earliest timestamp wins, ties
to the root loop then ascending edge id), so runs are reproducible.  With
free links, full per-edge participation, ``edge_round_based=True`` and
``RootFedBuff(num_edges)`` the history is bit-for-bit the synchronous
:class:`HierRunner`'s — and hence, under identity per-hop codecs, the flat
``FederatedRunner``'s (tested in ``tests/test_hier.py``).

Store-backed shards (per-edge :class:`~repro.scale.store.ClientStateStore`)
materialise clients at dispatch and spill them after the upload is encoded,
so 100k-client populations run under a live set bounded by
``edges × live_cap``.
"""

from __future__ import annotations

import math
import time
from abc import ABC, abstractmethod
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from .. import nn
from ..asyncfl.events import EventLoop, next_event_loop
from ..comm.latency import LinkModel
from ..core.base import GLOBAL_KEY, BaseServer
from ..core.config import FLConfig
from ..core.exchange import PacketExchange
from ..core.metrics import Evaluator
from ..core.partial import unpack_partial
from ..core.runner import PHASES, RoundResult, TrainingHistory
from ..data import Dataset
from ..obs import current_monitor, current_tracer
from ..privacy import PrivacyAccountant
from ..simulator.device import A100, DeviceSpec, LocalUpdateCostModel
from .edge import EdgeAggregator
from .runner import CLIENT_EDGE, EDGE_ROOT, _check_hier_server, _hop_codecs
from .topology import Topology, build_topology, majority_labels, parse_topology

__all__ = ["RootStrategy", "RootFedBuff", "RootFedAsync", "HierAsyncRunner", "build_hier_async_federation"]

FREE_LINK = LinkModel(latency=0.0, bandwidth=math.inf)

_COMPUTE_DONE = "compute_done"
_ARRIVAL = "arrival"
_SUMMARY = "summary"
_GLOBAL = "global"


class RootStrategy(ABC):
    """Decides what the root does with each arriving shard summary."""

    @abstractmethod
    def on_summary(
        self,
        runner: "HierAsyncRunner",
        edge_id: int,
        partial: List[np.ndarray],
        participants: Tuple[int, ...],
        staleness: int,
    ) -> Optional[Tuple[int, ...]]:
        """Process one summary; return the participant tuple when this
        arrival completed a global update, else ``None``."""


class RootFedBuff(RootStrategy):
    """Combine after ``buffer_size`` distinct edges reported (freshest wins).

    The combine always spans *all* edges' last-known summaries, so the ADMM
    ``1/P`` normaliser stays exact; FedAvg participants are the union of the
    combined summaries' cohorts.
    """

    def __init__(self, buffer_size: int):
        if buffer_size <= 0:
            raise ValueError("buffer_size must be positive")
        self.buffer_size = int(buffer_size)
        self._fresh: set = set()

    def on_summary(self, runner, edge_id, partial, participants, staleness):
        self._fresh.add(edge_id)
        if len(self._fresh) < self.buffer_size:
            return None
        self._fresh.clear()
        return runner._combine_last_known()


class RootFedAsync(RootStrategy):
    """Staleness-weighted mixing of each shard summary (FedAvg family).

    ``w ← (1 − α_τ) w + α_τ · (shard sum / shard weight)`` with
    ``α_τ = alpha · s(τ)`` — :func:`repro.asyncfl.strategies.
    staleness_weight` at edge granularity.
    """

    def __init__(self, alpha: float = 0.6, staleness: str = "polynomial", a: float = 0.5, b: float = 4.0):
        from ..asyncfl.strategies import STALENESS_KINDS

        if not 0.0 < alpha <= 1.0:
            raise ValueError("alpha must be in (0, 1]")
        if staleness not in STALENESS_KINDS:
            raise ValueError(f"unknown staleness kind {staleness!r}")
        self.alpha = float(alpha)
        self.staleness = staleness
        self.a = float(a)
        self.b = float(b)

    def on_summary(self, runner, edge_id, partial, participants, staleness):
        from ..asyncfl.strategies import staleness_weight

        server = runner.server
        if hasattr(server, "duals"):
            raise ValueError(
                "RootFedAsync mixes shard averages and is FedAvg-family only; "
                "use RootFedBuff for ADMM algorithms"
            )
        if not participants:
            return None
        import math as _math

        from ..core.partial import ExactPartial

        acc = ExactPartial(server.vectorizer.dim, server.vectorizer.dtype)
        acc.merge(partial)
        weights = getattr(server, "_agg_weights", None)
        if weights is None:
            weights = server.client_weights()
        weight_sum = _math.fsum(float(weights[c]) for c in sorted(participants))
        candidate = acc.round() / weight_sum
        mix = self.alpha * staleness_weight(staleness, self.staleness, a=self.a, b=self.b)
        server.global_params = (1.0 - mix) * server.global_params + mix * candidate
        server.round += 1
        server.sync_model()
        return tuple(sorted(participants))


class _EdgeActor:
    """One edge's event-driven shell: cohorts, per-client timing, flushing.

    ``max_in_flight`` bounds how many of a cohort's dispatches are on the
    wire/device at once — the rest wait in a FIFO and dispatch as slots free
    (backpressure: a store-backed shard then pins at most that many clients).
    ``None`` keeps the dispatch-everything legacy path bit-identically.
    """

    def __init__(
        self,
        runner: "HierAsyncRunner",
        edge: EdgeAggregator,
        devices: Sequence[DeviceSpec],
        client_link: LinkModel,
        root_link: LinkModel,
        fraction: float,
        round_based: bool,
        seed: int,
        max_in_flight: Optional[int] = None,
    ):
        self.runner = runner
        self.edge = edge
        self.loop = EventLoop()
        self.devices = {cid: dev for cid, dev in zip(edge.shard, devices)}
        self.client_link = client_link
        self.root_link = root_link
        self.fraction = float(fraction)
        self.round_based = bool(round_based)
        if max_in_flight is not None and int(max_in_flight) < 1:
            raise ValueError("max_in_flight must be at least 1")
        self.max_in_flight = int(max_in_flight) if max_in_flight is not None else None
        self.rng = np.random.default_rng(seed)
        self._outstanding = 0
        self._dispatched_version = 0
        self._pending_global: Optional[Tuple[Dict[str, np.ndarray], int]] = None
        self._waiting_for_global = False
        #: cohort members awaiting a dispatch slot (backpressure FIFO)
        self._queue: List[int] = []
        self._cohort_packet = None
        #: completed flush boundaries (the wave index boundary kills key on)
        self._wave_index = 0
        #: last quiescent-point state blob (crash-recovery rollback target);
        #: refreshed at every flush boundary while faults are armed
        self.slice_blob: Optional[bytes] = None

    # ----------------------------------------------------------- scheduling
    def sample_cohort(self) -> List[int]:
        shard = list(self.edge.shard)
        if self.fraction >= 1.0:
            return shard
        k = max(1, int(round(self.fraction * len(shard))))
        picked = self.rng.choice(len(shard), size=k, replace=False)
        return [shard[i] for i in sorted(picked)]

    def _dispatch_one(self, cid: int, packet) -> None:
        """Put one client's download+compute on the timeline (pins it in
        store mode).  A planned crash for this dispatch schedules a dead
        ``compute_done`` instead: the update never runs, so the client's
        persistent state — and the edge's server-side replica — stay exactly
        where they were."""
        runner = self.runner
        tick = time.perf_counter()
        nbytes = packet.nbytes
        runner._client_bytes += nbytes
        download = self.client_link.transfer_time(nbytes)
        payload = self.edge.exchange.open_dispatch(packet)
        client = self.edge._acquire(cid)
        compute = runner.cost_model.local_update_time(self.devices[cid], client.num_samples)
        injector = runner.injector
        lane = f"edge:{self.edge.edge_id}"
        if injector is not None and injector.client_crashed(cid, self._dispatched_version):
            self.loop.schedule_after(download + compute, _COMPUTE_DONE, cid=cid, crashed=True)
            runner._charge("broadcast", tick, lane=lane, vt=self.loop.now, client=cid)
            return
        self.loop.schedule_after(download + compute, _COMPUTE_DONE, cid=cid, payload=payload)
        runner._charge("broadcast", tick, lane=lane, vt=self.loop.now, client=cid)
        tracer = current_tracer()
        if tracer is not None:
            tracer.event(
                "dispatch", "async", lane=lane, vt=self.loop.now,
                edge=self.edge.edge_id, client=cid, nbytes=nbytes,
            )

    def start_cohort(self) -> None:
        """Dispatch the edge's current global to a fresh cohort."""
        tick = time.perf_counter()
        if self._pending_global is not None:
            payload, version = self._pending_global
            self._pending_global = None
            self.edge.receive_global(payload)
            self._dispatched_version = version
        self._waiting_for_global = False
        cohort = self.sample_cohort()
        packet = self.edge.exchange.encode_dispatch({GLOBAL_KEY: self.edge.current_global.copy()})
        self.runner._charge(
            "broadcast", tick, lane=f"edge:{self.edge.edge_id}", vt=self.loop.now
        )
        limit = len(cohort) if self.max_in_flight is None else self.max_in_flight
        self._cohort_packet = packet
        self._queue = list(cohort[limit:])
        for cid in cohort[:limit]:
            self._dispatch_one(cid, packet)
        self._outstanding += len(cohort)

    # -------------------------------------------------------------- handlers
    def handle(self, event) -> None:
        if event.kind == _COMPUTE_DONE:
            self._handle_compute_done(event)
        elif event.kind == _ARRIVAL:
            self._handle_arrival(event)
        elif event.kind == _GLOBAL:
            self._handle_global(event)
        else:  # pragma: no cover - defensive
            raise ValueError(f"unknown edge event kind {event.kind!r}")

    def _handle_compute_done(self, event) -> None:
        cid = event.data["cid"]
        if event.data.get("crashed"):
            # The dispatch-time crash comes due: unpin, tally, free the slot.
            # The cohort window completes over the survivors.
            self.edge._release(cid)
            self.runner.injector.count("crash")
            self.runner._failed_since_round.append(cid)
            self._complete_one()
            return
        client = self.edge._acquire(cid)
        payload = event.data["payload"]
        lane = f"edge:{self.edge.edge_id}"
        tick = time.perf_counter()
        upload = client.update(payload)
        self.runner._charge("local_update", tick, lane=lane, vt=self.loop.now, client=cid)
        dispatched_global = payload[GLOBAL_KEY]
        tick = time.perf_counter()
        packet = self.edge.exchange.encode_upload(upload, dispatched_global)
        self.edge.exchange.reconcile(client, upload, packet, dispatched_global)
        self.runner._charge("gather", tick, lane=lane, vt=self.loop.now, client=cid)
        # Privacy is charged when the upload is *ingested* (see
        # _handle_arrival) — the epsilon rides the event since the client may
        # be spilled by then.
        privacy_eps = client.config.privacy.epsilon if client.config.privacy.enabled else None
        # Store mode holds two pins — the dispatch-time checkout (kept while
        # in flight) and this handler's re-acquire; both end here, making the
        # client spillable the moment its upload is on the wire.
        self.edge._release(cid)
        self.edge._release(cid)
        self.runner._client_bytes += packet.nbytes
        uplink = self.client_link.transfer_time(packet.nbytes)
        self.loop.schedule_after(
            uplink,
            _ARRIVAL,
            cid=cid,
            upload=packet,
            dispatched_global=dispatched_global,
            privacy_eps=privacy_eps,
        )

    def _handle_arrival(self, event) -> None:
        eps = event.data.get("privacy_eps")
        if eps is not None:
            self.runner.accountant.record(event.data["cid"], eps)
        tracer = current_tracer()
        if tracer is not None:
            tracer.event(
                "arrival", "async", lane=f"edge:{self.edge.edge_id}", vt=self.loop.now,
                edge=self.edge.edge_id, client=event.data["cid"],
                nbytes=event.data["upload"].nbytes,
            )
        tick = time.perf_counter()
        self.edge.ingest_upload(event.data["cid"], event.data["upload"], event.data["dispatched_global"])
        self.runner._charge(
            "aggregate", tick, lane=f"edge:{self.edge.edge_id}", vt=self.loop.now,
            client=event.data["cid"],
        )
        self._complete_one()

    def _complete_one(self) -> None:
        """One cohort member accounted for (arrived or crashed): hand its
        slot to the backpressure queue, flush when the window completes."""
        self._outstanding -= 1
        if self._queue:
            self._dispatch_one(self._queue.pop(0), self._cohort_packet)
        if self._outstanding == 0:
            self._flush()

    def _flush(self) -> None:
        tick = time.perf_counter()
        summary, participants = self.edge.summarize()
        packet = self.runner.exchange.pipeline.encode_state(summary)
        self.runner._charge(
            "aggregate", tick, lane=f"edge:{self.edge.edge_id}", vt=self.loop.now
        )
        self.runner._root_bytes += packet.nbytes
        uplink = self.root_link.transfer_time(packet.nbytes)
        self.runner.root_loop.schedule(
            self.loop.now + uplink,
            _SUMMARY,
            edge_id=self.edge.edge_id,
            packet=packet,
            participants=participants,
            version=self._dispatched_version,
        )
        if self.runner.injector is not None:
            # A flush boundary is the edge's quiescent point (no in-flight
            # clients, empty fold): refresh the rollback slice here, and land
            # any planned boundary kill *now* — killing a just-snapshotted
            # edge recovers to exactly this state, which is why a
            # boundary-kill run is bitwise the crash-free run.
            wave = self._wave_index
            self._wave_index += 1
            self.slice_blob = self.capture_slice()
            if self.runner.injector.boundary_kill(self.edge.edge_id, wave):
                self.runner._kill_and_recover(self)
                return
        if not self.round_based:
            self.start_cohort()
        elif self._pending_global is not None:
            # A newer global already arrived mid-cohort — adopt it now
            # rather than idling until some later broadcast.
            self.start_cohort()
        else:
            self._waiting_for_global = True

    # ------------------------------------------------------- crash / recover
    def capture_slice(self) -> bytes:
        """Serialize this edge's rollback slice: shard server + clients (the
        :func:`repro.scale.edge_slice_state` tree) plus the actor's cohort
        RNG and the root version its dispatches carry.  Only meaningful at a
        quiescent point (no in-flight cohort)."""
        from ..comm.serialization import encode_state_blob
        from ..scale.checkpoint import edge_slice_state

        return encode_state_blob(
            {
                "edge": edge_slice_state(self.edge),
                "rng": self.rng.bit_generator.state,
                "version": self._dispatched_version,
            }
        )

    def kill(self) -> None:
        """Lose the edge's volatile state: every in-flight dispatch and
        arrival vanishes (their store pins released so the population can be
        rolled back), queued work is dropped, and only root broadcasts still
        in transit — which live on the wire, not in the edge's memory — keep
        their place on the clock."""
        kept = []
        for ev in self.loop.snapshot_events():
            if ev.kind == _COMPUTE_DONE:
                # One pin per in-flight dispatch (crashed ones included:
                # their release in _handle_compute_done never ran).
                self.edge._release(ev.data["cid"])
            elif ev.kind == _GLOBAL:
                kept.append((ev.time, ev.seq, ev.kind, ev.data))
        self.loop.load(self.loop.now, self.loop.sequence, kept)
        self._outstanding = 0
        self._queue = []
        self._cohort_packet = None
        self._waiting_for_global = False

    def recover(self, blob: bytes) -> None:
        """Restore the edge from a :meth:`capture_slice` blob and rejoin the
        federation: the shard server, client population, cohort RNG and
        dispatched version roll back to the captured quiescent point, then a
        fresh cohort starts (or the edge waits for the next broadcast, in
        round-based mode with nothing pending)."""
        from ..comm.serialization import decode_state_blob
        from ..scale.checkpoint import restore_edge_slice

        state = decode_state_blob(blob)
        restore_edge_slice(self.edge, state["edge"])
        self.rng = np.random.default_rng(0)
        self.rng.bit_generator.state = state["rng"]
        self._dispatched_version = int(state["version"])
        if not self.round_based or self._pending_global is not None:
            self.start_cohort()
        else:
            self._waiting_for_global = True

    def _handle_global(self, event) -> None:
        """A root broadcast arrived: adopt it at the next cohort boundary
        (immediately, when the edge is idle waiting for it)."""
        self._pending_global = (event.data["payload"], event.data["version"])
        if self._waiting_for_global and self._outstanding == 0:
            self.start_cohort()


class HierAsyncRunner:
    """Runs the event-driven two-tier loop over per-edge virtual clocks."""

    def __init__(
        self,
        root: BaseServer,
        edges: Sequence[EdgeAggregator],
        topology: Topology,
        strategy: Optional[RootStrategy] = None,
        evaluator: Optional[Evaluator] = None,
        accountant: Optional[PrivacyAccountant] = None,
        cost_model: Optional[LocalUpdateCostModel] = None,
        devices: Union[DeviceSpec, Sequence[DeviceSpec], None] = None,
        edge_fraction: Optional[float] = None,
        edge_round_based: bool = False,
        seed: Optional[int] = None,
        max_in_flight: Optional[int] = None,
    ):
        if not list(edges):
            raise ValueError("at least one edge is required")
        _check_hier_server(root)
        self.server = root
        self.edges = list(edges)
        self.topology = topology
        config = root.config
        self.strategy = strategy if strategy is not None else RootFedBuff(len(self.edges))
        if isinstance(self.strategy, RootFedBuff) and self.strategy.buffer_size > len(self.edges):
            raise ValueError(
                f"buffer_size ({self.strategy.buffer_size}) cannot exceed the number "
                f"of edges ({len(self.edges)})"
            )
        self.evaluator = evaluator
        self.accountant = accountant if accountant is not None else PrivacyAccountant()
        self.cost_model = (
            cost_model if cost_model is not None else LocalUpdateCostModel(local_steps=config.local_steps)
        )
        _, root_spec = _hop_codecs(config)
        self.exchange = PacketExchange(root_spec)
        seed = config.seed if seed is None else seed
        fraction = config.client_fraction if edge_fraction is None else edge_fraction
        client_link = topology.client_link if topology.client_link is not None else FREE_LINK
        root_link = topology.root_link if topology.root_link is not None else FREE_LINK
        num_clients = root.num_clients
        if devices is None:
            devices = A100
        if isinstance(devices, DeviceSpec):
            device_list = [devices] * num_clients
        else:
            device_list = list(devices)
            if len(device_list) != num_clients:
                raise ValueError(f"need one device per client ({num_clients}), got {len(device_list)}")
        self.actors = [
            _EdgeActor(
                self,
                edge,
                devices=[device_list[cid] for cid in edge.shard],
                client_link=client_link,
                root_link=root_link,
                fraction=fraction,
                round_based=edge_round_based,
                seed=seed + 7700 + edge.edge_id,
                max_in_flight=max_in_flight,
            )
            for edge in self.edges
        ]
        self._actor_by_edge = {actor.edge.edge_id: actor for actor in self.actors}
        self.root_loop = EventLoop()
        self.history = TrainingHistory()
        self.version = 0
        self.staleness_log: List[int] = []
        self.events_processed = 0
        self._client_bytes = 0
        self._root_bytes = 0
        self._bytes_last = (0, 0)
        #: cumulative real wall-clock seconds per canonical phase (the same
        #: FederatedRunner/AsyncRunner accounting surface)
        self.phase_seconds: Dict[str, float] = {phase: 0.0 for phase in PHASES}
        self._round_timings: Dict[str, float] = {phase: 0.0 for phase in PHASES}
        #: last-known decoded summary partial + participants per edge
        self._last_summary: Dict[int, Tuple[List[np.ndarray], Tuple[int, ...]]] = {}
        if hasattr(root, "duals"):
            # ADMM: every edge contributes from round 0 — seed the initial
            # (z¹, λ=0) shard folds so early combines span the population.
            for edge in self.edges:
                summary, participants = edge.initial_summary()
                self._last_summary[edge.edge_id] = (unpack_partial(summary), participants)
        self._primed = False
        #: fault layer (edge kills + client crashes on the merged clocks);
        #: see :meth:`enable_faults`
        self.injector = None
        self._failed_since_round: List[int] = []
        self._recovered_since_round: List[int] = []
        #: real seconds spent restoring killed edges (the recovery-latency
        #: gauge benchmarks/bench_hotpath.py reports)
        self.recovery_seconds = 0.0

    # ---------------------------------------------------------------- faults
    def enable_faults(self, faults) -> "HierAsyncRunner":
        """Arm edge-kill and client-crash injection on the merged clocks.

        ``faults`` is a :class:`repro.faults.FaultPlan` or injector.  Three
        fault families apply here:

        * the plan's ``edge_kills`` — ``(event_count, edge_id)`` one-shots:
          when the runner has processed that many events the edge's volatile
          state (in-flight cohort, half-folded summary) vanishes and it is
          restored from the slice captured at its last flush boundary, then
          rejoins;
        * ``edge_boundary_kills`` — kills landing exactly at a flush
          boundary, where the rollback slice was captured an instant earlier:
          the recovered state is bit-identical, which the chaos harness turns
          into a bitwise-equality assertion against the crash-free run;
        * the client-crash schedule — a crashed dispatch dies on-device
          before its update runs; the cohort window completes over the
          survivors.

        Must be called before the first :meth:`run` so every edge's initial
        rollback slice exists before anything can kill it.
        """
        from ..faults.injector import FaultInjector
        from ..faults.plan import FaultPlan

        if isinstance(faults, FaultPlan):
            faults = FaultInjector(faults)
        if self._primed:
            raise RuntimeError(
                "enable_faults must be called before the first run(): the initial "
                "per-edge recovery slices are captured at arm time"
            )
        self.injector = faults
        for actor in self.actors:
            actor.slice_blob = actor.capture_slice()
        return self

    def _kill_and_recover(self, actor: _EdgeActor) -> None:
        """Kill one edge and bring it back from its last rollback slice."""
        tracer = current_tracer()
        edge_id = actor.edge.edge_id
        tick = time.perf_counter()
        actor.kill()
        self.injector.stats.edge_kills += 1
        if tracer is not None:
            tracer.event("edge_kill", "fault", lane="faults", vt=actor.loop.now, edge=edge_id)
        actor.recover(actor.slice_blob)
        self.injector.stats.recoveries += 1
        self.recovery_seconds += time.perf_counter() - tick
        self._recovered_since_round.append(edge_id)
        if tracer is not None:
            tracer.event("edge_recover", "fault", lane="faults", vt=actor.loop.now, edge=edge_id)

    # ------------------------------------------------------- phase accounting
    def _charge(self, phase: str, tick: float, lane: str = "root", vt: Optional[float] = None, **labels) -> None:
        """Close the phase interval opened at ``tick``: accumulate it under
        the canonical phase keys and, with a tracer armed, emit it as a span
        on the given lane stamped with that clock's virtual time."""
        now = time.perf_counter()
        seconds = now - tick
        self.phase_seconds[phase] += seconds
        self._round_timings[phase] += seconds
        tracer = current_tracer()
        if tracer is not None:
            tracer.emit_span(phase, "phase", tick, now, lane=lane, vt0=vt, **labels)
        if phase == "local_update" and "client" in labels:
            monitor = current_monitor()
            if monitor is not None:
                monitor.observe_local_update(seconds, client=labels["client"])

    # -------------------------------------------------------------- combine
    def _combine_last_known(self) -> Optional[Tuple[int, ...]]:
        """Combine every edge's last-known summary into a new global model."""
        if not self._last_summary:
            return None
        partials = [self._last_summary[eid][0] for eid in sorted(self._last_summary)]
        participants: List[int] = []
        for eid in sorted(self._last_summary):
            participants.extend(self._last_summary[eid][1])
        if not participants and not hasattr(self.server, "duals"):
            return None
        self.server.combine_partials(partials, sorted(set(participants)))
        return tuple(sorted(set(participants)))

    def _broadcast_global(self) -> None:
        """Ship the new global to every edge over the root links."""
        packet = self.exchange.encode_dispatch(self.server.broadcast_payload())
        for actor in self.actors:
            self._root_bytes += packet.nbytes
            delay = actor.root_link.transfer_time(packet.nbytes)
            payload = self.exchange.open_dispatch(packet)
            actor.loop.schedule(
                self.root_loop.now + delay, _GLOBAL, payload=payload, version=self.version
            )

    def _handle_summary(self, event, callback) -> None:
        edge_id = event.data["edge_id"]
        tracer = current_tracer()
        if tracer is not None:
            tracer.event(
                "summary_arrival", "async", lane="root", vt=self.root_loop.now,
                edge=edge_id, nbytes=event.data["packet"].nbytes,
                staleness=self.version - event.data["version"],
            )
        tick = time.perf_counter()
        partial = unpack_partial(self.exchange.pipeline.decode_state(event.data["packet"]))
        participants = tuple(event.data["participants"])
        staleness = self.version - event.data["version"]
        self.staleness_log.append(staleness)
        self._last_summary[edge_id] = (partial, participants)
        finished = self.strategy.on_summary(self, edge_id, partial, participants, staleness)
        self._charge("aggregate", tick, lane="root", vt=self.root_loop.now, edge=edge_id)
        if finished is not None:
            self.version += 1
            self._record_round(finished, callback)
            self._broadcast_global()
            if tracer is not None:
                tracer.event(
                    "global_broadcast", "async", lane="root", vt=self.root_loop.now,
                    version=self.version,
                )

    def _record_round(self, participants, callback) -> None:
        accuracy = loss = None
        tick = time.perf_counter()
        if self.evaluator is not None:
            self.server.sync_model()
            accuracy, loss = self.evaluator(self.server.model)
        self._charge("evaluate", tick, lane="root", vt=self.root_loop.now)
        tracer = current_tracer()
        if tracer is not None:
            tracer.event(
                "round_complete", "async", lane="root", vt=self.root_loop.now,
                round=len(self.history), participants=len(participants),
            )
        client_bytes = self._client_bytes - self._bytes_last[0]
        root_bytes = self._root_bytes - self._bytes_last[1]
        self._bytes_last = (self._client_bytes, self._root_bytes)
        result = RoundResult(
            round=len(self.history),
            test_accuracy=accuracy,
            test_loss=loss,
            comm_bytes=client_bytes + root_bytes,
            comm_seconds=0.0,
            phase_seconds=dict(self._round_timings),
            wall_clock_seconds=self.root_loop.now,
            participating_clients=tuple(participants),
            comm_bytes_by_tier={CLIENT_EDGE: client_bytes, EDGE_ROOT: root_bytes},
            failed_clients=(
                tuple(sorted(set(self._failed_since_round))) if self.injector is not None else None
            ),
            retries=self.injector.stats.retries if self.injector is not None else None,
            recovered_edges=(
                tuple(sorted(set(self._recovered_since_round)))
                if self.injector is not None
                else None
            ),
        )
        self._failed_since_round = []
        self._recovered_since_round = []
        self._round_timings = {phase: 0.0 for phase in PHASES}
        self.history.add(result)
        monitor = current_monitor()
        if monitor is not None:
            monitor.on_round(self, result)
        if callback is not None:
            callback(result)

    # ------------------------------------------------------------------- run
    @property
    def now(self) -> float:
        """Current global virtual time (the maximum across all clocks)."""
        return max([self.root_loop.now] + [a.loop.now for a in self.actors])

    def mean_staleness(self) -> float:
        return float(np.mean(self.staleness_log)) if self.staleness_log else 0.0

    def run(
        self,
        num_rounds: Optional[int] = None,
        callback: Optional[Callable[[RoundResult], None]] = None,
        max_events: Optional[int] = None,
    ) -> TrainingHistory:
        """Simulate until ``num_rounds`` further global updates completed."""
        total = num_rounds if num_rounds is not None else self.server.config.num_rounds
        target = len(self.history) + total
        budget = math.inf if max_events is None else int(max_events)
        if not self._primed:
            for actor in self.actors:
                actor.start_cohort()
            self._primed = True
        loops = [self.root_loop] + [a.loop for a in self.actors]
        while len(self.history) < target and budget > 0:
            index = next_event_loop(loops)
            if index is None:
                break
            self.events_processed += 1
            budget -= 1
            if index == 0:
                event = self.root_loop.pop()
                self._handle_summary(event, callback)
            else:
                actor = self.actors[index - 1]
                actor.handle(actor.loop.pop())
            if self.injector is not None:
                for edge_id in self.injector.edge_kills_due(self.events_processed):
                    victim = self._actor_by_edge.get(edge_id)
                    if victim is not None:
                        self._kill_and_recover(victim)
        return self.history

    def close(self) -> None:
        for edge in self.edges:
            edge.close()

    def __enter__(self) -> "HierAsyncRunner":
        return self

    def __exit__(self, exc_type, exc_value, traceback) -> None:
        self.close()


def build_hier_async_federation(
    config: FLConfig,
    model_fn: Callable[[], nn.Module],
    client_datasets: Sequence[Dataset],
    test_dataset: Optional[Dataset] = None,
    topology: Union[str, Topology, Sequence[Sequence[int]], None] = None,
    strategy: Optional[RootStrategy] = None,
    live_cap: Optional[int] = None,
    seed: Optional[int] = None,
    labels: Optional[Sequence[int]] = None,
    devices: Union[DeviceSpec, Sequence[DeviceSpec], None] = None,
    client_link: Optional[LinkModel] = None,
    root_link: Optional[LinkModel] = None,
    cost_model: Optional[LocalUpdateCostModel] = None,
    edge_fraction: Optional[float] = None,
    edge_round_based: bool = False,
    state_codec: str = "identity",
    compress: Optional[str] = None,
    max_in_flight: Optional[int] = None,
) -> HierAsyncRunner:
    """Construct a :class:`HierAsyncRunner` for a named algorithm.

    Same endpoint construction as :func:`~repro.hier.runner.
    build_hier_federation` (bit-identical starting state); ``client_link`` /
    ``root_link`` attach per-hop latency models to the topology, and
    ``edge_fraction`` (default ``config.client_fraction``) subsamples each
    shard per edge round.  ``live_cap`` gives every edge its own
    :class:`~repro.scale.store.ClientStateStore`.
    """
    from .runner import build_hier_federation

    seed_value = config.seed if seed is None else seed
    topo_src = topology if topology is not None else config.topology
    if topo_src is None:
        raise ValueError("a topology is required: pass topology= or set FLConfig.topology")
    if isinstance(topo_src, str) and labels is None:
        if parse_topology(topo_src).mode == "by-label":
            labels = majority_labels(client_datasets)
    topo = build_topology(
        topo_src, len(client_datasets), labels=labels, seed=seed_value,
        client_link=client_link, root_link=root_link,
    )
    sync = build_hier_federation(
        config, model_fn, client_datasets, test_dataset=None, topology=topo,
        live_cap=live_cap, seed=seed_value, labels=labels,
        state_codec=state_codec, compress=compress,
    )
    evaluator = Evaluator(test_dataset) if test_dataset is not None else None
    return HierAsyncRunner(
        sync.server,
        sync.edges,
        topo,
        strategy=strategy,
        evaluator=evaluator,
        cost_model=cost_model,
        devices=devices,
        edge_fraction=edge_fraction,
        edge_round_based=edge_round_based,
        seed=seed_value,
        max_in_flight=max_in_flight,
    )
