"""Metrics registry: counters / gauges / histograms behind one ``snapshot()``.

The registry absorbs the accounting that previously lived in separate
corners of the codebase — ``phase_seconds`` dicts, :class:`CommLog` byte
counts, :class:`FaultStats`, :class:`StoreStats`, and the per-client ε of
the :class:`PrivacyAccountant` — into one labelled namespace with a
single machine-readable export.

Histograms estimate streaming p50/p95/p99 with fixed-size reservoirs.
The reservoir uses a *private* ``random.Random`` instance so observing a
value can never perturb any run RNG stream (the same bitwise-determinism
contract the tracer keeps).

All absorb helpers duck-type their argument, so one
:meth:`MetricsRegistry.absorb_runner` call works for ``FederatedRunner``,
``AsyncRunner``, ``HierRunner``, and ``HierAsyncRunner`` alike.
"""

from __future__ import annotations

import json
import random
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple, Union

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry", "metric_key"]

_RESERVOIR_SIZE = 512
_RESERVOIR_SEED = 0xC0FFEE


def metric_key(name: str, labels: Dict[str, Any]) -> str:
    """Canonical flat key: ``name`` or ``name{k=v,...}`` with sorted labels."""
    if not labels:
        return name
    inner = ",".join(f"{k}={labels[k]}" for k in sorted(labels))
    return f"{name}{{{inner}}}"


class Counter:
    """Monotonically increasing count."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value: Union[int, float] = 0

    def inc(self, amount: Union[int, float] = 1) -> None:
        self.value += amount


class Gauge:
    """Last-written value."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value: float = 0.0

    def set(self, value: float) -> None:
        self.value = value


class Histogram:
    """Streaming distribution: exact count/sum/min/max plus quantile
    estimates from a fixed-size uniform reservoir."""

    __slots__ = ("count", "total", "min", "max", "_samples", "_rng")

    def __init__(self) -> None:
        self.count = 0
        self.total = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None
        self._samples: List[float] = []
        self._rng = random.Random(_RESERVOIR_SEED)

    def observe(self, value: float) -> None:
        value = float(value)
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value
        if len(self._samples) < _RESERVOIR_SIZE:
            self._samples.append(value)
        else:
            j = self._rng.randrange(self.count)
            if j < _RESERVOIR_SIZE:
                self._samples[j] = value

    def percentile(self, p: float) -> Optional[float]:
        """Estimate the ``p``-th percentile (0..100) from the reservoir.

        Exact whenever ``count <= _RESERVOIR_SIZE`` (the reservoir then
        holds every observation); a uniform-sample estimate beyond that.
        """
        if not self._samples:
            return None
        ordered = sorted(self._samples)
        idx = min(len(ordered) - 1, max(0, round(p / 100.0 * (len(ordered) - 1))))
        return ordered[idx]

    def summary(self) -> Dict[str, Optional[float]]:
        return {
            "count": self.count,
            "sum": self.total,
            "min": self.min,
            "max": self.max,
            "samples": len(self._samples),
            "p50": self.percentile(50),
            "p95": self.percentile(95),
            "p99": self.percentile(99),
        }

    # ------------------------------------------------------------- merge/state
    def state_dict(self) -> Dict[str, Any]:
        """Full mergeable state (exact aggregates + reservoir contents)."""
        return {
            "count": self.count,
            "total": self.total,
            "min": self.min,
            "max": self.max,
            "samples": list(self._samples),
        }

    def merge_state(self, state: Dict[str, Any]) -> None:
        """Fold another histogram's :meth:`state_dict` into this one.

        Exact aggregates (count/sum/min/max) merge exactly.  Reservoirs
        concatenate; past capacity the combined pool is sorted and
        evenly strided down to ``_RESERVOIR_SIZE`` — a deterministic
        quantile-preserving sketch, so merging worker deltas in a fixed
        order always yields the identical reservoir (no RNG involved).
        """
        self.count += int(state["count"])
        self.total += float(state["total"])
        for bound in (state["min"], state["max"]):
            if bound is not None:
                bound = float(bound)
                if self.min is None or bound < self.min:
                    self.min = bound
                if self.max is None or bound > self.max:
                    self.max = bound
        combined = self._samples + [float(v) for v in state["samples"]]
        if len(combined) > _RESERVOIR_SIZE:
            combined.sort()
            n = len(combined)
            combined = [
                combined[(i * n) // _RESERVOIR_SIZE] for i in range(_RESERVOIR_SIZE)
            ]
        self._samples = combined

    def merge(self, other: "Histogram") -> None:
        self.merge_state(other.state_dict())


class MetricsRegistry:
    """Labelled metrics with one JSON-able :meth:`snapshot`.

    Registry-level labels (typically ``algorithm=``/``codec=``) apply to
    the whole snapshot; per-metric labels (``tier=``, ``phase=``, ...)
    key individual series.
    """

    def __init__(self, **labels: Any) -> None:
        self.labels = {k: v for k, v in labels.items() if v is not None}
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}

    # ------------------------------------------------------------- accessors
    def counter(self, name: str, **labels: Any) -> Counter:
        key = metric_key(name, labels)
        metric = self._counters.get(key)
        if metric is None:
            metric = self._counters[key] = Counter()
        return metric

    def gauge(self, name: str, **labels: Any) -> Gauge:
        key = metric_key(name, labels)
        metric = self._gauges.get(key)
        if metric is None:
            metric = self._gauges[key] = Gauge()
        return metric

    def histogram(self, name: str, **labels: Any) -> Histogram:
        key = metric_key(name, labels)
        metric = self._histograms.get(key)
        if metric is None:
            metric = self._histograms[key] = Histogram()
        return metric

    # -------------------------------------------------------------- snapshot
    def snapshot(self) -> Dict[str, Any]:
        """Plain-dict export of every metric, ready for ``json.dumps``."""
        return {
            "labels": dict(self.labels),
            "counters": {k: c.value for k, c in sorted(self._counters.items())},
            "gauges": {k: g.value for k, g in sorted(self._gauges.items())},
            "histograms": {k: h.summary() for k, h in sorted(self._histograms.items())},
        }

    def write_snapshot(self, path: Union[str, Path]) -> Path:
        from .export import json_default

        path = Path(path)
        path.write_text(
            json.dumps(self.snapshot(), indent=2, sort_keys=True, default=json_default)
        )
        return path

    # ----------------------------------------------------------- merge / diff
    def dump_state(self) -> Dict[str, Any]:
        """Full mergeable state — unlike :meth:`snapshot`, histograms ship
        their reservoir contents so a peer registry can fold them in
        exactly (the worker → parent telemetry channel)."""
        return {
            "labels": dict(self.labels),
            "counters": {k: c.value for k, c in sorted(self._counters.items())},
            "gauges": {k: g.value for k, g in sorted(self._gauges.items())},
            "histograms": {
                k: h.state_dict() for k, h in sorted(self._histograms.items())
            },
        }

    def merge(self, other: Union["MetricsRegistry", Dict[str, Any]]) -> "MetricsRegistry":
        """Fold another registry (or its :meth:`dump_state`) into this one.

        Counters add, gauges take the incoming value (last write wins),
        histograms merge their reservoirs deterministically.  Merging a
        fixed sequence of states in a fixed order is fully deterministic,
        which is what the process pool relies on when combining worker
        deltas in worker-index order.
        """
        state = other.dump_state() if isinstance(other, MetricsRegistry) else other
        for key, value in (state.get("counters") or {}).items():
            metric = self._counters.get(key)
            if metric is None:
                metric = self._counters[key] = Counter()
            metric.inc(value)
        for key, value in (state.get("gauges") or {}).items():
            gauge = self._gauges.get(key)
            if gauge is None:
                gauge = self._gauges[key] = Gauge()
            gauge.set(value)
        for key, hstate in (state.get("histograms") or {}).items():
            hist = self._histograms.get(key)
            if hist is None:
                hist = self._histograms[key] = Histogram()
            hist.merge_state(hstate)
        return self

    def diff(self, previous: Optional[Dict[str, Any]]) -> Dict[str, Any]:
        """Delta of the current state against a previous :meth:`snapshot`.

        Counters and histogram count/sum become per-interval deltas
        (``previous=None`` means everything is new); gauges report their
        current value — a delta of a last-written value has no meaning.
        """
        current = self.snapshot()
        prev_counters = (previous or {}).get("counters") or {}
        prev_hists = (previous or {}).get("histograms") or {}
        counters = {
            k: v - prev_counters.get(k, 0) for k, v in current["counters"].items()
        }
        histograms: Dict[str, Any] = {}
        for k, summ in current["histograms"].items():
            prev = prev_hists.get(k)
            entry = dict(summ)
            if prev is not None:
                entry["count"] = summ["count"] - prev.get("count", 0)
                entry["sum"] = summ["sum"] - prev.get("sum", 0.0)
            histograms[k] = entry
        return {
            "labels": current["labels"],
            "counters": counters,
            "gauges": current["gauges"],
            "histograms": histograms,
        }

    # --------------------------------------------------------------- absorbs
    def absorb_phase_seconds(self, phase_seconds: Dict[str, float], tier: str) -> None:
        for phase, seconds in phase_seconds.items():
            self.gauge("phase_seconds", phase=phase, tier=tier).set(float(seconds))

    def absorb_comm_log(self, log, tier: str) -> None:
        """Fold a :class:`repro.comm.records.CommLog` into per-tier series."""
        bytes_c = self.counter("comm_bytes", tier=tier)
        secs_c = self.counter("comm_sim_seconds", tier=tier)
        retries = self.counter("comm_retries", tier=tier)
        backoff = self.counter("comm_backoff_seconds", tier=tier)
        faults = self.counter("comm_faulted_attempts", tier=tier)
        hist = self.histogram("comm_transfer_seconds", tier=tier)
        for rec in log.records:
            if rec.op == "backoff":
                backoff.inc(rec.seconds)
                continue
            bytes_c.inc(rec.nbytes)
            secs_c.inc(rec.seconds)
            hist.observe(rec.seconds)
            if rec.fault is not None:
                faults.inc()
            if rec.attempt > 0 and rec.fault is None:
                retries.inc(rec.attempt)
        self.counter("comm_dead_letters", tier=tier).inc(len(log.dead_letters))

    def absorb_fault_stats(self, stats) -> None:
        """Fold a :class:`repro.faults.injector.FaultStats` into counters."""
        for name, value in stats.as_dict().items():
            self.counter(f"faults_{name}").inc(value)

    def absorb_store(self, store, tier: str) -> None:
        """Fold :class:`ClientStateStore` gauges (one store per tier/edge)."""
        stats = store.stats
        for name in ("materializations", "restores", "evictions", "hits"):
            self.gauge(f"store_{name}", tier=tier).set(getattr(stats, name))
        self.gauge("store_peak_live", tier=tier).set(stats.peak_live)
        self.gauge("store_materialize_us", tier=tier).set(stats.materialize_us)
        self.gauge("store_evict_us", tier=tier).set(stats.evict_us)
        self.gauge("store_nbytes", tier=tier).set(store.store_nbytes)
        self.gauge("store_peak_nbytes", tier=tier).set(
            getattr(stats, "peak_store_bytes", 0)
        )
        self.gauge("store_live_count", tier=tier).set(store.live_count)

    def absorb_accountant(self, accountant, tier: str = "client") -> None:
        """Fold per-client ε from a :class:`PrivacyAccountant`."""
        summary = accountant.summary()
        hist = self.histogram("privacy_epsilon", tier=tier)
        for entry in summary.values():
            hist.observe(entry["epsilon"])
        self.gauge("privacy_max_epsilon", tier=tier).set(accountant.max_epsilon_spent())
        self.gauge("privacy_clients_charged", tier=tier).set(len(summary))

    def absorb_worker_telemetry(self, owner) -> None:
        """Fold process-backend worker metrics owned by a runner or edge.

        ``owner.worker_telemetry`` holds deltas banked when pools retired;
        ``owner._pool.telemetry`` is the live pool's parent-merged registry.
        Both are worker-labelled, so merging is collision-free.
        """
        banked = getattr(owner, "worker_telemetry", None)
        if banked is not None:
            self.merge(banked)
        pool = getattr(owner, "_pool", None)
        telemetry = getattr(pool, "telemetry", None) if pool is not None else None
        if telemetry is not None:
            self.merge(telemetry)

    def absorb_history(self, history) -> None:
        """Fold per-round :class:`RoundResult` aggregates."""
        rounds = getattr(history, "rounds", [])
        self.gauge("rounds_completed").set(len(rounds))
        wall = self.histogram("round_wall_clock_seconds")
        for result in rounds:
            self.counter("history_comm_bytes").inc(result.comm_bytes)
            if result.wall_clock_seconds is not None:
                wall.observe(result.wall_clock_seconds)
            if result.retries is not None:
                self.counter("history_retries").inc(result.retries)
            if result.failed_clients:
                self.counter("history_failed_clients").inc(len(result.failed_clients))
            if result.recovered_edges:
                self.counter("history_recovered_edges").inc(len(result.recovered_edges))
            if result.comm_bytes_by_tier:
                for tier, nbytes in result.comm_bytes_by_tier.items():
                    self.counter("history_comm_bytes", tier=tier).inc(nbytes)

    def absorb_runner(self, runner) -> None:
        """One-call absorb for any of the four runner types.

        Duck-types the runner: whatever accounting surfaces exist
        (``phase_seconds``, communicators with logs, a fault injector, a
        client store — flat or per edge —, a privacy accountant, and the
        training history) are folded in; missing surfaces are skipped.
        """
        phases = getattr(runner, "phase_seconds", None)
        if phases:
            self.absorb_phase_seconds(phases, tier="run")

        # Local-update throughput: client optimizer steps per wall-clock
        # second of the local_update phase (both runner execution paths count
        # steps; see repro.core.batched.count_client_steps).
        steps = getattr(runner, "client_steps", 0)
        local_seconds = (phases or {}).get("local_update", 0.0)
        if steps and local_seconds > 0:
            self.gauge("client_steps_per_sec", tier="run").set(steps / local_seconds)

        comm = getattr(runner, "communicator", None)
        if comm is not None and getattr(comm, "log", None) is not None:
            self.absorb_comm_log(comm.log, tier="flat")
        client_comm = getattr(runner, "client_communicator", None)
        if client_comm is not None and getattr(client_comm, "log", None) is not None:
            self.absorb_comm_log(client_comm.log, tier="client_edge")
        root_comm = getattr(runner, "root_communicator", None)
        if root_comm is not None and getattr(root_comm, "log", None) is not None:
            self.absorb_comm_log(root_comm.log, tier="edge_root")

        # Event-loop runners account bytes directly rather than via a log.
        if comm is None and client_comm is None:
            if hasattr(runner, "_comm_bytes"):
                self.counter("comm_bytes", tier="flat").inc(runner._comm_bytes)
            if hasattr(runner, "_client_bytes"):
                self.counter("comm_bytes", tier="client_edge").inc(runner._client_bytes)
            if hasattr(runner, "_root_bytes"):
                self.counter("comm_bytes", tier="edge_root").inc(runner._root_bytes)

        injector = getattr(runner, "injector", None)
        if injector is not None:
            self.absorb_fault_stats(injector.stats)

        store = getattr(runner, "_store", None)
        if store is not None:
            self.absorb_store(store, tier="flat")
        for edge in getattr(runner, "edges", ()):  # hier runners
            edge_store = getattr(edge, "_store", None)
            if edge_store is not None:
                self.absorb_store(edge_store, tier=f"edge:{edge.edge_id}")

        # Worker-side telemetry from the process backend: the live pool's
        # parent-merged registry, plus deltas banked by _retire_pool after
        # fallback rounds or shutdown tore a pool down.
        self.absorb_worker_telemetry(runner)
        for edge in getattr(runner, "edges", ()):
            self.absorb_worker_telemetry(edge)

        accountant = getattr(runner, "accountant", None)
        if accountant is not None:
            self.absorb_accountant(accountant)

        history = getattr(runner, "history", None)
        if history is not None:
            self.absorb_history(history)
