"""Health watchdogs: live run monitoring at round/wave boundaries.

:class:`RunMonitor` is the obs layer's live counterpart to the tracer.
Runners call three context-local hooks (``current_monitor()`` mirrors
``current_tracer()`` — disabled costs one ``ContextVar.get``):

* :meth:`RunMonitor.on_round` after each completed round — rebuild a
  cumulative :class:`MetricsRegistry` view of the runner, stream a
  JSONL time-series sample, publish to the live endpoint, and evaluate
  every watchdog;
* :meth:`RunMonitor.on_wave` at virtual wave boundaries — a cheap
  memory-watermark-only check (waves can outnumber rounds by orders of
  magnitude);
* :meth:`RunMonitor.observe_local_update` with each client update's
  wall-clock seconds, feeding the straggler detector.

Watchdogs are pure functions of a :class:`HealthSample` (history +
cumulative snapshot + per-interval delta) returning :class:`Alert`\\ s;
they never touch the run itself, so a monitored run stays bitwise
identical to an unmonitored one.  Alerts land in a :class:`HealthReport`
(summarized by ``obsreport`` and the chaos harness) and as structured
``alert`` trace events when a tracer is armed.  A watchdog that raises
is reported as its own alert rather than ever killing the run.
"""

from __future__ import annotations

import math
import os
from contextlib import contextmanager
from contextvars import ContextVar
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, Iterator, List, Mapping, Optional, Sequence, Union

from .export import MetricsServer, MetricsStream
from .metrics import Histogram, MetricsRegistry
from .trace import current_tracer

__all__ = [
    "Alert",
    "HealthReport",
    "HealthSample",
    "HealthMonitor",
    "ConvergenceWatchdog",
    "StragglerWatchdog",
    "RetryWatchdog",
    "MemoryWatchdog",
    "RunMonitor",
    "current_monitor",
    "set_monitor",
    "use_monitor",
    "default_monitors",
]

_MONITOR: ContextVar[Optional["RunMonitor"]] = ContextVar("repro_monitor", default=None)


def current_monitor() -> Optional["RunMonitor"]:
    """The monitor armed for the current context, or ``None``."""
    return _MONITOR.get()


def set_monitor(monitor: Optional["RunMonitor"]):
    """Arm ``monitor`` for the current context; returns the reset token."""
    return _MONITOR.set(monitor)


@contextmanager
def use_monitor(monitor: Optional["RunMonitor"]) -> Iterator[Optional["RunMonitor"]]:
    """Arm ``monitor`` for the duration of the ``with`` block."""
    token = _MONITOR.set(monitor)
    try:
        yield monitor
    finally:
        _MONITOR.reset(token)


def rss_bytes() -> int:
    """Resident set size of this process in bytes (0 when unavailable)."""
    try:
        with open("/proc/self/statm") as fh:
            return int(fh.read().split()[1]) * os.sysconf("SC_PAGE_SIZE")
    except (OSError, ValueError, IndexError):
        pass
    try:
        import resource

        usage = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
        # Linux reports KiB, macOS bytes.
        return int(usage) * (1 if usage > 1 << 32 else 1024)
    except Exception:
        return 0


# ---------------------------------------------------------------------------
# Alerts and the report they accumulate into
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Alert:
    """One structured watchdog finding."""

    monitor: str
    severity: str  # "warning" | "critical"
    message: str
    round: Optional[int] = None
    details: Dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {
            "monitor": self.monitor,
            "severity": self.severity,
            "message": self.message,
        }
        if self.round is not None:
            out["round"] = self.round
        if self.details:
            out["details"] = dict(self.details)
        return out


class HealthReport:
    """Everything the watchdogs concluded about a run."""

    def __init__(self) -> None:
        self.alerts: List[Alert] = []
        self.samples = 0
        self.waves = 0
        self.checks: Dict[str, int] = {}

    def record_check(self, monitor_name: str) -> None:
        self.checks[monitor_name] = self.checks.get(monitor_name, 0) + 1

    def add(self, alert: Alert) -> None:
        self.alerts.append(alert)

    @property
    def ok(self) -> bool:
        return not self.alerts

    @property
    def status(self) -> str:
        if any(a.severity == "critical" for a in self.alerts):
            return "critical"
        if self.alerts:
            return "warning"
        return "ok"

    def to_dict(self) -> Dict[str, Any]:
        return {
            "status": self.status,
            "samples": self.samples,
            "waves": self.waves,
            "checks": dict(self.checks),
            "alerts": [a.to_dict() for a in self.alerts],
        }

    def render(self) -> str:
        lines = [
            f"health: {self.status} "
            f"({self.samples} samples, {self.waves} waves, "
            f"{len(self.alerts)} alerts)"
        ]
        by_key: Dict[tuple, int] = {}
        first: Dict[tuple, Alert] = {}
        for alert in self.alerts:
            key = (alert.monitor, alert.severity, alert.message)
            by_key[key] = by_key.get(key, 0) + 1
            first.setdefault(key, alert)
        for key in sorted(by_key):
            alert = first[key]
            count = by_key[key]
            suffix = f" (x{count})" if count > 1 else ""
            where = f" [round {alert.round}]" if alert.round is not None else ""
            lines.append(
                f"  {alert.severity.upper():8s} {alert.monitor}: "
                f"{alert.message}{where}{suffix}"
            )
        return "\n".join(lines)


@dataclass
class HealthSample:
    """What one monitoring boundary hands to every watchdog."""

    runner: Any
    history: Any
    result: Any
    snapshot: Mapping[str, Any]
    delta: Mapping[str, Any]
    round: Optional[int]


def _sum_counters(sample: HealthSample, prefix: str, *, delta: bool = True) -> float:
    source = sample.delta if delta else sample.snapshot
    return float(
        sum(
            v
            for k, v in (source.get("counters") or {}).items()
            if k == prefix or k.startswith(prefix + "{")
        )
    )


# ---------------------------------------------------------------------------
# Watchdogs
# ---------------------------------------------------------------------------


class HealthMonitor:
    """Base interface: inspect one :class:`HealthSample`, return alerts."""

    name = "monitor"

    def check(self, sample: HealthSample) -> List[Alert]:  # pragma: no cover
        raise NotImplementedError


class ConvergenceWatchdog(HealthMonitor):
    """Divergence and convergence-stall detection over the loss history.

    Divergence is a *critical* alert: the latest test loss is non-finite,
    or exceeds the best loss so far by both a multiplicative factor and an
    absolute rise (the two-sided guard keeps near-zero best losses from
    tripping on noise).  A stall is a *warning*: across the last
    ``window`` rounds the best loss never improved on the pre-window best
    by at least ``min_improvement``.  Runs shorter than ``window + 1``
    rounds cannot stall, so short healthy runs stay silent.
    """

    name = "convergence"

    def __init__(
        self,
        window: int = 8,
        min_improvement: float = 1e-4,
        divergence_factor: float = 2.0,
        min_rise: float = 0.25,
    ) -> None:
        self.window = int(window)
        self.min_improvement = float(min_improvement)
        self.divergence_factor = float(divergence_factor)
        self.min_rise = float(min_rise)

    def check(self, sample: HealthSample) -> List[Alert]:
        rounds = getattr(sample.history, "rounds", [])
        losses = [
            float(r.test_loss)
            for r in rounds
            if getattr(r, "test_loss", None) is not None
        ]
        if not losses:
            return []
        alerts: List[Alert] = []
        latest = losses[-1]
        if not math.isfinite(latest):
            return [
                Alert(
                    self.name,
                    "critical",
                    "test loss is non-finite",
                    round=sample.round,
                    details={"loss": repr(latest)},
                )
            ]
        finite = [v for v in losses if math.isfinite(v)]
        best = min(finite)
        if (
            len(finite) >= 2
            and latest > best * self.divergence_factor
            and latest > best + self.min_rise
        ):
            alerts.append(
                Alert(
                    self.name,
                    "critical",
                    f"loss diverging: {latest:.4g} vs best {best:.4g}",
                    round=sample.round,
                    details={"loss": latest, "best": best},
                )
            )
        if len(finite) >= self.window + 1:
            prior_best = min(finite[: -self.window])
            recent_best = min(finite[-self.window :])
            if recent_best > prior_best - self.min_improvement:
                alerts.append(
                    Alert(
                        self.name,
                        "warning",
                        f"no loss improvement in last {self.window} rounds "
                        f"(best {recent_best:.4g} vs prior {prior_best:.4g})",
                        round=sample.round,
                        details={"recent_best": recent_best, "prior_best": prior_best},
                    )
                )
        return alerts


class StragglerWatchdog(HealthMonitor):
    """Client local-update skew: p99/p50 of real wall-clock update time.

    Fires a *warning* when the tail is both relatively extreme
    (``p99 > ratio * p50``) and absolutely slow (``p99 >
    min_p99_seconds``) with at least ``min_samples`` observations — the
    absolute floor keeps microsecond-scale toy updates from alerting on
    scheduler jitter.
    """

    name = "stragglers"

    def __init__(
        self,
        ratio: float = 16.0,
        min_samples: int = 64,
        min_p99_seconds: float = 0.25,
        metric: str = "local_update_seconds{tier=run}",
    ) -> None:
        self.ratio = float(ratio)
        self.min_samples = int(min_samples)
        self.min_p99_seconds = float(min_p99_seconds)
        self.metric = metric

    def check(self, sample: HealthSample) -> List[Alert]:
        summ = (sample.snapshot.get("histograms") or {}).get(self.metric)
        if not summ or summ.get("count", 0) < self.min_samples:
            return []
        p50, p99 = summ.get("p50"), summ.get("p99")
        if not p50 or p99 is None or p50 <= 0:
            return []
        if p99 > self.ratio * p50 and p99 > self.min_p99_seconds:
            return [
                Alert(
                    self.name,
                    "warning",
                    f"straggler skew: local_update p99 {p99:.3g}s "
                    f"vs p50 {p50:.3g}s (>{self.ratio:g}x)",
                    round=sample.round,
                    details={"p50": p50, "p99": p99, "count": summ["count"]},
                )
            ]
        return []


class RetryWatchdog(HealthMonitor):
    """Retry and dead-letter rate alarms over per-interval deltas.

    Any dead letter in an interval is a *warning* (lost client data);
    retries alert only past ``max_retries_per_sample`` — retry storms,
    not routine self-healing.
    """

    name = "retries"

    def __init__(
        self, max_dead_letters_per_sample: int = 0, max_retries_per_sample: int = 50
    ) -> None:
        self.max_dead_letters = int(max_dead_letters_per_sample)
        self.max_retries = int(max_retries_per_sample)

    def check(self, sample: HealthSample) -> List[Alert]:
        alerts: List[Alert] = []
        dead = max(
            _sum_counters(sample, "comm_dead_letters"),
            _sum_counters(sample, "faults_dead_letters"),
        )
        if dead > self.max_dead_letters:
            alerts.append(
                Alert(
                    self.name,
                    "warning",
                    f"{int(dead)} dead-lettered transfer(s) since last sample",
                    round=sample.round,
                    details={"dead_letters": dead},
                )
            )
        retries = _sum_counters(sample, "comm_retries") + _sum_counters(
            sample, "faults_retries"
        )
        if retries > self.max_retries:
            alerts.append(
                Alert(
                    self.name,
                    "warning",
                    f"retry storm: {int(retries)} retries since last sample",
                    round=sample.round,
                    details={"retries": retries},
                )
            )
        return alerts


class MemoryWatchdog(HealthMonitor):
    """Memory watermarks: parent RSS, shm arena bytes, store bytes.

    All limits default to ``None`` (off); set them to byte counts to arm.
    Exceeding a watermark is *critical* — the next allocation may take
    the run down.  Also consulted at wave boundaries via
    :meth:`RunMonitor.on_wave`, where only these gauges are refreshed.
    """

    name = "memory"

    def __init__(
        self,
        max_rss_bytes: Optional[int] = None,
        max_shm_bytes: Optional[int] = None,
        max_store_bytes: Optional[int] = None,
    ) -> None:
        self.max_rss_bytes = max_rss_bytes
        self.max_shm_bytes = max_shm_bytes
        self.max_store_bytes = max_store_bytes

    def check(self, sample: HealthSample) -> List[Alert]:
        gauges = sample.snapshot.get("gauges") or {}
        alerts: List[Alert] = []

        def watermark(kind: str, observed: float, limit: Optional[int]) -> None:
            if limit is not None and observed > limit:
                alerts.append(
                    Alert(
                        self.name,
                        "critical",
                        f"{kind} {observed / 1e6:.1f} MB above watermark "
                        f"{limit / 1e6:.1f} MB",
                        round=sample.round,
                        details={"kind": kind, "observed": observed, "limit": limit},
                    )
                )

        watermark("rss", float(gauges.get("process_rss_bytes", 0.0)), self.max_rss_bytes)
        watermark(
            "shm arena", float(gauges.get("shm_live_bytes", 0.0)), self.max_shm_bytes
        )
        store_bytes = sum(
            v
            for k, v in gauges.items()
            if k == "store_nbytes" or k.startswith("store_nbytes{")
        )
        watermark("client store", float(store_bytes), self.max_store_bytes)
        return alerts


def default_monitors(
    max_rss_bytes: Optional[int] = None,
    max_shm_bytes: Optional[int] = None,
    max_store_bytes: Optional[int] = None,
) -> List[HealthMonitor]:
    """The standard watchdog set (memory watermarks off unless given)."""
    return [
        ConvergenceWatchdog(),
        StragglerWatchdog(),
        RetryWatchdog(),
        MemoryWatchdog(
            max_rss_bytes=max_rss_bytes,
            max_shm_bytes=max_shm_bytes,
            max_store_bytes=max_store_bytes,
        ),
    ]


# ---------------------------------------------------------------------------
# The monitor itself
# ---------------------------------------------------------------------------


class RunMonitor:
    """Live monitoring harness: sample, stream, serve, and check health.

    Arm with :func:`use_monitor` around ``runner.run(...)``.  Strictly
    observational: sampling rebuilds a fresh registry from the runner's
    own accounting surfaces (plus monitor-local timings fed through
    :meth:`observe_local_update`), so the run's RNG streams, ordering,
    and numerics are untouched.
    """

    def __init__(
        self,
        monitors: Optional[Sequence[HealthMonitor]] = None,
        stream: Union[MetricsStream, str, Path, None] = None,
        serve: bool = False,
        host: str = "127.0.0.1",
        port: int = 0,
        interval_rounds: int = 1,
        tag: Optional[str] = None,
        **labels: Any,
    ) -> None:
        self.monitors: List[HealthMonitor] = (
            list(monitors) if monitors is not None else default_monitors()
        )
        if isinstance(stream, (str, Path)):
            stream = MetricsStream(stream)
        self.stream = stream
        self.server = MetricsServer(host=host, port=port) if serve else None
        self.report = HealthReport()
        self.interval_rounds = max(1, int(interval_rounds))
        self.tag = tag
        self.labels = labels
        self.local_update_seconds = Histogram()
        self._prev_snapshot: Optional[Dict[str, Any]] = None
        self._rounds_seen = 0

    # ------------------------------------------------------------------ hooks
    def observe_local_update(self, seconds: float, client: Optional[int] = None) -> None:
        """Record one client update's real wall-clock duration."""
        self.local_update_seconds.observe(seconds)

    def on_wave(self, owner: Any, round_index: int, wave_index: int) -> None:
        """Cheap wave-boundary check: memory watermarks only."""
        self.report.waves += 1
        memory = [m for m in self.monitors if isinstance(m, MemoryWatchdog)]
        if not any(
            m.max_rss_bytes or m.max_shm_bytes or m.max_store_bytes for m in memory
        ):
            return
        reg = MetricsRegistry(**self.labels)
        self._memory_gauges(reg)
        store = getattr(owner, "_store", None)
        if store is not None:
            reg.absorb_store(store, tier="flat")
        snapshot = reg.snapshot()
        sample = HealthSample(
            runner=owner,
            history=getattr(owner, "history", None),
            result=None,
            snapshot=snapshot,
            delta={"counters": {}, "gauges": snapshot["gauges"], "histograms": {}},
            round=round_index,
        )
        for monitor in memory:
            self._run_check(monitor, sample)

    def on_round(self, runner: Any, result: Any = None) -> None:
        """Full sample at a round boundary: stream, serve, evaluate."""
        self._rounds_seen += 1
        if (self._rounds_seen - 1) % self.interval_rounds:
            return
        snapshot, delta = self.sample_registry(runner)
        self.report.samples += 1
        round_index = getattr(result, "round", None)
        if self.stream is not None:
            meta: Dict[str, Any] = {}
            if round_index is not None:
                meta["round"] = round_index
            if self.tag is not None:
                meta["tag"] = self.tag
            self.stream.append(snapshot, delta, **meta)
        sample = HealthSample(
            runner=runner,
            history=getattr(runner, "history", None),
            result=result,
            snapshot=snapshot,
            delta=delta,
            round=round_index,
        )
        for monitor in self.monitors:
            self._run_check(monitor, sample)
        if self.server is not None:
            self.server.publish(snapshot, self.report.to_dict())
        self._prev_snapshot = snapshot

    # -------------------------------------------------------------- internals
    def _run_check(self, monitor: HealthMonitor, sample: HealthSample) -> None:
        self.report.record_check(monitor.name)
        try:
            alerts = monitor.check(sample) or []
        except Exception as exc:  # a broken watchdog must never kill the run
            alerts = [
                Alert(
                    monitor.name,
                    "warning",
                    f"watchdog error: {type(exc).__name__}: {exc}",
                    round=sample.round,
                )
            ]
        tracer = current_tracer()
        for alert in alerts:
            self.report.add(alert)
            if tracer is not None:
                labels: Dict[str, Any] = {
                    "monitor": alert.monitor,
                    "severity": alert.severity,
                    "message": alert.message,
                }
                if alert.round is not None:
                    labels["round"] = alert.round
                if alert.details:
                    labels["details"] = dict(alert.details)
                tracer.event("alert", "health", lane="health", **labels)

    def _memory_gauges(self, reg: MetricsRegistry) -> None:
        reg.gauge("process_rss_bytes").set(float(rss_bytes()))
        try:
            from ..mp.shm import live_arena_stats

            arena = live_arena_stats()
            reg.gauge("shm_live_bytes").set(float(arena["bytes"]))
            reg.gauge("shm_live_segments").set(float(arena["segments"]))
        except ImportError:  # pragma: no cover
            pass

    def sample_registry(self, runner: Any):
        """Cumulative snapshot + delta-vs-previous for ``runner`` now."""
        reg = MetricsRegistry(**self.labels)
        reg.absorb_runner(runner)
        if self.local_update_seconds.count:
            reg.histogram("local_update_seconds", tier="run").merge(
                self.local_update_seconds
            )
        self._memory_gauges(reg)
        snapshot = reg.snapshot()
        delta = reg.diff(self._prev_snapshot)
        return snapshot, delta

    # ------------------------------------------------------------------ wrap
    def close(self) -> None:
        if self.stream is not None:
            self.stream.close()
        if self.server is not None:
            self.server.close()

    def __enter__(self) -> "RunMonitor":
        self._token = set_monitor(self)
        return self

    def __exit__(self, *exc) -> None:
        _MONITOR.reset(self._token)
        self.close()
