"""Structured span/event tracer with a context-local handle.

The tracer is the unified timeline for a federated run: round/wave/phase
spans, per-client ``local_update`` spans, per-edge ingest/summary events,
comm send/retry/backoff/dead-letter events, fault injections, store
materialize/evict spans, and checkpoint capture/restore spans all land in
one ordered record list with both monotonic wall-clock timestamps and
(where the caller has one) simulated virtual-clock timestamps.

Design constraints, enforced here and regression-tested in
``tests/test_obs.py``:

* **Disabled is free.**  Library code never takes a tracer parameter; it
  calls :func:`current_tracer` (one ``ContextVar.get`` + ``None`` check)
  and skips all emission when no tracer is armed.
* **Observational only.**  The tracer never consumes run RNG, never
  reorders events, and never branches run behaviour — a traced run is
  bitwise identical to an untraced one.
* **Single-threaded emission.**  Spans for work done inside thread pools
  are timed in the worker via :func:`timed_call` and *emitted* from the
  orchestration thread afterwards, so record order is deterministic.

Exports: JSONL (one record per line) and Chrome/Perfetto ``trace_event``
JSON (load at https://ui.perfetto.dev or ``chrome://tracing``).
"""

from __future__ import annotations

import json
import time
from contextlib import contextmanager
from contextvars import ContextVar
from pathlib import Path
from typing import Any, Callable, Dict, Iterator, List, Optional, Tuple, Union

from .export import json_default

__all__ = [
    "Tracer",
    "current_tracer",
    "set_tracer",
    "use_tracer",
    "timed_call",
    "records_to_perfetto",
]

_TRACER: ContextVar[Optional["Tracer"]] = ContextVar("repro_tracer", default=None)


def current_tracer() -> Optional["Tracer"]:
    """The tracer armed for the current context, or ``None``."""
    return _TRACER.get()


def set_tracer(tracer: Optional["Tracer"]):
    """Arm ``tracer`` for the current context; returns the reset token."""
    return _TRACER.set(tracer)


@contextmanager
def use_tracer(tracer: Optional["Tracer"]) -> Iterator[Optional["Tracer"]]:
    """Arm ``tracer`` for the duration of the ``with`` block."""
    token = _TRACER.set(tracer)
    try:
        yield tracer
    finally:
        _TRACER.reset(token)


def timed_call(fn: Callable, *args, **kwargs) -> Tuple[Any, float, float]:
    """Run ``fn(*args, **kwargs)`` and return ``(result, t0, t1)``.

    Used to time work executed inside thread-pool workers without
    emitting from the worker: the caller emits the span afterwards (see
    ``FederatedRunner._update_clients``), keeping record order
    deterministic while the timestamps stay honest.
    """
    t0 = time.perf_counter()
    out = fn(*args, **kwargs)
    return out, t0, time.perf_counter()


class Tracer:
    """Collects spans and point events on a monotonic timeline.

    All timestamps are seconds relative to the tracer's construction
    (``time.perf_counter`` deltas); ``vt``/``vt0``/``vt1`` carry the
    simulated virtual clock when the emitting site has one.

    Records are plain JSON-able dicts:

    * span  — ``{"type": "span", "name", "cat", "lane", "t0", "t1", ...}``
    * event — ``{"type": "event", "name", "cat", "lane", "t", ...}``

    plus any extra labels the emitting site passed (client id, edge id,
    endpoint, nbytes, fault kind, ...).
    """

    def __init__(self) -> None:
        self._origin = time.perf_counter()
        self._records: List[Dict[str, Any]] = []

    # ------------------------------------------------------------ recording
    @property
    def records(self) -> List[Dict[str, Any]]:
        return self._records

    def __len__(self) -> int:
        return len(self._records)

    def _now(self) -> float:
        return time.perf_counter() - self._origin

    def emit_span(
        self,
        name: str,
        cat: str,
        t0: float,
        t1: float,
        lane: str = "main",
        vt0: Optional[float] = None,
        vt1: Optional[float] = None,
        **labels: Any,
    ) -> None:
        """Record a completed span timed by the caller.

        ``t0``/``t1`` are raw ``time.perf_counter`` readings — the tracer
        rebases them onto its own origin, so call sites can reuse timing
        ticks they already take for ``phase_seconds`` accounting.
        """
        rec: Dict[str, Any] = {
            "type": "span",
            "name": name,
            "cat": cat,
            "lane": lane,
            "t0": t0 - self._origin,
            "t1": t1 - self._origin,
        }
        if vt0 is not None:
            rec["vt0"] = vt0
        if vt1 is not None:
            rec["vt1"] = vt1
        if labels:
            rec.update(labels)
        self._records.append(rec)

    @contextmanager
    def span(self, name: str, cat: str = "run", lane: str = "main", **labels: Any):
        """Context manager form of :meth:`emit_span`."""
        t0 = time.perf_counter()
        try:
            yield self
        finally:
            self.emit_span(name, cat, t0, time.perf_counter(), lane=lane, **labels)

    def event(
        self,
        name: str,
        cat: str = "run",
        lane: str = "main",
        vt: Optional[float] = None,
        **labels: Any,
    ) -> None:
        """Record an instantaneous point event stamped now."""
        rec: Dict[str, Any] = {
            "type": "event",
            "name": name,
            "cat": cat,
            "lane": lane,
            "t": self._now(),
        }
        if vt is not None:
            rec["vt"] = vt
        if labels:
            rec.update(labels)
        self._records.append(rec)

    # -------------------------------------------------------------- exports
    def to_jsonl(self) -> str:
        """One JSON object per line, in emission order."""
        return "\n".join(
            json.dumps(rec, sort_keys=True, default=json_default)
            for rec in self._records
        )

    def write_jsonl(self, path: Union[str, Path]) -> Path:
        path = Path(path)
        path.write_text(self.to_jsonl() + ("\n" if self._records else ""))
        return path

    def to_perfetto(self) -> Dict[str, Any]:
        """Chrome ``trace_event`` JSON — see :func:`records_to_perfetto`."""
        return records_to_perfetto(self._records)

    def write_perfetto(self, path: Union[str, Path]) -> Path:
        path = Path(path)
        path.write_text(json.dumps(self.to_perfetto(), default=json_default))
        return path


def records_to_perfetto(records: List[Dict[str, Any]]) -> Dict[str, Any]:
    """Convert trace records (live or loaded from JSONL) to Chrome
    ``trace_event`` JSON (Perfetto-compatible).

    Spans become ``"X"`` complete events (``ts``/``dur`` in microseconds),
    point events become ``"i"`` instant events, and each lane gets its own
    ``tid`` named via an ``"M"`` metadata event so Perfetto renders one
    track per lane.  Module-level so ``obsreport --perfetto`` can convert
    a saved JSONL trace without rerunning anything.
    """
    events: List[Dict[str, Any]] = []
    tids: Dict[str, int] = {}

    def tid_for(lane: str) -> int:
        tid = tids.get(lane)
        if tid is None:
            tid = tids[lane] = len(tids) + 1
            events.append(
                {
                    "ph": "M",
                    "name": "thread_name",
                    "pid": 1,
                    "tid": tid,
                    "args": {"name": lane},
                }
            )
        return tid

    reserved = {"type", "name", "cat", "lane", "t", "t0", "t1"}
    for rec in records:
        tid = tid_for(rec.get("lane", "main"))
        args = {k: v for k, v in rec.items() if k not in reserved}
        base = {
            "name": rec["name"],
            "cat": rec["cat"],
            "pid": 1,
            "tid": tid,
            "args": args,
        }
        if rec["type"] == "span":
            base["ph"] = "X"
            base["ts"] = rec["t0"] * 1e6
            base["dur"] = max(0.0, (rec["t1"] - rec["t0"]) * 1e6)
        else:
            base["ph"] = "i"
            base["ts"] = rec["t"] * 1e6
            base["s"] = "t"
        events.append(base)
    return {"traceEvents": events, "displayTimeUnit": "ms"}
