"""Streaming metrics export: JSONL time series, Prometheus text, live endpoint.

PR 7's registry was post-mortem: one final ``snapshot()`` after the run.
This module turns the same snapshots into live telemetry with three
building blocks, all strictly observational:

* :func:`json_default` — the one shared ``json.dumps(default=...)`` hook
  for every obs writer, so numpy scalars riding in spans or metric values
  never raise ``TypeError`` at export time.
* :func:`render_prometheus` — render a ``MetricsRegistry.snapshot()`` (or
  a ``diff()``) as Prometheus text exposition format 0.0.4: counters as
  ``*_total``, gauges verbatim, histograms as summaries with ``quantile``
  labels.  :func:`lint_exposition` re-parses the output and is used by the
  tests and the chaos harness's self-scrape to keep the format honest.
* :class:`MetricsStream` / :class:`MetricsServer` — a periodic JSONL
  time-series writer (cumulative snapshot + counter deltas per sample)
  and an optional stdlib ``http.server`` endpoint serving ``/metrics``
  and ``/healthz`` from a background daemon thread while a run is live.

Nothing here imports the rest of ``repro`` — the registry hands in plain
snapshot dicts, so export can never perturb a run.
"""

from __future__ import annotations

import json
import re
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional, Tuple, Union

__all__ = [
    "json_default",
    "render_prometheus",
    "lint_exposition",
    "MetricsStream",
    "MetricsServer",
]


def json_default(obj: Any) -> Any:
    """Shared ``json.dumps(default=...)`` hook: numpy scalars/arrays → python.

    Imports numpy lazily so the export layer itself stays dependency-free;
    anything still unknown falls back to ``str`` rather than raising mid-run.
    """
    try:
        import numpy as np

        if isinstance(obj, np.bool_):
            return bool(obj)
        if isinstance(obj, np.integer):
            return int(obj)
        if isinstance(obj, np.floating):
            return float(obj)
        if isinstance(obj, np.ndarray):
            return obj.tolist()
    except ImportError:  # pragma: no cover - numpy is a hard dep elsewhere
        pass
    if isinstance(obj, Path):
        return str(obj)
    return str(obj)


def dumps(obj: Any, **kwargs: Any) -> str:
    """``json.dumps`` with the shared numpy-safe ``default`` pre-wired."""
    kwargs.setdefault("default", json_default)
    return json.dumps(obj, **kwargs)


# ---------------------------------------------------------------------------
# Prometheus text exposition (format 0.0.4)
# ---------------------------------------------------------------------------

METRIC_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
LABEL_NAME_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")
_SAMPLE_LINE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^}]*)\})? "
    r"(?P<value>[^ ]+)$"
)
_LABEL_PAIR_RE = re.compile(r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"(?:,|$)')
_LABELS_BODY_RE = re.compile(
    r'^[a-zA-Z_][a-zA-Z0-9_]*="(?:[^"\\]|\\.)*"'
    r'(?:,[a-zA-Z_][a-zA-Z0-9_]*="(?:[^"\\]|\\.)*")*,?$'
)


def _sanitize_metric_name(name: str) -> str:
    name = re.sub(r"[^a-zA-Z0-9_:]", "_", name)
    if not name or not re.match(r"[a-zA-Z_:]", name[0]):
        name = "_" + name
    return name


def _sanitize_label_name(name: str) -> str:
    name = re.sub(r"[^a-zA-Z0-9_]", "_", name)
    if not name or not re.match(r"[a-zA-Z_]", name[0]):
        name = "_" + name
    return name


def _escape_label_value(value: Any) -> str:
    return str(value).replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _parse_flat_key(key: str) -> Tuple[str, Dict[str, str]]:
    """Split a registry flat key ``name{k=v,...}`` back into name + labels."""
    name, brace, rest = key.partition("{")
    if not brace:
        return key, {}
    labels: Dict[str, str] = {}
    for pair in rest.rstrip("}").split(","):
        if not pair:
            continue
        k, _, v = pair.partition("=")
        labels[k] = v
    return name, labels


def _format_value(value: Any) -> str:
    value = float(value)
    if value != value:  # NaN
        return "NaN"
    if value in (float("inf"), float("-inf")):
        return "+Inf" if value > 0 else "-Inf"
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(value)


def _label_string(labels: Mapping[str, Any]) -> str:
    if not labels:
        return ""
    inner = ",".join(
        f'{_sanitize_label_name(k)}="{_escape_label_value(v)}"'
        for k, v in sorted(labels.items())
    )
    return "{" + inner + "}"


def render_prometheus(snapshot: Mapping[str, Any], namespace: str = "") -> str:
    """Render a registry ``snapshot()`` dict as Prometheus text exposition.

    Counters gain the conventional ``_total`` suffix, gauges export
    verbatim, and histogram summaries become Prometheus *summary*
    families (``quantile`` labels plus ``_sum``/``_count``).  Registry
    level labels apply to every sample; series of one family are grouped
    under a single ``# TYPE`` header as the format requires.
    """
    base_labels = dict(snapshot.get("labels") or {})
    prefix = _sanitize_metric_name(namespace) + "_" if namespace else ""

    # family name -> (type, [sample lines])
    families: Dict[str, Tuple[str, List[str]]] = {}

    def family(name: str, kind: str) -> List[str]:
        fam = families.get(name)
        if fam is None:
            fam = families[name] = (kind, [])
        return fam[1]

    def sample(fam_lines: List[str], name: str, labels: Mapping[str, Any], value: Any) -> None:
        merged = dict(base_labels)
        merged.update(labels)
        fam_lines.append(f"{name}{_label_string(merged)} {_format_value(value)}")

    for key, value in (snapshot.get("counters") or {}).items():
        raw_name, labels = _parse_flat_key(key)
        name = prefix + _sanitize_metric_name(raw_name) + "_total"
        sample(family(name, "counter"), name, labels, value)

    for key, value in (snapshot.get("gauges") or {}).items():
        raw_name, labels = _parse_flat_key(key)
        name = prefix + _sanitize_metric_name(raw_name)
        sample(family(name, "gauge"), name, labels, value)

    for key, summ in (snapshot.get("histograms") or {}).items():
        raw_name, labels = _parse_flat_key(key)
        name = prefix + _sanitize_metric_name(raw_name)
        lines = family(name, "summary")
        for q, field in (("0.5", "p50"), ("0.95", "p95"), ("0.99", "p99")):
            qv = summ.get(field)
            if qv is not None:
                sample(lines, name, {**labels, "quantile": q}, qv)
        sample(family(name + "_sum", "__suffix__"), name + "_sum", labels, summ.get("sum", 0.0))
        sample(family(name + "_count", "__suffix__"), name + "_count", labels, summ.get("count", 0))

    out: List[str] = []
    for name in sorted(families):
        kind, lines = families[name]
        if kind != "__suffix__":  # _sum/_count ride under the summary header
            out.append(f"# TYPE {name} {kind}")
        out.extend(lines)
    return "\n".join(out) + "\n" if out else ""


def lint_exposition(text: str) -> List[str]:
    """Validate Prometheus text exposition; return a list of problems.

    Checks metric-name / label-name charsets, label value quoting, sample
    parseability, one ``# TYPE`` per family, and that every ``counter``
    family's samples end in ``_total``.  An empty list means clean.
    """
    problems: List[str] = []
    types: Dict[str, str] = {}
    for lineno, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        if line.startswith("# TYPE "):
            parts = line.split()
            if len(parts) != 4:
                problems.append(f"line {lineno}: malformed TYPE line")
                continue
            _, _, name, kind = parts
            if not METRIC_NAME_RE.match(name):
                problems.append(f"line {lineno}: bad metric name {name!r}")
            if kind not in ("counter", "gauge", "summary", "histogram", "untyped"):
                problems.append(f"line {lineno}: unknown type {kind!r}")
            if name in types:
                problems.append(f"line {lineno}: duplicate TYPE for {name!r}")
            types[name] = kind
            continue
        if line.startswith("#"):
            continue
        m = _SAMPLE_LINE_RE.match(line)
        if not m:
            problems.append(f"line {lineno}: unparseable sample {line!r}")
            continue
        name = m.group("name")
        base = re.sub(r"_(sum|count)$", "", name)
        kind = types.get(name) or types.get(base)
        if kind is None:
            problems.append(f"line {lineno}: sample {name!r} has no TYPE header")
        elif kind == "counter" and not name.endswith("_total"):
            problems.append(f"line {lineno}: counter sample {name!r} missing _total")
        labels = m.group("labels")
        if labels and not _LABELS_BODY_RE.match(labels):
            problems.append(f"line {lineno}: malformed labels {labels!r}")
        try:
            float(m.group("value").replace("+Inf", "inf").replace("-Inf", "-inf"))
        except ValueError:
            problems.append(f"line {lineno}: bad value {m.group('value')!r}")
    return problems


# ---------------------------------------------------------------------------
# JSONL time series
# ---------------------------------------------------------------------------


class MetricsStream:
    """Append-only JSONL time series of registry snapshots.

    Each :meth:`append` writes one line carrying the sample sequence
    number, wall-clock / monotonic-elapsed timestamps, caller metadata
    (round index, run tag, ...), the cumulative snapshot, and — when the
    caller hands one in — the counter/histogram delta since the previous
    sample.  Lines flush immediately so a crashed run keeps every sample
    written before the crash.
    """

    def __init__(self, path: Union[str, Path], append: bool = False) -> None:
        self.path = Path(path)
        self._fh = self.path.open("a" if append else "w")
        self._t0 = time.perf_counter()
        self.samples = 0

    def append(
        self,
        snapshot: Mapping[str, Any],
        delta: Optional[Mapping[str, Any]] = None,
        **meta: Any,
    ) -> None:
        record: Dict[str, Any] = {
            "seq": self.samples,
            "time_unix": time.time(),
            "elapsed_seconds": time.perf_counter() - self._t0,
        }
        record.update(meta)
        record["metrics"] = snapshot
        if delta is not None:
            record["delta"] = delta
        self._fh.write(dumps(record, sort_keys=True) + "\n")
        self._fh.flush()
        self.samples += 1

    def close(self) -> None:
        if not self._fh.closed:
            self._fh.close()

    def __enter__(self) -> "MetricsStream":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def load_series(path: Union[str, Path]) -> List[Dict[str, Any]]:
    """Load a :class:`MetricsStream` JSONL file back into sample dicts."""
    samples = []
    with Path(path).open() as fh:
        for line in fh:
            line = line.strip()
            if line:
                samples.append(json.loads(line))
    return samples


# ---------------------------------------------------------------------------
# Live endpoint
# ---------------------------------------------------------------------------


class MetricsServer:
    """Background ``/metrics`` + ``/healthz`` endpoint over stdlib http.server.

    The run loop calls :meth:`publish` at each sample boundary; scrapers
    see the latest snapshot rendered to Prometheus text and a JSON health
    summary (HTTP 503 once any ``critical`` alert has fired).  ``port=0``
    picks a free port — read it back from :attr:`port` / :attr:`url`.
    """

    def __init__(self, host: str = "127.0.0.1", port: int = 0) -> None:
        self._lock = threading.Lock()
        self._exposition = "\n"
        self._health: Dict[str, Any] = {"status": "ok", "alerts": []}
        self._critical = False
        server = self

        class Handler(BaseHTTPRequestHandler):
            def do_GET(self) -> None:  # noqa: N802 - http.server API
                path = self.path.split("?", 1)[0]
                if path == "/metrics":
                    with server._lock:
                        body = server._exposition.encode()
                    self.send_response(200)
                    self.send_header(
                        "Content-Type", "text/plain; version=0.0.4; charset=utf-8"
                    )
                elif path == "/healthz":
                    with server._lock:
                        body = dumps(server._health, sort_keys=True).encode()
                        status = 503 if server._critical else 200
                    self.send_response(status)
                    self.send_header("Content-Type", "application/json")
                else:
                    body = b"not found\n"
                    self.send_response(404)
                    self.send_header("Content-Type", "text/plain")
                self.send_header("Content-Length", str(len(body)))
                self.end_headers()
                self.wfile.write(body)

            def log_message(self, *args) -> None:  # silence per-request noise
                pass

        self._httpd = ThreadingHTTPServer((host, port), Handler)
        self._httpd.daemon_threads = True
        self.host = host
        self.port = int(self._httpd.server_address[1])
        self._thread = threading.Thread(
            target=self._httpd.serve_forever, name="repro-metrics", daemon=True
        )
        self._thread.start()

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def publish(
        self,
        snapshot: Mapping[str, Any],
        health: Optional[Mapping[str, Any]] = None,
    ) -> None:
        exposition = render_prometheus(snapshot)
        with self._lock:
            self._exposition = exposition
            if health is not None:
                self._health = dict(health)
                self._critical = any(
                    a.get("severity") == "critical"
                    for a in self._health.get("alerts", [])
                )

    def close(self) -> None:
        try:
            self._httpd.shutdown()
            self._httpd.server_close()
        except Exception:
            pass
        self._thread.join(timeout=2.0)
