"""Unified observability: span tracing, metrics, live monitoring, profiling.

``repro.obs`` is the one place a run's telemetry comes together:

* :class:`Tracer` — structured spans and point events across every tier
  (rounds, waves, phases, per-client updates, per-edge ingest/summary,
  comm send/retry/backoff/dead-letter, fault injections, store
  materialize/evict, checkpoint capture/restore, health alerts),
  exportable as JSONL and Chrome/Perfetto ``trace_event`` JSON.
* :class:`MetricsRegistry` — counters/gauges/histograms (streaming
  p50/p95/p99) labelled by algorithm/codec/tier, absorbing the scattered
  accounting (``phase_seconds``, ``CommLog``, ``FaultStats``, store
  stats, per-tier ε, process-worker telemetry) behind one
  :meth:`~MetricsRegistry.snapshot`, with :meth:`~MetricsRegistry.diff`
  and :meth:`~MetricsRegistry.merge` for time series and cross-process
  aggregation.
* :class:`RunMonitor` — live monitoring at round/wave boundaries:
  JSONL time-series streaming (:class:`MetricsStream`), a Prometheus
  ``/metrics`` + ``/healthz`` endpoint (:class:`MetricsServer`), and
  health watchdogs (convergence, stragglers, retries/dead letters,
  memory watermarks) producing structured :class:`Alert`\\ s in a
  :class:`HealthReport`.
* :class:`PhaseProfiler` — opt-in phase-scoped ``cProfile`` capture with
  collapsed-stack (flame-graph) output, aggregating worker-process
  profiles shipped through the pool's result channel.

Every handle is context-local (:func:`current_tracer` /
:func:`current_monitor` / :func:`current_profiler`): library code polls
one ``ContextVar.get`` per site and no function ever takes a telemetry
parameter.  All of it is strictly observational — armed or not, runs are
bitwise identical (regression-tested in ``tests/test_obs.py`` and
``tests/test_obs_live.py``).
"""

from .trace import (
    Tracer,
    current_tracer,
    records_to_perfetto,
    set_tracer,
    timed_call,
    use_tracer,
)
from .metrics import Counter, Gauge, Histogram, MetricsRegistry, metric_key
from .export import (
    MetricsServer,
    MetricsStream,
    json_default,
    lint_exposition,
    load_series,
    render_prometheus,
)
from .health import (
    Alert,
    ConvergenceWatchdog,
    HealthMonitor,
    HealthReport,
    MemoryWatchdog,
    RetryWatchdog,
    RunMonitor,
    StragglerWatchdog,
    current_monitor,
    default_monitors,
    set_monitor,
    use_monitor,
)
from .profiler import (
    PhaseProfiler,
    collapse_profile,
    current_profiler,
    set_profiler,
    use_profiler,
)

__all__ = [
    "Tracer",
    "current_tracer",
    "set_tracer",
    "use_tracer",
    "timed_call",
    "records_to_perfetto",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "metric_key",
    "MetricsServer",
    "MetricsStream",
    "json_default",
    "lint_exposition",
    "load_series",
    "render_prometheus",
    "Alert",
    "ConvergenceWatchdog",
    "HealthMonitor",
    "HealthReport",
    "MemoryWatchdog",
    "RetryWatchdog",
    "RunMonitor",
    "StragglerWatchdog",
    "current_monitor",
    "default_monitors",
    "set_monitor",
    "use_monitor",
    "PhaseProfiler",
    "collapse_profile",
    "current_profiler",
    "set_profiler",
    "use_profiler",
]
