"""Unified observability: span tracing + metrics registry.

``repro.obs`` is the one place a run's telemetry comes together:

* :class:`Tracer` — structured spans and point events across every tier
  (rounds, waves, phases, per-client updates, per-edge ingest/summary,
  comm send/retry/backoff/dead-letter, fault injections, store
  materialize/evict, checkpoint capture/restore), exportable as JSONL
  and Chrome/Perfetto ``trace_event`` JSON.
* :func:`current_tracer` / :func:`use_tracer` — the context-local handle
  library code polls so no function ever takes a tracer parameter; when
  no tracer is armed the cost is one ``ContextVar.get`` per site.
* :class:`MetricsRegistry` — counters/gauges/histograms (streaming
  p50/p95/p99) labelled by algorithm/codec/tier, absorbing the scattered
  accounting (``phase_seconds``, ``CommLog``, ``FaultStats``, store
  stats, per-tier ε) behind one :meth:`~MetricsRegistry.snapshot`.

Tracing is strictly observational: an armed tracer never consumes run
RNG and never reorders events, so traced runs are bitwise identical to
untraced ones (regression-tested in ``tests/test_obs.py``).
"""

from .trace import Tracer, current_tracer, set_tracer, timed_call, use_tracer
from .metrics import Counter, Gauge, Histogram, MetricsRegistry, metric_key

__all__ = [
    "Tracer",
    "current_tracer",
    "set_tracer",
    "use_tracer",
    "timed_call",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "metric_key",
]
