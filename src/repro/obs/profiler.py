"""Opt-in phase-scoped ``cProfile`` capture with collapsed-stack output.

:class:`PhaseProfiler` mirrors the tracer/monitor pattern: library code
calls :func:`current_profiler` (one ``ContextVar.get``) and wraps the
phases the profiler asked for in ``begin(phase)``/``end(phase)`` pairs.
Profiling adds interpreter overhead but never touches run state, RNG, or
ordering — a profiled run stays bitwise identical.

Output is the *collapsed stack* ("folded") format consumed by
``flamegraph.pl``, speedscope, and most flame-graph viewers: one
``frame;frame;frame value`` line per unique stack, values in integer
microseconds.  ``cProfile`` records a caller→callee time graph rather
than true stacks, so :func:`collapse_profile` reconstructs stacks by
walking the graph from its roots and apportioning each function's
cumulative time across callers proportionally (the same estimation
``flameprof`` uses).  The attribution is approximate for functions
reached via several paths; totals per function remain exact.

The process backend ships each worker's folded stacks back over the
result pipe (see ``mp/worker.py``); the parent folds them in under a
``worker:N`` root frame via :meth:`PhaseProfiler.add_folded`, giving one
cross-process flame graph per phase.
"""

from __future__ import annotations

import cProfile
from contextlib import contextmanager
from contextvars import ContextVar
from pathlib import Path
from typing import Any, Dict, Iterator, Mapping, Optional, Sequence, Tuple, Union

__all__ = [
    "PhaseProfiler",
    "collapse_profile",
    "current_profiler",
    "set_profiler",
    "use_profiler",
]

_PROFILER: ContextVar[Optional["PhaseProfiler"]] = ContextVar(
    "repro_profiler", default=None
)


def current_profiler() -> Optional["PhaseProfiler"]:
    """The profiler armed for the current context, or ``None``."""
    return _PROFILER.get()


def set_profiler(profiler: Optional["PhaseProfiler"]):
    """Arm ``profiler`` for the current context; returns the reset token."""
    return _PROFILER.set(profiler)


@contextmanager
def use_profiler(profiler: Optional["PhaseProfiler"]) -> Iterator[Optional["PhaseProfiler"]]:
    """Arm ``profiler`` for the duration of the ``with`` block."""
    token = _PROFILER.set(profiler)
    try:
        yield profiler
    finally:
        _PROFILER.reset(token)


def _frame_name(func: Tuple[str, int, str]) -> str:
    filename, _lineno, name = func
    if filename in ("~", "") or filename.startswith("<"):
        return name.strip("<>") or "?"
    return f"{filename.rsplit('/', 1)[-1]}:{name}"


def collapse_profile(
    profile: cProfile.Profile, max_depth: int = 64
) -> Dict[str, float]:
    """Estimate folded stacks (``frame;frame -> seconds``) from a profile.

    Walks the caller graph from its roots, attributing each function's
    self time to the current path and splitting the remainder across
    callees proportionally to per-edge cumulative time.  Deterministic:
    children are visited in sorted frame-name order, recursion back into
    a function already on the path is cut (its time stays attributed to
    the first occurrence).
    """
    profile.create_stats()
    stats: Mapping = profile.stats  # {func: (cc, nc, tt, ct, callers)}
    children: Dict[Tuple, list] = {}
    roots = []
    for func, (_cc, _nc, _tt, _ct, callers) in stats.items():
        if not callers:
            roots.append(func)
        for caller, edge in callers.items():
            children.setdefault(caller, []).append((func, float(edge[3])))

    out: Dict[str, float] = {}

    def walk(func, path: Tuple[str, ...], budget: float, on_path: frozenset) -> None:
        if budget <= 0.0:
            return
        _cc, _nc, tt, ct, _callers = stats[func]
        path = path + (_frame_name(func),)
        key = ";".join(path)
        self_share = budget * (tt / ct) if ct > 0 else budget
        kids = [
            (callee, edge)
            for callee, edge in children.get(func, ())
            if callee not in on_path and callee in stats
        ]
        child_total = sum(edge for _, edge in kids)
        if len(path) >= max_depth or child_total <= 0.0:
            out[key] = out.get(key, 0.0) + budget
            return
        out[key] = out.get(key, 0.0) + self_share
        remainder = max(0.0, budget - self_share)
        on_path = on_path | {func}
        for callee, edge in sorted(kids, key=lambda kv: _frame_name(kv[0])):
            walk(callee, path, remainder * (edge / child_total), on_path)

    for func in sorted(roots, key=_frame_name):
        ct = stats[func][3]
        walk(func, (), float(ct), frozenset())
    return out


class PhaseProfiler:
    """Accumulate one ``cProfile.Profile`` per requested run phase.

    ``phases`` names which runner phases to capture (any of
    ``broadcast``/``local_update``/``gather``/``aggregate``/``evaluate``);
    only those pay profiling overhead.  One profile may be active at a
    time per process (a ``cProfile`` constraint) — overlapping ``begin``
    calls are ignored rather than raising.
    """

    def __init__(self, phases: Sequence[str] = ("local_update",)) -> None:
        self.phases = frozenset(phases)
        self._profiles: Dict[str, cProfile.Profile] = {}
        self._folded: Dict[str, float] = {}
        self._active: Optional[str] = None

    def wants(self, phase: str) -> bool:
        return phase in self.phases

    def begin(self, phase: str) -> None:
        if phase not in self.phases or self._active is not None:
            return
        profile = self._profiles.get(phase)
        if profile is None:
            profile = self._profiles[phase] = cProfile.Profile()
        self._active = phase
        profile.enable()

    def end(self, phase: str) -> None:
        if self._active != phase:
            return
        self._profiles[phase].disable()
        self._active = None

    @contextmanager
    def phase(self, name: str) -> Iterator[None]:
        self.begin(name)
        try:
            yield
        finally:
            self.end(name)

    def add_folded(
        self, phase: str, folded: Mapping[str, float], root: Optional[str] = None
    ) -> None:
        """Fold pre-collapsed stacks (e.g. shipped by a worker process)
        under ``phase`` (and an optional extra ``root`` frame)."""
        for stack, value in folded.items():
            key = f"{phase};{root};{stack}" if root else f"{phase};{stack}"
            self._folded[key] = self._folded.get(key, 0.0) + float(value)

    def collapsed(self) -> Dict[str, float]:
        """All folded stacks, phase name as the root frame, values in seconds."""
        out = dict(self._folded)
        for phase, profile in self._profiles.items():
            for stack, seconds in collapse_profile(profile).items():
                key = f"{phase};{stack}"
                out[key] = out.get(key, 0.0) + seconds
        return out

    def write_collapsed(self, path: Union[str, Path]) -> Path:
        """Write ``stack value`` lines (integer microseconds), flamegraph-ready."""
        path = Path(path)
        lines = []
        folded = self.collapsed()
        for stack in sorted(folded):
            micros = round(folded[stack] * 1e6)
            if micros > 0:
                lines.append(f"{stack} {micros}")
        path.write_text("\n".join(lines) + ("\n" if lines else ""))
        return path
