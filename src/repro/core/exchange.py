"""The single codec-aware dispatch/collect path shared by both runners.

Before the wire-codec refactor the synchronous :class:`~repro.core.runner.
FederatedRunner` and the event-driven :class:`~repro.asyncfl.runner.
AsyncRunner` each hand-rolled their own payload handling (raw state dicts,
synthetic byte counts).  :class:`PacketExchange` is now the one place model
payloads are turned into :class:`~repro.comm.codecs.UpdatePacket` objects
and back:

* **dispatch** (server → client): :meth:`encode_dispatch` encodes the
  broadcast payload once; :meth:`open_dispatch` decodes a received packet
  into the per-client payload dict (fresh arrays — decoding doubles as
  endpoint isolation).
* **collect** (client → server): :meth:`encode_upload` encodes a client's
  upload with the *dispatched* global model as the delta-codec reference —
  the same snapshot PR 2's staleness bookkeeping threads through
  ``ingest(cid, payload, dispatched_global)``, so delta transmission remains
  correct under async staleness and FedBuff overwrites.  The server-side
  decode happens exactly once, inside :meth:`BaseServer.ingest
  <repro.core.base.BaseServer.ingest>`.
* **reconcile** (lossy stacks only): :meth:`reconcile` hands the client the
  decoded echo of its own upload so stateful bookkeeping (IIADMM's dual
  replicas) can mirror what the server will actually see.

Both runners charge their cost models — communicator down/uplink times, the
asyncfl link latency and virtual clock — with ``packet.nbytes``, the
measured post-codec size.
"""

from __future__ import annotations

from typing import Dict, Mapping, Union

import numpy as np

from ..comm.codecs import CodecPipeline, UpdatePacket, resolve_codec
from .base import PRIMAL_KEY, BaseClient

__all__ = ["PacketExchange"]

Payload = Mapping[str, np.ndarray]


class PacketExchange:
    """Encodes/decodes every model exchange through one codec pipeline."""

    def __init__(self, codec: Union[str, CodecPipeline] = "identity"):
        self.pipeline = resolve_codec(codec)

    @property
    def spec(self) -> str:
        """Canonical codec stack spec in use."""
        return self.pipeline.spec

    @property
    def lossy(self) -> bool:
        """True when decoded payloads may differ from the encoded originals."""
        return self.pipeline.lossy

    # -------------------------------------------------------------- dispatch
    def encode_dispatch(self, payload: Payload) -> UpdatePacket:
        """Encode the server's broadcast payload (no delta reference: the
        receiving client holds no agreed-upon prior snapshot)."""
        return self.pipeline.encode_state(payload)

    def open_dispatch(self, packet: Union[UpdatePacket, Payload]) -> Dict[str, np.ndarray]:
        """Client-side decode of a dispatched packet (fresh, isolated arrays)."""
        if isinstance(packet, UpdatePacket):
            return self.pipeline.decode_state(packet)
        return dict(packet)

    # --------------------------------------------------------------- collect
    def encode_upload(
        self, upload: Union[UpdatePacket, Payload], dispatched_global: np.ndarray
    ) -> UpdatePacket:
        """Encode one client upload against the dispatched global model.

        ``dispatched_global`` is the (decoded) global snapshot this client
        trained on — the delta-codec reference for the primal.  An upload
        that is already a packet (a client that encoded itself) passes
        through.
        """
        if isinstance(upload, UpdatePacket):
            return upload
        return self.pipeline.encode_state(upload, reference={PRIMAL_KEY: dispatched_global})

    def open_upload(self, packet: UpdatePacket, dispatched_global: np.ndarray) -> Dict[str, np.ndarray]:
        """Decode an upload packet exactly as :meth:`BaseServer.ingest` will."""
        return self.pipeline.decode_state(packet, reference={PRIMAL_KEY: dispatched_global})

    def reconcile(
        self,
        client: BaseClient,
        upload: Payload,
        packet: UpdatePacket,
        dispatched_global: np.ndarray,
    ) -> None:
        """Give the client the decoded echo of its upload (lossy stacks only).

        The echo is produced by the same deterministic decode the server's
        ``ingest`` performs, so client-side replays (IIADMM's dual) match the
        server bitwise.  No-op for lossless stacks, where echo ≡ upload.
        """
        if not self.pipeline.lossy or isinstance(upload, UpdatePacket):
            return  # lossless, or a self-encoding client that already reconciled
        client.reconcile_upload(upload, self.open_upload(packet, dispatched_global))
