"""Federated training orchestration.

:class:`FederatedRunner` drives the client-server loop of Figure 1: every
round the server's global model is broadcast to all clients, each client runs
its (customisable) local update, the local models are gathered back through
the configured communicator, and the server runs its (customisable) global
update.  An optional evaluator scores the global model on server-side test
data after every round.

:func:`build_federation` is the convenience constructor used by the examples
and benchmarks: it instantiates the registered server/client classes for a
named algorithm over a list of client datasets.

Architecture & performance
--------------------------
Client-local updates are the hot phase of every round.  When
``FLConfig.parallel_clients`` (or the runner's ``max_workers`` argument) is
greater than one, the runner executes ``client.update`` for all clients on a
persistent thread pool: each client owns its model, flat parameter/gradient
buffers (see :mod:`repro.core.base`), data loader, and RNG, so no state is
shared between workers, the heavy numpy kernels release the GIL, and the
resulting :class:`TrainingHistory` is bit-identical to a serial run.
Uploads are collected in client order regardless of thread completion order,
keeping aggregation deterministic.

The runner also records wall-clock seconds per phase — ``broadcast``
(codec encode + downlink + client-side decode), ``local_update``, ``gather``
(codec encode + uplink), ``aggregate`` (server-side decode + global update),
and ``evaluate`` — cumulatively in :attr:`FederatedRunner.phase_seconds` and
per round on :attr:`RoundResult.phase_seconds`;
``benchmarks/bench_hotpath.py`` turns these into the repo's rounds/sec
trajectory.

Wire codecs
-----------
Every model exchange flows through one :class:`~repro.core.exchange.
PacketExchange` (selected by ``FLConfig.codec``): the broadcast payload is
encoded into a single :class:`~repro.comm.codecs.UpdatePacket`, the
communicator charges its measured post-codec ``nbytes``, each client decodes
its own copy, uploads are encoded against the dispatched global (the
delta-codec reference) and decoded exactly once inside
:meth:`BaseServer.ingest`.  ``codec="identity"`` (the default) is bit-for-bit
the pre-codec behaviour, including the reported communication volume.
"""

from __future__ import annotations

import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from .. import nn
from ..comm import Communicator, SerialCommunicator, client_endpoint
from ..comm.records import DeadLetter
from ..data import Dataset
from ..mp import resolve_workers
from ..obs import current_monitor, current_profiler, current_tracer, timed_call
from ..privacy import PrivacyAccountant, dispatch_fingerprint
from .base import GLOBAL_KEY, BaseClient, BaseServer
from .batched import count_client_steps, run_batched_updates
from .config import FLConfig
from .exchange import PacketExchange
from .metrics import Evaluator
from .registry import get_algorithm

__all__ = [
    "PHASES",
    "RoundResult",
    "TrainingHistory",
    "FederatedRunner",
    "build_endpoints",
    "build_federation",
]

#: Canonical per-round phase names.  Every runner (sync, async, hier sync,
#: hier async) accumulates wall-clock seconds under exactly these keys in
#: ``phase_seconds`` / ``RoundResult.phase_seconds``.
PHASES: Tuple[str, ...] = ("broadcast", "local_update", "gather", "aggregate", "evaluate")


@dataclass(frozen=True)
class RoundResult:
    """Metrics recorded after one communication round."""

    round: int
    test_accuracy: Optional[float]
    test_loss: Optional[float]
    comm_bytes: int
    comm_seconds: float
    #: wall-clock seconds per phase of this round (broadcast, local_update,
    #: gather, aggregate, evaluate); ``None`` for externally built results.
    phase_seconds: Optional[Dict[str, float]] = None
    #: *simulated* wall-clock seconds at which this round completed on the
    #: asyncfl virtual clock; ``None`` for the real-time synchronous runner.
    wall_clock_seconds: Optional[float] = None
    #: ids of the clients whose updates were aggregated this round; ``None``
    #: for externally built results.
    participating_clients: Optional[Tuple[int, ...]] = None
    #: per-tier on-wire bytes of a hierarchical round (keys "client_edge" and
    #: "edge_root", summing to ``comm_bytes``); ``None`` for flat runs.
    comm_bytes_by_tier: Optional[Dict[str, int]] = None
    #: ids of clients that failed this round (crashed, or unreachable after
    #: the retry budget); ``None`` when fault injection is not active.
    failed_clients: Optional[Tuple[int, ...]] = None
    #: number of faulted transfer attempts this round (each implies a retry
    #: or a dead letter); ``None`` when fault injection is not active.
    retries: Optional[int] = None
    #: ids of edges killed and recovered during this round (hier runs);
    #: ``None`` when fault injection is not active.
    recovered_edges: Optional[Tuple[int, ...]] = None
    #: client optimizer steps executed this round (the unit of the
    #: ``client_steps_per_sec`` throughput metric; see
    #: :func:`repro.core.batched.count_client_steps`); ``None`` for
    #: externally built results and pre-existing checkpoints.
    client_steps: Optional[int] = None


@dataclass
class TrainingHistory:
    """Per-round metrics of one federated run."""

    rounds: List[RoundResult] = field(default_factory=list)

    def add(self, result: RoundResult) -> None:
        self.rounds.append(result)

    def __len__(self) -> int:
        return len(self.rounds)

    @property
    def accuracies(self) -> np.ndarray:
        return np.array([r.test_accuracy for r in self.rounds if r.test_accuracy is not None])

    @property
    def losses(self) -> np.ndarray:
        return np.array([r.test_loss for r in self.rounds if r.test_loss is not None])

    @property
    def final_accuracy(self) -> Optional[float]:
        acc = self.accuracies
        return float(acc[-1]) if len(acc) else None

    @property
    def best_accuracy(self) -> Optional[float]:
        acc = self.accuracies
        return float(acc.max()) if len(acc) else None

    def total_comm_bytes(self) -> int:
        return int(sum(r.comm_bytes for r in self.rounds))


class FederatedRunner:
    """Runs the synchronous federated-learning loop.

    Clients are supplied either *eagerly* (``clients`` — the classic list of
    live :class:`BaseClient` instances; the default path, bit-for-bit
    unchanged by the virtualization work) or *virtually* (``client_store`` —
    a :class:`repro.scale.ClientStateStore`): each round then materialises
    clients in waves of at most ``live_cap``, runs their updates, encodes and
    ingests their uploads, and releases them back to the store, so peak
    client-state memory is proportional to the cap, not the population.
    With the default :class:`~repro.comm.serial.SerialCommunicator`, the
    store-backed history is bit-identical to the eager one (contention-aware
    communicators charge per-``collect`` congestion, which a waved gather
    necessarily sees differently).
    """

    def __init__(
        self,
        server: BaseServer,
        clients: Optional[Sequence[BaseClient]] = None,
        communicator: Optional[Communicator] = None,
        evaluator: Optional[Evaluator] = None,
        accountant: Optional[PrivacyAccountant] = None,
        max_workers: Optional[int] = None,
        client_store=None,
    ):
        if (clients is None or not list(clients)) and client_store is None:
            raise ValueError("at least one client is required")
        if clients and client_store is not None:
            raise ValueError("pass either clients or client_store, not both")
        self._store = client_store
        self.clients = list(clients) if clients else []
        num_clients = client_store.num_clients if client_store is not None else len(self.clients)
        if server.num_clients != num_clients:
            raise ValueError("server.num_clients must match the number of clients")
        self.num_clients = num_clients
        self.server = server
        self.communicator = communicator if communicator is not None else SerialCommunicator()
        # One codec pipeline for every exchange.  FLConfig.codec is the single
        # source of truth: clients derive their lossy-wire bookkeeping (e.g.
        # IIADMM's reconcile stash) from the same config, so a mismatched
        # client codec would silently break those invariants — fail fast.
        self.exchange = PacketExchange(server.config.codec)
        store_config = getattr(client_store, "config", None)
        endpoint_codecs = [c.config.codec for c in self.clients]
        if store_config is not None:
            endpoint_codecs.append(store_config.codec)
        for codec in endpoint_codecs:
            if PacketExchange(codec).spec != self.exchange.spec:
                raise ValueError(
                    f"an endpoint was built with codec {codec!r} but the server "
                    f"config uses {server.config.codec!r}; all endpoints must "
                    f"share one codec stack"
                )
        self.evaluator = evaluator
        self.accountant = accountant if accountant is not None else PrivacyAccountant()
        self.history = TrainingHistory()
        if max_workers is None:
            max_workers = server.config.parallel_clients
        self.max_workers = resolve_workers(max_workers)
        #: execution backend for local updates: "serial" runs in-line even
        #: with max_workers > 1, "thread" (default) uses the GIL-bound pool,
        #: "process" runs shards in spawn-context workers over shared memory.
        self.backend = str(getattr(server.config, "execution_backend", "thread"))
        if self.backend == "process" and self.exchange.lossy:
            raise ValueError(
                f"execution_backend='process' requires a lossless codec stack; "
                f"{self.exchange.spec!r} is lossy and its reconcile step needs "
                f"parent-side client state"
            )
        self._pool = None  # ProcessWorkerPool, created lazily
        #: worker-shipped metrics banked from retired process pools (the
        #: live pool's registry is read via ``_pool.telemetry``); ``None``
        #: until a pool retires.  See MetricsRegistry.absorb_worker_telemetry.
        self.worker_telemetry = None
        self._executor: Optional[ThreadPoolExecutor] = None
        self._executor_width = 0
        #: steps computed by the most recent _update_clients call, per client;
        #: callers fold in survivors only (after the uplink gather).
        self._pending_steps: Dict[int, int] = {}
        #: cumulative wall-clock seconds spent in each phase across all rounds
        self.phase_seconds: Dict[str, float] = {phase: 0.0 for phase in PHASES}
        #: cumulative client optimizer steps across all rounds (both execution
        #: paths); with phase_seconds["local_update"] this yields the
        #: client_steps_per_sec throughput metric.
        self.client_steps: int = 0

    def _update_clients(
        self, clients: Sequence[BaseClient], received: Dict[int, Dict[str, np.ndarray]]
    ) -> Dict[int, Dict[str, np.ndarray]]:
        """Run the given clients' updates, as stacked cohorts when eligible.

        With ``FLConfig.client_batch > 1``, a lossless wire, and at least one
        group of two-or-more same-shaped batchable clients, the cohort engine
        (:mod:`repro.core.batched`) executes them as stacked kernel calls —
        bitwise identical to the per-client path at float64 — and everyone
        else falls back to :meth:`_update_clients_eager`.  ``client_batch=1``
        (the default) takes the eager path unconditionally.
        """
        cfg = self.server.config
        client_batch = int(getattr(cfg, "client_batch", 1) or 1)
        self._pending_steps = {}
        if self.backend == "process" and self._store is None and len(clients) > 1:
            uploads = self._update_clients_process(clients, received)
            if uploads is not None:
                return uploads
        if client_batch > 1 and len(clients) > 1 and not self.exchange.lossy:
            batched = run_batched_updates(
                clients, received, client_batch, tracer=current_tracer()
            )
            if batched is not None:
                uploads, leftover, _steps = batched
                if leftover:
                    uploads.update(self._update_clients_eager(leftover, received))
                # Every cohort member took count_client_steps(c) optimizer
                # steps (members share config and loader geometry), so the
                # per-client accounting is exact on both paths.
                self._pending_steps = {c.client_id: count_client_steps(c) for c in clients}
                # Preserve client order: aggregation consumers iterate this
                # dict and must see the same order as the eager path.
                return {c.client_id: uploads[c.client_id] for c in clients}
        uploads = self._update_clients_eager(clients, received)
        self._pending_steps = {c.client_id: count_client_steps(c) for c in clients}
        return uploads

    def _settle_steps(self, gathered) -> None:
        """Fold the pending step counts of the *surviving* clients — the ones
        whose upload was actually gathered — into the cumulative counter.
        Clients whose upload dead-lettered on the uplink did compute, but the
        throughput metric counts aggregated work only (over-counting degraded
        rounds was a long-standing bug)."""
        self.client_steps += sum(self._pending_steps.get(cid, 0) for cid in gathered)
        self._pending_steps = {}

    def _ensure_pool(self):
        """The lazily-built process pool for this runner's population."""
        if self._pool is None:
            from ..mp.pool import ProcessWorkerPool

            client_batch = int(getattr(self.server.config, "client_batch", 1) or 1)
            if self._store is not None:
                self._pool = ProcessWorkerPool.from_store(
                    self._store, self.max_workers, client_batch=client_batch
                )
            else:
                self._pool = ProcessWorkerPool.from_eager_clients(
                    self.clients, self.max_workers, client_batch=client_batch
                )
        return self._pool

    def _retire_pool(self) -> None:
        """Pull the workers' authoritative state home and discard the pool.

        Used when a round cannot run on the process backend (the payloads are
        not one shared template): that round then runs in-process against
        parent state, which leaves the workers stale — a later pooled round
        would silently diverge from serial, and a second consecutive
        fallback's ``sync_parent`` would drag the stale worker state back
        over the parent's progress.  Discarding the pool makes the next
        eligible round rebuild it from parent state, keeping the bitwise
        contract.
        """
        if self._pool is not None:
            try:
                self._pool.sync_parent()
            finally:
                self._bank_pool_telemetry()
                self._pool.close()
                self._pool = None

    def _bank_pool_telemetry(self) -> None:
        """Preserve a closing pool's worker-shipped metrics on the runner."""
        telemetry = getattr(self._pool, "telemetry", None)
        if telemetry is None or not telemetry.snapshot()["counters"]:
            return
        if self.worker_telemetry is None:
            from ..obs import MetricsRegistry

            self.worker_telemetry = MetricsRegistry()
        self.worker_telemetry.merge(telemetry)

    def _emit_worker_spans(self, ids, timings) -> None:
        """Emit ``local_update`` spans from worker-side timestamps, in client
        order (cohort members carry no per-client timing; as on the threaded
        path they were covered by one batched call).  An armed monitor's
        straggler histogram is fed from the same timestamps."""
        tracer = current_tracer()
        monitor = current_monitor()
        if tracer is None and monitor is None:
            return
        for cid in ids:
            t = timings.get(cid)
            if t is not None:
                if tracer is not None:
                    tracer.emit_span(
                        "local_update", "client", t[0], t[1],
                        lane=f"client:{cid}", client=cid, backend="process",
                    )
                if monitor is not None:
                    monitor.observe_local_update(t[1] - t[0], client=cid)

    def _update_clients_process(self, clients, received):
        """Run the given (eager) clients' updates on the process pool.

        Returns ``None`` when the round's payloads are not one shared
        broadcast template (the pool transports one copy through shared
        memory) — the caller then falls back to the in-process paths.
        """
        from ..mp.pool import payload_template

        ids = [c.client_id for c in clients]
        template = payload_template(received, ids)
        if template is None:
            # The workers hold the authoritative state; re-home it and drop
            # the now-stale pool before running these clients in-process.
            self._retire_pool()
            return None
        uploads, steps, timings = self._ensure_pool().run_round(ids, template)
        self._pending_steps = steps
        self._emit_worker_spans(ids, timings)
        return {cid: uploads[cid] for cid in ids}

    def _update_clients_eager(
        self, clients: Sequence[BaseClient], received: Dict[int, Dict[str, np.ndarray]]
    ) -> Dict[int, Dict[str, np.ndarray]]:
        """Run the given clients' updates (thread pool when ``max_workers > 1``).

        With a tracer armed, each update is timed in place (inside the worker
        for the pooled path) and its span emitted afterwards from this thread
        in client order — tracing never changes execution order or results.
        An armed monitor rides the same timings (straggler detection) under
        the same contract.
        """
        tracer = current_tracer()
        monitor = current_monitor()
        if self.backend != "serial" and self.max_workers > 1 and len(clients) > 1:
            # Size by the clients actually running this call (participants of
            # this round/wave), not the full population — under
            # client_fraction sampling or degraded rounds the population
            # over-provisions.  The pool only grows; a smaller cohort reuses
            # the existing (idle) threads.
            needed = min(self.max_workers, len(clients))
            if self._executor is None or self._executor_width < needed:
                if self._executor is not None:
                    self._executor.shutdown(wait=True)
                self._executor = ThreadPoolExecutor(
                    max_workers=needed,
                    thread_name_prefix="fl-client",
                )
                self._executor_width = needed
            if tracer is None and monitor is None:
                results = list(
                    self._executor.map(lambda c: c.update(received[c.client_id]), clients)
                )
                return {c.client_id: r for c, r in zip(clients, results)}
            timed = list(
                self._executor.map(lambda c: timed_call(c.update, received[c.client_id]), clients)
            )
            for client, (_, t0, t1) in zip(clients, timed):
                if tracer is not None:
                    tracer.emit_span(
                        "local_update", "client", t0, t1,
                        lane=f"client:{client.client_id}", client=client.client_id,
                    )
                if monitor is not None:
                    monitor.observe_local_update(t1 - t0, client=client.client_id)
            return {c.client_id: r for c, (r, _, _) in zip(clients, timed)}
        if tracer is None and monitor is None:
            return {c.client_id: c.update(received[c.client_id]) for c in clients}
        uploads: Dict[int, Dict[str, np.ndarray]] = {}
        for client in clients:
            upload, t0, t1 = timed_call(client.update, received[client.client_id])
            if tracer is not None:
                tracer.emit_span(
                    "local_update", "client", t0, t1,
                    lane=f"client:{client.client_id}", client=client.client_id,
                )
            if monitor is not None:
                monitor.observe_local_update(t1 - t0, client=client.client_id)
            uploads[client.client_id] = upload
        return uploads

    def _run_clients(self, received: Dict[int, Dict[str, np.ndarray]]) -> Dict[int, Dict[str, np.ndarray]]:
        """Run all (eager) client updates."""
        return self._update_clients(self.clients, received)

    def _virtual_round_process(
        self, round_idx, active_ids, received, dispatched_global, legacy,
        streaming, legacy_gathered, decoded_payloads, participants, timings,
        tracer,
    ) -> bool:
        """One store-backed round's client phases on the process pool.

        The workers own the population state (their per-shard stores), so no
        parent-side checkout happens; phase accounting, ingest order, and
        privacy charging replay the wave loop exactly, just ungrouped.
        Returns ``False`` when the dispatch payloads are not one shared
        template — the caller then waves through the store in-process, after
        the workers' authoritative state has been pulled home.
        """
        from ..mp.pool import payload_template

        store = self._store

        def end_phase(phase: str, t0: float) -> float:
            now = time.perf_counter()
            timings[phase] += now - t0
            if tracer is not None:
                tracer.emit_span(phase, "phase", t0, now, lane="runner", round=round_idx)
            return now

        tick = time.perf_counter()
        payloads = {cid: self.exchange.open_dispatch(received[cid]) for cid in active_ids}
        template = payload_template(payloads, active_ids)
        if template is None:
            self._retire_pool()
            end_phase("broadcast", tick)
            return False
        tick = end_phase("broadcast", tick)

        uploads, steps, wtimings = self._ensure_pool().run_round(active_ids, template)
        self._emit_worker_spans(active_ids, wtimings)
        tick = end_phase("local_update", tick)

        # Lossless wire is enforced for this backend, so reconcile (a lossy-
        # stack echo into client state) has nothing to do here.
        packets = {
            cid: self.exchange.encode_upload(uploads[cid], payloads[cid][GLOBAL_KEY])
            for cid in active_ids
        }
        gathered = self.communicator.collect(round_idx, packets)
        self.client_steps += sum(steps.get(cid, 0) for cid in gathered)
        tick = end_phase("gather", tick)

        privacy = (store.config if store.config is not None else self.server.config).privacy
        privacy_key = None
        if legacy:
            legacy_gathered.update(gathered)
        else:
            for cid in active_ids:
                if cid not in gathered:
                    continue
                decoded = self.server.ingest(cid, gathered[cid], dispatched_global)
                if not streaming:
                    decoded_payloads[cid] = decoded
        for cid in active_ids:
            if cid in gathered:
                participants.append(cid)
                if privacy.enabled:
                    if privacy_key is None:
                        privacy_key = dispatch_fingerprint(round_idx, dispatched_global)
                    self.accountant.record(cid, privacy.epsilon, key=privacy_key)
        end_phase("aggregate", tick)
        return True

    def _run_round_virtual(self, round_idx: int) -> RoundResult:
        """One round over store-backed clients, in waves of ``live_cap``.

        Phase structure, comm accounting, and numerics match :meth:`run_round`
        exactly; only the *grouping* differs — broadcast decode, local update,
        upload encode, and server ingest happen per wave so no more than
        ``live_cap`` clients are ever materialised.  ADMM-family servers
        (which absorb per-upload state in ``ingest`` and ignore the finalize
        payloads) stream; FedAvg-style servers accumulate the decoded uploads
        (one flat vector per client) until ``finalize_round``.
        """
        store = self._store
        client_ids = list(range(self.num_clients))
        injector = self.communicator.injector
        bytes_before = self.communicator.total_bytes()
        seconds_before = self.communicator.log.total_seconds()
        faulted_before = self.communicator.log.failed_attempts() if injector is not None else 0
        steps_before = self.client_steps
        timings: Dict[str, float] = {k: 0.0 for k in self.phase_seconds}
        tracer = current_tracer()
        monitor = current_monitor()
        round_start = tick = time.perf_counter()

        def end_phase(phase: str) -> None:
            # Close the phase interval opened at the last `tick` and (when a
            # tracer is armed) emit it as a span — reusing the same
            # perf_counter reading the timings accounting already needs.
            now = time.perf_counter()
            timings[phase] += now - tick
            if tracer is not None:
                tracer.emit_span(phase, "phase", tick, now, lane="runner", round=round_idx)

        broadcast_payload = self.server.broadcast_payload()
        packet = self.exchange.encode_dispatch(broadcast_payload)
        received = self.communicator.broadcast(round_idx, packet, client_ids)
        if self.exchange.lossy:
            dispatched_global = self.exchange.open_dispatch(packet)[GLOBAL_KEY]
        else:
            dispatched_global = broadcast_payload[GLOBAL_KEY]
        # Same degraded-cohort rules as the eager path: unreachable clients
        # sit out, crashed clients never run (and never materialise), their
        # unsent uploads are dead-lettered.
        active_ids = [cid for cid in client_ids if cid in received]
        if injector is not None:
            crashed = [cid for cid in active_ids if injector.client_crashed(cid, round_idx)]
            if crashed:
                crashed_set = set(crashed)
                active_ids = [cid for cid in active_ids if cid not in crashed_set]
                for cid in crashed:
                    injector.count("crash")
                    self.communicator.log.add_dead_letter(
                        DeadLetter(round_idx, client_endpoint(cid), "send_local", 0, 0, "crash")
                    )
        end_phase("broadcast")

        legacy = self.server.uses_legacy_update
        # Servers exposing aggregate_global() absorb every upload inside
        # ingest() and ignore finalize_round's payload dict — those stream.
        streaming = not legacy and hasattr(self.server, "aggregate_global")
        legacy_gathered: Dict[int, object] = {}
        decoded_payloads: Dict[int, Dict[str, np.ndarray]] = {}
        privacy_key = None
        participants: List[int] = []
        # Process backend: the whole active cohort runs through the worker
        # pool in one call — each worker waves through its own shard at its
        # live_cap share, so no client ever materialises parent-side.
        pooled = self.backend == "process" and len(active_ids) > 1
        if pooled:
            pooled = self._virtual_round_process(
                round_idx, active_ids, received, dispatched_global, legacy,
                streaming, legacy_gathered, decoded_payloads, participants,
                timings, tracer,
            )
        wave = max(1, int(store.live_cap))
        wave_ids = [] if pooled else active_ids
        for start in range(0, len(wave_ids), wave):
            ids = wave_ids[start : start + wave]
            wave_start = tick = time.perf_counter()
            clients = [store.checkout(cid) for cid in ids]
            payloads = {cid: self.exchange.open_dispatch(received[cid]) for cid in ids}
            end_phase("broadcast")

            tick = time.perf_counter()
            uploads = self._update_clients(clients, payloads)
            end_phase("local_update")

            tick = time.perf_counter()
            packets = {}
            for client in clients:
                cid = client.client_id
                packets[cid] = self.exchange.encode_upload(uploads[cid], payloads[cid][GLOBAL_KEY])
                self.exchange.reconcile(client, uploads[cid], packets[cid], payloads[cid][GLOBAL_KEY])
            gathered = self.communicator.collect(round_idx, packets)
            self._settle_steps(gathered)
            end_phase("gather")

            # Privacy is charged per accepted ingest, deduped on (client,
            # round, dispatched global) — uplink dead letters never consume
            # epsilon, replays of an accepted release consume it once.
            tick = time.perf_counter()
            if legacy:
                legacy_gathered.update(gathered)
            else:
                for cid in ids:
                    if cid not in gathered:
                        continue
                    decoded = self.server.ingest(cid, gathered[cid], dispatched_global)
                    if not streaming:
                        decoded_payloads[cid] = decoded
            for client in clients:
                cid = client.client_id
                if cid in gathered:
                    participants.append(cid)
                    if client.config.privacy.enabled:
                        if privacy_key is None:
                            privacy_key = dispatch_fingerprint(round_idx, dispatched_global)
                        self.accountant.record(cid, client.config.privacy.epsilon, key=privacy_key)
            end_phase("aggregate")
            for cid in ids:
                store.release(cid)
            if tracer is not None:
                tracer.emit_span(
                    "wave", "round", wave_start, time.perf_counter(),
                    lane="runner", round=round_idx, wave=start // wave, clients=len(ids),
                )
            if monitor is not None:
                monitor.on_wave(self, round_idx, start // wave)

        tick = time.perf_counter()
        if legacy:
            if legacy_gathered or injector is None:
                self.server.update(legacy_gathered)
        else:
            if decoded_payloads or streaming or injector is None:
                self.server.finalize_round(decoded_payloads)
        end_phase("aggregate")

        accuracy = loss = None
        tick = time.perf_counter()
        if self.evaluator is not None:
            self.server.sync_model()
            accuracy, loss = self.evaluator(self.server.model)
        end_phase("evaluate")

        for phase, seconds in timings.items():
            self.phase_seconds[phase] += seconds
        if tracer is not None:
            tracer.emit_span(
                "round", "round", round_start, time.perf_counter(),
                lane="runner", round=round_idx, participants=len(participants),
            )

        faulty = injector is not None
        result = RoundResult(
            round=round_idx,
            test_accuracy=accuracy,
            test_loss=loss,
            comm_bytes=self.communicator.total_bytes() - bytes_before,
            comm_seconds=self.communicator.log.total_seconds() - seconds_before,
            phase_seconds=timings,
            participating_clients=tuple(participants),
            failed_clients=tuple(sorted(set(client_ids) - set(participants))) if faulty else None,
            retries=(self.communicator.log.failed_attempts() - faulted_before) if faulty else None,
            client_steps=self.client_steps - steps_before,
        )
        self.history.add(result)
        if monitor is not None:
            monitor.on_round(self, result)
        return result

    def run_round(self, round_idx: int) -> RoundResult:
        """Execute one communication round and return its metrics."""
        if self._store is not None:
            return self._run_round_virtual(round_idx)
        client_ids = [c.client_id for c in self.clients]
        injector = self.communicator.injector
        bytes_before = self.communicator.total_bytes()
        seconds_before = self.communicator.log.total_seconds()
        faulted_before = self.communicator.log.failed_attempts() if injector is not None else 0
        steps_before = self.client_steps
        timings: Dict[str, float] = {}
        tracer = current_tracer()
        monitor = current_monitor()
        profiler = current_profiler()
        round_start = tick = time.perf_counter()

        def end_phase(phase: str) -> None:
            if profiler is not None:
                profiler.end(phase)
            now = time.perf_counter()
            timings[phase] = timings.get(phase, 0.0) + (now - tick)
            if tracer is not None:
                tracer.emit_span(phase, "phase", tick, now, lane="runner", round=round_idx)

        def begin_phase(phase: str) -> None:
            if profiler is not None:
                profiler.begin(phase)

        begin_phase("broadcast")

        # Server -> clients: encode the global model into one UpdatePacket,
        # transport it (the communicator charges packet.nbytes), and decode a
        # fresh payload per client.  The round's dispatched-global reference
        # must be bitwise what every client saw: under a lossy codec that
        # requires a server-side decode of the same packet; lossless stacks
        # skip the extra decode since encode/decode is bit-transparent.
        broadcast_payload = self.server.broadcast_payload()
        packet = self.exchange.encode_dispatch(broadcast_payload)
        received = self.communicator.broadcast(round_idx, packet, client_ids)
        # Unreachable clients (downlink dead-lettered) sit this round out;
        # crashed ones die before computing — their local state must not
        # advance (a stateful algorithm's server-side replica would silently
        # desynchronise from a half-run update), and their unsent upload is
        # dead-lettered for the accounting.
        active = [c for c in self.clients if c.client_id in received]
        if injector is not None:
            crashed = [c.client_id for c in active if injector.client_crashed(c.client_id, round_idx)]
            if crashed:
                crashed_set = set(crashed)
                active = [c for c in active if c.client_id not in crashed_set]
                for cid in crashed:
                    injector.count("crash")
                    self.communicator.log.add_dead_letter(
                        DeadLetter(round_idx, client_endpoint(cid), "send_local", 0, 0, "crash")
                    )
        payloads = {c.client_id: self.exchange.open_dispatch(received[c.client_id]) for c in active}
        if self.exchange.lossy:
            dispatched_global = self.exchange.open_dispatch(packet)[GLOBAL_KEY]
        else:
            dispatched_global = broadcast_payload[GLOBAL_KEY]
        end_phase("broadcast")

        # Clients: local updates (optionally on the thread pool).  Any DP
        # clipping/noising happens inside client.update — before the codec
        # encode below — so the guarantee survives quantization.
        tick = time.perf_counter()
        begin_phase("local_update")
        uploads = self._update_clients(active, payloads)
        end_phase("local_update")

        # Clients -> server: encode each upload against the dispatched
        # global, reconcile lossy-codec client state with the decoded echo,
        # and transport the packets.
        tick = time.perf_counter()
        begin_phase("gather")
        packets = {}
        for client in active:
            cid = client.client_id
            packets[cid] = self.exchange.encode_upload(uploads[cid], payloads[cid][GLOBAL_KEY])
            self.exchange.reconcile(client, uploads[cid], packets[cid], payloads[cid][GLOBAL_KEY])
        gathered = self.communicator.collect(round_idx, packets)
        self._settle_steps(gathered)
        end_phase("gather")

        # Server: decode each upload exactly once (ingest) and finalize with
        # whatever cohort survived the wire.  Privacy budget is charged per
        # *accepted* ingest, deduped on (client, round, dispatched global) —
        # a retried or replayed packet re-sends the same noised release and
        # must not consume epsilon twice.  A plug-and-play server whose only
        # customisation is the legacy update() keeps the seed contract:
        # update() is driven directly (it decodes via ingest internally), so
        # the override is never bypassed.
        tick = time.perf_counter()
        begin_phase("aggregate")
        streaming = not self.server.uses_legacy_update and hasattr(self.server, "aggregate_global")
        if self.server.uses_legacy_update:
            if gathered or injector is None:
                self.server.update(gathered)
        else:
            decoded = {
                cid: self.server.ingest(cid, payload, dispatched_global)
                for cid, payload in gathered.items()
            }
            if decoded or streaming or injector is None:
                self.server.finalize_round(decoded)
        privacy_key = None
        active_by_id = {c.client_id: c for c in active}
        for cid in gathered:
            client = active_by_id[cid]
            if client.config.privacy.enabled:
                if privacy_key is None:
                    privacy_key = dispatch_fingerprint(round_idx, dispatched_global)
                self.accountant.record(cid, client.config.privacy.epsilon, key=privacy_key)
        end_phase("aggregate")

        accuracy = loss = None
        tick = time.perf_counter()
        begin_phase("evaluate")
        if self.evaluator is not None:
            self.server.sync_model()
            accuracy, loss = self.evaluator(self.server.model)
        end_phase("evaluate")

        for phase, seconds in timings.items():
            self.phase_seconds[phase] += seconds
        if tracer is not None:
            tracer.emit_span(
                "round", "round", round_start, time.perf_counter(),
                lane="runner", round=round_idx, participants=len(gathered),
            )

        faulty = injector is not None
        result = RoundResult(
            round=round_idx,
            test_accuracy=accuracy,
            test_loss=loss,
            comm_bytes=self.communicator.total_bytes() - bytes_before,
            comm_seconds=self.communicator.log.total_seconds() - seconds_before,
            phase_seconds=timings,
            participating_clients=tuple(sorted(gathered)),
            failed_clients=tuple(sorted(set(client_ids) - set(gathered))) if faulty else None,
            retries=(self.communicator.log.failed_attempts() - faulted_before) if faulty else None,
            client_steps=self.client_steps - steps_before,
        )
        self.history.add(result)
        if monitor is not None:
            monitor.on_round(self, result)
        return result

    def close(self) -> None:
        """Release the worker pools (recreated lazily if needed again).

        The process pool's client state is pulled home first, so a later
        ``run`` call (which re-ships it into a fresh pool) continues bitwise
        where this one stopped — exactly like the thread path.
        """
        self._retire_pool()
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None
            self._executor_width = 0

    def __enter__(self) -> "FederatedRunner":
        return self

    def __exit__(self, exc_type, exc_value, traceback) -> None:
        self.close()

    def run(self, num_rounds: Optional[int] = None, callback: Optional[Callable[[RoundResult], None]] = None) -> TrainingHistory:
        """Run ``num_rounds`` further rounds (default: the config's ``num_rounds``).

        Round indices continue from the recorded history, so a second ``run``
        call — or a run resumed from a :class:`repro.scale.RunCheckpoint` —
        numbers its rounds exactly as one uninterrupted run would.
        """
        total = num_rounds if num_rounds is not None else self.server.config.num_rounds
        start = len(self.history)
        try:
            for t in range(start, start + total):
                result = self.run_round(t)
                if callback is not None:
                    callback(result)
        finally:
            self.close()
        return self.history


def build_endpoints(
    config: FLConfig,
    model_fn: Callable[[], nn.Module],
    client_datasets: Sequence[Dataset],
    seed: Optional[int] = None,
) -> Tuple[BaseServer, List[BaseClient]]:
    """Instantiate the registered server and clients for a named algorithm.

    This is the construction shared by :func:`build_federation` and
    :func:`repro.asyncfl.build_async_federation`: one model per endpoint, all
    synchronised to the server's initial parameters (the shared ``z^1`` of
    Algorithm 1), and per-client RNGs seeded ``seed + 1000 + client_id`` — so
    a sync and an async run over the same datasets start from bit-identical
    state.
    """
    seed = config.seed if seed is None else seed
    server_cls, client_cls = get_algorithm(config.algorithm)

    server_model = model_fn()
    initial_state = server_model.state_dict()
    sample_counts = [len(d) for d in client_datasets]
    server = server_cls(server_model, config, num_clients=len(client_datasets), client_sample_counts=sample_counts)

    clients = []
    for cid, dataset in enumerate(client_datasets):
        model = model_fn()
        model.load_state_dict(initial_state)
        clients.append(
            client_cls(cid, model, dataset, config, rng=np.random.default_rng(seed + 1000 + cid))
        )
    return server, clients


def build_federation(
    config: FLConfig,
    model_fn: Callable[[], nn.Module],
    client_datasets: Sequence[Dataset],
    test_dataset: Optional[Dataset] = None,
    communicator: Optional[Communicator] = None,
    seed: Optional[int] = None,
) -> FederatedRunner:
    """Construct a :class:`FederatedRunner` for a named algorithm.

    Parameters
    ----------
    config:
        Run configuration; ``config.algorithm`` selects the registered
        server/client classes.
    model_fn:
        Zero-argument factory producing a fresh model.  It is called once for
        the server and once per client; all copies are synchronised to the
        server's initial parameters (the shared ``z^1`` of Algorithm 1).
    client_datasets:
        One private dataset per client.
    test_dataset:
        Optional server-side test data for the validation routine.
    """
    server, clients = build_endpoints(config, model_fn, client_datasets, seed=seed)
    evaluator = Evaluator(test_dataset) if test_dataset is not None else None
    return FederatedRunner(server, clients, communicator=communicator, evaluator=evaluator)
