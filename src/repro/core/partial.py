"""Exact associative partial aggregation (the substrate of :mod:`repro.hier`).

Every global update in this repo is a weighted sum of per-client vectors —
FedAvg's ``Σ_p w_p z_p`` and the IADMM family's ``Σ_p (z_p − λ_p/ρ)``.  Over
the *reals* that sum is associative, which is what makes hierarchical
(edge-sharded) federation exact: each edge can fold its shard into a partial
sum and the root can combine the partials, in any grouping.  Plain floating
point breaks the property — ``(a+b)+(c+d)`` and ``((a+b)+c)+d`` round
differently — so a naive hierarchical run could never be bit-for-bit the flat
run.

:class:`ExactPartial` restores associativity by accumulating into a Shewchuk
*expansion*: an unevaluated sum of non-overlapping floats that represents the
running total **exactly** (Shewchuk 1997, "Adaptive precision floating-point
arithmetic"; the same machinery behind :func:`math.fsum`).  Adding a term is
an error-free TwoSum cascade (GROW-EXPANSION), merging two accumulators adds
one's components into the other (exact, since components are just floats),
and :meth:`round` produces the **correctly rounded** value of the exact sum —
a deterministic function of the exact real total alone, independent of how
the terms were grouped or ordered.  Consequently::

    flat:  round(Σ_p t_p)                                == w
    hier:  round(merge_e(Σ_{p∈shard_e} t_p))             == w   (bitwise)

All operations are vectorised over the flat parameter dimension; components
are plain arrays, so a partial travels the wire as a handful of
``psum:<i>``-keyed tensors inside an ordinary
:class:`~repro.comm.codecs.UpdatePacket` (see :func:`pack_partial` /
:func:`unpack_partial`).  For similar-magnitude per-client terms the
expansion stays 2-5 components long, so an edge's shard summary costs
O(components · dim) bytes instead of O(shard · dim) — the fan-in reduction
measured by ``benchmarks/bench_hotpath.py::test_hier_root_fanin``.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Sequence, Tuple

import numpy as np

__all__ = ["ExactPartial", "PSUM_PREFIX", "pack_partial", "unpack_partial"]

#: payload-key prefix of a packed partial's component tensors
PSUM_PREFIX = "psum"


class ExactPartial:
    """An exact, associative accumulator for flat parameter vectors.

    Parameters
    ----------
    dim:
        Length of the accumulated vectors.
    dtype:
        IEEE float dtype the accumulation runs in (the pipeline dtype; the
        error-free transformations below are valid in any IEEE binary
        format, so float32 runs stay exact in float32 arithmetic).
    """

    def __init__(self, dim: int, dtype=np.float64):
        self.dim = int(dim)
        self.dtype = np.dtype(dtype)
        if self.dtype.kind != "f":
            raise ValueError(f"ExactPartial needs a float dtype, got {self.dtype}")
        self._comps: List[np.ndarray] = []
        self._compact_at = 8

    # ------------------------------------------------------------ inspection
    @property
    def components(self) -> Tuple[np.ndarray, ...]:
        """The expansion's component arrays, smallest magnitude first.

        Together they represent the exact accumulated sum; they are live
        references — copy before mutating.
        """
        return tuple(self._comps)

    def __len__(self) -> int:
        return len(self._comps)

    @classmethod
    def from_components(cls, components: Sequence[np.ndarray], dim: int, dtype) -> "ExactPartial":
        """Rebuild an accumulator from shipped components (exact)."""
        acc = cls(dim, dtype)
        acc.merge(components)
        return acc

    # ---------------------------------------------------------- accumulation
    def add(self, term: np.ndarray) -> None:
        """Add one vector to the exact running sum (error-free)."""
        q = np.array(term, dtype=self.dtype, copy=True).reshape(-1)
        if q.shape != (self.dim,):
            raise ValueError(f"expected a vector of length {self.dim}, got shape {term.shape}")
        comps: List[np.ndarray] = []
        for e in self._comps:
            # Knuth TwoSum: s + err == q + e exactly, no magnitude ordering
            # required.  Cascading it through the components (Shewchuk's
            # GROW-EXPANSION) keeps the expansion non-overlapping and in
            # increasing magnitude order — the invariant round() relies on.
            s = q + e
            bv = s - q
            err = (q - (s - bv)) + (e - bv)
            if np.any(err):
                comps.append(err)
            q = s
        comps.append(q)
        self._comps = comps
        if len(comps) > self._compact_at:
            self._compact()

    def _compact(self) -> None:
        """Pack each lane's non-zero components down to the lowest slots.

        The grow cascade prunes a component array only when *every* lane is
        zero, so with many lanes the array count can creep far past the
        per-lane non-overlap bound.  Dropping per-lane zeros (an exact,
        order-preserving operation — the invariants allow zeros anywhere)
        bounds the count by the widest lane's expansion, typically 2-5.
        """
        stack = np.stack(self._comps)
        nonzero = stack != 0
        depth = int(nonzero.sum(axis=0).max()) if stack.size else 0
        depth = max(depth, 1)
        packed = np.zeros((depth, self.dim), dtype=self.dtype)
        rows, cols = np.nonzero(nonzero)
        packed[nonzero.cumsum(axis=0)[rows, cols] - 1, cols] = stack[rows, cols]
        self._comps = list(packed)
        # Hysteresis: don't thrash when a genuinely deep expansion compacts
        # to just under the trigger.
        self._compact_at = max(8, 2 * depth)

    def merge(self, other: "ExactPartial | Sequence[np.ndarray]") -> None:
        """Fold another partial (or its shipped components) into this one.

        Exact: a component is just a float vector, so adding each through
        :meth:`add` preserves the combined exact value — this is what makes
        the accumulator associative across arbitrary shard groupings.
        """
        comps = other.components if isinstance(other, ExactPartial) else other
        for comp in comps:
            self.add(comp)

    # -------------------------------------------------------------- rounding
    def round(self) -> np.ndarray:
        """The exact accumulated sum, correctly rounded to one vector.

        This is ``math.fsum``'s final-rounding step, vectorised: walk the
        components from the largest down until a non-zero low-order residue
        appears, then nudge by one ulp when that residue is exactly half an
        ulp and the remaining tail pushes the exact value past the halfway
        point.  The result depends only on the exact real sum — not on the
        expansion that happens to represent it.
        """
        comps = self._comps
        if not comps:
            return np.zeros(self.dim, dtype=self.dtype)
        hi = comps[-1].copy()
        if len(comps) == 1:
            return hi
        lo = np.zeros_like(hi)
        done = np.zeros(self.dim, dtype=bool)
        tail_sign = np.zeros_like(hi)
        for y in reversed(comps[:-1]):
            active = ~done
            s = hi + y
            yr = s - hi
            resid = y - yr
            np.copyto(hi, s, where=active)
            np.copyto(lo, resid, where=active)
            newly = active & (lo != 0)
            done |= newly
            # For lanes whose residue is already fixed, remember the sign of
            # the largest non-zero remaining component (non-overlap makes it
            # dominate the tail) — the halfway-case tie breaker below.
            need_sign = done & ~newly & (tail_sign == 0) & (y != 0)
            np.copyto(tail_sign, np.sign(y), where=need_sign)
        half = self.dtype.type(2.0) * lo
        bumped = hi + half
        exact_bump = (bumped - hi) == half
        fix = exact_bump & (lo != 0) & (np.sign(lo) == tail_sign)
        np.copyto(hi, bumped, where=fix)
        return hi


# ------------------------------------------------------------------ packing
def pack_partial(partial: ExactPartial) -> "Dict[str, np.ndarray]":
    """Render a partial as a wire payload: ``{"psum:0": c0, "psum:1": c1, …}``.

    Largest component first, so a lossy edge→root codec (which quantises
    per tensor) spends its fidelity on the dominant term.
    """
    comps = partial.components
    if not comps:  # an empty partial is exactly zero — ship it explicitly
        comps = (np.zeros(partial.dim, dtype=partial.dtype),)
    return {f"{PSUM_PREFIX}:{i}": comp for i, comp in enumerate(reversed(comps))}


def unpack_partial(payload: Mapping[str, np.ndarray]) -> List[np.ndarray]:
    """Inverse of :func:`pack_partial` (component order is irrelevant to the
    exact value; returned largest-first as packed)."""
    keys = sorted(
        (k for k in payload if k.startswith(PSUM_PREFIX + ":")),
        key=lambda k: int(k.split(":", 1)[1]),
    )
    if not keys:
        raise ValueError(f"payload holds no {PSUM_PREFIX!r} components: {sorted(payload)}")
    return [np.asarray(payload[k]) for k in keys]
