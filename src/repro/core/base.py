"""Plug-and-play FL base classes (`BaseServer`, `BaseClient`).

This is the extension API the APPFL paper describes in Section II-A:
"Additional user-defined FL algorithms can be implemented by inheriting our
Python class ``BaseServer`` and implementing the virtual function
``update()``. ... This additional work can be customized as well by
inheriting our ``BaseClient`` class and implementing the virtual function
``update()``."

All algorithms operate on the *flat parameter vector* view of the model (the
paper's ``w, z_p, λ_p ∈ R^m``); :class:`ModelVectorizer` converts between the
model's state dict and that vector.

Architecture & performance — the flat-parameter engine
------------------------------------------------------
In its default ``"flat"`` mode, :class:`ModelVectorizer` *owns* the model's
memory: it allocates one contiguous parameter buffer and one contiguous
gradient buffer (each of length ``dim``, in ``FLConfig.dtype`` precision) and
rebinds every ``Parameter``'s ``.data`` and ``.grad`` to reshaped views into
them.  The invariant is:

* ``flat_params``/``flat_grads`` and the per-parameter tensors alias the same
  memory at all times.  In-place parameter mutation (``load_state_dict``,
  optimizer ``step()``, ``p.data[...] = v``) keeps the views valid; the views
  are only invalidated by re-homing the model into *another* vectorizer
  (create at most one flat vectorizer per model).
* ``load_vector`` is a single ``memcpy`` (and a no-op when handed the buffer
  itself), ``grad_vector`` returns the gradient buffer *view* without
  copying, and ``zero_grad`` is one vectorised fill — the per-batch
  flatten/unflatten round trip, per-parameter ``np.concatenate`` and
  ``np.zeros_like`` allocations of the original implementation all disappear
  from the hot path.
* ``to_vector`` still returns a *copy* (one ``memcpy``), because callers (the
  algorithms, tests, user code) treat the result as their own snapshot.

``mode="copy"`` preserves the original per-call flatten/unflatten behaviour
(float64 only) and is kept as the measured baseline for
``benchmarks/bench_hotpath.py`` and the engine-equivalence regression tests.

Clients obtain their round-local working vector via :meth:`BaseClient.
local_params`: under the flat engine that vector *is* the model's parameter
buffer, so the per-batch ``load_vector`` inside :meth:`BaseClient.
batch_gradient` degenerates to an identity check and the algorithms'
fused in-place updates (``iiadmm``/``iceadmm``/``fedavg``) write straight
into model memory.
"""

from __future__ import annotations

import math
from typing import Dict, Mapping, Optional, Sequence, Tuple

import numpy as np

from .. import nn
from ..comm.codecs import UpdatePacket, resolve_codec
from ..comm.serialization import flatten_state_dict, unflatten_state_dict
from ..data import DataLoader, Dataset
from ..privacy import Mechanism, NoPrivacy, clip_by_norm, make_mechanism
from .config import FLConfig
from .partial import ExactPartial

__all__ = ["ModelVectorizer", "BaseClient", "BaseServer"]

GLOBAL_KEY = "global"
PRIMAL_KEY = "primal"
DUAL_KEY = "dual"
SAMPLES_KEY = "num_samples"


class ModelVectorizer:
    """Converts a model's parameters to/from one flat vector.

    Parameters
    ----------
    model:
        The model to vectorise.
    dtype:
        Precision of the flat buffers (default float64).
    mode:
        ``"flat"`` (default) re-homes the model's parameters and gradients as
        views into two preallocated contiguous buffers — the zero-copy engine
        described in the module docstring.  ``"copy"`` keeps the original
        flatten/unflatten-per-call behaviour (float64 only).

    Note: in flat mode this object takes ownership of the model's parameter
    memory; create at most one flat vectorizer per model instance.
    """

    def __init__(self, model: nn.Module, dtype=None, mode: str = "flat"):
        if mode not in ("flat", "copy"):
            raise ValueError(f"unknown vectorizer mode {mode!r}")
        self.model = model
        self.mode = mode
        self.dtype = np.dtype(dtype) if dtype is not None else np.dtype(np.float64)
        if mode == "copy" and self.dtype != np.dtype(np.float64):
            raise ValueError("the legacy 'copy' mode only supports float64")
        _, self.layout = flatten_state_dict(model.state_dict())
        self.dim = int(sum(int(np.prod(shape)) for shape, _ in self.layout.values()))
        self._params: Optional[np.ndarray] = None
        self._grads: Optional[np.ndarray] = None
        self._pinned = []
        if mode == "flat":
            self._params = np.empty(self.dim, dtype=self.dtype)
            self._grads = np.zeros(self.dim, dtype=self.dtype)
            for name, p in model.named_parameters():
                shape, offset = self.layout[name]
                size = int(np.prod(shape)) if shape else 1
                view = self._params[offset : offset + size].reshape(shape)
                np.copyto(view, p.data)
                p.data = view
                p.pin_grad(self._grads[offset : offset + size].reshape(shape))
                self._pinned.append(p)

    # ------------------------------------------------------------ flat views
    @property
    def flat_params(self) -> np.ndarray:
        """The live parameter buffer (flat mode only) — mutations hit the model."""
        if self._params is None:
            raise RuntimeError("flat_params is only available in 'flat' mode")
        return self._params

    @property
    def flat_grads(self) -> np.ndarray:
        """The live gradient buffer (flat mode only)."""
        if self._grads is None:
            raise RuntimeError("flat_grads is only available in 'flat' mode")
        return self._grads

    # ------------------------------------------------------------------- API
    def to_vector(self) -> np.ndarray:
        """Snapshot the model's current parameters into a new flat vector."""
        if self._params is not None:
            return self._params.copy()
        vec, _ = flatten_state_dict(self.model.state_dict())
        return vec

    def load_vector(self, vector: np.ndarray) -> None:
        """Write a flat vector back into the model parameters (in place).

        Flat mode: one buffer copy, or a no-op when ``vector`` *is* the
        parameter buffer (the zero-copy hot path of ``batch_gradient``).
        """
        if vector.shape != (self.dim,):
            raise ValueError(f"expected vector of shape ({self.dim},), got {vector.shape}")
        if self._params is not None:
            if vector is not self._params:
                np.copyto(self._params, vector)
            return
        self.model.load_state_dict(unflatten_state_dict(vector, self.layout))

    def grad_vector(self) -> np.ndarray:
        """Current parameter gradients as one flat vector (zeros where absent).

        Flat mode returns the persistent gradient buffer *view* (no copy); it
        is overwritten by the next backward pass after :meth:`zero_grad`.
        """
        if self._grads is not None:
            return self._grads
        chunks = []
        for name, p in self.model.named_parameters():
            g = p.grad if p.grad is not None else np.zeros_like(p.data)
            chunks.append(np.asarray(g, dtype=np.float64).reshape(-1))
        return np.concatenate(chunks) if chunks else np.zeros(0)

    def zero_grad(self) -> None:
        """Clear all gradients (one vectorised fill in flat mode)."""
        if self._grads is not None:
            self._grads.fill(0.0)
            for p in self._pinned:
                p._grad_seen = False
        else:
            self.model.zero_grad()


class BaseClient:
    """Base class for FL clients.

    Subclasses implement :meth:`update`, which receives the server's payload
    (the global model) and returns the payload this client sends back.

    Parameters
    ----------
    client_id:
        Integer id of this client (0-based).
    model:
        The client's local copy of the training model.
    dataset:
        The client's private training data.
    config:
        Shared run configuration.
    rng:
        Random generator controlling batching and DP noise for this client.
    """

    def __init__(
        self,
        client_id: int,
        model: nn.Module,
        dataset: Dataset,
        config: FLConfig,
        rng: Optional[np.random.Generator] = None,
    ):
        self.client_id = int(client_id)
        self.model = model
        self.dataset = dataset
        self.config = config
        self.rng = rng if rng is not None else np.random.default_rng(config.seed + 1000 + client_id)
        self.vectorizer = ModelVectorizer(model, dtype=config.np_dtype, mode=config.engine)
        engine = config.engine
        self._dtype = self.vectorizer.dtype
        # Round-local scratch vector for the algorithms' fused in-place updates.
        self._scratch = np.empty(self.vectorizer.dim, dtype=self._dtype)
        self.loader = DataLoader(
            dataset,
            batch_size=config.batch_size,
            shuffle=True,
            rng=self.rng,
            # Cast batches once at materialisation so the forward pass never
            # converts per batch (the copy engine keeps the seed behaviour).
            dtype=self._dtype if engine == "flat" else None,
        )
        self.loss_fn = nn.CrossEntropyLoss()
        self.mechanism: Mechanism = make_mechanism(
            config.privacy.epsilon,
            kind=config.privacy.mechanism,
            rng=self.rng,
            **({"delta": config.privacy.delta} if config.privacy.mechanism == "gaussian" else {}),
        )
        self.round = 0

    # ------------------------------------------------------------------ hooks
    def update(self, global_payload: Mapping[str, np.ndarray]) -> Dict[str, np.ndarray]:
        """Run one round of local training; return the payload to upload.

        Differential privacy note: clip/noise the returned values *here*
        (via :meth:`clip_gradient` / :meth:`privatize`).  The wire codec
        encodes the payload only after this method returns, so quantization
        and sparsification are post-processing of the already-released value
        and the DP guarantee survives any configured codec stack.
        """
        raise NotImplementedError("BaseClient subclasses must implement update()")

    def reconcile_upload(
        self, sent: Mapping[str, np.ndarray], echo: Mapping[str, np.ndarray]
    ) -> None:
        """React to what the server will actually decode from this upload.

        Called by the exchange layer after the payload returned by
        :meth:`update` was encoded with a *lossy* codec stack: ``sent`` is
        the exact payload this client produced, ``echo`` the decoded form
        every server-side consumer will see.  Stateful clients whose
        bookkeeping must mirror the server's — IIADMM's "independent but
        identical" dual replicas — replay that bookkeeping here against
        ``echo``.  Never called for lossless (identity) stacks; the default
        is a no-op.
        """

    # ------------------------------------------------------- persistent state
    def client_state(self) -> Dict[str, object]:
        """This client's *persistent* cross-round state as a plain tree.

        Everything a freshly constructed client (same id / dataset / config)
        needs to continue training bit-identically: the round counter and the
        RNG bit-generator state (one generator drives batching and DP noise —
        the loader and mechanism share ``self.rng``, so restoring it here
        restores theirs too).  Algorithm subclasses extend this with their
        own vectors (ADMM duals, primals, ρ).  Model parameters are *not*
        included: every round begins by overwriting them with the dispatched
        global (:meth:`local_params`), so they carry no information between
        rounds.

        The returned arrays are live references, not copies — serialise (see
        :func:`repro.comm.serialization.encode_state_blob`) or copy before
        mutating.  This is what :class:`repro.scale.ClientStateStore` spills
        on eviction and what run checkpoints persist per client.
        """
        return {"round": self.round, "rng": self.rng.bit_generator.state}

    def load_client_state(self, state: Mapping[str, object]) -> None:
        """Restore state captured by :meth:`client_state` (inverse, bit-exact)."""
        self.round = int(state["round"])  # type: ignore[arg-type]
        self.rng.bit_generator.state = state["rng"]

    # ------------------------------------------------------------- primitives
    @property
    def num_samples(self) -> int:
        """Number of private training samples this client holds."""
        return len(self.dataset)

    def local_params(self, init: np.ndarray) -> np.ndarray:
        """Round-local working parameter vector, initialised to ``init``.

        Flat engine: returns the model's own parameter buffer (zero-copy; the
        per-batch ``load_vector`` inside :meth:`batch_gradient` then becomes a
        no-op).  Copy engine: returns a fresh array, as the seed did.
        """
        if self.vectorizer.mode == "flat":
            z = self.vectorizer.flat_params
            np.copyto(z, init)
            return z
        return np.array(init, copy=True)

    def batch_gradient(self, params: np.ndarray, batch_x: np.ndarray, batch_y: np.ndarray) -> np.ndarray:
        """Mean loss gradient over one batch, evaluated at flat parameters ``params``.

        Under the flat engine the returned vector is the persistent gradient
        buffer *view* — consume it before the next ``batch_gradient`` call.
        """
        self.vectorizer.load_vector(params)
        self.vectorizer.zero_grad()
        logits = self.model(nn.Tensor(batch_x, dtype=self._dtype))
        loss = self.loss_fn(logits, batch_y)
        loss.backward()
        return self.vectorizer.grad_vector()

    def full_gradient(self, params: np.ndarray) -> np.ndarray:
        """Mean loss gradient over this client's entire dataset (used by ICEADMM)."""
        x, y = self.loader.full_batch()
        return self.batch_gradient(params, x, y)

    def clip_gradient(self, grad: np.ndarray) -> np.ndarray:
        """Clip a gradient to the configured norm when privacy is enabled."""
        if not self.config.privacy.enabled:
            return grad
        return clip_by_norm(grad, self.config.privacy.clip_norm)

    def privatize(self, values: np.ndarray, sensitivity: float) -> np.ndarray:
        """Apply the configured output-perturbation mechanism to ``values``."""
        out = self.mechanism.perturb_array(values, sensitivity)
        # Keep the pipeline dtype: float64 noise must not upcast a float32 run.
        return np.asarray(out, dtype=values.dtype)

    def local_loss(self, params: np.ndarray) -> float:
        """Training loss of this client's data at flat parameters ``params``."""
        x, y = self.loader.full_batch()
        self.vectorizer.load_vector(params)
        with nn.no_grad():
            logits = self.model(nn.Tensor(x, dtype=self._dtype))
        return float(nn.functional.cross_entropy(logits, y).item())


class BaseServer:
    """Base class for FL servers.

    Subclasses implement the round aggregation — either the granular pair
    the runners drive directly:

    * :meth:`ingest` — per-upload decode + bookkeeping, called exactly once
      per arriving client upload (packets are decoded here, the single
      server-side decode point);
    * :meth:`finalize_round` — produce the next global model from the
      round's decoded uploads (stored in :attr:`global_params`);

    or the classic one-shot :meth:`update` of the paper's plug-and-play API
    ("inherit ``BaseServer`` and implement the virtual function
    ``update()``"), which the default :meth:`finalize_round` delegates to —
    existing user-defined algorithms keep working unchanged.

    Associative partial aggregation
    -------------------------------
    The built-in algorithms additionally split their aggregation into
    :meth:`partial_term` / :meth:`partial_sum` (fold per-client contributions
    into an :class:`~repro.core.partial.ExactPartial`) and
    :meth:`combine_partials` (turn merged partials into the next global
    model).  Because the partials are *exact*, the split is associative: the
    flat ``finalize_round`` (one partial over everyone) and a hierarchical
    run (one partial per edge shard, merged at the root — see
    :mod:`repro.hier`) produce bit-for-bit the same global model.

    ``shard`` restricts which client ids this server instance tracks
    per-client state for (ADMM primal/dual replicas).  ``num_clients`` and
    ``client_sample_counts`` always describe the *whole* population — the
    ``1/P`` and sample-weight terms of the global updates — so an edge
    aggregator over a shard computes exactly the per-client terms the flat
    server would.  ``None`` (the default) tracks everyone.
    """

    def __init__(
        self,
        model: nn.Module,
        config: FLConfig,
        num_clients: int,
        client_sample_counts: Optional[Sequence[int]] = None,
        shard: Optional[Sequence[int]] = None,
    ):
        if num_clients <= 0:
            raise ValueError("num_clients must be positive")
        self.model = model
        self.config = config
        self.num_clients = int(num_clients)
        if shard is None:
            self.shard: Tuple[int, ...] = tuple(range(self.num_clients))
        else:
            self.shard = tuple(sorted(int(c) for c in shard))
            if any(not 0 <= c < self.num_clients for c in self.shard):
                raise ValueError(f"shard ids must lie in [0, {self.num_clients})")
            if len(set(self.shard)) != len(self.shard):
                raise ValueError("shard ids must be unique")
        self.vectorizer = ModelVectorizer(model, dtype=config.np_dtype, mode=config.engine)
        self.global_params = self.vectorizer.to_vector()
        # Scratch vector for in-place aggregation updates.
        self._scratch = np.empty(self.vectorizer.dim, dtype=self.vectorizer.dtype)
        if client_sample_counts is None:
            self.client_sample_counts = np.ones(num_clients)
        else:
            if len(client_sample_counts) != num_clients:
                raise ValueError("client_sample_counts length must equal num_clients")
            self.client_sample_counts = np.asarray(client_sample_counts, dtype=np.float64)
        self.round = 0

    # ------------------------------------------------------------------ hooks
    def ingest(
        self,
        cid: int,
        payload: "Mapping[str, np.ndarray] | UpdatePacket",
        dispatched_global: np.ndarray,
    ) -> Dict[str, np.ndarray]:
        """Decode one client upload; returns the decoded payload.

        This is the *single* server-side decode point: an
        :class:`~repro.comm.codecs.UpdatePacket` is decoded here exactly
        once (``dispatched_global`` — the global snapshot the client trained
        against, as threaded through by the sync and async runners — is the
        delta-codec reference), and an already-decoded mapping passes
        through untouched.  Subclasses override to add per-upload state
        bookkeeping (e.g. IIADMM's dual replay) and must call ``super()``.
        """
        if isinstance(payload, UpdatePacket):
            return resolve_codec(payload.codec).decode_state(
                payload, reference={PRIMAL_KEY: np.asarray(dispatched_global)}
            )
        return dict(payload)

    @property
    def uses_legacy_update(self) -> bool:
        """True when this server's most-derived ``update()`` override is newer
        than its most-derived ``finalize_round()`` override.

        That is the signature of a plug-and-play server that customised only
        ``update()`` (possibly subclassing a built-in algorithm): the runners
        then drive ``update()`` directly — the pre-codec contract — instead
        of the ingest/finalize pair, so the override is never silently
        bypassed.
        """
        update_cls = next(c for c in type(self).__mro__ if "update" in vars(c))
        finalize_cls = next(c for c in type(self).__mro__ if "finalize_round" in vars(c))
        return update_cls is not finalize_cls and issubclass(update_cls, finalize_cls)

    def finalize_round(self, payloads: Mapping[int, Mapping[str, np.ndarray]]) -> None:
        """Produce the next global model from one round's *decoded* uploads.

        ``payloads`` were each passed through :meth:`ingest` already; no
        decoding happens here.  The default delegates to the legacy
        :meth:`update` so plug-and-play servers that only override
        ``update()`` keep working.
        """
        if type(self).update is BaseServer.update:
            raise NotImplementedError(
                "BaseServer subclasses must implement finalize_round() (or the legacy update())"
            )
        self.update(payloads)

    def update(self, payloads: Mapping[int, Mapping[str, np.ndarray]]) -> None:
        """Aggregate client payloads into a new global model (in place).

        One-shot convenience equal to ingesting every payload against the
        current global model and finalizing the round — the synchronous
        pre-codec contract.  Accepts raw dicts or ``UpdatePacket`` payloads.
        """
        if type(self).finalize_round is BaseServer.finalize_round:
            raise NotImplementedError("BaseServer subclasses must implement update()")
        if not payloads:
            raise ValueError("no client payloads to aggregate")
        w = self.global_params
        self.finalize_round({cid: self.ingest(cid, payload, w) for cid, payload in payloads.items()})

    # ------------------------------------------- associative partial aggregation
    def partial_term(
        self, cid: int, payload: Optional[Mapping[str, np.ndarray]] = None
    ) -> np.ndarray:
        """Client ``cid``'s additive contribution to the global update.

        FedAvg derives it from the round's decoded ``payload``; the ADMM
        family from the per-client state :meth:`ingest` already absorbed
        (``payload`` unused).  The returned vector may alias scratch memory —
        consume (or let :class:`~repro.core.partial.ExactPartial` copy) it
        before the next call.
        """
        raise NotImplementedError(
            f"{type(self).__name__} does not implement associative partial "
            f"aggregation (partial_term/combine_partials), required for "
            f"hierarchical federation"
        )

    def partial_sum(
        self, payloads: Optional[Mapping[int, Mapping[str, np.ndarray]]] = None
    ) -> ExactPartial:
        """Exactly fold per-client terms into one associative partial.

        With ``payloads`` (FedAvg style) the fold runs over the uploads'
        client ids; without (ADMM style) over every id this server tracks
        (:attr:`shard`).  Exactness makes the result independent of both the
        fold order and how clients are grouped across servers.
        """
        ids = sorted(payloads) if payloads is not None else list(self.shard)
        acc = ExactPartial(self.vectorizer.dim, self.vectorizer.dtype)
        for cid in ids:
            acc.add(self.partial_term(cid, None if payloads is None else payloads[cid]))
        return acc

    def combine_partials(
        self,
        partials: Sequence[Sequence[np.ndarray]],
        participants: Sequence[int] = (),
    ) -> None:
        """Produce the next global model from merged exact partials.

        ``partials`` are component sequences from :attr:`ExactPartial.
        components` (one per shard; a single-element list for the flat run);
        ``participants`` are the client ids behind them, for algorithms whose
        normaliser depends on who reported (FedAvg's weight renormalisation).
        Merging is exact, so any grouping of the same client terms yields a
        bit-identical global model.
        """
        raise NotImplementedError(
            f"{type(self).__name__} does not implement associative partial "
            f"aggregation (partial_term/combine_partials), required for "
            f"hierarchical federation"
        )

    @property
    def supports_partials(self) -> bool:
        """True when this server implements the partial-aggregation split."""
        return (
            type(self).partial_term is not BaseServer.partial_term
            and type(self).combine_partials is not BaseServer.combine_partials
        )

    # ------------------------------------------------------- persistent state
    def server_state(self) -> Dict[str, object]:
        """The server's persistent state as a plain tree (see
        :meth:`BaseClient.client_state` for the contract).  Subclasses extend
        with their per-client aggregation state (ADMM primals/duals, ρ)."""
        return {"round": self.round, "global_params": self.global_params}

    def load_server_state(self, state: Mapping[str, object]) -> None:
        """Restore state captured by :meth:`server_state` (bit-exact); also
        rewrites the server model from the restored global vector."""
        self.round = int(state["round"])  # type: ignore[arg-type]
        self.global_params = np.array(state["global_params"], copy=True)
        self.sync_model()

    # ------------------------------------------------------------------- API
    def broadcast_payload(self) -> Dict[str, np.ndarray]:
        """Payload sent to every client at the start of a round."""
        return {GLOBAL_KEY: self.global_params.copy()}

    def client_weights(self) -> np.ndarray:
        """Aggregation weights: by sample count if configured, else uniform."""
        if self.config.weighted_aggregation:
            total = self.client_sample_counts.sum()
            if total > 0:
                return self.client_sample_counts / total
        return np.full(self.num_clients, 1.0 / self.num_clients)

    def sync_model(self) -> None:
        """Write the current global parameter vector into the server's model."""
        self.vectorizer.load_vector(self.global_params)
