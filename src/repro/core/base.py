"""Plug-and-play FL base classes (`BaseServer`, `BaseClient`).

This is the extension API the APPFL paper describes in Section II-A:
"Additional user-defined FL algorithms can be implemented by inheriting our
Python class ``BaseServer`` and implementing the virtual function
``update()``. ... This additional work can be customized as well by
inheriting our ``BaseClient`` class and implementing the virtual function
``update()``."

All algorithms operate on the *flat parameter vector* view of the model (the
paper's ``w, z_p, λ_p ∈ R^m``); :class:`ModelVectorizer` converts between the
model's state dict and that vector.
"""

from __future__ import annotations

import math
from typing import Dict, Mapping, Optional, Sequence, Tuple

import numpy as np

from .. import nn
from ..comm.serialization import flatten_state_dict, unflatten_state_dict
from ..data import DataLoader, Dataset
from ..privacy import Mechanism, NoPrivacy, clip_by_norm, make_mechanism
from .config import FLConfig

__all__ = ["ModelVectorizer", "BaseClient", "BaseServer"]

GLOBAL_KEY = "global"
PRIMAL_KEY = "primal"
DUAL_KEY = "dual"
SAMPLES_KEY = "num_samples"


class ModelVectorizer:
    """Converts a model's parameters to/from one flat float64 vector."""

    def __init__(self, model: nn.Module):
        self.model = model
        _, self.layout = flatten_state_dict(model.state_dict())
        self.dim = int(sum(int(np.prod(shape)) for shape, _ in self.layout.values()))

    def to_vector(self) -> np.ndarray:
        """Flatten the model's current parameters into a new vector."""
        vec, _ = flatten_state_dict(self.model.state_dict())
        return vec

    def load_vector(self, vector: np.ndarray) -> None:
        """Write a flat vector back into the model parameters (in place)."""
        if vector.shape != (self.dim,):
            raise ValueError(f"expected vector of shape ({self.dim},), got {vector.shape}")
        self.model.load_state_dict(unflatten_state_dict(vector, self.layout))

    def grad_vector(self) -> np.ndarray:
        """Flatten the current parameter gradients (zeros where absent)."""
        chunks = []
        for name, p in self.model.named_parameters():
            g = p.grad if p.grad is not None else np.zeros_like(p.data)
            chunks.append(np.asarray(g, dtype=np.float64).reshape(-1))
        return np.concatenate(chunks) if chunks else np.zeros(0)


class BaseClient:
    """Base class for FL clients.

    Subclasses implement :meth:`update`, which receives the server's payload
    (the global model) and returns the payload this client sends back.

    Parameters
    ----------
    client_id:
        Integer id of this client (0-based).
    model:
        The client's local copy of the training model.
    dataset:
        The client's private training data.
    config:
        Shared run configuration.
    rng:
        Random generator controlling batching and DP noise for this client.
    """

    def __init__(
        self,
        client_id: int,
        model: nn.Module,
        dataset: Dataset,
        config: FLConfig,
        rng: Optional[np.random.Generator] = None,
    ):
        self.client_id = int(client_id)
        self.model = model
        self.dataset = dataset
        self.config = config
        self.rng = rng if rng is not None else np.random.default_rng(config.seed + 1000 + client_id)
        self.vectorizer = ModelVectorizer(model)
        self.loader = DataLoader(
            dataset, batch_size=config.batch_size, shuffle=True, rng=self.rng
        )
        self.loss_fn = nn.CrossEntropyLoss()
        self.mechanism: Mechanism = make_mechanism(
            config.privacy.epsilon,
            kind=config.privacy.mechanism,
            rng=self.rng,
            **({"delta": config.privacy.delta} if config.privacy.mechanism == "gaussian" else {}),
        )
        self.round = 0

    # ------------------------------------------------------------------ hooks
    def update(self, global_payload: Mapping[str, np.ndarray]) -> Dict[str, np.ndarray]:
        """Run one round of local training; return the payload to upload."""
        raise NotImplementedError("BaseClient subclasses must implement update()")

    # ------------------------------------------------------------- primitives
    @property
    def num_samples(self) -> int:
        """Number of private training samples this client holds."""
        return len(self.dataset)

    def batch_gradient(self, params: np.ndarray, batch_x: np.ndarray, batch_y: np.ndarray) -> np.ndarray:
        """Mean loss gradient over one batch, evaluated at flat parameters ``params``."""
        self.vectorizer.load_vector(params)
        self.model.zero_grad()
        logits = self.model(nn.Tensor(batch_x))
        loss = self.loss_fn(logits, batch_y)
        loss.backward()
        return self.vectorizer.grad_vector()

    def full_gradient(self, params: np.ndarray) -> np.ndarray:
        """Mean loss gradient over this client's entire dataset (used by ICEADMM)."""
        x, y = self.loader.full_batch()
        return self.batch_gradient(params, x, y)

    def clip_gradient(self, grad: np.ndarray) -> np.ndarray:
        """Clip a gradient to the configured norm when privacy is enabled."""
        if not self.config.privacy.enabled:
            return grad
        return clip_by_norm(grad, self.config.privacy.clip_norm)

    def privatize(self, values: np.ndarray, sensitivity: float) -> np.ndarray:
        """Apply the configured output-perturbation mechanism to ``values``."""
        return self.mechanism.perturb_array(values, sensitivity)

    def local_loss(self, params: np.ndarray) -> float:
        """Training loss of this client's data at flat parameters ``params``."""
        x, y = self.loader.full_batch()
        self.vectorizer.load_vector(params)
        with nn.no_grad():
            logits = self.model(nn.Tensor(x))
        return float(nn.functional.cross_entropy(logits, y).item())


class BaseServer:
    """Base class for FL servers.

    Subclasses implement :meth:`update`, which consumes the payloads gathered
    from clients and produces the next global model (stored in
    :attr:`global_params`).
    """

    def __init__(
        self,
        model: nn.Module,
        config: FLConfig,
        num_clients: int,
        client_sample_counts: Optional[Sequence[int]] = None,
    ):
        if num_clients <= 0:
            raise ValueError("num_clients must be positive")
        self.model = model
        self.config = config
        self.num_clients = int(num_clients)
        self.vectorizer = ModelVectorizer(model)
        self.global_params = self.vectorizer.to_vector()
        if client_sample_counts is None:
            self.client_sample_counts = np.ones(num_clients)
        else:
            if len(client_sample_counts) != num_clients:
                raise ValueError("client_sample_counts length must equal num_clients")
            self.client_sample_counts = np.asarray(client_sample_counts, dtype=np.float64)
        self.round = 0

    # ------------------------------------------------------------------ hooks
    def update(self, payloads: Mapping[int, Mapping[str, np.ndarray]]) -> None:
        """Aggregate client payloads into a new global model (in place)."""
        raise NotImplementedError("BaseServer subclasses must implement update()")

    # ------------------------------------------------------------------- API
    def broadcast_payload(self) -> Dict[str, np.ndarray]:
        """Payload sent to every client at the start of a round."""
        return {GLOBAL_KEY: self.global_params.copy()}

    def client_weights(self) -> np.ndarray:
        """Aggregation weights: by sample count if configured, else uniform."""
        if self.config.weighted_aggregation:
            total = self.client_sample_counts.sum()
            if total > 0:
                return self.client_sample_counts / total
        return np.full(self.num_clients, 1.0 / self.num_clients)

    def sync_model(self) -> None:
        """Write the current global parameter vector into the server's model."""
        self.vectorizer.load_vector(self.global_params)
