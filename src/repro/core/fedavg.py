"""Federated averaging (FedAvg) [McMahan et al., 2017].

The client runs ``L`` epochs of mini-batch SGD with momentum starting from the
received global model and uploads its final local parameters; the server
averages them (weighted by sample counts, or uniformly when
``weighted_aggregation=False``, which is the form the paper uses when showing
FedAvg as a special case of IADMM with λ=0, ζ=0, ρ=1/η).

With differential privacy enabled, every per-batch gradient is clipped to the
configured norm ``C`` and the uploaded parameters are perturbed with noise
calibrated to the FedAvg sensitivity ``Δ = 2·C·η`` (Section III-B/IV-B).
"""

from __future__ import annotations

import math
from typing import Dict, Mapping, Optional, Sequence

import numpy as np

from ..privacy import FedAvgSensitivity
from .base import GLOBAL_KEY, PRIMAL_KEY, BaseClient, BaseServer
from .partial import ExactPartial

__all__ = ["FedAvgClient", "FedAvgServer"]


class FedAvgClient(BaseClient):
    """FedAvg client: ``L`` epochs of SGD with momentum on local data."""

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        # Momentum buffer, reset (not reallocated) at the start of each round.
        self._velocity = np.zeros(self.vectorizer.dim, dtype=self.vectorizer.dtype)

    def update(self, global_payload: Mapping[str, np.ndarray]) -> Dict[str, np.ndarray]:
        cfg = self.config
        z = self.local_params(np.asarray(global_payload[GLOBAL_KEY]))
        velocity = self._velocity
        velocity.fill(0.0)
        s = self._scratch
        for _ in range(cfg.local_steps):
            for batch_x, batch_y in self.loader:
                grad = self.batch_gradient(z, batch_x, batch_y)
                grad = self.clip_gradient(grad)
                if cfg.momentum:
                    velocity *= cfg.momentum
                    velocity += grad
                    step = velocity
                else:
                    step = grad
                # Fused in place: z -= lr * step.
                np.multiply(step, cfg.lr, out=s)
                z -= s

        if cfg.privacy.enabled:
            num_steps = cfg.local_steps * max(1, len(self.loader))
            sensitivity = FedAvgSensitivity(
                clip_norm=cfg.privacy.clip_norm, lr=cfg.lr, num_steps=num_steps
            ).sensitivity()
            z = self.privatize(z, sensitivity)
        else:
            z = z.copy()
        self.round += 1
        return {PRIMAL_KEY: z}


class FedAvgServer(BaseServer):
    """FedAvg server: (weighted) average of the client parameters.

    Aggregation lives in :meth:`finalize_round` over the round's decoded
    uploads (a subset of clients is fine: the weights renormalise over the
    participants); the inherited :meth:`BaseServer.update` keeps the classic
    one-shot API.  The weighted sum is folded through the exact
    :meth:`~repro.core.base.BaseServer.partial_sum` /
    :meth:`combine_partials` split, so a hierarchical run that sums each
    shard on its edge and merges at the root is bit-for-bit this flat
    aggregation.
    """

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        # client_weights() is static (counts and config are frozen); cache it
        # so per-term folds don't recompute the O(P) normalisation.
        self._agg_weights = self.client_weights()

    def partial_term(
        self, cid: int, payload: Optional[Mapping[str, np.ndarray]] = None
    ) -> np.ndarray:
        if payload is None:
            raise ValueError("FedAvg partial terms come from the round's decoded uploads")
        return float(self._agg_weights[cid]) * np.asarray(payload[PRIMAL_KEY])

    def combine_partials(
        self,
        partials: "Sequence[Sequence[np.ndarray]]",
        participants: Sequence[int] = (),
    ) -> None:
        if not participants:
            raise ValueError("no client payloads to aggregate")
        # fsum is the scalar analogue of the exact vector merge: the
        # normaliser depends only on *which* clients reported, not on how
        # their edges grouped them.
        total_weight = math.fsum(float(self._agg_weights[c]) for c in sorted(participants))
        if total_weight <= 0:
            raise ValueError("aggregation weights sum to zero")
        acc = ExactPartial(self.vectorizer.dim, self.vectorizer.dtype)
        for components in partials:
            acc.merge(components)
        self.global_params = acc.round() / total_weight
        self.round += 1
        self.sync_model()

    def finalize_round(self, payloads: Mapping[int, Mapping[str, np.ndarray]]) -> None:
        if not payloads:
            raise ValueError("no client payloads to aggregate")
        self.combine_partials([self.partial_sum(payloads).components], tuple(payloads))
