"""Model evaluation (the server-side validation routine of Section II-A.5).

"When testing data is available at a server, APPFL provides a validation
routine that evaluates the accuracy of the current global model."
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from .. import nn
from ..data import DataLoader, Dataset

__all__ = ["evaluate", "Evaluator"]


def evaluate(model: nn.Module, dataset: Dataset, batch_size: int = 256) -> Tuple[float, float]:
    """Return ``(accuracy, mean cross-entropy loss)`` of ``model`` on ``dataset``."""
    loader = DataLoader(dataset, batch_size=batch_size, shuffle=False)
    total, correct, loss_sum = 0, 0, 0.0
    model.eval()
    with nn.no_grad():
        for x, y in loader:
            logits = model(nn.Tensor(x))
            loss = nn.functional.cross_entropy(logits, y, reduction="sum")
            loss_sum += loss.item()
            pred = logits.data.argmax(axis=1)
            correct += int((pred == y).sum())
            total += len(y)
    model.train()
    if total == 0:
        return 0.0, 0.0
    return correct / total, loss_sum / total


class Evaluator:
    """Callable wrapper around :func:`evaluate` bound to one test dataset."""

    def __init__(self, dataset: Dataset, batch_size: int = 256):
        self.dataset = dataset
        self.batch_size = batch_size

    def __call__(self, model: nn.Module) -> Tuple[float, float]:
        return evaluate(model, self.dataset, batch_size=self.batch_size)
