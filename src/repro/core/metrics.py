"""Model evaluation (the server-side validation routine of Section II-A.5).

"When testing data is available at a server, APPFL provides a validation
routine that evaluates the accuracy of the current global model."
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

import numpy as np

from .. import nn
from ..data import DataLoader, Dataset

__all__ = ["evaluate", "Evaluator"]


def _model_dtype(model: nn.Module):
    """The model's parameter precision (float64 when it has no parameters)."""
    first = next(model.parameters(), None)
    return first.data.dtype if first is not None else np.dtype(np.float64)


def evaluate(
    model: nn.Module, dataset: Dataset, batch_size: int = 256, loader: Optional[DataLoader] = None
) -> Tuple[float, float]:
    """Return ``(accuracy, mean cross-entropy loss)`` of ``model`` on ``dataset``.

    Evaluates in the model's own precision (float32 under the narrow
    pipeline) so the forward pass never upcasts.  Pass ``loader`` to reuse a
    prebuilt/cast loader across calls (see :class:`Evaluator`).
    """
    dtype = _model_dtype(model)
    if loader is None:
        loader = DataLoader(dataset, batch_size=batch_size, shuffle=False, dtype=dtype)
    total, correct, loss_sum = 0, 0, 0.0
    model.eval()
    with nn.no_grad():
        for x, y in loader:
            logits = model(nn.Tensor(x, dtype=dtype))
            loss = nn.functional.cross_entropy(logits, y, reduction="sum")
            loss_sum += loss.item()
            pred = logits.data.argmax(axis=1)
            correct += int((pred == y).sum())
            total += len(y)
    model.train()
    if total == 0:
        return 0.0, 0.0
    return correct / total, loss_sum / total


class Evaluator:
    """Callable wrapper around :func:`evaluate` bound to one test dataset.

    Caches the materialised (and dtype-cast) loader per model precision, so
    per-round evaluation under the float32 pipeline converts the test set
    once instead of on every call.
    """

    def __init__(self, dataset: Dataset, batch_size: int = 256):
        self.dataset = dataset
        self.batch_size = batch_size
        self._loaders: Dict[np.dtype, DataLoader] = {}

    def __call__(self, model: nn.Module) -> Tuple[float, float]:
        dtype = _model_dtype(model)
        loader = self._loaders.get(dtype)
        if loader is None:
            loader = DataLoader(self.dataset, batch_size=self.batch_size, shuffle=False, dtype=dtype)
            self._loaders[dtype] = loader
        return evaluate(model, self.dataset, batch_size=self.batch_size, loader=loader)
