"""ICEADMM — inexact communication-efficient ADMM [Zhou & Li, 2021].

The baseline the paper compares IIADMM against.  Differences from IIADMM
(Section III-A and IV-B):

* the client performs ``L`` *primal and dual* updates per round, using the
  gradient over **all** local data points (no mini-batches, ``B_p = 1``);
* because the dual evolves locally in a way the server cannot replay, the
  client must upload **both** the primal ``z_p`` and the dual ``λ_p`` every
  round — twice the communication volume of IIADMM/FedAvg.

Server global update:   w^{t+1} = (1/P) Σ_p (z_p − λ_p / ρ)
Client local updates (ℓ = 1..L):
    g  = ∇f_p(z)                         (full local gradient)
    z ← z − (g − λ − ρ(w − z)) / (ρ + ζ)
    λ ← λ + ρ (w − z)

With differential privacy enabled both transmitted vectors are perturbed with
noise calibrated to the IADMM sensitivity ``Δ = 2C/(ρ+ζ)``.
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional, Sequence

import numpy as np

from ..privacy import IADMMSensitivity
from .base import DUAL_KEY, GLOBAL_KEY, PRIMAL_KEY, BaseClient, BaseServer
from .partial import ExactPartial

__all__ = ["ICEADMMClient", "ICEADMMServer"]


class ICEADMMClient(BaseClient):
    """ICEADMM client: L full-gradient primal+dual updates per round."""

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.dual = np.zeros(self.vectorizer.dim, dtype=self.vectorizer.dtype)
        self.primal = self.vectorizer.to_vector()
        self._rho = self.config.rho

    @property
    def rho(self) -> float:
        return self._rho

    def update(self, global_payload: Mapping[str, np.ndarray]) -> Dict[str, np.ndarray]:
        cfg = self.config
        w = np.asarray(global_payload[GLOBAL_KEY])
        rho, zeta = self._rho, cfg.zeta
        s = self._scratch

        z = self.local_params(w)
        lam = self.dual  # updated in place; persists as the next round's λ_p
        for _ in range(cfg.local_steps):
            g = self.full_gradient(z)
            g = self.clip_gradient(g)
            # Fused in place: z -= (g − λ − ρ(w − z)) / (ρ + ζ).
            np.subtract(w, z, out=s)
            s *= rho
            g -= lam
            g -= s
            g /= rho + zeta
            z -= g
            # λ += ρ(w − z) with the freshly updated z.
            np.subtract(w, z, out=s)
            s *= rho
            lam += s

        self.primal = z.copy()

        if cfg.privacy.enabled:
            sensitivity = IADMMSensitivity(clip_norm=cfg.privacy.clip_norm, rho=rho, zeta=zeta).sensitivity()
            upload_z = self.privatize(z, sensitivity)
            # The dual is the sum of L increments of magnitude up to ρ·Δz each,
            # so its sensitivity is L·ρ times the primal's.
            upload_lam = self.privatize(lam, sensitivity * rho * cfg.local_steps)
        else:
            # Copies: z and lam alias this client's persistent buffers.
            upload_z, upload_lam = self.primal, lam.copy()

        if cfg.adaptive_rho:
            self._rho *= cfg.rho_growth
        self.round += 1
        # Both primal and dual travel to the server (2x IIADMM's payload).
        return {PRIMAL_KEY: upload_z, DUAL_KEY: upload_lam}

    def client_state(self) -> Dict[str, object]:
        state = super().client_state()
        state.update(dual=self.dual, primal=self.primal, rho=self._rho)
        return state

    def load_client_state(self, state: Mapping[str, object]) -> None:
        super().load_client_state(state)
        np.copyto(self.dual, np.asarray(state["dual"]))
        self.primal = np.array(state["primal"], copy=True)
        self._rho = float(state["rho"])  # type: ignore[arg-type]


class ICEADMMServer(BaseServer):
    """ICEADMM server: global update from the transmitted primal and dual pairs."""

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        # Per-client replicas only for the ids this server tracks: the whole
        # population for the flat server, one shard for an edge aggregator.
        self.primals = {cid: self.vectorizer.to_vector() for cid in self.shard}
        self.duals = {
            cid: np.zeros(self.vectorizer.dim, dtype=self.vectorizer.dtype)
            for cid in self.shard
        }
        self._rho = self.config.rho

    @property
    def rho(self) -> float:
        return self._rho

    def ingest(self, cid: int, payload, dispatched_global: np.ndarray) -> Dict[str, np.ndarray]:
        """Store one client's transmitted primal/dual pair.

        Accepts an :class:`~repro.comm.codecs.UpdatePacket` (decoded exactly
        once by ``super().ingest``; under a ``delta`` codec the primal is
        reconstructed against ``dispatched_global``, the dual travels
        standalone) or an already-decoded mapping.  Unlike IIADMM's
        incremental dual replay, the ICEADMM dual travels as *absolute*
        state, so re-ingesting a fresher upload from the same client simply
        replaces the pair, and a lossy wire merely means the server
        aggregates a quantized view of the client's state — no cross-replica
        invariant to maintain.
        """
        if cid not in self.duals:
            raise KeyError(f"client {cid} is not tracked by this server (shard={self.shard[:8]}…)")
        payload = super().ingest(cid, payload, dispatched_global)
        self.primals[cid] = np.asarray(payload[PRIMAL_KEY])
        self.duals[cid] = np.asarray(payload[DUAL_KEY])
        return payload

    def partial_term(
        self, cid: int, payload: Optional[Mapping[str, np.ndarray]] = None
    ) -> np.ndarray:
        """``z_p − λ_p/ρ`` from the last-known pair (returns scratch memory)."""
        s = self._scratch
        np.divide(self.duals[cid], self._rho, out=s)
        np.subtract(self.primals[cid], s, out=s)
        return s

    def combine_partials(
        self,
        partials: "Sequence[Sequence[np.ndarray]]",
        participants: Sequence[int] = (),
    ) -> None:
        """``w = (1/P) Σ_p (z_p − λ_p/ρ)`` from exactly merged shard partials.

        ``participants`` is unused: every client contributes its last-known
        pair, so the normaliser is always the full population ``P``.
        """
        acc = ExactPartial(self.vectorizer.dim, self.vectorizer.dtype)
        for components in partials:
            acc.merge(components)
        self.global_params = acc.round() / self.num_clients

        if self.config.adaptive_rho:
            self._rho *= self.config.rho_growth
        self.round += 1
        self.sync_model()

    def aggregate_global(self) -> None:
        """Recompute ``w = (1/P) Σ_p (z_p − λ_p/ρ)`` over all tracked clients.

        Clients not heard from since the last aggregation contribute their
        last-known pair (the partial-participation form).
        """
        self.combine_partials([self.partial_sum().components])

    def finalize_round(self, payloads: Mapping[int, Mapping[str, np.ndarray]]) -> None:
        """Per-upload pairs were stored by :meth:`ingest`; only the global update remains."""
        self.aggregate_global()

    def server_state(self) -> Dict[str, object]:
        state = super().server_state()
        state.update(duals=self.duals, primals=self.primals, rho=self._rho)
        return state

    def load_server_state(self, state: Mapping[str, object]) -> None:
        super().load_server_state(state)
        self.duals = {int(c): np.array(v, copy=True) for c, v in state["duals"].items()}  # type: ignore[union-attr]
        self.primals = {int(c): np.array(v, copy=True) for c, v in state["primals"].items()}  # type: ignore[union-attr]
        self._rho = float(state["rho"])  # type: ignore[arg-type]
