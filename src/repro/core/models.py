"""Reference models used by the paper's demonstration and the examples.

Section IV-A: "We use the convolutional neural network model, consisting of
two 2D convolution layers, a 2D max pooling layer, the elementwise rectified
linear unit function, and two layers of linear transformation."

:class:`PaperCNN` reproduces that architecture; :class:`MLP` and
:class:`LogisticRegression` are cheaper models used by the fast test suite and
by the scaled-down accuracy benchmarks.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

import numpy as np

from .. import nn

__all__ = ["PaperCNN", "MLP", "LogisticRegression", "build_model", "SeededModelFn"]


class PaperCNN(nn.Module):
    """The demonstration CNN of the APPFL paper.

    conv(3x3) → ReLU → conv(3x3) → ReLU → maxpool(2) → flatten → linear →
    ReLU → linear(num_classes).
    """

    def __init__(
        self,
        in_channels: int,
        num_classes: int,
        image_size: Tuple[int, int] = (28, 28),
        hidden: int = 64,
        conv_channels: Tuple[int, int] = (16, 32),
        rng: Optional[np.random.Generator] = None,
    ):
        super().__init__()
        rng = rng if rng is not None else np.random.default_rng()
        c1, c2 = conv_channels
        h, w = image_size
        self.conv1 = nn.Conv2d(in_channels, c1, 3, padding=1, rng=rng)
        self.conv2 = nn.Conv2d(c1, c2, 3, padding=1, rng=rng)
        self.pool = nn.MaxPool2d(2)
        self.flatten = nn.Flatten()
        flat_dim = c2 * (h // 2) * (w // 2)
        self.fc1 = nn.Linear(flat_dim, hidden, rng=rng)
        self.fc2 = nn.Linear(hidden, num_classes, rng=rng)

    def forward(self, x: nn.Tensor) -> nn.Tensor:
        h = self.conv1(x).relu()
        h = self.conv2(h).relu()
        h = self.pool(h)
        h = self.flatten(h)
        h = self.fc1(h).relu()
        return self.fc2(h)


class MLP(nn.Module):
    """A small multilayer perceptron over flattened inputs."""

    def __init__(
        self,
        input_dim: int,
        num_classes: int,
        hidden_sizes: Sequence[int] = (64,),
        rng: Optional[np.random.Generator] = None,
    ):
        super().__init__()
        rng = rng if rng is not None else np.random.default_rng()
        dims = [input_dim, *hidden_sizes, num_classes]
        layers = []
        for i in range(len(dims) - 1):
            layers.append(nn.Linear(dims[i], dims[i + 1], rng=rng))
            if i < len(dims) - 2:
                layers.append(nn.ReLU())
        self.net = nn.Sequential(*layers)
        self.input_dim = input_dim

    def forward(self, x: nn.Tensor) -> nn.Tensor:
        if x.ndim > 2:
            x = nn.functional.flatten(x)
        return self.net(x)


class LogisticRegression(nn.Module):
    """Multinomial logistic regression (the convex case of problem (1))."""

    def __init__(self, input_dim: int, num_classes: int, rng: Optional[np.random.Generator] = None):
        super().__init__()
        self.linear = nn.Linear(input_dim, num_classes, rng=rng)
        self.input_dim = input_dim

    def forward(self, x: nn.Tensor) -> nn.Tensor:
        if x.ndim > 2:
            x = nn.functional.flatten(x)
        return self.linear(x)


def build_model(
    kind: str,
    image_shape: Tuple[int, int, int],
    num_classes: int,
    rng: Optional[np.random.Generator] = None,
    **kwargs,
) -> nn.Module:
    """Build a model by name ("cnn", "mlp", "logistic") for an image dataset."""
    c, h, w = image_shape
    kind = kind.lower()
    if kind == "cnn":
        return PaperCNN(c, num_classes, image_size=(h, w), rng=rng, **kwargs)
    if kind == "mlp":
        return MLP(c * h * w, num_classes, rng=rng, **kwargs)
    if kind in ("logistic", "linear"):
        return LogisticRegression(c * h * w, num_classes, rng=rng)
    raise ValueError(f"unknown model kind {kind!r}")


class SeededModelFn:
    """A picklable, deterministic-per-call ``model_fn``.

    Equivalent to ``lambda: build_model(kind, shape, classes,
    rng=np.random.default_rng(seed))`` — every call draws the initial weights
    from a *fresh* generator at ``seed``, so repeated calls yield bit-identical
    models (the contract :class:`repro.scale.ClientStateStore` factories
    need).  Unlike the lambda, instances pickle, which
    ``FLConfig(execution_backend="process")`` requires: worker processes
    rebuild store-backed clients from the shipped factory.
    """

    def __init__(
        self,
        kind: str,
        image_shape: Tuple[int, int, int],
        num_classes: int,
        seed: int = 0,
        **kwargs,
    ):
        self.kind = kind
        self.image_shape = tuple(image_shape)
        self.num_classes = int(num_classes)
        self.seed = int(seed)
        self.kwargs = dict(kwargs)

    def __call__(self) -> nn.Module:
        return build_model(
            self.kind,
            self.image_shape,
            self.num_classes,
            rng=np.random.default_rng(self.seed),
            **self.kwargs,
        )

    def __repr__(self) -> str:
        return (
            f"SeededModelFn({self.kind!r}, {self.image_shape}, "
            f"{self.num_classes}, seed={self.seed})"
        )
