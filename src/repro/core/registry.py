"""Algorithm registry: maps algorithm names to (server class, client class).

New algorithms register themselves with :func:`register_algorithm`, giving
users the plug-and-play extensibility the paper describes — implement a
``BaseServer``/``BaseClient`` pair, register it, and every runner, example, and
benchmark can select it by name.
"""

from __future__ import annotations

from typing import Dict, Tuple, Type

from .base import BaseClient, BaseServer
from .fedavg import FedAvgClient, FedAvgServer
from .iceadmm import ICEADMMClient, ICEADMMServer
from .iiadmm import IIADMMClient, IIADMMServer

__all__ = ["register_algorithm", "get_algorithm", "available_algorithms"]

_REGISTRY: Dict[str, Tuple[Type[BaseServer], Type[BaseClient]]] = {}


def register_algorithm(name: str, server_cls: Type[BaseServer], client_cls: Type[BaseClient]) -> None:
    """Register an algorithm under ``name`` (case-insensitive)."""
    if not issubclass(server_cls, BaseServer):
        raise TypeError("server_cls must subclass BaseServer")
    if not issubclass(client_cls, BaseClient):
        raise TypeError("client_cls must subclass BaseClient")
    _REGISTRY[name.lower()] = (server_cls, client_cls)


def get_algorithm(name: str) -> Tuple[Type[BaseServer], Type[BaseClient]]:
    """Look up the (server, client) classes registered under ``name``."""
    key = name.lower()
    if key not in _REGISTRY:
        raise KeyError(f"unknown algorithm {name!r}; available: {available_algorithms()}")
    return _REGISTRY[key]


def available_algorithms() -> list:
    """Sorted list of registered algorithm names."""
    return sorted(_REGISTRY)


# Built-in algorithms.
register_algorithm("fedavg", FedAvgServer, FedAvgClient)
register_algorithm("iceadmm", ICEADMMServer, ICEADMMClient)
register_algorithm("iiadmm", IIADMMServer, IIADMMClient)
