"""IIADMM — the paper's new inexact ADMM algorithm (Algorithm 1).

IIADMM improves on ICEADMM in two ways (Section III-A):

1. the client performs *multiple local primal updates using batches of data*
   (lines 13-19 of Algorithm 1) instead of full-gradient primal+dual updates;
2. the dual variable λ_p is updated *twice, independently but identically* —
   once at the client (line 21) and once at the server (line 6) — so the dual
   never has to travel over the network.  Only the primal local model z_p is
   transmitted, halving the per-round upload compared with ICEADMM.

Server global update (line 3):     w^{t+1} = (1/P) Σ_p (z_p^t − λ_p^t / ρ_t)
Client primal update (line 16):    z ← z − (g − λ_p − ρ(w^{t+1} − z)) / (ρ + ζ)
Dual update (lines 6 and 21):      λ_p ← λ_p + ρ (w^{t+1} − z_p^{t+1})

With differential privacy enabled, the batch gradient is clipped to ``C`` and
the transmitted primal is perturbed with noise calibrated to the IADMM
sensitivity ``Δ = 2C / (ρ + ζ)``.
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional, Sequence

import numpy as np

from ..comm.codecs import resolve_codec
from ..privacy import IADMMSensitivity
from .base import GLOBAL_KEY, PRIMAL_KEY, BaseClient, BaseServer
from .partial import ExactPartial

__all__ = ["IIADMMClient", "IIADMMServer"]


class IIADMMClient(BaseClient):
    """IIADMM client: batched inexact primal updates + local dual update.

    Under a lossy wire codec the server decodes a primal ẑ that differs from
    the transmitted one; both dual replicas must then be driven by ẑ, so the
    client re-derives its line-21 update from the decoded echo in
    :meth:`reconcile_upload` (bitwise the same computation the server's
    line-6 replay performs).
    """

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        # λ_p^1 = 0: the initial primal/dual pair is implicitly shared with the
        # server (Algorithm 1 line 1), which also starts its copy at zero.
        self.dual = np.zeros(self.vectorizer.dim, dtype=self.vectorizer.dtype)
        self.primal = self.vectorizer.to_vector()
        self._rho = self.config.rho
        # Lossy-codec bookkeeping for reconcile_upload: the pre-update dual,
        # the dispatched global, and the rho the round's dual update used.
        self._lossy_wire = resolve_codec(self.config.codec).lossy
        self._dual_base = (
            np.empty(self.vectorizer.dim, dtype=self.vectorizer.dtype) if self._lossy_wire else None
        )
        self._sent_global: np.ndarray = None
        self._sent_rho = self._rho

    @property
    def rho(self) -> float:
        """Current penalty parameter ρ_t (may grow when adaptive_rho is set)."""
        return self._rho

    def update(self, global_payload: Mapping[str, np.ndarray]) -> Dict[str, np.ndarray]:
        cfg = self.config
        w = np.asarray(global_payload[GLOBAL_KEY])
        rho, zeta = self._rho, cfg.zeta
        s = self._scratch

        # Line 11: start local updates from the received global model (under
        # the flat engine, z *is* the model's parameter buffer).
        z = self.local_params(w)
        for _ in range(cfg.local_steps):  # line 13: local steps ℓ = 1..L
            for batch_x, batch_y in self.loader:  # line 14: batches b = 1..B_p
                g = self.batch_gradient(z, batch_x, batch_y)  # line 15
                g = self.clip_gradient(g)
                # Line 16, fused in place: z -= (g − λ_p − ρ(w − z)) / (ρ + ζ).
                np.subtract(w, z, out=s)
                s *= rho
                g -= self.dual
                g -= s
                g /= rho + zeta
                z -= g

        if cfg.privacy.enabled:
            sensitivity = IADMMSensitivity(clip_norm=cfg.privacy.clip_norm, rho=rho, zeta=zeta).sensitivity()
            upload = self.privatize(z, sensitivity)
        else:
            upload = z.copy()  # line 20/22: the primal that will be transmitted

        self.primal = upload
        # Line 21: client-side dual update.  It must use the *transmitted*
        # primal (perturbed under DP) — otherwise the client's dual and the
        # server's replica (line 6, which only sees the transmitted value)
        # would silently drift apart and the two updates would no longer be
        # "independent but identical" as Algorithm 1 requires.  Under a lossy
        # codec the server sees the *decoded* primal instead; stash what
        # reconcile_upload needs to replay this update from the echo.
        if self._lossy_wire:
            np.copyto(self._dual_base, self.dual)
            self._sent_global = w
            self._sent_rho = rho
        np.subtract(w, upload, out=s)
        s *= rho
        self.dual += s

        if cfg.adaptive_rho:
            self._rho *= cfg.rho_growth
        self.round += 1
        # Line 22 / line 5: only the primal is communicated.
        return {PRIMAL_KEY: upload}

    def reconcile_upload(self, sent: Mapping[str, np.ndarray], echo: Mapping[str, np.ndarray]) -> None:
        """Replay the line-21 dual update from the server-decoded primal.

        ``λ_p ← λ_p^{before} + ρ (w − ẑ_p)`` computed with the same fused
        operations (and the same ``w``, ``ρ``, ``ẑ``) as the server's line-6
        replay in :meth:`IIADMMServer.ingest`, so the two replicas stay
        *bitwise* identical even though the wire was lossy.
        """
        if not self._lossy_wire:
            return
        s = self._scratch
        np.subtract(self._sent_global, echo[PRIMAL_KEY], out=s)
        s *= self._sent_rho
        np.add(self._dual_base, s, out=self.dual)

    def client_state(self) -> Dict[str, object]:
        state = super().client_state()
        state.update(dual=self.dual, primal=self.primal, rho=self._rho)
        if self._lossy_wire:
            # The reconcile stash is live between update() and the exchange
            # layer's reconcile call — an async checkpoint can land there.
            state.update(
                dual_base=self._dual_base,
                sent_global=self._sent_global,
                sent_rho=self._sent_rho,
            )
        return state

    def load_client_state(self, state: Mapping[str, object]) -> None:
        super().load_client_state(state)
        np.copyto(self.dual, np.asarray(state["dual"]))
        self.primal = np.array(state["primal"], copy=True)
        self._rho = float(state["rho"])  # type: ignore[arg-type]
        if self._lossy_wire and "dual_base" in state:
            np.copyto(self._dual_base, np.asarray(state["dual_base"]))
            sent = state["sent_global"]
            self._sent_global = None if sent is None else np.array(sent, copy=True)
            self._sent_rho = float(state["sent_rho"])  # type: ignore[arg-type]


class IIADMMServer(BaseServer):
    """IIADMM server: global update from primals and *locally maintained* duals."""

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        # Server-side replicas of each client's dual variable (line 6); they
        # stay synchronised with the clients' copies without any
        # communication.  Only the ids this server tracks — the whole
        # population for the flat server, one shard for an edge aggregator.
        self.duals = {
            cid: np.zeros(self.vectorizer.dim, dtype=self.vectorizer.dtype)
            for cid in self.shard
        }
        self.primals = {cid: self.vectorizer.to_vector() for cid in self.shard}
        self._rho = self.config.rho

    @property
    def rho(self) -> float:
        return self._rho

    def ingest(self, cid: int, payload, dispatched_global: np.ndarray) -> Dict[str, np.ndarray]:
        """Line 6 for one client: replay its dual update from the received primal.

        Accepts an :class:`~repro.comm.codecs.UpdatePacket` (decoded exactly
        once by ``super().ingest``) or an already-decoded mapping.
        ``dispatched_global`` must be the global model the client computed
        against — for the synchronous loop that is the current one, but under
        staleness (repro.asyncfl) it is the snapshot the client downloaded;
        using anything else desynchronises the "independent but identical"
        dual replicas.  Must be called exactly once per client upload: the
        replay is an *increment*, mirroring the client's own line-21 update
        (the reconcile_upload form when the wire codec is lossy).
        """
        if cid not in self.duals:
            raise KeyError(f"client {cid} is not tracked by this server (shard={self.shard[:8]}…)")
        payload = super().ingest(cid, payload, dispatched_global)
        z = np.asarray(payload[PRIMAL_KEY])
        self.primals[cid] = z
        s = self._scratch
        np.subtract(dispatched_global, z, out=s)
        s *= self._rho
        self.duals[cid] += s
        return payload

    def partial_term(
        self, cid: int, payload: Optional[Mapping[str, np.ndarray]] = None
    ) -> np.ndarray:
        """``z_p − λ_p/ρ`` from the last-known replica (returns scratch memory)."""
        s = self._scratch
        np.divide(self.duals[cid], self._rho, out=s)
        np.subtract(self.primals[cid], s, out=s)
        return s

    def combine_partials(
        self,
        partials: "Sequence[Sequence[np.ndarray]]",
        participants: Sequence[int] = (),
    ) -> None:
        """Line 3 over exactly merged shard partials (normalised by the full
        population ``P`` — every client contributes its last-known state)."""
        acc = ExactPartial(self.vectorizer.dim, self.vectorizer.dtype)
        for components in partials:
            acc.merge(components)
        self.global_params = acc.round() / self.num_clients

        if self.config.adaptive_rho:
            self._rho *= self.config.rho_growth
        self.round += 1
        self.sync_model()

    def aggregate_global(self) -> None:
        """Line 3: recompute ``w = (1/P) Σ_p (z_p − λ_p/ρ)`` over all tracked clients.

        Clients whose uploads were not ingested since the last aggregation
        contribute their last-known primal/dual — the partial-participation
        form of the global update.
        """
        self.combine_partials([self.partial_sum().components])

    def finalize_round(self, payloads: Mapping[int, Mapping[str, np.ndarray]]) -> None:
        """Per-upload state was absorbed by :meth:`ingest`; only line 3 remains."""
        self.aggregate_global()

    def server_state(self) -> Dict[str, object]:
        state = super().server_state()
        state.update(duals=self.duals, primals=self.primals, rho=self._rho)
        return state

    def load_server_state(self, state: Mapping[str, object]) -> None:
        super().load_server_state(state)
        self.duals = {int(c): np.array(v, copy=True) for c, v in state["duals"].items()}  # type: ignore[union-attr]
        self.primals = {int(c): np.array(v, copy=True) for c, v in state["primals"].items()}  # type: ignore[union-attr]
        self._rho = float(state["rho"])  # type: ignore[arg-type]

    def consensus_residual(self) -> float:
        """L2 norm of the primal consensus residual ``max_p ||w − z_p||`` (diagnostic)."""
        return float(max(np.linalg.norm(self.global_params - z) for z in self.primals.values()))
