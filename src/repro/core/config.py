"""Configuration dataclasses for federated training runs.

A single :class:`FLConfig` captures everything the paper's demonstration
varies: the FL algorithm, the number of communication rounds ``T``, the number
of local steps ``L``, the batch size, optimiser hyper-parameters (learning
rate / momentum for FedAvg; penalty ρ and proximity ζ for the IADMM family),
and the differential-privacy settings (ε, clip norm, mechanism kind).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace
from typing import Optional

import numpy as np

__all__ = ["PrivacyConfig", "FLConfig"]


@dataclass(frozen=True)
class PrivacyConfig:
    """Differential-privacy settings for client updates.

    ``epsilon = math.inf`` disables the mechanism (the paper's ε = ∞ column).
    """

    epsilon: float = math.inf
    clip_norm: float = 1.0
    mechanism: str = "laplace"
    delta: float = 1e-5  # only used by the Gaussian mechanism

    def __post_init__(self) -> None:
        if self.epsilon <= 0:
            raise ValueError("epsilon must be positive (use math.inf to disable)")
        if self.clip_norm <= 0:
            raise ValueError("clip_norm must be positive")
        if self.mechanism not in ("laplace", "gaussian"):
            raise ValueError("mechanism must be 'laplace' or 'gaussian'")

    @property
    def enabled(self) -> bool:
        """True when updates are actually perturbed."""
        return math.isfinite(self.epsilon)


@dataclass(frozen=True)
class FLConfig:
    """Hyper-parameters of one federated training run.

    Defaults follow the paper's demonstration settings (Section IV-B):
    ``L = 10`` local updates, ``T = 50`` rounds, batches of at most 64 points,
    SGD with momentum for FedAvg.
    """

    algorithm: str = "iiadmm"
    num_rounds: int = 50
    local_steps: int = 10
    batch_size: int = 64

    # FedAvg client optimiser.
    lr: float = 0.01
    momentum: float = 0.9
    weighted_aggregation: bool = True

    # IADMM-family hyper-parameters (the paper notes these must be fine-tuned;
    # the official APPFL configs use large penalties, e.g. 500 for MNIST).
    rho: float = 10.0
    zeta: float = 10.0
    adaptive_rho: bool = False
    rho_growth: float = 1.0  # multiplicative ρ update per round when adaptive

    privacy: PrivacyConfig = field(default_factory=PrivacyConfig)
    seed: int = 0

    # Performance knobs (see the "Architecture & performance" notes in
    # repro.core.base / repro.core.runner).
    #
    # dtype: numeric precision of the whole pipeline — model parameters,
    #   gradients, batches, and payloads on the wire.  "float64" reproduces
    #   the paper's numerics exactly; "float32" halves memory traffic and
    #   communication volume for ~2x arithmetic throughput.
    # engine: "flat" backs every model parameter and gradient with views into
    #   one preallocated contiguous buffer (zero-copy hot path); "copy" keeps
    #   the original flatten/unflatten-per-batch behaviour (the seed
    #   implementation, used as a benchmark baseline).  "copy" requires
    #   float64.
    # parallel_clients: max worker threads for client-local updates per round
    #   (1 = serial, 0 = one thread per CPU core).  The heavy numpy kernels
    #   release the GIL, so threads scale on multi-core hosts, and results
    #   are bit-identical to a serial run.
    dtype: str = "float64"
    engine: str = "flat"
    parallel_clients: int = 1

    # execution_backend: how client-local updates are executed when
    #   parallel_clients allows more than one worker (see repro.mp).
    #   "thread" (default) runs updates on a GIL-bound thread pool — the
    #   heavy numpy kernels release the GIL, and results are bit-identical to
    #   serial.  "process" shards the population across spawn-context worker
    #   processes exchanging packets through multiprocessing.shared_memory —
    #   true multi-core scaling, still bitwise identical to serial (lossless
    #   codecs only; everything the workers hold must pickle).  "serial"
    #   forces in-line execution regardless of parallel_clients (useful as an
    #   equivalence baseline where only this knob flips).
    execution_backend: str = "thread"

    # client_batch: cohort size for batched multi-client execution (see
    #   repro.core.batched).  1 (default) runs every client through its own
    #   update() — bit-for-bit the pre-batching behaviour.  Larger values
    #   stack up to that many same-shaped clients' flat parameter vectors
    #   into a (B, dim) matrix and run their local updates as single batched
    #   GEMM/ufunc calls per step; clients without a batched kernel (CNN
    #   models, privacy enabled, lossy codecs, custom algorithms) fall back
    #   to the per-client path.  Batched results are bitwise identical to
    #   per-client execution at float64 on the linear/MLP path.
    client_batch: int = 1

    # Wire codec stack for every model exchange (see repro.comm.codecs): a
    # "|"-separated spec applied left-to-right at encode time, e.g.
    # "identity" (default: bit-for-bit the uncompressed behaviour), "fp16",
    # "int8", "topk:0.1", or composites like "delta|int8|topk:0.1" (client
    # updates encoded against the dispatched global model, quantized, then
    # sparsified).  DP clipping/noising always happens before encoding, so
    # the privacy guarantee is unaffected by the chosen stack.
    codec: str = "identity"

    # Fraction of clients sampled per round/dispatch by the event-driven
    # asyncfl subsystem (1.0 = full participation).  The synchronous
    # FederatedRunner always uses every client; repro.asyncfl's samplers and
    # build_async_federation consume this knob.
    client_fraction: float = 1.0

    # Hierarchical (multi-tier) federation — see repro.hier.
    #
    # topology: shard the population behind edge aggregators.  None (default)
    #   is the flat single-tier federation.  Spec strings: "edges:<E>"
    #   (seeded near-equal shards), "edges:<E>:by-label" (shards contiguous
    #   in label-sorted order, preserving label locality).  Explicit shard
    #   maps are passed directly to repro.hier.build_hier_federation.
    # edge_codec / root_codec: per-hop wire-codec stacks — client<->edge and
    #   edge<->root are compressed independently.  None inherits `codec`.
    #   With identity stacks on both hops a hierarchical run is bit-for-bit
    #   the flat one.
    topology: Optional[str] = None
    edge_codec: Optional[str] = None
    root_codec: Optional[str] = None

    def __post_init__(self) -> None:
        if self.num_rounds <= 0:
            raise ValueError("num_rounds must be positive")
        if self.local_steps <= 0:
            raise ValueError("local_steps must be positive")
        if self.batch_size <= 0:
            raise ValueError("batch_size must be positive")
        if self.lr <= 0:
            raise ValueError("lr must be positive")
        if not 0.0 <= self.momentum < 1.0:
            raise ValueError("momentum must be in [0, 1)")
        if self.rho <= 0:
            raise ValueError("rho must be positive")
        if self.zeta < 0:
            raise ValueError("zeta must be non-negative")
        if self.rho_growth <= 0:
            raise ValueError("rho_growth must be positive")
        if not self.algorithm:
            raise ValueError("algorithm name must be non-empty")
        if self.dtype not in ("float32", "float64"):
            raise ValueError("dtype must be 'float32' or 'float64'")
        if self.engine not in ("flat", "copy"):
            raise ValueError("engine must be 'flat' or 'copy'")
        if self.engine == "copy" and self.dtype != "float64":
            raise ValueError("the legacy 'copy' engine only supports float64")
        if self.parallel_clients < 0:
            raise ValueError("parallel_clients must be >= 0 (0 = one thread per core)")
        if self.execution_backend not in ("serial", "thread", "process"):
            raise ValueError(
                "execution_backend must be 'serial', 'thread', or 'process'"
            )
        if self.client_batch < 1:
            raise ValueError("client_batch must be >= 1 (1 = per-client execution)")
        # Validate the codec spec eagerly so a typo fails at config time, not
        # mid-run (lazy import keeps repro.core importable standalone).
        from ..comm.codecs import parse_codec

        parse_codec(self.codec)
        for field_name in ("edge_codec", "root_codec"):
            spec = getattr(self, field_name)
            if spec is None:
                continue
            try:
                parse_codec(spec)
            except ValueError as exc:
                raise ValueError(f"invalid {field_name} spec {spec!r}: {exc}") from None
        if self.topology is not None:
            from ..hier.topology import parse_topology

            parse_topology(self.topology)
        if not 0.0 < self.client_fraction <= 1.0:
            raise ValueError("client_fraction must be in (0, 1]")
        # Note: the algorithm name is resolved against the plug-and-play
        # registry at federation-build time, so user-registered algorithms are
        # accepted here without modification.

    @property
    def np_dtype(self) -> np.dtype:
        """The configured precision as a numpy dtype."""
        return np.dtype(self.dtype)

    def with_privacy(self, epsilon: float, **kwargs) -> "FLConfig":
        """Return a copy of this config with a different privacy budget."""
        return replace(self, privacy=replace(self.privacy, epsilon=epsilon, **kwargs))

    def with_algorithm(self, algorithm: str) -> "FLConfig":
        """Return a copy of this config running a different algorithm."""
        return replace(self, algorithm=algorithm)
