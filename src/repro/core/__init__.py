"""Core federated-learning framework (servers, clients, algorithms, runners)."""

from .base import BaseClient, BaseServer, ModelVectorizer
from .config import FLConfig, PrivacyConfig
from .exchange import PacketExchange
from .fedavg import FedAvgClient, FedAvgServer
from .iceadmm import ICEADMMClient, ICEADMMServer
from .iiadmm import IIADMMClient, IIADMMServer
from .metrics import Evaluator, evaluate
from .models import MLP, LogisticRegression, PaperCNN, build_model
from .registry import available_algorithms, get_algorithm, register_algorithm
from .runner import FederatedRunner, RoundResult, TrainingHistory, build_endpoints, build_federation

__all__ = [
    "FLConfig",
    "PrivacyConfig",
    "BaseServer",
    "BaseClient",
    "ModelVectorizer",
    "PacketExchange",
    "FedAvgServer",
    "FedAvgClient",
    "ICEADMMServer",
    "ICEADMMClient",
    "IIADMMServer",
    "IIADMMClient",
    "PaperCNN",
    "MLP",
    "LogisticRegression",
    "build_model",
    "evaluate",
    "Evaluator",
    "register_algorithm",
    "get_algorithm",
    "available_algorithms",
    "FederatedRunner",
    "RoundResult",
    "TrainingHistory",
    "build_endpoints",
    "build_federation",
]
