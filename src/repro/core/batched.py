"""Batched multi-client execution: run a cohort of clients as stacked kernels.

BENCH_hotpath shows ``local_update`` dominating the round, and at 10k–100k
virtual clients the models are tiny enough that per-client numpy dispatch
overhead swamps the arithmetic.  This module stacks *B* same-shaped clients'
flat parameter vectors into a ``(B, dim)`` matrix and runs their entire local
update — forward, backward, and the algorithm's fused parameter/dual steps —
as single batched GEMM/ufunc calls per mini-batch step, via the kernels in
:mod:`repro.nn.batched` and the stacked data movement of
:class:`repro.data.CohortLoader`.

Equivalence contract
--------------------
A batched cohort is **bitwise identical** to running each member's
``update()`` at float64 on the linear/MLP path (documented tolerance at
float32; see ``tests/test_batched.py``):

* the kernels replay the exact per-client op sequence (same GEMM shapes per
  lane, same reduction order within a client — see
  :mod:`repro.nn.batched`), and the algorithm loops below replay the exact
  fused in-place updates of :mod:`repro.core.fedavg` / ``iiadmm`` /
  ``iceadmm`` on stacked rows (elementwise, so per-row identical);
* each lane's data order comes from that client's own RNG
  (:meth:`~repro.data.CohortLoader.epoch`), so client state — round counter,
  generator state, ADMM duals/primals, the model's parameter buffer — ends
  the round bit-identical to per-client execution, which keeps checkpoints,
  store spills, and mid-run fallback between the two paths interchangeable;
* per-client uploads are scattered back as individual payload dicts, so the
  server-side fold (``ExactPartial``) sees exactly the per-client terms it
  would have seen — aggregation stays bit-stable.

Eligibility & fallback
----------------------
Only exact instances of the three built-in clients (``FedAvgClient``,
``IIADMMClient``, ``ICEADMMClient``) with a compilable model (``MLP`` /
``LogisticRegression`` — a pure Linear/ReLU chain), the flat engine, privacy
disabled, and a lossless wire qualify; everything else (CNN models,
DP-enabled runs, lossy codecs, user subclasses) falls back to the per-client
path, as do leftover singleton groups.  The gate lives in the runners
(:meth:`repro.core.runner.FederatedRunner._update_clients` and
:meth:`repro.hier.edge.EdgeAggregator._update_clients`), keyed on
``FLConfig.client_batch``; ``client_batch=1`` never enters this module.
"""

from __future__ import annotations

import time
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from .. import nn
from ..data.dataloader import CohortLoader
from ..nn.batched import batched_step_gradient
from ..nn.functional import _pool
from .base import DUAL_KEY, GLOBAL_KEY, PRIMAL_KEY, BaseClient
from .fedavg import FedAvgClient
from .iceadmm import ICEADMMClient
from .iiadmm import IIADMMClient
from .models import MLP, LogisticRegression

__all__ = [
    "compile_model_spec",
    "supports_batched",
    "run_batched_updates",
    "count_client_steps",
]

#: Client classes with a batched kernel.  Exact types only: a subclass may
#: override update(), and silently batching it would bypass the override.
_BATCHABLE = (FedAvgClient, IIADMMClient, ICEADMMClient)


#: Memoized spec compilations.  Every client built by the same ``model_fn``
#: shares one architecture and one flat layout, so the (module-tree walking)
#: compilation runs once per architecture, not once per client per round —
#: the structural key below pins the exact model type and the full
#: name → (shape, offset) layout, which together determine the spec.
_spec_cache: Dict[Tuple, Optional[Tuple]] = {}


def compile_model_spec(client: BaseClient) -> Optional[Tuple]:
    """Compile a client's model into a layer spec for the batched kernels.

    Returns a tuple of ``("linear", weight_offset, out_features, in_features,
    bias_offset)`` / ``("relu",)`` ops — offsets into the client's flat
    parameter vector — or ``None`` when the model has no batched kernel
    (anything but an exact ``MLP``/``LogisticRegression`` built from
    Linear-with-bias and ReLU modules).
    """
    model = client.model
    vec = client.vectorizer
    if vec.mode != "flat":
        return None
    cls = type(model)
    if cls is not MLP and cls is not LogisticRegression:
        return None
    # layout values are (shape_tuple, offset) — hashable as stored.
    cache_key = (cls.__name__, tuple(vec.layout.items()))
    if cache_key in _spec_cache:
        return _spec_cache[cache_key]
    spec = _compile_model_spec(model, vec)
    _spec_cache[cache_key] = spec
    return spec


def _compile_model_spec(model, vec) -> Optional[Tuple]:
    if type(model) is MLP:
        seq = model.net
        if type(seq) is not nn.Sequential:
            return None
        modules = [seq[i] for i in range(len(seq))]
    elif type(model) is LogisticRegression:
        modules = [model.linear]
    else:
        return None
    name_by_param = {id(p): name for name, p in model.named_parameters()}
    spec: List[Tuple] = []
    for mod in modules:
        if type(mod) is nn.Linear:
            if mod.bias is None:
                return None
            wname = name_by_param.get(id(mod.weight))
            bname = name_by_param.get(id(mod.bias))
            if wname is None or bname is None:
                return None
            wshape, woff = vec.layout[wname]
            _bshape, boff = vec.layout[bname]
            out_f, in_f = int(wshape[0]), int(wshape[1])
            spec.append(("linear", int(woff), out_f, in_f, int(boff)))
        elif type(mod) is nn.ReLU:
            spec.append(("relu",))
        else:
            return None
    if not spec or spec[-1][0] != "linear":
        return None
    return tuple(spec)


def supports_batched(client: BaseClient) -> bool:
    """Cheap structural gate (model compilability is checked separately)."""
    return (
        type(client) in _BATCHABLE
        and client.vectorizer.mode == "flat"
        and not client.config.privacy.enabled
    )


def count_client_steps(client: BaseClient) -> int:
    """Optimizer steps one ``update()`` call of this client performs.

    The unit of the throughput metric (``client_steps_per_sec``): ICEADMM
    takes ``local_steps`` full-gradient steps; the mini-batch algorithms take
    ``local_steps`` epochs of one step per batch.  Depends only on config and
    loader geometry, so it can be counted on either execution path.
    """
    cfg = client.config
    if isinstance(client, ICEADMMClient):
        return int(cfg.local_steps)
    loader = getattr(client, "loader", None)
    batches = max(1, len(loader)) if loader is not None else 1
    return int(cfg.local_steps) * batches


#: Per-FLConfig slice of the cohort key, memoized by object identity — every
#: client of a runner shares one config instance, so this tuple is built once
#: per population rather than once per client per round.  Each entry pins the
#: config object itself so its id() can never be recycled onto a different
#: config (configs are tiny and few; the pin is bounded by distinct configs).
_config_key_cache: Dict[int, Tuple] = {}


def _config_key(cfg) -> Tuple:
    entry = _config_key_cache.get(id(cfg))
    if entry is None:
        entry = (
            cfg,
            (
                cfg.local_steps,
                cfg.batch_size,
                cfg.lr,
                cfg.momentum,
                cfg.zeta,
                cfg.adaptive_rho,
                cfg.rho_growth,
                cfg.dtype,
            ),
        )
        _config_key_cache[id(cfg)] = entry
    return entry[1]


def _cohort_key(client: BaseClient, spec: Tuple) -> Tuple:
    """Clients sharing this key step through identical batched shapes/scalars."""
    ld = client.loader
    return (
        type(client).__name__,
        spec,
        ld._inputs.shape,
        ld._inputs.dtype.str,
        ld._labels.dtype.str,
        int(ld.batch_size),
        float(getattr(client, "_rho", 0.0)),
        _config_key(client.config),
    )


def _same_cohort(client: BaseClient, rep: BaseClient) -> bool:
    """Fast equivalent of ``_cohort_key(client) == _cohort_key(rep)`` for an
    already-admitted representative: direct attribute comparisons, no tuple
    building or hashing.  Strictly implies key equality *and* eligibility —
    same exact client type, same config object (hence same scalars/privacy),
    same model class and flat layout (hence same compiled spec), same loader
    geometry, same rho.  A miss only costs falling back to the keyed path.
    """
    if type(client) is not type(rep) or client.config is not rep.config:
        return False
    if getattr(client, "_rho", 0.0) != getattr(rep, "_rho", 0.0):
        return False
    cl, rl = client.loader, rep.loader
    if (
        cl._inputs.shape != rl._inputs.shape
        or cl._inputs.dtype != rl._inputs.dtype
        or cl._labels.dtype != rl._labels.dtype
        or cl.batch_size != rl.batch_size
    ):
        return False
    if type(client.model) is not type(rep.model):
        return False
    cv, rv = client.vectorizer, rep.vectorizer
    return cv.mode == rv.mode and cv.layout == rv.layout


# ----------------------------------------------------------- algorithm loops
def _fedavg_cohort(clients, w, Z, G, S, spec, loader) -> Dict[int, Dict[str, np.ndarray]]:
    """Stacked FedAvg: L epochs of mini-batch SGD with momentum per lane."""
    cfg = clients[0].config
    B, dim = Z.shape
    vkey = ("cohort_vel", B, dim, Z.dtype.str)
    V = _pool.acquire(vkey, (B, dim), Z.dtype)
    # Per-client resets its persistent momentum buffer at round start; a
    # pooled (possibly dirty) stack zeroed here is the same starting state.
    V.fill(0.0)
    for _ in range(cfg.local_steps):
        loader.epoch()
        for xb, yb in loader.batches():
            batched_step_gradient(spec, Z, G, xb, yb)
            if cfg.momentum:
                V *= cfg.momentum
                V += G
                step = V
            else:
                step = G
            np.multiply(step, cfg.lr, out=S)
            Z -= S
    _pool.release(vkey, V)

    # One bulk copy off the pooled stack; each upload payload is a row view
    # of this fresh (unpooled) array, so later pool reuse cannot touch it.
    Zc = Z.copy()
    uploads: Dict[int, Dict[str, np.ndarray]] = {}
    for b, client in enumerate(clients):
        np.copyto(client.vectorizer.flat_params, Zc[b])
        client.round += 1
        uploads[client.client_id] = {PRIMAL_KEY: Zc[b]}
    return uploads


def _iiadmm_cohort(clients, w, Z, G, S, spec, loader) -> Dict[int, Dict[str, np.ndarray]]:
    """Stacked IIADMM: batched inexact primal updates + local dual update."""
    cfg = clients[0].config
    rho, zeta = clients[0]._rho, cfg.zeta
    B, dim = Z.shape
    dkey = ("cohort_dual", B, dim, Z.dtype.str)
    D = _pool.acquire(dkey, (B, dim), Z.dtype)
    for b, client in enumerate(clients):
        np.copyto(D[b], client.dual)
    for _ in range(cfg.local_steps):
        loader.epoch()
        for xb, yb in loader.batches():
            batched_step_gradient(spec, Z, G, xb, yb)
            # Line 16 of Algorithm 1, fused exactly as the per-client loop:
            # z -= (g − λ_p − ρ(w − z)) / (ρ + ζ), with w broadcasting rows.
            np.subtract(w, Z, out=S)
            S *= rho
            G -= D
            G -= S
            G /= rho + zeta
            Z -= G

    # Bulk copy off the pooled stack: upload payloads are row views of this
    # fresh (unpooled) array — pool reuse cannot touch them, and client.primal
    # aliases the transmitted row exactly as the per-client path does.
    Zc = Z.copy()
    uploads: Dict[int, Dict[str, np.ndarray]] = {}
    for b, client in enumerate(clients):
        upload = Zc[b]
        client.primal = upload
        np.copyto(client.vectorizer.flat_params, Zc[b])
        uploads[client.client_id] = {PRIMAL_KEY: upload}
    # Line 21, stacked: λ_p += ρ (w − z_p) with the transmitted primals.
    np.subtract(w, Z, out=S)
    S *= rho
    D += S
    for b, client in enumerate(clients):
        np.copyto(client.dual, D[b])
        if cfg.adaptive_rho:
            client._rho *= cfg.rho_growth
        client.round += 1
    _pool.release(dkey, D)
    return uploads


def _iceadmm_cohort(clients, w, Z, G, S, spec, loader) -> Dict[int, Dict[str, np.ndarray]]:
    """Stacked ICEADMM: L full-gradient primal+dual updates per lane."""
    cfg = clients[0].config
    rho, zeta = clients[0]._rho, cfg.zeta
    B, dim = Z.shape
    dkey = ("cohort_dual", B, dim, Z.dtype.str)
    L = _pool.acquire(dkey, (B, dim), Z.dtype)
    for b, client in enumerate(clients):
        np.copyto(L[b], client.dual)
    xf, yf = loader.full_stack()  # full-batch gradients: no RNG consumed
    for _ in range(cfg.local_steps):
        batched_step_gradient(spec, Z, G, xf, yf)
        np.subtract(w, Z, out=S)
        S *= rho
        G -= L
        G -= S
        G /= rho + zeta
        Z -= G
        # λ += ρ(w − z) with the freshly updated z.
        np.subtract(w, Z, out=S)
        S *= rho
        L += S

    # Bulk copies off the pooled stacks: payloads are row views of fresh
    # (unpooled) arrays, safe against pool reuse; client.primal aliases the
    # transmitted row exactly as the per-client path does.
    Zc = Z.copy()
    Lc = L.copy()
    uploads: Dict[int, Dict[str, np.ndarray]] = {}
    for b, client in enumerate(clients):
        primal = Zc[b]
        client.primal = primal
        np.copyto(client.dual, Lc[b])
        np.copyto(client.vectorizer.flat_params, Zc[b])
        if cfg.adaptive_rho:
            client._rho *= cfg.rho_growth
        client.round += 1
        uploads[client.client_id] = {PRIMAL_KEY: primal, DUAL_KEY: Lc[b]}
    _pool.release(dkey, L)
    return uploads


def _run_cohort(
    cohort: Sequence[BaseClient],
    spec: Tuple,
    payloads: Mapping[int, Mapping[str, np.ndarray]],
) -> Dict[int, Dict[str, np.ndarray]]:
    """One cohort's full local update; returns per-client upload payloads."""
    first = cohort[0]
    # The runners broadcast one global snapshot per round, so every member's
    # decoded payload is bitwise the same vector — lane 0's serves the stack.
    w = np.asarray(payloads[first.client_id][GLOBAL_KEY])
    B, dim = len(cohort), first.vectorizer.dim
    dtype = first.vectorizer.dtype
    zkey = ("cohort_z", B, dim, dtype.str)
    gkey = ("cohort_g", B, dim, dtype.str)
    skey = ("cohort_s", B, dim, dtype.str)
    Z = _pool.acquire(zkey, (B, dim), dtype)
    G = _pool.acquire(gkey, (B, dim), dtype)
    S = _pool.acquire(skey, (B, dim), dtype)
    Z[:] = w  # local_params per lane: z ← w
    loader = CohortLoader([c.loader for c in cohort], pool=_pool)
    try:
        cls = type(first)
        if cls is FedAvgClient:
            return _fedavg_cohort(cohort, w, Z, G, S, spec, loader)
        if cls is IIADMMClient:
            return _iiadmm_cohort(cohort, w, Z, G, S, spec, loader)
        if cls is ICEADMMClient:
            return _iceadmm_cohort(cohort, w, Z, G, S, spec, loader)
        raise TypeError(f"no batched kernel for {cls.__name__}")
    finally:
        loader.close()
        _pool.release(zkey, Z)
        _pool.release(gkey, G)
        _pool.release(skey, S)


def run_batched_updates(
    clients: Sequence[BaseClient],
    payloads: Mapping[int, Mapping[str, np.ndarray]],
    client_batch: int,
    tracer=None,
) -> Optional[Tuple[Dict[int, Dict[str, np.ndarray]], List[BaseClient], int]]:
    """Execute eligible clients as cohorts of up to ``client_batch`` lanes.

    Groups the clients by :func:`_cohort_key` (identical batched shapes and
    scalars), runs each group in ``client_batch``-sized chunks through
    :func:`_run_cohort`, and returns ``(uploads, leftover_clients,
    client_steps)`` — ``leftover_clients`` are the members without a batched
    kernel plus singleton chunks, to be run through the per-client path by
    the caller.  Returns ``None`` when no cohort of at least two lanes forms
    (the caller then takes the per-client path for everyone, untouched).

    With a tracer armed, one ``cohort_step`` span is emitted per cohort
    carrying the cohort size, member ids, and optimizer-step count.
    """
    # Group membership is decided by _same_cohort against each group's
    # representative (the homogeneous-population fast path: one comparison,
    # no key tuples); only a miss pays for key construction and hashing.
    # Representatives are scanned linearly, so they are capped — populations
    # with many distinct shapes route through the keyed dict instead.
    groups: Dict[Tuple, List[BaseClient]] = {}
    specs: Dict[Tuple, Tuple] = {}
    reps: List[Tuple[BaseClient, List[BaseClient], Tuple]] = []
    leftover: List[BaseClient] = []
    for client in clients:
        matched = None
        for rep, rep_members, _rep_spec in reps:
            if _same_cohort(client, rep):
                matched = rep_members
                break
        if matched is not None:
            matched.append(client)
            continue
        spec = compile_model_spec(client) if supports_batched(client) else None
        if spec is None:
            leftover.append(client)
            continue
        key = _cohort_key(client, spec)
        members = groups.get(key)
        if members is None:
            members = groups[key] = []
            specs[key] = spec
            if len(reps) < 8:
                reps.append((client, members, spec))
        members.append(client)
    if not any(len(members) > 1 for members in groups.values()):
        return None

    uploads: Dict[int, Dict[str, np.ndarray]] = {}
    total_steps = 0
    for key, members in groups.items():
        if len(members) == 1:
            leftover.append(members[0])
            continue
        spec = specs[key]
        for start in range(0, len(members), client_batch):
            cohort = members[start : start + client_batch]
            if len(cohort) == 1:
                leftover.append(cohort[0])
                continue
            t0 = time.perf_counter()
            uploads.update(_run_cohort(cohort, spec, payloads))
            t1 = time.perf_counter()
            # Cohort members share a key, hence config and loader geometry:
            # one count serves every lane.
            steps = count_client_steps(cohort[0]) * len(cohort)
            total_steps += steps
            if tracer is not None:
                tracer.emit_span(
                    "cohort_step",
                    "client",
                    t0,
                    t1,
                    lane="cohort",
                    cohort=len(cohort),
                    clients=[client.client_id for client in cohort],
                    steps=steps,
                )
    return uploads, leftover, total_steps
