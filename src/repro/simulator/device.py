"""Compute-device models (GPUs/CPUs) for the cluster simulator.

The paper's heterogeneity discussion (Section IV-E) measures one FEMNIST
local update at 4.24 s on an NVIDIA A100 (Argonne Swing) versus 6.96 s on a
V100 (ORNL Summit), a factor of ~1.64.  :class:`DeviceSpec` captures relative
throughput so the simulator can reproduce the load imbalance between
heterogeneous clients without real GPUs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

__all__ = ["DeviceSpec", "A100", "V100", "CPU_DEVICE", "DEVICE_CATALOG", "LocalUpdateCostModel"]


@dataclass(frozen=True)
class DeviceSpec:
    """A compute device with a relative training throughput.

    ``throughput`` is in samples-per-second for one reference local step of the
    paper's CNN; absolute values are calibrated so that a full FEMNIST local
    update (L=10 epochs over an average client shard) lands near the paper's
    measured seconds.
    """

    name: str
    throughput: float  # samples / second for the reference CNN step
    memory_gb: float = 16.0

    def step_time(self, num_samples: int) -> float:
        """Seconds to process ``num_samples`` samples once (forward+backward)."""
        if num_samples < 0:
            raise ValueError("num_samples must be non-negative")
        return num_samples / self.throughput


# Calibration: the paper's FEMNIST local update (L=10 passes over an average
# shard of ~181 samples) takes 4.24 s on an A100 → ~427 samples/s, and 6.96 s
# on a V100 → ~260 samples/s (ratio 1.64).
A100 = DeviceSpec("A100", throughput=427.0, memory_gb=40.0)
V100 = DeviceSpec("V100", throughput=260.0, memory_gb=16.0)
CPU_DEVICE = DeviceSpec("CPU", throughput=25.0, memory_gb=64.0)

DEVICE_CATALOG: Dict[str, DeviceSpec] = {d.name: d for d in (A100, V100, CPU_DEVICE)}


@dataclass(frozen=True)
class LocalUpdateCostModel:
    """Simulated duration of one client local update on a device.

    A local update is ``local_steps`` passes over the client's ``num_samples``
    training samples plus a fixed per-round framework overhead (Python/launch
    costs, which the paper excludes from round 1 onwards by dropping the first
    round from its averages).
    """

    local_steps: int = 10
    per_round_overhead: float = 0.05

    def local_update_time(self, device: DeviceSpec, num_samples: int) -> float:
        """Seconds of compute for one local update of a client with ``num_samples``."""
        if self.local_steps <= 0:
            raise ValueError("local_steps must be positive")
        return self.per_round_overhead + self.local_steps * device.step_time(num_samples)
