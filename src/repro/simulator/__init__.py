"""Cluster/device simulator for scaling and heterogeneity experiments."""

from .cluster import Cluster, Node, summit_cluster, swing_cluster
from .device import A100, CPU_DEVICE, DEVICE_CATALOG, V100, DeviceSpec, LocalUpdateCostModel
from .scheduler import RankAssignment, assign_clients_to_ranks, rank_compute_times
from .trace import RoundEvent, SimulationTrace

__all__ = [
    "DeviceSpec",
    "A100",
    "V100",
    "CPU_DEVICE",
    "DEVICE_CATALOG",
    "LocalUpdateCostModel",
    "Node",
    "Cluster",
    "summit_cluster",
    "swing_cluster",
    "RankAssignment",
    "assign_clients_to_ranks",
    "rank_compute_times",
    "RoundEvent",
    "SimulationTrace",
]
