"""Event traces for simulated FL rounds.

The scaling and communication harnesses record one :class:`RoundEvent` per
(round, rank) with the simulated compute and communication seconds; the
aggregation helpers then produce the series that Figures 3a/3b plot (average
local-update time, speedup, and gather percentage).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional

import numpy as np

__all__ = ["RoundEvent", "SimulationTrace"]


@dataclass(frozen=True)
class RoundEvent:
    """Timing of one MPI rank in one communication round."""

    round: int
    rank: int
    compute_seconds: float
    comm_seconds: float

    @property
    def total_seconds(self) -> float:
        return self.compute_seconds + self.comm_seconds


@dataclass
class SimulationTrace:
    """Collection of per-round, per-rank timing events."""

    events: List[RoundEvent] = field(default_factory=list)

    def add(self, event: RoundEvent) -> None:
        self.events.append(event)

    def extend(self, events: Iterable[RoundEvent]) -> None:
        self.events.extend(events)

    def __len__(self) -> int:
        return len(self.events)

    def rounds(self) -> List[int]:
        return sorted({e.round for e in self.events})

    def _filtered(self, skip_rounds: Iterable[int]) -> List[RoundEvent]:
        skip = set(skip_rounds)
        return [e for e in self.events if e.round not in skip]

    def average_round_time(self, skip_rounds: Iterable[int] = ()) -> float:
        """Average per-round wall-clock time (max over ranks, averaged over rounds).

        The paper reports "the average time (computation + communication) for
        clients' local updates"; since ranks run in parallel, a round's
        duration is the slowest rank.
        """
        events = self._filtered(skip_rounds)
        if not events:
            return 0.0
        per_round: Dict[int, float] = {}
        for e in events:
            per_round[e.round] = max(per_round.get(e.round, 0.0), e.total_seconds)
        return float(np.mean(list(per_round.values())))

    def average_comm_percentage(self, skip_rounds: Iterable[int] = ()) -> float:
        """Average over ranks of ``100 * comm / (comm + compute)`` (Figure 3b)."""
        events = self._filtered(skip_rounds)
        if not events:
            return 0.0
        percentages = [
            100.0 * e.comm_seconds / e.total_seconds for e in events if e.total_seconds > 0
        ]
        return float(np.mean(percentages)) if percentages else 0.0

    def total_compute_seconds(self, skip_rounds: Iterable[int] = ()) -> float:
        return float(sum(e.compute_seconds for e in self._filtered(skip_rounds)))

    def total_comm_seconds(self, skip_rounds: Iterable[int] = ()) -> float:
        return float(sum(e.comm_seconds for e in self._filtered(skip_rounds)))
