"""Cluster topology model: nodes with GPUs, and named preset clusters.

Presets mirror the two machines used in the paper:

* **Summit** (ORNL): 6 NVIDIA V100 GPUs per node; the scaling study launches
  up to 203 client MPI processes plus one server process.
* **Swing** (Argonne): 8 NVIDIA A100 GPUs per node (6-node cluster).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

from .device import A100, V100, DeviceSpec

__all__ = ["Node", "Cluster", "summit_cluster", "swing_cluster"]


@dataclass(frozen=True)
class Node:
    """One compute node holding ``len(devices)`` accelerators."""

    name: str
    devices: tuple

    @property
    def num_devices(self) -> int:
        return len(self.devices)


@dataclass
class Cluster:
    """A collection of nodes, with helpers to enumerate devices."""

    name: str
    nodes: List[Node] = field(default_factory=list)

    @property
    def num_nodes(self) -> int:
        return len(self.nodes)

    @property
    def num_devices(self) -> int:
        return sum(n.num_devices for n in self.nodes)

    def devices(self) -> List[DeviceSpec]:
        """Flat list of all devices, node-major order."""
        return [d for node in self.nodes for d in node.devices]

    def device_for_rank(self, rank: int) -> DeviceSpec:
        """Device assigned to an MPI rank (round-robin across the flat device list)."""
        devs = self.devices()
        if not devs:
            raise ValueError("cluster has no devices")
        return devs[rank % len(devs)]


def summit_cluster(num_nodes: int = 34) -> Cluster:
    """ORNL Summit-like cluster: ``num_nodes`` nodes × 6 V100 GPUs."""
    if num_nodes <= 0:
        raise ValueError("num_nodes must be positive")
    nodes = [Node(f"summit-{i}", tuple([V100] * 6)) for i in range(num_nodes)]
    return Cluster("summit", nodes)


def swing_cluster(num_nodes: int = 6) -> Cluster:
    """Argonne Swing-like cluster: ``num_nodes`` nodes × 8 A100 GPUs."""
    if num_nodes <= 0:
        raise ValueError("num_nodes must be positive")
    nodes = [Node(f"swing-{i}", tuple([A100] * 8)) for i in range(num_nodes)]
    return Cluster("swing", nodes)
