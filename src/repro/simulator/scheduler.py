"""Client→rank scheduling for simulated MPI runs.

The paper's scaling experiment (Section IV-C) divides 203 FEMNIST clients
"equally" over a chosen number of MPI processes, each pinned to a dedicated
GPU, with one extra process reserved for the server.  This module reproduces
that assignment and computes per-rank compute time per round, which the
scaling harness combines with the MPI gather cost model.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

import numpy as np

from .cluster import Cluster
from .device import DeviceSpec, LocalUpdateCostModel

__all__ = ["RankAssignment", "assign_clients_to_ranks", "rank_compute_times"]


@dataclass(frozen=True)
class RankAssignment:
    """Assignment of client indices to one MPI rank running on one device."""

    rank: int
    device: DeviceSpec
    client_ids: tuple

    @property
    def num_clients(self) -> int:
        return len(self.client_ids)


def assign_clients_to_ranks(
    num_clients: int, num_ranks: int, cluster: Cluster
) -> List[RankAssignment]:
    """Distribute ``num_clients`` clients evenly over ``num_ranks`` MPI ranks.

    Clients are dealt out contiguously with near-equal counts (the first
    ``num_clients % num_ranks`` ranks get one extra), matching
    ``numpy.array_split`` semantics; each rank is pinned to a device of the
    cluster round-robin.
    """
    if num_ranks <= 0:
        raise ValueError("num_ranks must be positive")
    if num_clients < num_ranks:
        raise ValueError("cannot have fewer clients than ranks")
    splits = np.array_split(np.arange(num_clients), num_ranks)
    return [
        RankAssignment(rank=r, device=cluster.device_for_rank(r), client_ids=tuple(int(i) for i in idx))
        for r, idx in enumerate(splits)
    ]


def rank_compute_times(
    assignments: Sequence[RankAssignment],
    client_sample_counts: Sequence[int],
    cost_model: LocalUpdateCostModel,
) -> Dict[int, float]:
    """Per-rank compute seconds for one round.

    A rank processes its clients sequentially (they share one GPU), so its
    compute time is the sum of its clients' local-update times.
    """
    counts = np.asarray(client_sample_counts)
    out: Dict[int, float] = {}
    for a in assignments:
        total = 0.0
        for cid in a.client_ids:
            total += cost_model.local_update_time(a.device, int(counts[cid]))
        out[a.rank] = total
    return out
