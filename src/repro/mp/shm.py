"""Shared-memory arenas for zero-copy packet exchange between processes.

The process backend moves two kinds of payloads across the parent/worker
boundary every round:

* the **broadcast**: one read-only global parameter vector, written once by
  the parent and mapped by every worker;
* the **uploads**: each worker packs its shard's ``UpdatePacket`` arrays into
  its own arena slot, and the parent maps them back as read-only views.

Both directions use :class:`ShmArena` (the owning side — allocates, packs,
unlinks) and :class:`ShmAttachment` (the reading side — attaches by name,
returns numpy views).  Arrays are described by a *manifest*: a list of
``(key, dtype_str, shape, offset)`` tuples small enough to travel over the
control pipe, so the shared segment itself carries nothing but raw bytes.

Arenas are sized to the first round's payload and grow by recreation: when a
pack doesn't fit, the owner unlinks the old segment and creates a fresh one
under a generation-suffixed name (readers attach by the name in each round's
message, so stale attachments age out naturally).

CPython 3.11's ``multiprocessing.resource_tracker`` registers *attached*
segments for unlink-at-exit just like owned ones, which would destroy a
live arena when the first reader exits.  :func:`attach_shm` works around
this by suppressing the registration during the attach (the owner alone
registers and unlinks; a late ``unregister`` would instead race other
readers at the shared tracker and spam KeyError tracebacks).
"""

from __future__ import annotations

import inspect
import threading
from multiprocessing import resource_tracker, shared_memory
from typing import Dict, List, Sequence, Tuple

import numpy as np

__all__ = ["ShmArena", "ShmAttachment", "attach_shm", "live_arena_stats"]

# (key, dtype string, shape, byte offset) — one entry per packed array.
Manifest = List[Tuple[str, str, Tuple[int, ...], int]]

# Python 3.13+ exposes track=False, which skips the tracker registration at
# the source instead of needing the monkeypatch below.
_HAS_TRACK = "track" in inspect.signature(shared_memory.SharedMemory).parameters

# The monkeypatch swaps a process-global attribute; serialize attaches so two
# concurrent ones can't restore each other's no-op out of order.
_ATTACH_LOCK = threading.Lock()

# Process-local shm accounting for the obs layer (memory watermarks, worker
# telemetry).  Guarded by its own lock — attaches/grows are per-generation
# rare, so contention is negligible.
_STATS_LOCK = threading.Lock()
_LIVE_BYTES = 0
_LIVE_SEGMENTS = 0
_ATTACH_COUNT = 0


def _account_segment(nbytes: int, delta_segments: int) -> None:
    global _LIVE_BYTES, _LIVE_SEGMENTS
    with _STATS_LOCK:
        _LIVE_BYTES += nbytes
        _LIVE_SEGMENTS += delta_segments


def live_arena_stats() -> Dict[str, int]:
    """Bytes/segments owned by this process's arenas, plus attach count."""
    with _STATS_LOCK:
        return {
            "bytes": _LIVE_BYTES,
            "segments": _LIVE_SEGMENTS,
            "attaches": _ATTACH_COUNT,
        }


def attach_shm(name: str) -> shared_memory.SharedMemory:
    """Attach to an existing segment without adopting unlink responsibility."""
    global _ATTACH_COUNT
    with _STATS_LOCK:
        _ATTACH_COUNT += 1
    if _HAS_TRACK:
        return shared_memory.SharedMemory(name=name, track=False)
    # CPython 3.11: attaching registers the segment with the (shared) resource
    # tracker for unlink-at-exit.  Unregistering afterwards is not enough —
    # with several readers the duplicate UNREGISTER messages race at the
    # tracker.  Suppress the registration for the duration of the attach.
    # (Any other thread creating a SharedMemory inside this window would lose
    # its leak tracking, hence the lock; attaches are rare — once per arena
    # generation — so contention is negligible.)
    with _ATTACH_LOCK:
        original = resource_tracker.register
        resource_tracker.register = lambda *args, **kwargs: None  # type: ignore[assignment]
        try:
            return shared_memory.SharedMemory(name=name)
        finally:
            resource_tracker.register = original  # type: ignore[assignment]


class ShmArena:
    """Owner side of a shared segment: pack arrays in, unlink on close."""

    def __init__(self, prefix: str):
        self._prefix = prefix
        self._generation = 0
        self._shm: shared_memory.SharedMemory | None = None

    @property
    def name(self) -> str:
        if self._shm is None:
            raise RuntimeError("arena has no live segment; call pack() first")
        return self._shm.name

    @property
    def generation(self) -> int:
        """How many times this arena has (re)created its segment."""
        return self._generation

    def _ensure(self, nbytes: int) -> shared_memory.SharedMemory:
        if self._shm is not None and self._shm.size >= nbytes:
            return self._shm
        if self._shm is not None:
            _account_segment(-self._shm.size, -1)
            self._shm.close()
            self._shm.unlink()
        self._generation += 1
        self._shm = shared_memory.SharedMemory(
            create=True,
            size=max(1, nbytes),
            name=f"{self._prefix}_g{self._generation}",
        )
        _account_segment(self._shm.size, 1)
        return self._shm

    def pack(self, arrays: Sequence[Tuple[str, np.ndarray]]) -> Tuple[str, Manifest]:
        """Copy ``arrays`` into the segment; return ``(segment_name, manifest)``."""
        manifest: Manifest = []
        offset = 0
        prepared = []
        for key, arr in arrays:
            arr = np.ascontiguousarray(arr)
            manifest.append((key, str(arr.dtype), tuple(arr.shape), offset))
            prepared.append((offset, arr))
            offset += arr.nbytes
        shm = self._ensure(offset)
        for off, arr in prepared:
            dst = np.ndarray(arr.shape, dtype=arr.dtype, buffer=shm.buf, offset=off)
            dst[...] = arr
        return shm.name, manifest

    def close(self) -> None:
        if self._shm is not None:
            _account_segment(-self._shm.size, -1)
            try:
                self._shm.close()
                self._shm.unlink()
            except FileNotFoundError:
                pass
            self._shm = None


class ShmAttachment:
    """Reader side: attach by name (cached), return views or copies."""

    def __init__(self) -> None:
        self._segments: Dict[str, shared_memory.SharedMemory] = {}
        # Stale segments whose close() raised BufferError (a view was still
        # referenced).  Dropping the handle outright would leak the mmap and
        # fd for the rest of the run; instead we keep it here and retry on
        # every subsequent view()/close() until the views have died.
        self._deferred: List[shared_memory.SharedMemory] = []

    def _drain_deferred(self) -> None:
        still_pinned: List[shared_memory.SharedMemory] = []
        for shm in self._deferred:
            try:
                shm.close()
            except BufferError:
                still_pinned.append(shm)
            except Exception:
                pass
        self._deferred = still_pinned

    def view(self, name: str, manifest: Manifest, copy: bool = False) -> Dict[str, np.ndarray]:
        """Map a packed arena back to ``{key: array}``.

        With ``copy=False`` the arrays are read-only views into the shared
        segment — valid only until the owner repacks or unlinks it.  With
        ``copy=True`` each array is materialised fresh.
        """
        self._drain_deferred()
        shm = self._segments.get(name)
        if shm is None:
            # Another generation superseded old names; drop dead attachments.
            # (If old views are still referenced somewhere, close() raises
            # BufferError — park the handle for a later retry, the owner
            # unlinks the segment itself.)
            for stale in list(self._segments):
                if stale.rsplit("_g", 1)[0] == name.rsplit("_g", 1)[0]:
                    old = self._segments.pop(stale)
                    try:
                        old.close()
                    except BufferError:
                        self._deferred.append(old)
            shm = attach_shm(name)
            self._segments[name] = shm
        out: Dict[str, np.ndarray] = {}
        for key, dtype, shape, offset in manifest:
            arr = np.ndarray(shape, dtype=np.dtype(dtype), buffer=shm.buf, offset=offset)
            if copy:
                out[key] = np.array(arr, copy=True)
            else:
                arr.flags.writeable = False
                out[key] = arr
        return out

    def close(self) -> None:
        for shm in self._segments.values():
            try:
                shm.close()
            except BufferError:
                self._deferred.append(shm)
            except Exception:
                pass
        self._segments.clear()
        self._drain_deferred()
