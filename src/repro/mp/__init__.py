"""Process-based multi-core execution backend.

``repro.mp`` gives the runners true multi-core local updates: a
:class:`~repro.mp.pool.ProcessWorkerPool` of spawn-context child processes,
each owning a contiguous client shard, exchanging packets through
``multiprocessing.shared_memory`` arenas (one read-only broadcast segment
per round, per-worker upload slots).  The parent folds uploads through
:class:`~repro.core.partial.ExactPartial`, so a process run is bitwise
identical to the serial run — see :mod:`repro.mp.pool`.

Select it with ``FLConfig(execution_backend="process")``; ``"thread"``
(default) keeps the GIL-bound thread pool, ``"serial"`` forces in-line
execution regardless of ``parallel_clients``.

This module imports lazily: the runners only need
:func:`~repro.mp.workers.resolve_workers` at import time, so the pool
machinery (and its ``multiprocessing`` import) loads on first use.
"""

from __future__ import annotations

from .workers import resolve_workers

__all__ = ["resolve_workers", "ProcessWorkerPool", "payload_template"]

_LAZY = {"ProcessWorkerPool": "pool", "payload_template": "pool"}


def __getattr__(name: str):
    module = _LAZY.get(name)
    if module is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    from importlib import import_module

    return getattr(import_module(f".{module}", __name__), name)
