"""Parent side of the process execution backend: :class:`ProcessWorkerPool`.

The pool owns ``num_workers`` spawn-context child processes, each holding one
contiguous shard of the population (cut by
:func:`repro.hier.topology.contiguous_shards` — the same ``np.array_split``
blocking as edge sharding).  Per round, the parent packs the broadcast
payload **once** into a shared-memory arena, every worker maps it read-only,
runs its shard's local updates (per-client or as stacked cohorts, mirroring
the runners' ``client_batch`` gate), and writes upload arrays into its own
arena slot; the parent maps them back as zero-copy read-only views.

Because each client's ``update()`` is a deterministic function of its own
state and the (bitwise-shared) broadcast vector, and because the caller
folds uploads through :class:`~repro.core.partial.ExactPartial`, the
grouping into processes is invisible: a process run is bitwise identical to
the serial run.  The pool guarantees the state side of that contract:
workers hold the authoritative client state between rounds, and
:meth:`sync_parent` / :meth:`push_from_parent` move it across the boundary
bit-exactly (``client_state()``/``load_client_state`` for eager clients,
blob snapshots for store-backed populations) for checkpoints, inspection,
and shutdown.

Everything shipped at init must pickle: eager clients travel as
``(type, model, dataset, config, cid, client_state())`` tuples (the flat
engine re-homes parameters on reconstruction, so view aliasing survives the
trip), store populations as ``(factory, blobs)``.  Closure factories and
lambda ``model_fn``s don't pickle — :class:`repro.scale.virtual.ClientFactory`
and :class:`repro.core.models.SeededModelFn` are the picklable equivalents.
"""

from __future__ import annotations

import multiprocessing as mp
import os
import pickle
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from ..hier.topology import contiguous_shards
from ..obs.metrics import MetricsRegistry
from ..obs.profiler import current_profiler
from .shm import ShmArena, ShmAttachment

__all__ = ["ProcessWorkerPool", "payload_template"]

#: Monotone pool counter — keeps arena names unique when one process builds
#: several pools (runner + edges, or sequential runs).
_POOL_SEQ = 0


def _profile_requested() -> bool:
    """Should spawned workers capture local-update profiles?

    Read at pool-construction time from the context-local profiler: the
    workers inherit the opt-in (their folded stacks come back through the
    result channel), armed only when the profiler wants ``local_update``.
    """
    profiler = current_profiler()
    return profiler is not None and profiler.wants("local_update")


def payload_template(
    payloads: Mapping[int, Mapping[str, object]], ids: Sequence[int]
) -> Optional[Mapping[str, object]]:
    """The shared broadcast template behind per-client payload dicts.

    The runners dispatch one global snapshot per round, so every client's
    decoded payload is bitwise the same tree; the pool then broadcasts one
    copy through shared memory instead of ``len(ids)``.  Returns ``None``
    when the payloads differ (custom communicators could in principle
    per-client them) — the caller falls back to in-process execution.
    """
    template = payloads[ids[0]]
    for cid in ids[1:]:
        other = payloads[cid]
        if other.keys() != template.keys():
            return None
        for key, value in template.items():
            ov = other[key]
            if isinstance(value, np.ndarray) or isinstance(ov, np.ndarray):
                if not (
                    isinstance(value, np.ndarray)
                    and isinstance(ov, np.ndarray)
                    and value.dtype == ov.dtype
                    and value.shape == ov.shape
                    and np.array_equal(value, ov)
                ):
                    return None
            else:
                try:
                    differs = bool(value != ov)
                except (TypeError, ValueError):
                    # Containers holding arrays (a custom communicator could
                    # nest them) have no unambiguous equality — treat the
                    # payloads as non-template and let the caller fall back.
                    return None
                if differs:
                    return None
    return template


class ProcessWorkerPool:
    """A pool of spawn-context worker processes owning client shards.

    Build via :meth:`from_eager_clients` or :meth:`from_store`; drive with
    :meth:`run_round`; keep the parent authoritative with :meth:`sync_parent`
    (workers → parent) and :meth:`push_from_parent` (parent → workers);
    :meth:`close` tears everything down (arenas unlinked, children joined).
    """

    def __init__(self, mode: str, specs: List[Dict], shards, clients=None, store=None):
        global _POOL_SEQ
        _POOL_SEQ += 1
        self.mode = mode
        self.shards: Tuple[Tuple[int, ...], ...] = tuple(shards)
        self.num_workers = len(self.shards)
        #: Worker-shipped metrics deltas, merged in worker-index order each
        #: round — deterministic for a deterministic schedule.
        self.telemetry = MetricsRegistry()
        self._clients = clients  # eager: {cid: parent-side BaseClient}
        self._store = store  # store: the parent-side ClientStateStore
        self._prefix = f"rpmp{os.getpid()}x{_POOL_SEQ}"
        self._bcast = ShmArena(f"{self._prefix}b")
        self._attachment = ShmAttachment()
        self._ctx = mp.get_context("spawn")
        self._procs = []
        self._conns = []
        try:
            from .worker import worker_main

            for w, spec in enumerate(specs):
                spec["prefix"] = f"{self._prefix}w{w}"
                parent_conn, child_conn = self._ctx.Pipe(duplex=True)
                proc = self._ctx.Process(
                    target=worker_main, args=(child_conn, w), daemon=True,
                    name=f"repro-mp-{w}",
                )
                proc.start()
                child_conn.close()
                self._procs.append(proc)
                self._conns.append(parent_conn)
            for w, spec in enumerate(specs):
                try:
                    self._conns[w].send(("init", spec))
                except Exception as exc:
                    raise RuntimeError(
                        "could not ship worker init state to a spawned process — "
                        "everything the process backend ships must pickle "
                        "(use repro.scale.virtual.ClientFactory / "
                        "repro.core.models.SeededModelFn instead of closures "
                        f"or lambdas): {exc}"
                    ) from exc
            for w in range(len(specs)):
                self._expect(w, "ready")
        except BaseException:
            self.close()
            raise

    # ------------------------------------------------------------ construction
    @classmethod
    def from_eager_clients(cls, clients: Sequence, num_workers: int, client_batch: int = 1):
        """Shard materialised clients across ``num_workers`` processes."""
        by_id = {c.client_id: c for c in clients}
        shards = contiguous_shards([c.client_id for c in clients], num_workers)
        specs = [
            {
                "mode": "eager",
                "client_batch": int(client_batch),
                "profile": _profile_requested(),
                "clients": [
                    (
                        type(by_id[cid]),
                        by_id[cid].model,
                        by_id[cid].dataset,
                        by_id[cid].config,
                        cid,
                        by_id[cid].client_state(),
                    )
                    for cid in shard
                ],
            }
            for shard in shards
        ]
        return cls("eager", specs, shards, clients=by_id)

    @classmethod
    def from_store(cls, store, num_workers: int, client_batch: int = 1, ids=None):
        """Shard a virtual population: each worker builds its own
        :class:`~repro.scale.store.ClientStateStore` over the shared factory
        and waves through its shard at a ``live_cap`` share.  ``ids`` narrows
        the sharded population (an edge's store addresses global client ids
        but owns only its shard)."""
        try:
            pickle.dumps(store.factory)
        except Exception as exc:
            raise RuntimeError(
                "execution_backend='process' needs a picklable client factory; "
                "build the store with repro.scale.virtual builders (module-level "
                "ClientFactory + a picklable model_fn such as "
                f"repro.core.models.SeededModelFn), not a closure: {exc}"
            ) from exc
        if ids is None:
            ids = range(store.num_clients)
        shards = contiguous_shards(ids, num_workers)
        blobs = store.snapshot()["blobs"]
        live_share = max(1, store.live_cap // max(1, len(shards)))
        specs = [
            {
                "mode": "store",
                "client_batch": int(client_batch),
                "profile": _profile_requested(),
                "factory": store.factory,
                "num_clients": store.num_clients,
                "live_cap": live_share,
                "state_codec": getattr(store.pipeline, "spec", "identity"),
                "compress": store.compress,
                "config": store.config,
                "blobs": {cid: b for cid, b in blobs.items() if cid in set(shard)},
            }
            for shard in shards
        ]
        return cls("store", specs, shards, store=store)

    # --------------------------------------------------------------- messaging
    def _expect(self, w: int, op: str):
        try:
            reply = self._conns[w].recv()
        except EOFError:
            raise RuntimeError(
                f"process worker {w} died (pipe closed); check stderr for the "
                f"child traceback"
            ) from None
        if reply[0] == "err":
            raise RuntimeError(f"process worker {w} failed:\n{reply[1]}")
        if reply[0] != op:
            raise RuntimeError(f"process worker {w}: expected {op!r}, got {reply[0]!r}")
        return reply[1:]

    # ---------------------------------------------------------------- rounds
    def run_round(self, ids: Sequence[int], template: Mapping[str, object]):
        """Run one round's local updates for ``ids`` across the workers.

        ``template`` is the shared broadcast payload (see
        :func:`payload_template`); each worker hands every client its own
        fresh copy.  Returns ``(uploads, steps, timings)`` keyed by client
        id — upload arrays are read-only shared-memory views valid until the
        next ``run_round``/``close``; ``timings`` holds worker-side
        ``(t0, t1)`` perf-counter pairs for per-client-path updates (cohort
        members have no per-client span, as on the threaded path they share
        one ``cohort_step``).
        """
        arrays = [(k, v) for k, v in template.items() if isinstance(v, np.ndarray)]
        scalars = {k: v for k, v in template.items() if not isinstance(v, np.ndarray)}
        name, manifest = self._bcast.pack(arrays)

        members = [set(shard) for shard in self.shards]
        sent: List[int] = []
        for w in range(self.num_workers):
            worker_ids = [cid for cid in ids if cid in members[w]]
            if worker_ids:
                self._conns[w].send(("round", worker_ids, name, manifest, scalars))
                sent.append(w)
        uploads: Dict[int, Dict[str, object]] = {}
        steps: Dict[int, int] = {}
        timings: Dict[int, Tuple[float, float]] = {}
        for w in sent:
            up_name, up_manifest, up_scalars, w_steps, w_timings, w_telemetry = (
                self._expect(w, "done")
            )
            self._absorb_telemetry(w, w_telemetry)
            views = self._attachment.view(up_name, up_manifest, copy=False)
            for flat_key, arr in views.items():
                cid_str, key = flat_key.split("|", 1)
                uploads.setdefault(int(cid_str), {})[key] = arr
            for cid, extra in up_scalars.items():
                uploads.setdefault(cid, {}).update(extra)
            steps.update(w_steps)
            timings.update(w_timings)
        missing = [cid for cid in ids if cid not in uploads]
        if missing:
            raise RuntimeError(f"process workers returned no upload for clients {missing}")
        return uploads, steps, timings

    def _absorb_telemetry(self, w: int, telemetry: Optional[Mapping]) -> None:
        """Fold one worker's round delta into the pool registry/profiler.

        Called in worker-index order from :meth:`run_round`; registry
        merging is order-deterministic, so two identical runs produce the
        identical merged telemetry.
        """
        if not telemetry:
            return
        state = telemetry.get("state")
        if state:
            self.telemetry.merge(state)
        folded = telemetry.get("profile")
        if folded:
            profiler = current_profiler()
            if profiler is not None:
                profiler.add_folded("local_update", folded, root=f"worker:{w}")

    # ----------------------------------------------------------- state traffic
    def sync_parent(self) -> None:
        """Pull authoritative state out of the workers into the parent-side
        clients/store (checkpoint capture, shutdown, inspection)."""
        for conn in self._conns:
            conn.send(("pull",))
        if self.mode == "eager":
            for w in range(self.num_workers):
                (states,) = self._expect(w, "states")
                for cid, (state, flat) in states.items():
                    client = self._clients[cid]
                    client.load_client_state(state)
                    if flat is not None:
                        target = getattr(client.vectorizer, "flat_params", None)
                        if target is not None:
                            np.copyto(target, flat)
        else:
            merged = self._store.snapshot()["blobs"]
            for w in range(self.num_workers):
                (blobs,) = self._expect(w, "snapshot")
                merged.update(blobs)
            self._store.restore({"blobs": merged})

    def push_from_parent(self) -> None:
        """Push parent-side state down into the workers (checkpoint restore)."""
        if self.mode == "eager":
            for w, shard in enumerate(self.shards):
                self._conns[w].send(
                    ("push", {cid: self._clients[cid].client_state() for cid in shard})
                )
        else:
            blobs = self._store.snapshot()["blobs"]
            for w, shard in enumerate(self.shards):
                shard_set = set(shard)
                self._conns[w].send(
                    ("push", {cid: b for cid, b in blobs.items() if cid in shard_set})
                )
        for w in range(self.num_workers):
            self._expect(w, "ok")

    # ----------------------------------------------------------------- teardown
    def close(self) -> None:
        """Stop the workers, join them, and release every shared segment."""
        for conn in self._conns:
            try:
                conn.send(("stop",))
            except Exception:
                pass
        for proc in self._procs:
            proc.join(timeout=5.0)
            if proc.is_alive():
                proc.terminate()
                proc.join(timeout=5.0)
        for conn in self._conns:
            try:
                conn.close()
            except Exception:
                pass
        self._attachment.close()
        self._bcast.close()
        self._procs = []
        self._conns = []
