"""Child-process entry point for :class:`~repro.mp.pool.ProcessWorkerPool`.

Each worker owns one contiguous client shard and speaks a small message
protocol over a duplex pipe:

========================  =====================================================
parent → worker           worker → parent
========================  =====================================================
``("init", spec)``        ``("ready",)``
``("round", ids, name,    ``("done", arena_name, manifest, scalars, steps,
mainfest)``               timings, telemetry)``
``("pull",)``             ``("states", {cid: state})`` / ``("snapshot", blobs)``
``("push", payload)``     ``("ok",)``
``("stop",)``             *(exits)*
========================  =====================================================

``telemetry`` is this round's worker-side metrics delta — a
``MetricsRegistry.dump_state()`` labelled ``worker=<id>`` (CPU seconds,
peak RSS, shm attach/arena-generation counts, kernel-call counters, a
``local_update`` duration histogram) plus, when the spec opted in with
``profile=True``, the round's collapsed-stack ``cProfile`` capture of the
local-update section.  The parent merges deltas in worker-index order
(:class:`~repro.mp.pool.ProcessWorkerPool` holds the merged registry), so
the combined telemetry is deterministic for a deterministic schedule.

Any handler failure replies ``("err", traceback_str)`` and keeps the loop
alive so the parent can decide what to do.

The worker mirrors the runners' execution gate exactly: with
``client_batch > 1`` eligible clients run as stacked cohorts through
:func:`repro.core.batched.run_batched_updates` (untraced — cohort spans are
a documented loss of the process backend), and everything else runs the
per-client path under :func:`repro.obs.timed_call` so the parent can emit
``local_update`` spans with honest worker-side timestamps.

Broadcast payloads arrive as read-only views of the parent's shared segment;
each client receives its own fresh copy, matching the per-client isolation
:meth:`~repro.comm.exchange.PacketExchange.open_dispatch` provides on the
serial path.  Uploads go back through the worker-owned arena — arrays are
packed under ``"{cid}|{key}"`` keys (no packet key contains ``"|"``), and
non-array payload entries travel over the pipe in ``scalars``.
"""

from __future__ import annotations

import copy
import cProfile
import time
import traceback
from typing import Dict, List, Tuple

import numpy as np

from ..core.batched import count_client_steps, run_batched_updates
from ..nn.functional import kernel_call_counts
from ..obs import timed_call
from ..obs.metrics import MetricsRegistry
from ..obs.profiler import collapse_profile
from .shm import ShmArena, ShmAttachment, live_arena_stats

__all__ = ["worker_main"]


def _peak_rss_bytes() -> int:
    try:
        import resource

        usage = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
        # Linux reports KiB, macOS bytes.
        return int(usage) * (1 if usage > 1 << 32 else 1024)
    except Exception:  # pragma: no cover - resource is POSIX-only
        return 0


class _WorkerState:
    """Everything one worker holds between messages."""

    def __init__(self, spec: Dict[str, object], worker_id: int = 0):
        self.mode = spec["mode"]
        self.worker_id = int(worker_id)
        self.client_batch = int(spec.get("client_batch", 1))
        self.profile = bool(spec.get("profile", False))
        self.arena = ShmArena(str(spec["prefix"]))
        self.attachment = ShmAttachment()
        if self.mode == "eager":
            self.clients = {}
            for cls, model, dataset, config, cid, state in spec["clients"]:
                client = cls(cid, model, dataset, config)
                client.load_client_state(state)
                self.clients[cid] = client
        elif self.mode == "store":
            from ..scale.store import ClientStateStore

            self.store = ClientStateStore(
                spec["factory"],
                num_clients=int(spec["num_clients"]),
                live_cap=int(spec["live_cap"]),
                state_codec=str(spec["state_codec"]),
                compress=spec["compress"],
                config=spec["config"],
            )
            blobs = spec.get("blobs") or {}
            if blobs:
                self.store.restore({"blobs": blobs})
        else:  # pragma: no cover - guarded parent-side
            raise ValueError(f"unknown worker mode {self.mode!r}")

    # ------------------------------------------------------------- execution
    def _run_clients(self, clients, received, uploads, steps, timings):
        """The runners' shared gate, replayed worker-side."""
        remaining = list(clients)
        if self.client_batch > 1 and len(remaining) > 1:
            batched = run_batched_updates(
                remaining, received, self.client_batch, tracer=None
            )
            if batched is not None:
                cohort_uploads, leftover, _total = batched
                uploads.update(cohort_uploads)
                remaining = leftover
        for client in remaining:
            upload, t0, t1 = timed_call(client.update, received[client.client_id])
            uploads[client.client_id] = upload
            timings[client.client_id] = (t0, t1)
        for client in clients:
            steps[client.client_id] = count_client_steps(client)

    def run_round(self, ids, bcast_name, bcast_manifest, bcast_scalars):
        cpu0 = time.process_time()
        kernels0 = kernel_call_counts()
        shm0 = live_arena_stats()
        generation0 = self.arena.generation
        template = self.attachment.view(bcast_name, bcast_manifest, copy=False)
        # Fresh per-client copies, matching open_dispatch's per-client
        # isolation on the serial path.
        received = {
            cid: {
                **{k: np.array(v, copy=True) for k, v in template.items()},
                **copy.deepcopy(bcast_scalars),
            }
            for cid in ids
        }
        uploads: Dict[int, Dict[str, object]] = {}
        steps: Dict[int, int] = {}
        timings: Dict[int, Tuple[float, float]] = {}
        profile = cProfile.Profile() if self.profile else None
        if profile is not None:
            profile.enable()
        try:
            if self.mode == "eager":
                self._run_clients([self.clients[cid] for cid in ids], received,
                                  uploads, steps, timings)
            else:
                # Wave through the shard at this worker's live_cap share,
                # exactly as the parent's virtual round would through the
                # population.
                cap = self.store.live_cap
                for start in range(0, len(ids), cap):
                    wave = list(ids[start : start + cap])
                    clients = [self.store.checkout(cid) for cid in wave]
                    try:
                        self._run_clients(clients, received, uploads, steps, timings)
                    finally:
                        for cid in wave:
                            self.store.release(cid)
        finally:
            if profile is not None:
                profile.disable()

        arrays: List[Tuple[str, np.ndarray]] = []
        scalars: Dict[int, Dict[str, object]] = {}
        for cid in ids:
            for key, value in uploads[cid].items():
                if isinstance(value, np.ndarray):
                    arrays.append((f"{cid}|{key}", value))
                else:
                    scalars.setdefault(cid, {})[key] = value
        name, manifest = self.arena.pack(arrays)
        telemetry = self._round_telemetry(
            ids, steps, timings, cpu0, kernels0, shm0, generation0, profile
        )
        return name, manifest, scalars, steps, timings, telemetry

    def _round_telemetry(
        self, ids, steps, timings, cpu0, kernels0, shm0, generation0, profile
    ) -> Dict[str, object]:
        """This round's worker-side metrics delta (see module docstring)."""
        reg = MetricsRegistry()
        label = {"worker": self.worker_id}
        reg.counter("worker_cpu_seconds", **label).inc(time.process_time() - cpu0)
        reg.counter("worker_rounds", **label).inc(1)
        reg.counter("worker_client_updates", **label).inc(len(ids))
        reg.counter("worker_client_steps", **label).inc(sum(steps.values()))
        shm1 = live_arena_stats()
        reg.counter("worker_shm_attaches", **label).inc(
            shm1["attaches"] - shm0["attaches"]
        )
        reg.counter("worker_arena_generations", **label).inc(
            self.arena.generation - generation0
        )
        reg.gauge("worker_shm_bytes", **label).set(float(shm1["bytes"]))
        reg.gauge("worker_peak_rss_bytes", **label).set(float(_peak_rss_bytes()))
        for kernel, count in sorted(kernel_call_counts().items()):
            delta = count - kernels0.get(kernel, 0)
            if delta:
                reg.counter("worker_kernel_calls", kernel=kernel, **label).inc(delta)
        hist = reg.histogram("worker_local_update_seconds", **label)
        for t0, t1 in timings.values():
            hist.observe(t1 - t0)
        folded = collapse_profile(profile) if profile is not None else None
        return {"state": reg.dump_state(), "profile": folded}

    # ------------------------------------------------------- state transfer
    def pull(self):
        if self.mode == "eager":
            # client_state() deliberately excludes model parameters (dispatch
            # overwrites them each round) — ship the post-round flat vector
            # alongside so the parent-side clients mirror a serial run exactly.
            states = {}
            for cid, c in self.clients.items():
                flat = getattr(c.vectorizer, "flat_params", None)
                states[cid] = (
                    c.client_state(),
                    None if flat is None else np.array(flat, copy=True),
                )
            return "states", states
        return "snapshot", self.store.snapshot()["blobs"]

    def push(self, payload) -> None:
        if self.mode == "eager":
            for cid, state in payload.items():
                self.clients[cid].load_client_state(state)
        else:
            self.store.restore({"blobs": payload})

    def close(self) -> None:
        self.attachment.close()
        self.arena.close()


def worker_main(conn, worker_id: int) -> None:
    """Blocking message loop; runs until ``("stop",)`` or EOF."""
    state: _WorkerState | None = None
    try:
        while True:
            try:
                msg = conn.recv()
            except EOFError:
                break
            op = msg[0]
            try:
                if op == "init":
                    state = _WorkerState(msg[1], worker_id)
                    conn.send(("ready",))
                elif op == "round":
                    assert state is not None
                    conn.send(
                        ("done",) + state.run_round(msg[1], msg[2], msg[3], msg[4])
                    )
                elif op == "pull":
                    assert state is not None
                    conn.send(state.pull())
                elif op == "push":
                    assert state is not None
                    state.push(msg[1])
                    conn.send(("ok",))
                elif op == "stop":
                    conn.send(("ok",))
                    break
                else:
                    conn.send(("err", f"unknown op {op!r}"))
            except Exception:
                conn.send(("err", traceback.format_exc()))
    finally:
        if state is not None:
            state.close()
        conn.close()
