"""Worker-count resolution shared by every runner.

``FLConfig.parallel_clients`` (and each runner's ``max_workers`` override)
uses one convention everywhere: ``1`` is serial, ``N > 1`` caps the worker
pool at ``N``, and ``0`` means one worker per CPU core.  The resolution used
to be copy-pasted across :class:`~repro.core.runner.FederatedRunner`,
:class:`~repro.asyncfl.runner.AsyncRunner`, and
:class:`~repro.hier.edge.EdgeAggregator` — and silently clamped negative
values to 1, hiding caller bugs.  :func:`resolve_workers` is the single
implementation; negative requests now raise.
"""

from __future__ import annotations

import os

__all__ = ["resolve_workers"]


def resolve_workers(requested: int) -> int:
    """Resolve a ``parallel_clients``-style worker request to a pool width.

    ``0`` resolves to ``os.cpu_count()`` (one worker per core); positive
    values pass through.  Negative values raise ``ValueError`` — they were a
    caller bug that the old per-runner copies clamped to 1 silently.
    """
    requested = int(requested)
    if requested < 0:
        raise ValueError(
            f"worker count must be >= 0 (0 = one worker per core), got {requested}"
        )
    if requested == 0:
        requested = os.cpu_count() or 1
    return max(1, requested)
