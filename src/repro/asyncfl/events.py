"""Virtual-clock discrete-event machinery for event-driven federation.

The synchronous :class:`repro.core.runner.FederatedRunner` measures progress in
*rounds*; cross-device federated learning is paced by *wall-clock time* —
clients download, compute, and upload at device- and link-dependent speeds, and
the server reacts to upload *arrivals*.  :class:`EventLoop` provides the
minimal substrate for simulating that: a priority queue of timestamped events
processed in virtual-time order, with insertion-sequence tie-breaking so that
simultaneous events (e.g. identical clients finishing at exactly the same
simulated instant under a zero-latency link) are handled in a deterministic,
reproducible order.

The clock is purely *virtual*: popping an event advances :attr:`EventLoop.now`
to the event's timestamp; no real time passes.  This is what lets
``harness/async_compare.py`` report simulated wall-clock-to-accuracy curves for
hour-scale device fleets in milliseconds of real compute.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

__all__ = ["Event", "EventLoop", "next_event_loop"]


@dataclass(frozen=True, order=True)
class Event:
    """One scheduled occurrence on the virtual timeline.

    Events order by ``(time, seq)``: ``seq`` is the global insertion sequence
    number, so two events at the same virtual time are processed in the order
    they were scheduled — the property the sync-equivalence guarantees of
    :class:`repro.asyncfl.runner.AsyncRunner` rest on.
    """

    time: float
    seq: int
    kind: str = field(compare=False)
    data: Dict[str, Any] = field(compare=False, default_factory=dict)


class EventLoop:
    """A deterministic virtual-clock priority queue of :class:`Event`\\ s."""

    def __init__(self) -> None:
        self._heap: List[Event] = []
        self._seq = 0
        self._now = 0.0

    @property
    def now(self) -> float:
        """Current virtual time (the timestamp of the last popped event)."""
        return self._now

    def schedule(self, time: float, kind: str, **data: Any) -> Event:
        """Schedule an event at absolute virtual ``time`` (>= ``now``)."""
        if time < self._now:
            raise ValueError(f"cannot schedule at {time} before virtual now={self._now}")
        event = Event(time=float(time), seq=self._seq, kind=kind, data=data)
        self._seq += 1
        heapq.heappush(self._heap, event)
        return event

    def schedule_after(self, delay: float, kind: str, **data: Any) -> Event:
        """Schedule an event ``delay`` virtual seconds from ``now``."""
        if delay < 0:
            raise ValueError("delay must be non-negative")
        return self.schedule(self._now + delay, kind, **data)

    def peek_time(self) -> Optional[float]:
        """Timestamp of the next event, or ``None`` when the queue is empty."""
        return self._heap[0].time if self._heap else None

    def pop(self) -> Event:
        """Remove and return the next event, advancing the virtual clock."""
        if not self._heap:
            raise IndexError("pop from an empty EventLoop")
        event = heapq.heappop(self._heap)
        self._now = event.time
        return event

    # ------------------------------------------------------------ persistence
    @property
    def sequence(self) -> int:
        """Next insertion sequence number (part of the deterministic order)."""
        return self._seq

    def snapshot_events(self) -> List[Event]:
        """All pending events in ``(time, seq)`` order (the heap untouched)."""
        return sorted(self._heap)

    def load(self, now: float, sequence: int, events) -> None:
        """Restore the loop to a checkpointed state.

        ``events`` are ``(time, seq, kind, data)`` tuples (or :class:`Event`
        instances); their original sequence numbers are preserved so ties
        break exactly as they would have in the uninterrupted run.
        """
        heap: List[Event] = []
        for ev in events:
            if not isinstance(ev, Event):
                time_, seq, kind, data = ev
                ev = Event(time=float(time_), seq=int(seq), kind=str(kind), data=dict(data))
            heap.append(ev)
        heapq.heapify(heap)
        self._heap = heap
        self._now = float(now)
        self._seq = int(sequence)

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)


def next_event_loop(loops) -> Optional[int]:
    """Index of the loop holding the globally earliest pending event.

    The deterministic merge step of a *multi-clock* simulation (each
    :class:`repro.hier.async_runner.HierAsyncRunner` actor owns its own
    :class:`EventLoop`): strictly earlier timestamps win, and ties break
    toward the lowest index — so interleaving across actors is reproducible
    regardless of how their queues grew.  Returns ``None`` when every loop is
    drained.  Popping only ever the returned loop keeps every loop's ``now``
    at or below the global virtual time, which is what makes cross-loop
    ``schedule(now + delay)`` handoffs legal.
    """
    best: Optional[int] = None
    best_time: Optional[float] = None
    for index, loop in enumerate(loops):
        t = loop.peek_time()
        if t is not None and (best_time is None or t < best_time):
            best, best_time = index, t
    return best
