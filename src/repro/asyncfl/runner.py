"""Event-driven federated training on a virtual clock.

:class:`AsyncRunner` is the asynchronous counterpart of
:class:`repro.core.runner.FederatedRunner`.  Instead of lock-stepped rounds it
simulates a timeline: every dispatched client pays a download latency (its
:class:`repro.comm.latency.LinkModel`), a compute time (its
:class:`repro.simulator.device.DeviceSpec` under the
:class:`~repro.simulator.device.LocalUpdateCostModel`, inflated by any
sampler-injected straggler slowdown), and an upload latency — and the server
reacts to upload *arrivals* through an :class:`repro.asyncfl.strategies.
AsyncServer` (FedAsync mixing, FedBuff buffering, or sampled synchronous
rounds).  The result is wall-clock-to-accuracy, not just rounds-to-accuracy.

Model movement uses the same codec-aware :class:`~repro.core.exchange.
PacketExchange` as the synchronous runner: dispatches and uploads are
:class:`~repro.comm.codecs.UpdatePacket` objects, and both link latencies and
``comm_bytes`` are charged from each packet's measured post-codec ``nbytes``
— so a compressing ``FLConfig.codec`` directly shortens the simulated
timeline.  Upload packets are encoded against the *dispatched* global
snapshot (the delta-codec reference), which composes with the staleness
bookkeeping: ``ingest`` decodes each arrival against the exact global that
client trained on, under any buffering or overwrites.

Determinism and sync equivalence
--------------------------------
Events are processed in ``(virtual time, schedule order)`` order; all events
sharing the current virtual time are drained before any freed dispatch slot is
refilled, so an aggregation triggered by the last simultaneous arrival is
visible to every replacement download.  Client updates only depend on the
dispatched payload snapshot and the client's own state, so they may execute
eagerly on a thread pool (``FLConfig.parallel_clients``) without changing a
single bit of the history.  Consequently, with full participation, zero-cost
links, identical devices, and ``FedBuffStrategy(buffer_size=num_clients)``,
the produced :class:`~repro.core.runner.TrainingHistory` is bit-for-bit the
synchronous :class:`FederatedRunner`'s.

The runner mirrors ``FederatedRunner``'s API — ``history``,
``phase_seconds``, ``run()``, ``close()``, context management — so harnesses
and benchmarks drive either interchangeably.  Each completed global update is
recorded as one :class:`~repro.core.runner.RoundResult` whose
``wall_clock_seconds`` is the virtual arrival time and whose
``participating_clients`` lists the aggregated cohort.

Virtual populations and checkpointing
-------------------------------------
Clients may be supplied as a :class:`repro.scale.ClientStateStore`
(``client_store=``) instead of a list: a client then materialises when the
sampler dispatches it, stays pinned while in flight, and spills its
persistent state back to the store once its upload is encoded — population
size no longer bounds memory (see :func:`repro.scale.
build_virtual_async_federation`).  ``run(..., max_events=N)`` stops after a
bounded number of timeline events, and ``run()`` exits *compose*: together
with :meth:`AsyncRunner.quiesce` this is what lets
:class:`repro.scale.RunCheckpoint` capture a run at an arbitrary event count
and resume it bit-identically.
"""

from __future__ import annotations

import math
import time
from concurrent.futures import Future, ThreadPoolExecutor
from typing import Callable, Dict, List, Optional, Sequence, Union

from .. import nn
from ..comm.latency import LinkModel
from ..core.base import GLOBAL_KEY, BaseClient, BaseServer
from ..core.config import FLConfig
from ..core.exchange import PacketExchange
from ..core.metrics import Evaluator
from ..core.runner import PHASES, RoundResult, TrainingHistory, build_endpoints
from ..data import Dataset
from ..mp import resolve_workers
from ..obs import current_monitor, current_tracer
from ..privacy import PrivacyAccountant
from ..simulator.device import A100, DeviceSpec, LocalUpdateCostModel
from .events import EventLoop
from .sampling import ClientSampler, FullParticipationSampler, UniformSampler
from .strategies import AsyncServer, AsyncStrategy, FedBuffStrategy

__all__ = ["ZERO_LINK", "AsyncRunner", "build_async_federation"]

#: a free link: zero latency, infinite bandwidth — transfers take 0 simulated
#: seconds, which is what the sync-equivalence guarantees assume.
ZERO_LINK = LinkModel(latency=0.0, bandwidth=math.inf)

_COMPUTE_DONE = "compute_done"
_ARRIVAL = "arrival"


def _per_client(value, num_clients: int, kind: str) -> List:
    """Broadcast a scalar spec to one entry per client, or validate a sequence."""
    if isinstance(value, (list, tuple)):
        if len(value) != num_clients:
            raise ValueError(f"need one {kind} per client ({num_clients}), got {len(value)}")
        return list(value)
    return [value] * num_clients


class AsyncRunner:
    """Runs the event-driven federated-learning loop on a virtual clock."""

    def __init__(
        self,
        server: BaseServer,
        clients: Optional[Sequence[BaseClient]] = None,
        strategy: Optional[AsyncStrategy] = None,
        sampler: Optional[ClientSampler] = None,
        evaluator: Optional[Evaluator] = None,
        accountant: Optional[PrivacyAccountant] = None,
        cost_model: Optional[LocalUpdateCostModel] = None,
        devices: Union[DeviceSpec, Sequence[DeviceSpec], None] = None,
        link: Union[LinkModel, Sequence[LinkModel], None] = None,
        concurrency: Optional[int] = None,
        max_workers: Optional[int] = None,
        client_store=None,
    ):
        if (clients is None or not list(clients)) and client_store is None:
            raise ValueError("at least one client is required")
        if clients and client_store is not None:
            raise ValueError("pass either clients or client_store, not both")
        self._store = client_store
        self.clients = list(clients) if clients else []
        num_clients = client_store.num_clients if client_store is not None else len(self.clients)
        if server.num_clients != num_clients:
            raise ValueError("server.num_clients must match the number of clients")
        self.num_clients = num_clients
        self.server = server
        self._client_by_id = {c.client_id: c for c in self.clients}
        if self.clients and len(self._client_by_id) != len(self.clients):
            raise ValueError("client ids must be unique")
        #: store-backed clients currently checked out (dispatch -> upload encode)
        self._active: Dict[int, BaseClient] = {}
        config = server.config
        self.strategy = strategy if strategy is not None else FedBuffStrategy(num_clients)
        buffer_size = getattr(self.strategy, "buffer_size", None)
        if buffer_size is not None and buffer_size > num_clients:
            # The buffer keeps one (freshest) entry per client, so it could
            # never fill and the event loop would spin forever.
            raise ValueError(
                f"buffer_size ({buffer_size}) cannot exceed the number of clients ({num_clients})"
            )
        if config.adaptive_rho and hasattr(server, "duals"):
            # Clients grow rho once per *their own* update while the server
            # grows it once per aggregation; under partial participation or
            # staleness the schedules diverge and the dual replicas (IIADMM)
            # or aggregation penalties (ICEADMM) silently drift apart.
            raise ValueError(
                "adaptive_rho is not supported by asyncfl for ADMM-family algorithms: "
                "per-client rho schedules diverge under partial participation/staleness"
            )
        self.sampler = (
            sampler if sampler is not None else FullParticipationSampler(num_clients, seed=config.seed)
        )
        self.evaluator = evaluator
        self.accountant = accountant if accountant is not None else PrivacyAccountant()
        self.cost_model = (
            cost_model if cost_model is not None else LocalUpdateCostModel(local_steps=config.local_steps)
        )
        self.devices: List[DeviceSpec] = _per_client(devices if devices is not None else A100, num_clients, "device")
        self.links: List[LinkModel] = _per_client(link if link is not None else ZERO_LINK, num_clients, "link")
        if concurrency is None:
            # Store-backed populations default to the store's live-client cap:
            # every in-flight client is pinned, so more concurrency than cap
            # could never be materialised anyway.
            concurrency = (
                min(client_store.live_cap, num_clients) if client_store is not None else num_clients
            )
        if not 1 <= concurrency <= num_clients:
            raise ValueError("concurrency must be in [1, num_clients]")
        if client_store is not None and concurrency > client_store.live_cap:
            raise ValueError(
                f"concurrency ({concurrency}) exceeds the client store's live_cap "
                f"({client_store.live_cap}); in-flight clients stay pinned"
            )
        self.concurrency = int(concurrency)

        if max_workers is None:
            max_workers = config.parallel_clients
        self.max_workers = resolve_workers(max_workers)
        # The event-driven runner has no synchronous local-update phase for a
        # process pool to shard, so execution_backend="process" runs its
        # (at most `concurrency`) in-flight updates on the thread pool too;
        # "serial" still forces in-line execution.
        self.backend = str(getattr(config, "execution_backend", "thread"))
        self._executor: Optional[ThreadPoolExecutor] = None
        self._executor_width = 0

        self.async_server = AsyncServer(server, self.strategy)
        # Every dispatch/upload flows through the same codec-aware exchange
        # as the synchronous runner; link latency and comm_bytes below are
        # driven by the encoded packets' measured nbytes.  Clients must share
        # the stack: their lossy-wire bookkeeping (IIADMM's reconcile stash)
        # is derived from their own config's codec.
        self.exchange = PacketExchange(config.codec)
        store_config = getattr(client_store, "config", None)
        endpoint_codecs = [c.config.codec for c in self.clients]
        if store_config is not None:
            endpoint_codecs.append(store_config.codec)
        for codec in endpoint_codecs:
            if PacketExchange(codec).spec != self.exchange.spec:
                raise ValueError(
                    f"an endpoint was built with codec {codec!r} but the server "
                    f"config uses {config.codec!r}; all endpoints must share "
                    f"one codec stack"
                )
        self._dispatch_cache: Optional[tuple] = None  # (model version, encoded packet)
        self.history = TrainingHistory()
        self._clock = EventLoop()
        self._in_flight: set = set()
        self._pending_slots: List[int] = []
        self._need_cohort = False
        self._primed = False
        #: fault layer (client crashes on the virtual timeline); see
        #: :meth:`enable_faults`
        self.injector = None
        self._failed_since_round: List[int] = []
        #: total events handled on the virtual timeline (the benchmark metric)
        self.events_processed = 0
        #: cumulative real wall-clock seconds per phase (FederatedRunner API)
        self.phase_seconds: Dict[str, float] = {phase: 0.0 for phase in PHASES}
        self._round_timings: Dict[str, float] = {k: 0.0 for k in self.phase_seconds}
        self._comm_bytes = 0
        self._comm_bytes_last = 0
        self._sim_comm_seconds = 0.0
        self._sim_comm_seconds_last = 0.0

    # ----------------------------------------------------------------- clock
    @property
    def now(self) -> float:
        """Current virtual time in simulated seconds."""
        return self._clock.now

    # ---------------------------------------------------------------- faults
    def enable_faults(self, faults) -> "AsyncRunner":
        """Arm client-crash injection on the virtual timeline.

        ``faults`` is a :class:`repro.faults.FaultPlan` or injector.  A
        crashed dispatch dies on-device: the local update never runs (so
        stateful clients and their server-side replicas stay consistent),
        no upload arrives, and the freed slot re-dispatches.  Only the
        plan's client-crash schedule applies here — link faults live on the
        :class:`~repro.comm.base.Communicator` seam, which the async runner
        replaces with per-link latency models.  Round-based strategies are
        rejected: they wait for their full cohort, which a crashed client
        would stall forever.
        """
        from ..faults.injector import FaultInjector
        from ..faults.plan import FaultPlan

        if isinstance(faults, FaultPlan):
            faults = FaultInjector(faults)
        if self.strategy.round_based and faults.plan.any_client_crashes:
            raise ValueError(
                "client-crash injection requires a non-round-based strategy: a "
                "round-based cohort would wait forever for its crashed members"
            )
        self.injector = faults
        return self

    # ------------------------------------------------------------- execution
    def _charge(self, phase: str, tick: float, **labels) -> None:
        """Close the phase interval opened at ``tick`` (a ``perf_counter``
        reading): accumulate its wall-clock seconds and, with a tracer armed,
        emit the same interval as a span stamped with the virtual clock."""
        now = time.perf_counter()
        seconds = now - tick
        self.phase_seconds[phase] += seconds
        self._round_timings[phase] += seconds
        tracer = current_tracer()
        if tracer is not None:
            tracer.emit_span(phase, "phase", tick, now, lane="async", vt0=self._clock.now, **labels)
        if phase == "local_update" and "client" in labels:
            monitor = current_monitor()
            if monitor is not None:
                monitor.observe_local_update(seconds, client=labels["client"])

    def _acquire(self, cid: int) -> BaseClient:
        """The live client for ``cid`` — checked out (and pinned) from the
        store in virtual mode, a plain lookup in eager mode.  In store mode a
        client acquired at dispatch stays pinned until the upload is encoded
        (:meth:`_handle_compute_done` releases it); resumed checkpoints may
        re-acquire a client here whose dispatch happened before the save."""
        if self._store is None:
            return self._client_by_id[cid]
        client = self._active.get(cid)
        if client is None:
            client = self._store.checkout(cid)
            self._active[cid] = client
        return client

    def _release(self, cid: int) -> None:
        if self._store is not None and cid in self._active:
            del self._active[cid]
            self._store.release(cid)

    def _submit(self, client: BaseClient, payload) -> Optional[Future]:
        """Start the client's local update eagerly when running parallel.

        Works for store-backed populations too: a dispatched client is pinned
        until its upload is encoded, so the instance stays valid while the
        pool runs it.
        """
        if self.backend != "serial" and self.max_workers > 1 and self.num_clients > 1:
            # At most `concurrency` updates are ever in flight — sizing by the
            # population over-provisioned threads under partial participation.
            needed = min(self.max_workers, self.concurrency)
            if needed > 1:
                if self._executor is None or self._executor_width < needed:
                    if self._executor is not None:
                        self._executor.shutdown(wait=True)
                    self._executor = ThreadPoolExecutor(
                        max_workers=needed,
                        thread_name_prefix="asyncfl-client",
                    )
                    self._executor_width = needed
                return self._executor.submit(client.update, payload)
        return None

    def _dispatch(self, cid: int) -> None:
        """Send the current global model to one client and schedule its compute."""
        tick = time.perf_counter()
        # Encode once per model version: the global model only changes when
        # the version bumps, so concurrent dispatches of the same version
        # reuse one packet (each client still decodes its own fresh payload).
        if self._dispatch_cache is not None and self._dispatch_cache[0] == self.async_server.version:
            version, packet = self.async_server.version, self._dispatch_cache[1]
        else:
            payload, version = self.async_server.dispatch()
            packet = self.exchange.encode_dispatch(payload)
            self._dispatch_cache = (version, packet)
        nbytes = packet.nbytes
        self._comm_bytes += nbytes
        download = self.links[cid].transfer_time(nbytes)
        self._sim_comm_seconds += download
        payload = self.exchange.open_dispatch(packet)
        client = self._acquire(cid)
        compute = self.sampler.compute_multiplier(cid) * self.cost_model.local_update_time(
            self.devices[cid], client.num_samples
        )
        if self.injector is not None and self.injector.client_crashed(cid, version):
            # The client dies on-device mid-update: its in-memory progress is
            # lost (update never ran, so its persistent state — and any
            # server-side replica of it — stays consistent), and the failure
            # surfaces when the upload would have been due.
            self._clock.schedule_after(
                download + compute, _COMPUTE_DONE, cid=cid, version=version, crashed=True
            )
            self._in_flight.add(cid)
            self._charge("broadcast", tick, client=cid)
            return
        future = self._submit(client, payload)
        self._clock.schedule_after(
            download + compute,
            _COMPUTE_DONE,
            cid=cid,
            payload=payload,
            version=version,
            future=future,
        )
        self._in_flight.add(cid)
        self._charge("broadcast", tick, client=cid)
        tracer = current_tracer()
        if tracer is not None:
            tracer.event(
                "dispatch", "async", lane="async", vt=self._clock.now,
                client=cid, version=version, nbytes=nbytes,
            )

    def _handle_compute_done(self, event) -> None:
        cid = event.data["cid"]
        if event.data.get("crashed"):
            # The crash scheduled at dispatch time comes due: record the
            # failure, unpin the client, and free the dispatch slot — the
            # round (if any) completes with the surviving cohort.
            self._release(cid)
            self._in_flight.discard(cid)
            self._failed_since_round.append(cid)
            self.injector.count("crash")
            if not self.strategy.round_based:
                self._pending_slots.append(cid)
            return
        client = self._acquire(cid)
        tick = time.perf_counter()
        future = event.data.get("future")
        if "upload" in event.data:
            # Quiesced/checkpointed event: client.update already ran (eagerly
            # or forced at save time) and its result travelled with the event.
            upload = event.data["upload"]
        elif future is not None:
            upload = future.result()
        else:
            upload = client.update(event.data["payload"])
        self._charge("local_update", tick, client=cid)
        # Encode the upload against the *dispatched* global (delta reference;
        # DP noise was already applied inside client.update), reconcile any
        # lossy-codec client state with the decoded echo, and charge the
        # uplink with the packet's true post-codec bytes.  Privacy is charged
        # on *arrival* (the accepted ingest), keyed so replays never
        # double-spend — the epsilon travels with the event since the client
        # may be spilled by then.
        tick = time.perf_counter()
        dispatched_global = event.data["payload"][GLOBAL_KEY]
        packet = self.exchange.encode_upload(upload, dispatched_global)
        self.exchange.reconcile(client, upload, packet, dispatched_global)
        privacy_eps = client.config.privacy.epsilon if client.config.privacy.enabled else None
        self._release(cid)  # store mode: pinned since dispatch, now spillable
        self._charge("gather", tick, client=cid)
        nbytes = packet.nbytes
        self._comm_bytes += nbytes
        uplink = self.links[cid].transfer_time(nbytes)
        self._sim_comm_seconds += uplink
        self._clock.schedule_after(
            uplink,
            _ARRIVAL,
            cid=cid,
            upload=packet,
            version=event.data["version"],
            dispatched_global=dispatched_global,
            privacy_eps=privacy_eps,
        )

    def _handle_arrival(self, event, callback) -> None:
        cid = event.data["cid"]
        self._in_flight.discard(cid)
        # Charge privacy at the accepted ingest.  Keyless on purpose: on this
        # timeline every arrival is a distinct release (a client re-dispatched
        # the same model version trains — and noises — again), and crashed
        # dispatches never reach here, so there is nothing to dedupe.
        eps = event.data.get("privacy_eps")
        if eps is not None:
            self.accountant.record(cid, eps)
        tracer = current_tracer()
        if tracer is not None:
            tracer.event(
                "arrival", "async", lane="async", vt=self._clock.now,
                client=cid, version=event.data["version"], nbytes=event.data["upload"].nbytes,
            )
        tick = time.perf_counter()
        participants = self.async_server.receive(
            cid, event.data["upload"], event.data["version"], event.data["dispatched_global"]
        )
        self._charge("aggregate", tick, client=cid)
        if participants is not None:
            self._record_round(participants, callback)
            if self.strategy.round_based:
                self._need_cohort = True
        if not self.strategy.round_based:
            self._pending_slots.append(cid)

    def _record_round(self, participants, callback) -> None:
        accuracy = loss = None
        tick = time.perf_counter()
        if self.evaluator is not None:
            self.server.sync_model()
            accuracy, loss = self.evaluator(self.server.model)
        self._charge("evaluate", tick)
        tracer = current_tracer()
        if tracer is not None:
            tracer.event(
                "round_complete", "async", lane="async", vt=self._clock.now,
                round=len(self.history), participants=len(participants),
            )
        result = RoundResult(
            round=len(self.history),
            test_accuracy=accuracy,
            test_loss=loss,
            comm_bytes=self._comm_bytes - self._comm_bytes_last,
            comm_seconds=self._sim_comm_seconds - self._sim_comm_seconds_last,
            phase_seconds=dict(self._round_timings),
            wall_clock_seconds=self.now,
            participating_clients=tuple(participants),
            failed_clients=(
                tuple(sorted(set(self._failed_since_round))) if self.injector is not None else None
            ),
            retries=self.injector.stats.retries if self.injector is not None else None,
        )
        self._failed_since_round = []
        self._comm_bytes_last = self._comm_bytes
        self._sim_comm_seconds_last = self._sim_comm_seconds
        self._round_timings = {k: 0.0 for k in self.phase_seconds}
        self.history.add(result)
        monitor = current_monitor()
        if monitor is not None:
            monitor.on_round(self, result)
        if callback is not None:
            callback(result)

    # ------------------------------------------------------------ dispatching
    def _dispatch_cohort(self) -> None:
        cohort = self.sampler.sample_cohort(frozenset(self._in_flight))
        begin_round = getattr(self.strategy, "begin_round", None)
        if begin_round is not None:
            begin_round(cohort)
        for cid in cohort:
            self._dispatch(cid)

    def _prime(self) -> None:
        if self.strategy.round_based:
            self._dispatch_cohort()
        else:
            for _ in range(self.concurrency):
                self._dispatch(self.sampler.sample_one(frozenset(self._in_flight)))
        self._primed = True

    def _flush_dispatches(self) -> None:
        """Refill freed slots — after the current virtual instant fully drains."""
        if self._need_cohort:
            self._need_cohort = False
            self._dispatch_cohort()
        slots, self._pending_slots = self._pending_slots, []
        for _ in slots:
            self._dispatch(self.sampler.sample_one(frozenset(self._in_flight)))

    # ------------------------------------------------------------------- run
    def run(
        self,
        num_rounds: Optional[int] = None,
        callback: Optional[Callable[[RoundResult], None]] = None,
        max_events: Optional[int] = None,
    ) -> TrainingHistory:
        """Simulate until ``num_rounds`` further global updates completed.

        ``max_events`` bounds how many further timeline events this call
        processes — the interruption point for checkpoint tests and
        cooperative schedulers.  Stopping mid-instant is safe: the pending
        queue, withheld dispatch slots, and virtual clock survive on the
        runner (and in a :class:`repro.scale.RunCheckpoint`), and the next
        ``run`` call first drains the rest of the instant before refilling
        slots, exactly as the uninterrupted loop would have.
        """
        total = num_rounds if num_rounds is not None else self.server.config.num_rounds
        target = len(self.history) + total
        event_budget = math.inf if max_events is None else int(max_events)
        try:
            if not self._primed:
                self._prime()
            elif not self._clock:
                # Resuming after a previous run() hit its target with the
                # queue drained: the replacement dispatches it withheld are
                # still pending — issue them now so the timeline restarts.
                self._flush_dispatches()
            while len(self.history) < target and self._clock and event_budget > 0:
                now = self._clock.peek_time()
                # Drain every event at this virtual instant before refilling
                # any dispatch slot: simultaneous arrivals must all see the
                # same aggregation boundary (the sync-equivalence invariant).
                while self._clock and self._clock.peek_time() == now:
                    event = self._clock.pop()
                    self.events_processed += 1
                    event_budget -= 1
                    if event.kind == _COMPUTE_DONE:
                        self._handle_compute_done(event)
                    else:
                        self._handle_arrival(event, callback)
                    if len(self.history) >= target or event_budget <= 0:
                        break
                if len(self.history) >= target or event_budget <= 0:
                    # Exits must *compose*: if this virtual instant fully
                    # drained, the uninterrupted loop's very next action would
                    # be the dispatch refill — issue it now, so a later run()
                    # call (or a checkpoint taken here and resumed elsewhere)
                    # continues with bit-identical sampler draws and event
                    # ordering.  Mid-instant exits leave the refill withheld;
                    # re-entry drains the rest of the instant first.
                    if not self._clock or self._clock.peek_time() != now:
                        self._flush_dispatches()
                    break
                self._flush_dispatches()
        finally:
            self.close()
        return self.history

    def quiesce(self) -> None:
        """Force every pending local update to completion *in place*.

        After this call no scheduled ``compute_done`` event depends on a live
        :class:`~concurrent.futures.Future` or an un-run ``client.update`` —
        each carries its computed upload in the event data.  This is the
        serialisation barrier :class:`repro.scale.RunCheckpoint` uses: client
        updates depend only on the dispatched payload snapshot and the
        client's own state, so forcing them early is bit-identical to running
        them at their pop time (the same invariant that makes eager
        thread-pool execution exact).  The live runner remains consistent —
        the forced results are attached to the events it will later pop.
        """
        for event in self._clock.snapshot_events():
            if event.kind != _COMPUTE_DONE or "upload" in event.data:
                continue
            if event.data.get("crashed"):
                # Crashed dispatches carry no payload and never ran — nothing
                # to force; the crash resolves when the event pops.
                continue
            future = event.data.get("future")
            if future is not None:
                event.data["upload"] = future.result()
            else:
                client = self._acquire(event.data["cid"])
                event.data["upload"] = client.update(event.data["payload"])
            event.data["future"] = None

    def close(self) -> None:
        """Release the client worker pool (recreated lazily if needed again)."""
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None
            self._executor_width = 0

    def __enter__(self) -> "AsyncRunner":
        return self

    def __exit__(self, exc_type, exc_value, traceback) -> None:
        self.close()


def build_async_federation(
    config: FLConfig,
    model_fn: Callable[[], nn.Module],
    client_datasets: Sequence[Dataset],
    test_dataset: Optional[Dataset] = None,
    strategy: Optional[AsyncStrategy] = None,
    sampler: Optional[ClientSampler] = None,
    cost_model: Optional[LocalUpdateCostModel] = None,
    devices: Union[DeviceSpec, Sequence[DeviceSpec], None] = None,
    link: Union[LinkModel, Sequence[LinkModel], None] = None,
    concurrency: Optional[int] = None,
    seed: Optional[int] = None,
) -> AsyncRunner:
    """Construct an :class:`AsyncRunner` for a named algorithm.

    Server and clients come from the same :func:`repro.core.runner.
    build_endpoints` that :func:`~repro.core.runner.build_federation` uses, so
    an async run over the same datasets starts from bit-identical state.
    When ``sampler`` is omitted, ``config.client_fraction`` selects it:
    1.0 gives :class:`FullParticipationSampler`, anything lower a
    :class:`UniformSampler` of that fraction.
    """
    seed = config.seed if seed is None else seed
    server, clients = build_endpoints(config, model_fn, client_datasets, seed=seed)
    if sampler is None and config.client_fraction < 1.0:
        sampler = UniformSampler(len(clients), fraction=config.client_fraction, seed=seed)
    evaluator = Evaluator(test_dataset) if test_dataset is not None else None
    return AsyncRunner(
        server,
        clients,
        strategy=strategy,
        sampler=sampler,
        evaluator=evaluator,
        cost_model=cost_model,
        devices=devices,
        link=link,
        concurrency=concurrency,
    )
