"""Server-side aggregation strategies for event-driven federation.

The synchronous servers in :mod:`repro.core` assume one complete cohort per
round.  Under partial participation and staleness three things change:

1. only the *sampled* clients' contributions (and, for the ADMM family, their
   dual/penalty state) may be touched;
2. an arriving update was computed against a *past* global model — its
   influence should shrink with its staleness;
3. for IIADMM the server's dual replica update (Algorithm 1 line 6) must
   replay the client's dual update *with the global model the client actually
   received* (line 21 uses the dispatched ``w``), and must replay it for
   *every* upload — an increment skipped for any arrival silently drifts the
   two "independent but identical" dual copies apart.

Every server now exposes that contract as ``ingest(cid, payload,
dispatched_global)`` + ``finalize_round(payloads)`` (see
:class:`repro.core.base.BaseServer`): :class:`AsyncServer` ingests every
arrival exactly once — decoding a codec-encoded
:class:`~repro.comm.codecs.UpdatePacket` at that single point, and replaying
ADMM per-upload state even for uploads a buffer later overwrites — and
:func:`apply_partial_update` performs the partial-participation-aware global
update over the decoded payloads (for a full cohort with fresh models it is
bit-for-bit the synchronous one).  On top of it:

* :class:`SyncRoundStrategy` — classic sampled synchronous FL: wait for the
  whole sampled cohort, then aggregate.
* :class:`FedBuffStrategy` — buffered asynchronous aggregation [Nguyen et al.,
  2022]: aggregate as soon as ``buffer_size`` updates have arrived, whoever
  sent them.
* :class:`FedAsyncStrategy` — staleness-weighted mixing [Xie et al., 2019]:
  every arrival immediately moves the global model by
  ``alpha * s(staleness)`` toward the client's contribution, where ``s`` is a
  constant/polynomial/hinge staleness discount with ``s(0) = 1``.

:class:`AsyncServer` wraps a :class:`repro.core.base.BaseServer` with a
strategy, a model-version counter (staleness = versions the global model
advanced between a client's download and its upload arrival), and a staleness
log for reporting.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from ..core.base import PRIMAL_KEY, BaseServer

__all__ = [
    "staleness_weight",
    "apply_partial_update",
    "AsyncStrategy",
    "SyncRoundStrategy",
    "FedBuffStrategy",
    "FedAsyncStrategy",
    "AsyncServer",
]

STALENESS_KINDS = ("constant", "polynomial", "hinge")

#: one buffered contribution: (client_id, upload payload, dispatched global w)
Item = Tuple[int, Mapping[str, np.ndarray], np.ndarray]


def staleness_weight(staleness: int, kind: str = "polynomial", a: float = 0.5, b: float = 4.0) -> float:
    """FedAsync staleness discount ``s(τ)`` with ``s(0) = 1`` for every kind.

    ``constant``: 1.  ``polynomial``: ``(1 + τ)^{-a}``.  ``hinge``: 1 while
    ``τ <= b``, then ``1 / (a (τ - b) + 1)``.
    """
    if staleness < 0:
        raise ValueError("staleness must be non-negative")
    if kind == "constant":
        return 1.0
    if kind == "polynomial":
        return float((1.0 + staleness) ** (-a))
    if kind == "hinge":
        if staleness <= b:
            return 1.0
        return float(1.0 / (a * (staleness - b) + 1.0))
    raise ValueError(f"unknown staleness kind {kind!r} (choose from {STALENESS_KINDS})")


def apply_partial_update(server: BaseServer, items: Sequence[Item]) -> None:
    """Aggregate a (possibly partial) cohort of uploads into the global model.

    ``items`` are ``(client_id, payload, dispatched_global)`` triples whose
    payloads were already decoded/ingested at arrival time by
    :meth:`AsyncServer.receive`; they are sorted by client id so aggregation
    order never depends on arrival order.  ``server.finalize_round`` does the
    rest: for the ADMM family the per-upload primal/dual state is already
    absorbed and only the all-clients global recomputation remains
    (non-participants contribute their last-known state); FedAvg renormalises
    its weights over the participating payloads.
    """
    if not items:
        raise ValueError("no client uploads to aggregate")
    items = sorted(items, key=lambda it: it[0])
    payloads = {cid: payload for cid, payload, _ in items}
    if server.uses_legacy_update and not hasattr(server, "aggregate_global"):
        # A plug-and-play server that customised only the legacy update():
        # drive it directly (pre-codec async contract) so the override runs.
        server.update(payloads)
    else:
        server.finalize_round(payloads)


def _async_candidate(server: BaseServer, cid: int, payload: Mapping[str, np.ndarray]) -> np.ndarray:
    """One client's candidate global model for FedAsync mixing.

    FedAvg: the uploaded primal.  ADMM family (state already ingested at
    arrival): ``z_p − λ_p/ρ``, the per-client term of the ADMM global update.
    """
    z = np.asarray(payload[PRIMAL_KEY])
    if hasattr(server, "duals"):
        return z - server.duals[cid] / float(server.rho)
    return z


class AsyncStrategy(ABC):
    """Decides what the server does with each arriving client upload."""

    #: round-based strategies dispatch whole cohorts and wait for all of them;
    #: event-based strategies keep a fixed number of clients in flight and
    #: refill slots one by one.
    round_based = False

    @abstractmethod
    def on_upload(
        self,
        server: BaseServer,
        cid: int,
        payload: Mapping[str, np.ndarray],
        staleness: int,
        dispatched_global: np.ndarray,
    ) -> Optional[Tuple[int, ...]]:
        """Process one arrived upload.

        Returns the sorted participant tuple when this arrival completed a
        global model update ("a round"), else ``None``.
        """

    # ------------------------------------------------------- persistent state
    def strategy_state(self) -> Dict[str, object]:
        """Mutable strategy state (buffered uploads, expected cohorts) as a
        plain tree for :class:`repro.scale.RunCheckpoint`; stateless
        strategies return ``{}``."""
        return {}

    def load_strategy_state(self, state: Mapping[str, object]) -> None:
        """Restore state captured by :meth:`strategy_state` (bit-exact)."""


class SyncRoundStrategy(AsyncStrategy):
    """Sampled synchronous FL: aggregate once the whole cohort reported."""

    round_based = True

    def __init__(self) -> None:
        self._expected: Optional[Tuple[int, ...]] = None
        self._buffer: Dict[int, Item] = {}

    def begin_round(self, cohort: Sequence[int]) -> None:
        """Called by the runner when it dispatches a new cohort."""
        if self._buffer:
            raise RuntimeError("previous round still has buffered uploads")
        self._expected = tuple(sorted(cohort))

    def on_upload(self, server, cid, payload, staleness, dispatched_global):
        if self._expected is None or cid not in self._expected:
            raise RuntimeError(f"unexpected upload from client {cid}")
        self._buffer[cid] = (cid, payload, dispatched_global)
        if len(self._buffer) < len(self._expected):
            return None
        participants = self._expected
        apply_partial_update(server, list(self._buffer.values()))
        self._buffer.clear()
        self._expected = None
        return participants

    def strategy_state(self) -> Dict[str, object]:
        return {"expected": self._expected, "buffer": dict(self._buffer)}

    def load_strategy_state(self, state: Mapping[str, object]) -> None:
        expected = state["expected"]
        self._expected = None if expected is None else tuple(int(c) for c in expected)  # type: ignore[union-attr]
        self._buffer = {
            int(cid): (int(item[0]), dict(item[1]), np.asarray(item[2]))
            for cid, item in state["buffer"].items()  # type: ignore[union-attr]
        }


class FedBuffStrategy(AsyncStrategy):
    """Buffered asynchronous aggregation: flush every ``buffer_size`` arrivals.

    A client that reports twice before a flush overwrites its buffered entry
    (the buffer keeps the freshest update per client).  With
    ``buffer_size = num_clients`` under full participation and zero latency
    this reduces exactly to the synchronous round loop.
    """

    def __init__(self, buffer_size: int):
        if buffer_size <= 0:
            raise ValueError("buffer_size must be positive")
        self.buffer_size = int(buffer_size)
        self._buffer: Dict[int, Item] = {}

    def on_upload(self, server, cid, payload, staleness, dispatched_global):
        self._buffer[cid] = (cid, payload, dispatched_global)
        if len(self._buffer) < self.buffer_size:
            return None
        participants = tuple(sorted(self._buffer))
        apply_partial_update(server, list(self._buffer.values()))
        self._buffer.clear()
        return participants

    def strategy_state(self) -> Dict[str, object]:
        return {"buffer": dict(self._buffer)}

    def load_strategy_state(self, state: Mapping[str, object]) -> None:
        self._buffer = {
            int(cid): (int(item[0]), dict(item[1]), np.asarray(item[2]))
            for cid, item in state["buffer"].items()  # type: ignore[union-attr]
        }


class FedAsyncStrategy(AsyncStrategy):
    """Staleness-weighted mixing: every arrival updates the global model.

    ``w ← (1 − α_τ) w + α_τ · candidate`` with ``α_τ = alpha · s(τ)``; at
    staleness 0 with ``alpha = 1`` and a single client this is exactly the
    synchronous FedAvg update.
    """

    def __init__(self, alpha: float = 0.6, staleness: str = "polynomial", a: float = 0.5, b: float = 4.0):
        if not 0.0 < alpha <= 1.0:
            raise ValueError("alpha must be in (0, 1]")
        if staleness not in STALENESS_KINDS:
            raise ValueError(f"unknown staleness kind {staleness!r}")
        self.alpha = float(alpha)
        self.staleness = staleness
        self.a = float(a)
        self.b = float(b)

    def mixing_weight(self, staleness: int) -> float:
        """The effective mixing factor ``α_τ`` for one arrival."""
        return self.alpha * staleness_weight(staleness, self.staleness, a=self.a, b=self.b)

    def on_upload(self, server, cid, payload, staleness, dispatched_global):
        weight = self.mixing_weight(staleness)
        candidate = _async_candidate(server, cid, payload)
        server.global_params = (1.0 - weight) * server.global_params + weight * candidate
        server.round += 1
        server.sync_model()
        return (cid,)


class AsyncServer:
    """A :class:`BaseServer` bound to an :class:`AsyncStrategy` plus versioning.

    The model *version* counts completed global updates; an upload's staleness
    is the number of versions the global model advanced between the client's
    download and the upload's arrival.
    """

    def __init__(self, server: BaseServer, strategy: AsyncStrategy):
        self.server = server
        self.strategy = strategy
        self.version = 0
        self.staleness_log: List[int] = []

    def dispatch(self) -> Tuple[Dict[str, np.ndarray], int]:
        """Payload + model version for one client download."""
        return self.server.broadcast_payload(), self.version

    def receive(
        self,
        cid: int,
        payload,
        dispatched_version: int,
        dispatched_global: np.ndarray,
    ) -> Optional[Tuple[int, ...]]:
        """Hand one arrived upload to the strategy; returns participants on a
        completed global update (and bumps the model version).

        ``payload`` may be a codec-encoded ``UpdatePacket`` or a decoded
        mapping; either way ``server.ingest`` runs here, once per arrival,
        BEFORE any buffering — it is the single server-side decode point
        (``dispatched_global`` is the delta reference), and IIADMM's dual
        replay is an increment (with the dispatched w), so even an upload
        that a buffer later overwrites must leave its increment behind or
        the server/client dual replicas drift apart.  Strategies then only
        ever see decoded payloads.
        """
        payload = self.server.ingest(cid, payload, dispatched_global)
        staleness = self.version - dispatched_version
        self.staleness_log.append(staleness)
        participants = self.strategy.on_upload(self.server, cid, payload, staleness, dispatched_global)
        if participants is not None:
            self.version += 1
        return participants

    def server_state(self) -> Dict[str, object]:
        """Version counter + staleness log (the wrapped server serialises
        itself through :meth:`repro.core.base.BaseServer.server_state`)."""
        return {"version": self.version, "staleness_log": list(self.staleness_log)}

    def load_server_state(self, state: Mapping[str, object]) -> None:
        self.version = int(state["version"])  # type: ignore[arg-type]
        self.staleness_log = [int(s) for s in state["staleness_log"]]  # type: ignore[union-attr]

    def mean_staleness(self) -> float:
        """Average observed upload staleness (0.0 when nothing arrived yet)."""
        if not self.staleness_log:
            return 0.0
        return float(np.mean(self.staleness_log))

    def max_staleness(self) -> int:
        """Largest observed upload staleness."""
        return max(self.staleness_log, default=0)
