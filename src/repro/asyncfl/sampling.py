"""Client participation sampling for event-driven federation.

Cross-device FL never talks to every client every round: the server samples a
cohort (or a single replacement, to keep a fixed number of clients in flight)
from a fleet whose members differ in data volume, availability, and speed.
Every sampler here is seeded and fully deterministic: the same seed yields the
same participation schedule draw-for-draw, which is what makes async runs
reproducible and lets the test suite assert serial == parallel histories.

Hierarchy
---------
:class:`ClientSampler`
    Abstract base: ``sample_cohort`` (a round's participant set),
    ``sample_one`` (a single replacement dispatch), and
    ``compute_multiplier`` (per-client slowdown injected into the device cost
    model — 1.0 unless a subclass marks the client a straggler).
:class:`FullParticipationSampler`
    Every client, every round; ``sample_one`` cycles round-robin.
:class:`UniformSampler`
    A uniform-random fraction of the fleet without replacement.
:class:`WeightedSampler`
    Sampling probability proportional to each client's sample count
    (importance sampling of data-heavy clients).
:class:`AvailabilityTraceSampler`
    Wraps any base sampler with a seeded availability trace: each draw each
    client is independently offline with probability ``dropout``, and a fixed
    seeded subset of clients are stragglers whose simulated compute is
    inflated by ``straggler_slowdown``.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import FrozenSet, List, Optional, Sequence, Tuple

import numpy as np

__all__ = [
    "ClientSampler",
    "FullParticipationSampler",
    "UniformSampler",
    "WeightedSampler",
    "AvailabilityTraceSampler",
]

_EMPTY: FrozenSet[int] = frozenset()


class ClientSampler(ABC):
    """Base class of the deterministic participation samplers."""

    def __init__(self, num_clients: int, seed: int = 0):
        if num_clients <= 0:
            raise ValueError("num_clients must be positive")
        self.num_clients = int(num_clients)
        self.seed = int(seed)
        self.rng = np.random.default_rng(seed)

    # ------------------------------------------------------------------ hooks
    @abstractmethod
    def sample_cohort(self, exclude: FrozenSet[int] = _EMPTY) -> Tuple[int, ...]:
        """The next round's participant set (sorted, never empty).

        ``exclude`` lists clients that must not be drawn (e.g. still in
        flight under an asynchronous strategy).
        """

    @abstractmethod
    def sample_one(self, exclude: FrozenSet[int] = _EMPTY) -> int:
        """A single replacement client for one freed dispatch slot."""

    def compute_multiplier(self, client_id: int) -> float:
        """Multiplier on the client's simulated compute time (1.0 = nominal)."""
        return 1.0

    # ------------------------------------------------------- persistent state
    def sampler_state(self) -> dict:
        """This sampler's mutable state (RNG bit-generator words + counters)
        as a plain tree — what :class:`repro.scale.RunCheckpoint` persists so
        a resumed run draws the exact same participation schedule."""
        return {"rng": self.rng.bit_generator.state}

    def load_sampler_state(self, state: dict) -> None:
        """Restore state captured by :meth:`sampler_state` (bit-exact)."""
        self.rng.bit_generator.state = state["rng"]

    # ---------------------------------------------------------------- helpers
    def _available(self, exclude: FrozenSet[int]) -> List[int]:
        avail = [c for c in range(self.num_clients) if c not in exclude]
        if not avail:
            raise RuntimeError("no clients available to sample (all excluded)")
        return avail


class FullParticipationSampler(ClientSampler):
    """Every client participates; replacements cycle round-robin from 0."""

    def __init__(self, num_clients: int, seed: int = 0):
        super().__init__(num_clients, seed)
        self._next = 0

    def sample_cohort(self, exclude: FrozenSet[int] = _EMPTY) -> Tuple[int, ...]:
        return tuple(self._available(exclude))

    def sample_one(self, exclude: FrozenSet[int] = _EMPTY) -> int:
        for _ in range(self.num_clients):
            cid = self._next
            self._next = (self._next + 1) % self.num_clients
            if cid not in exclude:
                return cid
        raise RuntimeError("no clients available to sample (all excluded)")

    def sampler_state(self) -> dict:
        state = super().sampler_state()
        state["next"] = self._next
        return state

    def load_sampler_state(self, state: dict) -> None:
        super().load_sampler_state(state)
        self._next = int(state["next"])


class UniformSampler(ClientSampler):
    """A uniform fraction of the fleet, drawn without replacement."""

    def __init__(self, num_clients: int, fraction: float = 0.1, seed: int = 0):
        super().__init__(num_clients, seed)
        if not 0.0 < fraction <= 1.0:
            raise ValueError("fraction must be in (0, 1]")
        self.fraction = float(fraction)

    def _cohort_size(self, num_available: int) -> int:
        k = max(1, int(round(self.fraction * self.num_clients)))
        return min(k, num_available)

    def sample_cohort(self, exclude: FrozenSet[int] = _EMPTY) -> Tuple[int, ...]:
        avail = self._available(exclude)
        k = self._cohort_size(len(avail))
        idx = self.rng.choice(len(avail), size=k, replace=False)
        return tuple(sorted(avail[int(i)] for i in idx))

    def sample_one(self, exclude: FrozenSet[int] = _EMPTY) -> int:
        avail = self._available(exclude)
        return avail[int(self.rng.integers(len(avail)))]


class WeightedSampler(ClientSampler):
    """Sampling probability proportional to each client's sample count."""

    def __init__(self, sample_counts: Sequence[int], fraction: float = 0.1, seed: int = 0):
        super().__init__(len(sample_counts), seed)
        if not 0.0 < fraction <= 1.0:
            raise ValueError("fraction must be in (0, 1]")
        counts = np.asarray(sample_counts, dtype=np.float64)
        if np.any(counts < 0) or counts.sum() <= 0:
            raise ValueError("sample_counts must be non-negative with a positive sum")
        self.fraction = float(fraction)
        self.sample_counts = counts

    def _probabilities(self, avail: List[int]) -> np.ndarray:
        weights = self.sample_counts[avail]
        total = weights.sum()
        if total <= 0:  # every available client is empty: fall back to uniform
            return np.full(len(avail), 1.0 / len(avail))
        return weights / total

    def sample_cohort(self, exclude: FrozenSet[int] = _EMPTY) -> Tuple[int, ...]:
        avail = self._available(exclude)
        k = min(max(1, int(round(self.fraction * self.num_clients))), len(avail))
        idx = self.rng.choice(len(avail), size=k, replace=False, p=self._probabilities(avail))
        return tuple(sorted(avail[int(i)] for i in idx))

    def sample_one(self, exclude: FrozenSet[int] = _EMPTY) -> int:
        avail = self._available(exclude)
        return avail[int(self.rng.choice(len(avail), p=self._probabilities(avail)))]


class AvailabilityTraceSampler(ClientSampler):
    """Availability trace + straggler injection around any base sampler.

    On every draw each non-excluded client is independently offline with
    probability ``dropout`` (a fresh seeded coin per client per draw — an
    i.i.d. availability trace).  A fixed ``straggler_fraction`` of clients,
    chosen once at construction, run ``straggler_slowdown`` times slower than
    their device's nominal throughput.
    """

    def __init__(
        self,
        base: ClientSampler,
        dropout: float = 0.1,
        straggler_fraction: float = 0.0,
        straggler_slowdown: float = 3.0,
        seed: int = 0,
        max_retries: int = 10,
    ):
        super().__init__(base.num_clients, seed)
        if not 0.0 <= dropout < 1.0:
            raise ValueError("dropout must be in [0, 1)")
        if not 0.0 <= straggler_fraction <= 1.0:
            raise ValueError("straggler_fraction must be in [0, 1]")
        if straggler_slowdown < 1.0:
            raise ValueError("straggler_slowdown must be >= 1")
        self.base = base
        self.dropout = float(dropout)
        self.straggler_slowdown = float(straggler_slowdown)
        self.max_retries = int(max_retries)
        num_stragglers = int(straggler_fraction * self.num_clients)
        self.stragglers: FrozenSet[int] = frozenset(
            int(c) for c in self.rng.choice(self.num_clients, size=num_stragglers, replace=False)
        )

    def _offline(self) -> FrozenSet[int]:
        draws = self.rng.random(self.num_clients)
        return frozenset(c for c in range(self.num_clients) if draws[c] < self.dropout)

    def sample_cohort(self, exclude: FrozenSet[int] = _EMPTY) -> Tuple[int, ...]:
        for _ in range(self.max_retries):
            merged = frozenset(exclude) | self._offline()
            if len(merged) < self.num_clients:
                return self.base.sample_cohort(merged)
        # Pathological dropout: everyone kept flipping offline — ignore the
        # trace rather than deadlocking the federation.
        return self.base.sample_cohort(frozenset(exclude))

    def sample_one(self, exclude: FrozenSet[int] = _EMPTY) -> int:
        for _ in range(self.max_retries):
            merged = frozenset(exclude) | self._offline()
            if len(merged) < self.num_clients:
                return self.base.sample_one(merged)
        return self.base.sample_one(frozenset(exclude))

    def compute_multiplier(self, client_id: int) -> float:
        if client_id in self.stragglers:
            return self.straggler_slowdown
        return self.base.compute_multiplier(client_id)

    def sampler_state(self) -> dict:
        # Own RNG (the availability trace) plus the wrapped base sampler's;
        # the straggler set is seeded at construction and needs no persisting.
        state = super().sampler_state()
        state["base"] = self.base.sampler_state()
        return state

    def load_sampler_state(self, state: dict) -> None:
        super().load_sampler_state(state)
        self.base.load_sampler_state(state["base"])
