"""Event-driven asynchronous federation (virtual clock, sampling, staleness).

The synchronous :class:`repro.core.runner.FederatedRunner` broadcasts to every
client and blocks on the slowest one.  This subsystem models cross-device
scale instead: a virtual-clock :class:`EventLoop` schedules per-client
download/compute/upload completion using the device and link cost models, a
:class:`ClientSampler` hierarchy decides who participates (full, uniform
fraction, weighted by data, availability traces with dropout and stragglers),
and an :class:`AsyncServer` applies staleness-aware aggregation — FedAsync
mixing, FedBuff buffering, or sampled synchronous rounds — through
partial-participation-aware variants of the FedAvg/IIADMM/ICEADMM global
updates.  :class:`AsyncRunner` mirrors ``FederatedRunner``'s API so the
harnesses and benchmarks drive either loop unchanged.
"""

from .events import Event, EventLoop, next_event_loop
from .runner import ZERO_LINK, AsyncRunner, build_async_federation
from .sampling import (
    AvailabilityTraceSampler,
    ClientSampler,
    FullParticipationSampler,
    UniformSampler,
    WeightedSampler,
)
from .strategies import (
    AsyncServer,
    AsyncStrategy,
    FedAsyncStrategy,
    FedBuffStrategy,
    SyncRoundStrategy,
    apply_partial_update,
    staleness_weight,
)

__all__ = [
    "Event",
    "EventLoop",
    "next_event_loop",
    "ClientSampler",
    "FullParticipationSampler",
    "UniformSampler",
    "WeightedSampler",
    "AvailabilityTraceSampler",
    "staleness_weight",
    "apply_partial_update",
    "AsyncStrategy",
    "SyncRoundStrategy",
    "FedBuffStrategy",
    "FedAsyncStrategy",
    "AsyncServer",
    "ZERO_LINK",
    "AsyncRunner",
    "build_async_federation",
]
