"""Tests for layers, losses, functional ops, and optimisers."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import nn
from repro.nn import functional as F
from repro.nn.tensor import Tensor


def finite_diff_check(loss_fn, param, atol=1e-4):
    """Compare param.grad (already populated) against central differences of loss_fn()."""
    analytic = param.grad.copy()
    eps = 1e-6
    flat = param.data.reshape(-1)
    num = np.zeros_like(flat)
    for i in range(flat.size):
        orig = flat[i]
        flat[i] = orig + eps
        hi = loss_fn()
        flat[i] = orig - eps
        lo = loss_fn()
        flat[i] = orig
        num[i] = (hi - lo) / (2 * eps)
    np.testing.assert_allclose(analytic.reshape(-1), num, atol=atol)


class TestLinear:
    def test_forward_shape(self):
        layer = nn.Linear(8, 3, rng=np.random.default_rng(0))
        out = layer(Tensor(np.ones((5, 8))))
        assert out.shape == (5, 3)

    def test_forward_matches_manual(self):
        layer = nn.Linear(4, 2, rng=np.random.default_rng(0))
        x = np.random.default_rng(1).standard_normal((3, 4))
        expected = x @ layer.weight.data.T + layer.bias.data
        np.testing.assert_allclose(layer(Tensor(x)).data, expected)

    def test_no_bias(self):
        layer = nn.Linear(4, 2, bias=False, rng=np.random.default_rng(0))
        assert layer.bias is None
        assert len(list(layer.parameters())) == 1

    def test_weight_grad_finite_difference(self):
        rng = np.random.default_rng(2)
        layer = nn.Linear(5, 3, rng=rng)
        x = rng.standard_normal((4, 5))
        y = rng.integers(0, 3, 4)

        def loss_value():
            return F.cross_entropy(layer(Tensor(x)), y).item()

        layer.zero_grad()
        F.cross_entropy(layer(Tensor(x)), y).backward()
        finite_diff_check(loss_value, layer.weight)
        finite_diff_check(loss_value, layer.bias)


class TestConv2d:
    def test_output_shape_padding(self):
        conv = nn.Conv2d(3, 6, 3, padding=1, rng=np.random.default_rng(0))
        out = conv(Tensor(np.zeros((2, 3, 8, 8))))
        assert out.shape == (2, 6, 8, 8)

    def test_output_shape_stride(self):
        conv = nn.Conv2d(1, 2, 3, stride=2, rng=np.random.default_rng(0))
        out = conv(Tensor(np.zeros((1, 1, 9, 9))))
        assert out.shape == (1, 2, 4, 4)

    def test_channel_mismatch_raises(self):
        conv = nn.Conv2d(3, 2, 3, rng=np.random.default_rng(0))
        with pytest.raises(ValueError):
            conv(Tensor(np.zeros((1, 1, 5, 5))))

    def test_conv_matches_direct_computation(self):
        rng = np.random.default_rng(3)
        conv = nn.Conv2d(2, 3, 3, padding=1, rng=rng)
        x = rng.standard_normal((1, 2, 5, 5))
        out = conv(Tensor(x)).data
        # Direct (slow) reference computation.
        xp = np.pad(x, ((0, 0), (0, 0), (1, 1), (1, 1)))
        ref = np.zeros((1, 3, 5, 5))
        for co in range(3):
            for i in range(5):
                for j in range(5):
                    patch = xp[0, :, i : i + 3, j : j + 3]
                    ref[0, co, i, j] = np.sum(patch * conv.weight.data[co]) + conv.bias.data[co]
        np.testing.assert_allclose(out, ref, atol=1e-10)

    def test_conv_weight_grad_finite_difference(self):
        rng = np.random.default_rng(4)
        conv = nn.Conv2d(1, 2, 3, rng=rng)
        x = rng.standard_normal((2, 1, 6, 6))
        y = rng.integers(0, 2, 2)
        head = nn.Linear(2 * 4 * 4, 2, rng=rng)

        def loss_value():
            h = F.flatten(conv(Tensor(x)))
            return F.cross_entropy(head(h), y).item()

        conv.zero_grad()
        head.zero_grad()
        h = F.flatten(conv(Tensor(x)))
        F.cross_entropy(head(h), y).backward()
        finite_diff_check(loss_value, conv.weight, atol=1e-4)
        finite_diff_check(loss_value, conv.bias, atol=1e-4)

    def test_input_gradient_flows(self):
        rng = np.random.default_rng(5)
        conv = nn.Conv2d(1, 1, 3, rng=rng)
        x = Tensor(rng.standard_normal((1, 1, 5, 5)), requires_grad=True)
        conv(x).sum().backward()
        assert x.grad is not None
        assert x.grad.shape == (1, 1, 5, 5)


class TestPoolingAndOtherLayers:
    def test_maxpool_forward(self):
        x = np.arange(16, dtype=float).reshape(1, 1, 4, 4)
        out = nn.MaxPool2d(2)(Tensor(x))
        np.testing.assert_allclose(out.data[0, 0], [[5, 7], [13, 15]])

    def test_maxpool_grad_routes_to_max(self):
        x = Tensor(np.arange(16, dtype=float).reshape(1, 1, 4, 4), requires_grad=True)
        nn.MaxPool2d(2)(x).sum().backward()
        expected = np.zeros((4, 4))
        expected[1, 1] = expected[1, 3] = expected[3, 1] = expected[3, 3] = 1
        np.testing.assert_allclose(x.grad[0, 0], expected)

    def test_relu_layer(self):
        out = nn.ReLU()(Tensor(np.array([-2.0, 3.0])))
        np.testing.assert_allclose(out.data, [0, 3])

    def test_flatten_layer(self):
        out = nn.Flatten()(Tensor(np.zeros((2, 3, 4, 5))))
        assert out.shape == (2, 60)

    def test_dropout_train_vs_eval(self):
        layer = nn.Dropout(0.5, rng=np.random.default_rng(0))
        x = Tensor(np.ones((100, 100)))
        out_train = layer(x)
        assert np.any(out_train.data == 0)
        layer.eval()
        out_eval = layer(x)
        np.testing.assert_allclose(out_eval.data, x.data)

    def test_dropout_invalid_p(self):
        with pytest.raises(ValueError):
            F.dropout(Tensor(np.ones(3)), p=1.5, training=True)

    def test_sequential_order_and_indexing(self):
        rng = np.random.default_rng(0)
        model = nn.Sequential(nn.Linear(4, 8, rng=rng), nn.ReLU(), nn.Linear(8, 2, rng=rng))
        assert len(model) == 3
        assert isinstance(model[1], nn.ReLU)
        out = model(Tensor(np.ones((3, 4))))
        assert out.shape == (3, 2)


class TestSoftmaxLosses:
    def test_softmax_sums_to_one(self):
        x = Tensor(np.random.default_rng(0).standard_normal((5, 7)))
        s = F.softmax(x, axis=1)
        np.testing.assert_allclose(s.data.sum(axis=1), np.ones(5))

    def test_log_softmax_consistent_with_softmax(self):
        x = Tensor(np.random.default_rng(1).standard_normal((4, 6)))
        np.testing.assert_allclose(F.log_softmax(x, axis=1).data, np.log(F.softmax(x, axis=1).data), atol=1e-10)

    def test_cross_entropy_matches_nll_of_log_softmax(self):
        rng = np.random.default_rng(2)
        logits = rng.standard_normal((6, 4))
        y = rng.integers(0, 4, 6)
        ce = F.cross_entropy(Tensor(logits), y).item()
        nll = F.nll_loss(F.log_softmax(Tensor(logits), axis=1), y).item()
        assert ce == pytest.approx(nll, abs=1e-10)

    def test_cross_entropy_uniform_logits(self):
        logits = Tensor(np.zeros((3, 10)))
        y = np.array([0, 5, 9])
        assert F.cross_entropy(logits, y).item() == pytest.approx(np.log(10))

    def test_cross_entropy_grad_finite_difference(self):
        rng = np.random.default_rng(3)
        logits_np = rng.standard_normal((4, 5))
        y = rng.integers(0, 5, 4)
        logits = Tensor(logits_np.copy(), requires_grad=True)
        F.cross_entropy(logits, y).backward()
        eps = 1e-6
        num = np.zeros_like(logits_np)
        for i in range(logits_np.size):
            pert = logits_np.reshape(-1).copy()
            pert[i] += eps
            hi = F.cross_entropy(Tensor(pert.reshape(logits_np.shape)), y).item()
            pert[i] -= 2 * eps
            lo = F.cross_entropy(Tensor(pert.reshape(logits_np.shape)), y).item()
            num.reshape(-1)[i] = (hi - lo) / (2 * eps)
        np.testing.assert_allclose(logits.grad, num, atol=1e-5)

    def test_cross_entropy_sum_reduction(self):
        logits = np.zeros((3, 2))
        y = np.array([0, 1, 0])
        mean = F.cross_entropy(Tensor(logits), y, reduction="mean").item()
        total = F.cross_entropy(Tensor(logits), y, reduction="sum").item()
        assert total == pytest.approx(3 * mean)

    def test_cross_entropy_invalid_reduction(self):
        with pytest.raises(ValueError):
            F.cross_entropy(Tensor(np.zeros((2, 2))), np.array([0, 1]), reduction="bogus")

    def test_mse_loss(self):
        pred = Tensor(np.array([1.0, 2.0]), requires_grad=True)
        loss = F.mse_loss(pred, np.array([0.0, 0.0]))
        assert loss.item() == pytest.approx(2.5)
        loss.backward()
        np.testing.assert_allclose(pred.grad, [1.0, 2.0])

    def test_loss_modules(self):
        logits = Tensor(np.zeros((2, 3)))
        y = np.array([0, 1])
        assert nn.CrossEntropyLoss()(logits, y).item() == pytest.approx(np.log(3))
        assert nn.MSELoss()(Tensor(np.ones(4)), np.zeros(4)).item() == pytest.approx(1.0)
        lp = F.log_softmax(logits, axis=1)
        assert nn.NLLLoss()(lp, y).item() == pytest.approx(np.log(3))


class TestModuleSystem:
    def test_named_parameters_nested(self):
        rng = np.random.default_rng(0)
        model = nn.Sequential(nn.Linear(3, 4, rng=rng), nn.ReLU(), nn.Linear(4, 2, rng=rng))
        names = [n for n, _ in model.named_parameters()]
        assert names == ["0.weight", "0.bias", "2.weight", "2.bias"]

    def test_state_dict_roundtrip(self):
        rng = np.random.default_rng(0)
        m1 = nn.Linear(3, 2, rng=rng)
        m2 = nn.Linear(3, 2, rng=np.random.default_rng(99))
        m2.load_state_dict(m1.state_dict())
        np.testing.assert_allclose(m1.weight.data, m2.weight.data)
        np.testing.assert_allclose(m1.bias.data, m2.bias.data)

    def test_state_dict_returns_copies(self):
        m = nn.Linear(3, 2, rng=np.random.default_rng(0))
        sd = m.state_dict()
        sd["weight"][...] = 0
        assert not np.all(m.weight.data == 0)

    def test_load_state_dict_strict_mismatch(self):
        m = nn.Linear(3, 2, rng=np.random.default_rng(0))
        with pytest.raises(KeyError):
            m.load_state_dict({"weight": np.zeros((2, 3))})

    def test_load_state_dict_shape_mismatch(self):
        m = nn.Linear(3, 2, rng=np.random.default_rng(0))
        bad = m.state_dict()
        bad["weight"] = np.zeros((5, 5))
        with pytest.raises(ValueError):
            m.load_state_dict(bad)

    def test_train_eval_propagates(self):
        model = nn.Sequential(nn.Dropout(0.5), nn.Dropout(0.5))
        model.eval()
        assert all(not m.training for m in model.modules())
        model.train()
        assert all(m.training for m in model.modules())

    def test_zero_grad(self):
        m = nn.Linear(3, 2, rng=np.random.default_rng(0))
        F.cross_entropy(m(Tensor(np.ones((2, 3)))), np.array([0, 1])).backward()
        assert m.weight.grad is not None
        m.zero_grad()
        assert m.weight.grad is None

    def test_num_parameters(self):
        m = nn.Linear(10, 5, rng=np.random.default_rng(0))
        assert m.num_parameters() == 10 * 5 + 5

    def test_forward_not_implemented(self):
        with pytest.raises(NotImplementedError):
            nn.Module()(1)


class TestOptimizers:
    def _quadratic_problem(self):
        # Minimise ||Wx - t||^2 over W.
        rng = np.random.default_rng(0)
        layer = nn.Linear(4, 4, bias=False, rng=rng)
        x = rng.standard_normal((4, 4))
        t = rng.standard_normal((4, 4))
        return layer, x, t

    def test_sgd_reduces_loss(self):
        layer, x, t = self._quadratic_problem()
        opt = nn.SGD(layer.parameters(), lr=0.05)
        losses = []
        for _ in range(150):
            layer.zero_grad()
            loss = F.mse_loss(layer(Tensor(x)), t)
            loss.backward()
            opt.step()
            losses.append(loss.item())
        assert losses[-1] < 0.2 * losses[0]

    def test_sgd_momentum_faster_than_plain(self):
        def run(momentum):
            layer, x, t = self._quadratic_problem()
            opt = nn.SGD(layer.parameters(), lr=0.02, momentum=momentum)
            for _ in range(40):
                layer.zero_grad()
                loss = F.mse_loss(layer(Tensor(x)), t)
                loss.backward()
                opt.step()
            return loss.item()

        assert run(0.9) < run(0.0)

    def test_sgd_weight_decay_shrinks_weights(self):
        layer = nn.Linear(3, 3, bias=False, rng=np.random.default_rng(0))
        opt = nn.SGD(layer.parameters(), lr=0.1, weight_decay=1.0)
        layer.weight.grad = np.zeros_like(layer.weight.data)
        before = np.linalg.norm(layer.weight.data)
        opt.step()
        assert np.linalg.norm(layer.weight.data) < before

    def test_adam_reduces_loss(self):
        layer, x, t = self._quadratic_problem()
        opt = nn.Adam(layer.parameters(), lr=0.05)
        first = None
        for i in range(50):
            layer.zero_grad()
            loss = F.mse_loss(layer(Tensor(x)), t)
            loss.backward()
            opt.step()
            if i == 0:
                first = loss.item()
        assert loss.item() < 0.5 * first

    def test_optimizer_skips_params_without_grad(self):
        layer = nn.Linear(3, 3, rng=np.random.default_rng(0))
        before = layer.weight.data.copy()
        nn.SGD(layer.parameters(), lr=0.1).step()
        np.testing.assert_allclose(layer.weight.data, before)

    def test_empty_params_raises(self):
        with pytest.raises(ValueError):
            nn.SGD([], lr=0.1)

    @pytest.mark.parametrize("kwargs", [{"lr": -1}, {"lr": 0.1, "momentum": 1.5}])
    def test_invalid_sgd_hyperparameters(self, kwargs):
        layer = nn.Linear(2, 2, rng=np.random.default_rng(0))
        with pytest.raises(ValueError):
            nn.SGD(layer.parameters(), **kwargs)

    def test_zero_grad_clears(self):
        layer = nn.Linear(2, 2, rng=np.random.default_rng(0))
        opt = nn.SGD(layer.parameters(), lr=0.1)
        F.mse_loss(layer(Tensor(np.ones((1, 2)))), np.zeros((1, 2))).backward()
        opt.zero_grad()
        assert all(p.grad is None for p in layer.parameters())


class TestInit:
    def test_fan_calculation_linear(self):
        from repro.nn.init import calculate_fan

        assert calculate_fan((8, 4)) == (4, 8)

    def test_fan_calculation_conv(self):
        from repro.nn.init import calculate_fan

        assert calculate_fan((16, 3, 5, 5)) == (3 * 25, 16 * 25)

    def test_fan_requires_2d(self):
        from repro.nn.init import calculate_fan

        with pytest.raises(ValueError):
            calculate_fan((5,))

    @given(st.integers(2, 64), st.integers(2, 64))
    @settings(max_examples=20, deadline=None)
    def test_kaiming_uniform_bound(self, out_f, in_f):
        from repro.nn.init import kaiming_uniform

        w = kaiming_uniform((out_f, in_f), rng=np.random.default_rng(0))
        bound = np.sqrt(2.0 / (1 + 5)) * np.sqrt(3.0 / in_f)
        assert np.all(np.abs(w) <= bound + 1e-12)

    def test_xavier_normal_std(self):
        from repro.nn.init import xavier_normal

        w = xavier_normal((200, 300), rng=np.random.default_rng(0))
        expected = np.sqrt(2.0 / 500)
        assert abs(w.std() - expected) < 0.05 * expected
