"""Unified telemetry (repro.obs): tracer, metrics registry, run explorer.

The two contracts regression-tested here:

* **Bitwise determinism** — arming a :class:`repro.obs.Tracer` never
  changes a run: for FedAvg / ICEADMM / IIADMM across the synchronous,
  asynchronous, and both hierarchical runners, the traced run's history
  and final global parameters are bitwise identical to the untraced run's.
* **Export sanity** — the Perfetto export round-trips through JSON and its
  per-track spans nest consistently (children contained in parents, never
  partially overlapping); the JSONL export reloads into the same records.
"""

import json

import numpy as np
import pytest

from repro.core import FLConfig, MLP, build_federation
from repro.core.runner import PHASES, RoundResult
from repro.data import TensorDataset
from repro.harness.chaos import histories_bitwise_equal
from repro.harness.obsreport import load_trace, render_metrics, render_report
from repro.harness.reporting import format_history
from repro.obs import (
    Histogram,
    MetricsRegistry,
    Tracer,
    current_tracer,
    metric_key,
    use_tracer,
)

ALGORITHMS = ("fedavg", "iceadmm", "iiadmm")

NUM_CLIENTS = 6
INPUT_DIM = 8
NUM_CLASSES = 3
SAMPLES = 6
ROUNDS = 2


def _make_data(seed=0):
    rng = np.random.default_rng(seed + 99)
    teacher = rng.standard_normal((INPUT_DIM, NUM_CLASSES))

    def split(n):
        x = rng.standard_normal((n, INPUT_DIM))
        y = np.argmax(x @ teacher, axis=1)
        return TensorDataset(x, y)

    return [split(SAMPLES) for _ in range(NUM_CLIENTS)], split(24)


def _model_fn():
    return lambda: MLP(
        INPUT_DIM, NUM_CLASSES, hidden_sizes=(8,), rng=np.random.default_rng(4242)
    )


def _config(algorithm, **overrides):
    kwargs = dict(
        algorithm=algorithm,
        num_rounds=ROUNDS,
        local_steps=2,
        batch_size=3,
        lr=0.05,
        rho=10.0,
        zeta=10.0,
        seed=0,
    )
    kwargs.update(overrides)
    return FLConfig(**kwargs)


def _build(mode, algorithm):
    datasets, test = _make_data()
    if mode == "sync":
        return build_federation(_config(algorithm), _model_fn(), datasets, test)
    if mode == "async":
        from repro.asyncfl import build_async_federation

        return build_async_federation(_config(algorithm), _model_fn(), datasets, test)
    if mode == "hier":
        from repro.hier import build_hier_federation

        return build_hier_federation(
            _config(algorithm, topology="edges:2"), _model_fn(), datasets, test
        )
    if mode == "hier_async":
        from repro.hier import RootFedBuff, build_hier_async_federation

        return build_hier_async_federation(
            _config(algorithm, topology="edges:2"),
            _model_fn(),
            datasets,
            test_dataset=test,
            strategy=RootFedBuff(2),
        )
    raise ValueError(mode)


def _run(mode, algorithm, tracer):
    runner = _build(mode, algorithm)
    with use_tracer(tracer):
        history = runner.run(ROUNDS)
    return runner, history


# ---------------------------------------------------------------- determinism
@pytest.mark.parametrize("algorithm", ALGORITHMS)
@pytest.mark.parametrize("mode", ("sync", "async", "hier"))
def test_traced_run_is_bitwise_identical(mode, algorithm):
    _, untraced_history = _run(mode, algorithm, None)
    tracer = Tracer()
    traced_runner, traced_history = _run(mode, algorithm, tracer)
    untraced_runner, _ = _run(mode, algorithm, None)

    assert len(tracer) > 0, "armed tracer recorded nothing"
    assert histories_bitwise_equal(untraced_history, traced_history)
    for ru, rt in zip(untraced_history.rounds, traced_history.rounds):
        assert ru.comm_bytes == rt.comm_bytes
        assert ru.failed_clients == rt.failed_clients
    assert np.array_equal(
        untraced_runner.server.global_params, traced_runner.server.global_params
    )


def test_traced_hier_async_is_bitwise_identical():
    _, untraced_history = _run("hier_async", "fedavg", None)
    tracer = Tracer()
    traced_runner, traced_history = _run("hier_async", "fedavg", tracer)
    untraced_runner, _ = _run("hier_async", "fedavg", None)

    assert len(tracer) > 0
    assert histories_bitwise_equal(untraced_history, traced_history)
    assert np.array_equal(
        untraced_runner.server.global_params, traced_runner.server.global_params
    )


def test_traced_parallel_clients_is_bitwise_identical():
    """Thread-pooled client updates: spans are timed in workers but emitted
    from the orchestration thread, so the trace (and the run) stay
    deterministic."""
    datasets, test = _make_data()
    runs = []
    for tracer in (None, Tracer()):
        runner = build_federation(
            _config("fedavg", parallel_clients=2), _model_fn(), datasets, test
        )
        with use_tracer(tracer):
            history = runner.run(ROUNDS)
        runs.append((runner, history, tracer))
    (r0, h0, _), (r1, h1, tracer) = runs
    assert histories_bitwise_equal(h0, h1)
    assert np.array_equal(r0.server.global_params, r1.server.global_params)
    # Per-client spans land in client order regardless of worker scheduling.
    updates = [
        r for r in tracer.records
        if r["name"] == "local_update" and r["cat"] == "client"
    ]
    per_round = [u["client"] for u in updates]
    assert per_round == sorted(per_round[:NUM_CLIENTS]) * ROUNDS


def test_tracer_default_is_none_and_scoped():
    assert current_tracer() is None
    tracer = Tracer()
    with use_tracer(tracer):
        assert current_tracer() is tracer
    assert current_tracer() is None


# -------------------------------------------------------------------- exports
def test_jsonl_round_trip(tmp_path):
    tracer = Tracer()
    _run("sync", "fedavg", tracer)
    path = tracer.write_jsonl(tmp_path / "trace.jsonl")
    records = load_trace(path)
    assert records == tracer.records


def test_perfetto_round_trip_and_span_nesting(tmp_path):
    tracer = Tracer()
    _run("hier", "fedavg", tracer)
    doc = json.loads(json.dumps(tracer.to_perfetto()))
    events = doc["traceEvents"]
    assert doc["displayTimeUnit"] == "ms"

    # One thread_name metadata event per lane, and every record mapped.
    lanes = {r["lane"] for r in tracer.records}
    meta = [e for e in events if e["ph"] == "M"]
    assert {m["args"]["name"] for m in meta} == lanes
    assert len(events) == len(tracer.records) + len(meta)

    # Spans on one track are either disjoint or properly nested — a span
    # pair that partially overlaps would render garbage and would mean a
    # child interval escaped its parent.
    eps = 1e-9
    by_tid = {}
    for e in events:
        if e["ph"] == "X":
            by_tid.setdefault(e["tid"], []).append((e["ts"], e["ts"] + e["dur"]))
    for spans in by_tid.values():
        # Parents first on start-time ties (a wave span shares its t0 with
        # its first phase span — they reuse the same perf_counter tick).
        spans.sort(key=lambda s: (s[0], -s[1]))
        for i, (a0, a1) in enumerate(spans):
            for b0, b1 in spans[i + 1 :]:
                if b0 >= a1 - eps:
                    continue  # disjoint
                assert b1 <= a1 + eps, f"partial overlap: ({a0},{a1}) vs ({b0},{b1})"

    # Instant events carry the required scope field.
    assert all(e.get("s") == "t" for e in events if e["ph"] == "i")


def test_trace_has_expected_span_names():
    tracer = Tracer()
    _run("hier", "fedavg", tracer)
    names = {r["name"] for r in tracer.records}
    assert {"round", "edge_round", "local_update", "comm_send"} <= names
    assert set(PHASES) <= names


# ------------------------------------------------------------------- registry
def test_metric_key_and_basic_metrics():
    assert metric_key("x", {}) == "x"
    assert metric_key("x", {"b": 1, "a": "y"}) == "x{a=y,b=1}"
    registry = MetricsRegistry(algorithm="fedavg")
    registry.counter("hits", tier="flat").inc()
    registry.counter("hits", tier="flat").inc(2)
    registry.gauge("depth").set(3.5)
    snap = registry.snapshot()
    assert snap["labels"] == {"algorithm": "fedavg"}
    assert snap["counters"]["hits{tier=flat}"] == 3
    assert snap["gauges"]["depth"] == 3.5


def test_histogram_percentiles_without_touching_run_rng():
    state_before = np.random.get_state()[1].copy()
    hist = Histogram()
    for v in range(1, 1001):
        hist.observe(float(v))
    summary = hist.summary()
    assert summary["count"] == 1000
    assert summary["min"] == 1.0 and summary["max"] == 1000.0
    assert 400 <= summary["p50"] <= 600
    assert 900 <= summary["p95"] <= 1000
    # The reservoir's private RNG never touches numpy's global stream.
    assert np.array_equal(state_before, np.random.get_state()[1])


def test_absorb_runner_all_tiers():
    runner, _ = _run("hier", "iiadmm", None)
    registry = MetricsRegistry(algorithm="iiadmm")
    registry.absorb_runner(runner)
    snap = registry.snapshot()
    assert snap["counters"][metric_key("comm_bytes", {"tier": "client_edge"})] > 0
    assert snap["counters"][metric_key("comm_bytes", {"tier": "edge_root"})] > 0
    for phase in PHASES:
        assert metric_key("phase_seconds", {"phase": phase, "tier": "run"}) in snap["gauges"]
    assert snap["gauges"]["rounds_completed"] == ROUNDS
    text = render_metrics(snap)
    assert "comm_bytes{tier=client_edge}" in text


# ------------------------------------------------------------ unified phases
@pytest.mark.parametrize("mode", ("sync", "async", "hier", "hier_async"))
def test_phase_keys_are_canonical(mode):
    runner, history = _run(mode, "fedavg", None)
    assert set(runner.phase_seconds) == set(PHASES)
    assert history.rounds[0].phase_seconds is not None
    assert set(history.rounds[0].phase_seconds) == set(PHASES)


# ------------------------------------------------------------------ reporting
def test_format_history_json():
    _, history = _run("hier", "fedavg", None)
    lines = format_history(history, fmt="json").splitlines()
    assert len(lines) == len(history.rounds)
    field_names = {f.name for f in __import__("dataclasses").fields(RoundResult)}
    for line, result in zip(lines, history.rounds):
        row = json.loads(line)
        assert set(row) == field_names
        assert row["round"] == result.round
        assert row["comm_bytes"] == result.comm_bytes
        assert row["participating_clients"] == list(result.participating_clients)
    with pytest.raises(ValueError):
        format_history(history, fmt="xml")


def test_obsreport_renders_all_sections(tmp_path):
    tracer = Tracer()
    runner, _ = _run("hier", "fedavg", tracer)
    path = tracer.write_jsonl(tmp_path / "trace.jsonl")
    report = render_report(load_trace(path), top=3)
    assert "Phase breakdown per tier" in report
    assert "Top-3 slowest clients" in report
    assert "Top-3 slowest edges" in report
    assert "Bytes by hop and codec stage" in report


def test_checkpoint_spans(tmp_path):
    from repro.scale import RunCheckpoint

    runner, _ = _run("sync", "fedavg", None)
    tracer = Tracer()
    with use_tracer(tracer):
        ckpt = RunCheckpoint.capture(runner)
        fresh = _build("sync", "fedavg")
        ckpt.restore(fresh)
    names = [r["name"] for r in tracer.records if r["type"] == "span"]
    assert "checkpoint_capture" in names
    assert "checkpoint_restore" in names
    caps = [r for r in tracer.records if r["name"] == "checkpoint_capture"]
    assert caps[0]["kind"] == "sync" and caps[0]["nbytes"] == len(ckpt.to_bytes())
