"""Tests for datasets, data loaders, partitioners, transforms, and synthetic data."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data import (
    DATASET_SPECS,
    ConcatDataset,
    DataLoader,
    FlattenTransform,
    Normalize,
    Compose,
    Subset,
    TensorDataset,
    by_writer_partition,
    dirichlet_partition,
    iid_partition,
    load_dataset,
    partition_sizes,
    shard_partition,
    stack_dataset,
    standardize_dataset,
    synthetic_cifar10,
    synthetic_coronahack,
    synthetic_femnist,
    synthetic_mnist,
)


def small_dataset(n=20, num_classes=4, seed=0):
    rng = np.random.default_rng(seed)
    x = rng.standard_normal((n, 3))
    y = rng.integers(0, num_classes, n)
    return TensorDataset(x, y)


class TestTensorDataset:
    def test_len_and_getitem(self):
        ds = small_dataset(10)
        assert len(ds) == 10
        x, y = ds[3]
        assert x.shape == (3,)
        assert isinstance(y, int)

    def test_length_mismatch_raises(self):
        with pytest.raises(ValueError):
            TensorDataset(np.zeros((5, 2)), np.zeros(4))

    def test_num_classes(self):
        ds = TensorDataset(np.zeros((4, 1)), np.array([0, 2, 1, 2]))
        assert ds.num_classes == 3

    def test_num_classes_empty(self):
        assert TensorDataset(np.zeros((0, 1)), np.zeros(0)).num_classes == 0

    def test_subset(self):
        ds = small_dataset(10)
        sub = Subset(ds, [2, 5, 7])
        assert len(sub) == 3
        np.testing.assert_allclose(sub[1][0], ds[5][0])

    def test_concat(self):
        a, b = small_dataset(5, seed=1), small_dataset(7, seed=2)
        cat = ConcatDataset([a, b])
        assert len(cat) == 12
        np.testing.assert_allclose(cat[6][0], b[1][0])
        np.testing.assert_allclose(cat[-1][0], b[6][0])

    def test_concat_empty_raises(self):
        with pytest.raises(ValueError):
            ConcatDataset([])

    def test_concat_out_of_range(self):
        cat = ConcatDataset([small_dataset(3)])
        with pytest.raises(IndexError):
            cat[10]

    def test_stack_dataset_on_subset(self):
        ds = small_dataset(10)
        x, y = stack_dataset(Subset(ds, [0, 1]))
        assert x.shape == (2, 3)
        assert y.shape == (2,)


class TestDataLoader:
    def test_batch_shapes(self):
        ds = small_dataset(23)
        loader = DataLoader(ds, batch_size=8)
        batches = list(loader)
        assert [len(b[0]) for b in batches] == [8, 8, 7]
        assert len(loader) == 3

    def test_drop_last(self):
        loader = DataLoader(small_dataset(23), batch_size=8, drop_last=True)
        assert len(loader) == 2
        assert all(len(x) == 8 for x, _ in loader)

    def test_shuffle_changes_order_but_not_content(self):
        ds = small_dataset(50)
        loader = DataLoader(ds, batch_size=50, shuffle=True, rng=np.random.default_rng(0))
        x1, y1 = next(iter(loader))
        x_ref, y_ref = ds.arrays()
        assert not np.allclose(x1, x_ref)
        np.testing.assert_allclose(np.sort(x1.sum(axis=1)), np.sort(x_ref.sum(axis=1)))

    def test_no_shuffle_preserves_order(self):
        ds = small_dataset(10)
        loader = DataLoader(ds, batch_size=10, shuffle=False)
        x, y = next(iter(loader))
        np.testing.assert_allclose(x, ds.inputs)

    def test_full_batch(self):
        ds = small_dataset(15)
        x, y = DataLoader(ds, batch_size=4).full_batch()
        assert len(x) == 15

    def test_invalid_batch_size(self):
        with pytest.raises(ValueError):
            DataLoader(small_dataset(5), batch_size=0)

    def test_num_samples(self):
        assert DataLoader(small_dataset(9), batch_size=2).num_samples == 9

    @given(st.integers(1, 50), st.integers(1, 16))
    @settings(max_examples=30, deadline=None)
    def test_batches_cover_all_samples(self, n, bs):
        ds = small_dataset(n)
        loader = DataLoader(ds, batch_size=bs, shuffle=True, rng=np.random.default_rng(1))
        total = sum(len(x) for x, _ in loader)
        assert total == n


class TestPartitioners:
    def test_iid_partition_sizes(self):
        clients = iid_partition(small_dataset(103), 4, rng=np.random.default_rng(0))
        sizes = partition_sizes(clients)
        assert sizes.sum() == 103
        assert sizes.max() - sizes.min() <= 1

    def test_iid_partition_disjoint(self):
        ds = small_dataset(40)
        clients = iid_partition(ds, 4, rng=np.random.default_rng(0))
        all_idx = np.concatenate([c.indices for c in clients])
        assert len(np.unique(all_idx)) == 40

    def test_iid_too_many_clients(self):
        with pytest.raises(ValueError):
            iid_partition(small_dataset(3), 10)

    def test_iid_invalid_clients(self):
        with pytest.raises(ValueError):
            iid_partition(small_dataset(3), 0)

    def test_shard_partition_label_concentration(self):
        rng = np.random.default_rng(0)
        x = rng.standard_normal((200, 2))
        y = np.repeat(np.arange(10), 20)
        ds = TensorDataset(x, y)
        clients = shard_partition(ds, 10, shards_per_client=2, rng=rng)
        # Each client should see at most ~3 distinct labels (2 shards).
        for c in clients:
            _, labels = stack_dataset(c)
            assert len(np.unique(labels)) <= 3
        assert partition_sizes(clients).sum() == 200

    def test_dirichlet_partition_covers_all(self):
        ds = small_dataset(300, num_classes=5)
        clients = dirichlet_partition(ds, 6, alpha=0.3, rng=np.random.default_rng(0))
        assert partition_sizes(clients).sum() == 300
        assert all(len(c) >= 1 for c in clients)

    def test_dirichlet_alpha_validation(self):
        with pytest.raises(ValueError):
            dirichlet_partition(small_dataset(10), 2, alpha=0.0)

    def test_dirichlet_skew_increases_with_small_alpha(self):
        ds = small_dataset(2000, num_classes=10, seed=3)

        def label_entropy(clients):
            ents = []
            for c in clients:
                _, labels = stack_dataset(c)
                counts = np.bincount(labels, minlength=10).astype(float)
                p = counts / counts.sum()
                p = p[p > 0]
                ents.append(-(p * np.log(p)).sum())
            return np.mean(ents)

        skewed = dirichlet_partition(ds, 10, alpha=0.05, rng=np.random.default_rng(0))
        uniform = dirichlet_partition(ds, 10, alpha=100.0, rng=np.random.default_rng(0))
        assert label_entropy(skewed) < label_entropy(uniform)

    def test_by_writer_partition(self):
        ds = small_dataset(12)
        writers = np.array([0, 0, 1, 1, 1, 2, 2, 2, 2, 3, 3, 3])
        clients = by_writer_partition(ds, writers)
        assert len(clients) == 4
        assert [len(c) for c in clients] == [2, 3, 4, 3]

    def test_by_writer_length_mismatch(self):
        with pytest.raises(ValueError):
            by_writer_partition(small_dataset(5), [0, 1])


class TestSyntheticDatasets:
    @pytest.mark.parametrize(
        "maker,name",
        [
            (synthetic_mnist, "mnist"),
            (synthetic_cifar10, "cifar10"),
            (synthetic_coronahack, "coronahack"),
        ],
    )
    def test_shapes_match_spec(self, maker, name):
        train, test = maker(train_size=64, test_size=16)
        spec = DATASET_SPECS[name]
        assert train.inputs.shape == (64,) + spec.image_shape
        assert test.inputs.shape == (16,) + spec.image_shape
        assert train.labels.max() < spec.num_classes

    def test_determinism_same_seed(self):
        a, _ = synthetic_mnist(train_size=32, test_size=8, seed=7)
        b, _ = synthetic_mnist(train_size=32, test_size=8, seed=7)
        np.testing.assert_allclose(a.inputs, b.inputs)

    def test_different_seeds_differ(self):
        a, _ = synthetic_mnist(train_size=32, test_size=8, seed=1)
        b, _ = synthetic_mnist(train_size=32, test_size=8, seed=2)
        assert not np.allclose(a.inputs, b.inputs)

    def test_synthetic_is_learnable_by_linear_model(self):
        # A linear classifier should beat chance comfortably on the prototype data.
        train, test = synthetic_mnist(train_size=500, test_size=200, seed=0)
        xtr = train.inputs.reshape(len(train), -1)
        xte = test.inputs.reshape(len(test), -1)
        # One-vs-all least squares.
        onehot = np.eye(10)[train.labels]
        W = np.linalg.lstsq(xtr, onehot, rcond=None)[0]
        acc = (xte @ W).argmax(axis=1).mean() if False else ((xte @ W).argmax(axis=1) == test.labels).mean()
        assert acc > 0.5

    def test_femnist_writer_structure(self):
        train, test, writer_ids = synthetic_femnist(num_writers=20, samples_per_writer=(5, 30), seed=0)
        assert len(writer_ids) == len(train)
        clients = by_writer_partition(train, writer_ids)
        assert len(clients) == 20
        sizes = partition_sizes(clients)
        assert sizes.min() >= 1
        # Unbalanced: not all writers contribute the same number of samples.
        assert sizes.max() > sizes.min()

    def test_femnist_invalid_samples_per_writer(self):
        with pytest.raises(ValueError):
            synthetic_femnist(num_writers=3, samples_per_writer=(0, 5))

    def test_femnist_label_skew(self):
        train, _, writer_ids = synthetic_femnist(num_writers=10, samples_per_writer=(30, 60), seed=1, num_classes=10)
        clients = by_writer_partition(train, writer_ids)
        # Each writer's label distribution should be skewed (few dominant classes).
        for c in clients[:5]:
            _, labels = stack_dataset(c)
            counts = np.bincount(labels, minlength=10)
            assert counts.max() > len(labels) / 10


class TestLoadDataset:
    def test_load_mnist_default_clients(self):
        clients, test, spec = load_dataset("mnist", train_size=80, test_size=20)
        assert len(clients) == 4
        assert spec.name == "mnist"
        assert partition_sizes(clients).sum() == 80

    def test_load_femnist_num_clients(self):
        clients, test, spec = load_dataset("femnist", num_clients=12, train_size=240)
        assert len(clients) == 12
        assert spec.num_classes == 62

    def test_load_unknown_raises(self):
        with pytest.raises(KeyError):
            load_dataset("imagenet")

    def test_load_coronahack(self):
        clients, test, spec = load_dataset("coronahack", num_clients=3, train_size=60, test_size=12)
        assert len(clients) == 3
        assert spec.num_classes == 3


class TestTransforms:
    def test_normalize(self):
        t = Normalize(mean=[1.0], std=[2.0])
        x = np.full((1, 4, 4), 3.0)
        np.testing.assert_allclose(t(x), np.ones((1, 4, 4)))

    def test_normalize_zero_std_raises(self):
        with pytest.raises(ValueError):
            Normalize(mean=[0.0], std=[0.0])

    def test_flatten_transform(self):
        assert FlattenTransform()(np.zeros((3, 4, 4))).shape == (48,)

    def test_compose(self):
        t = Compose([Normalize([0.0], [2.0]), FlattenTransform()])
        out = t(np.full((1, 2, 2), 4.0))
        np.testing.assert_allclose(out, np.full(4, 2.0))

    def test_standardize(self):
        x = np.random.default_rng(0).normal(5, 3, (100, 10))
        z = standardize_dataset(x)
        assert abs(z.mean()) < 1e-10
        assert abs(z.std() - 1) < 1e-10

    def test_standardize_constant_input(self):
        z = standardize_dataset(np.full((5, 5), 2.0))
        np.testing.assert_allclose(z, 0.0)
