"""Tests for the cluster/device simulator."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.simulator import (
    A100,
    CPU_DEVICE,
    DEVICE_CATALOG,
    V100,
    Cluster,
    DeviceSpec,
    LocalUpdateCostModel,
    Node,
    RoundEvent,
    SimulationTrace,
    assign_clients_to_ranks,
    rank_compute_times,
    summit_cluster,
    swing_cluster,
)


class TestDevices:
    def test_catalog(self):
        assert set(DEVICE_CATALOG) == {"A100", "V100", "CPU"}

    def test_a100_faster_than_v100(self):
        assert A100.step_time(1000) < V100.step_time(1000)

    def test_paper_heterogeneity_ratio(self):
        """Section IV-E: one local update is ~1.64x faster on A100 than V100."""
        cost = LocalUpdateCostModel(local_steps=10, per_round_overhead=0.0)
        samples = 181  # average FEMNIST client shard
        ratio = cost.local_update_time(V100, samples) / cost.local_update_time(A100, samples)
        assert ratio == pytest.approx(1.64, rel=0.05)

    def test_paper_absolute_times(self):
        """Section IV-E: ~6.96 s on V100, ~4.24 s on A100."""
        cost = LocalUpdateCostModel(local_steps=10, per_round_overhead=0.0)
        assert cost.local_update_time(V100, 181) == pytest.approx(6.96, rel=0.05)
        assert cost.local_update_time(A100, 181) == pytest.approx(4.24, rel=0.05)

    def test_step_time_validation(self):
        with pytest.raises(ValueError):
            A100.step_time(-1)

    def test_cost_model_validation(self):
        with pytest.raises(ValueError):
            LocalUpdateCostModel(local_steps=0).local_update_time(A100, 10)

    def test_overhead_added(self):
        cost = LocalUpdateCostModel(local_steps=1, per_round_overhead=0.5)
        assert cost.local_update_time(CPU_DEVICE, 0) == pytest.approx(0.5)

    @given(st.integers(0, 10_000))
    @settings(max_examples=30, deadline=None)
    def test_time_monotone_in_samples(self, n):
        cost = LocalUpdateCostModel()
        assert cost.local_update_time(V100, n + 1) > cost.local_update_time(V100, n)


class TestCluster:
    def test_summit_shape(self):
        cluster = summit_cluster(num_nodes=34)
        assert cluster.num_nodes == 34
        assert cluster.num_devices == 34 * 6
        assert all(d.name == "V100" for d in cluster.devices())

    def test_swing_shape(self):
        cluster = swing_cluster(num_nodes=6)
        assert cluster.num_devices == 48
        assert all(d.name == "A100" for d in cluster.devices())

    def test_invalid_nodes(self):
        with pytest.raises(ValueError):
            summit_cluster(0)
        with pytest.raises(ValueError):
            swing_cluster(-1)

    def test_device_for_rank_round_robin(self):
        cluster = Cluster("tiny", [Node("n0", (A100, V100))])
        assert cluster.device_for_rank(0) is A100
        assert cluster.device_for_rank(1) is V100
        assert cluster.device_for_rank(2) is A100

    def test_device_for_rank_empty(self):
        with pytest.raises(ValueError):
            Cluster("empty").device_for_rank(0)

    def test_node_properties(self):
        node = Node("n", (A100, A100, V100))
        assert node.num_devices == 3


class TestScheduler:
    def test_even_assignment(self):
        cluster = summit_cluster(2)
        assignments = assign_clients_to_ranks(203, 5, cluster)
        sizes = [a.num_clients for a in assignments]
        assert sum(sizes) == 203
        assert max(sizes) - min(sizes) <= 1
        assert sorted(c for a in assignments for c in a.client_ids) == list(range(203))

    def test_one_client_per_rank(self):
        cluster = summit_cluster(34)
        assignments = assign_clients_to_ranks(203, 203, cluster)
        assert all(a.num_clients == 1 for a in assignments)

    def test_invalid_ranks(self):
        cluster = summit_cluster(1)
        with pytest.raises(ValueError):
            assign_clients_to_ranks(10, 0, cluster)
        with pytest.raises(ValueError):
            assign_clients_to_ranks(3, 10, cluster)

    def test_rank_compute_times_scale_with_clients(self):
        cluster = summit_cluster(2)
        cost = LocalUpdateCostModel()
        counts = np.full(100, 200)
        few_ranks = rank_compute_times(assign_clients_to_ranks(100, 5, cluster), counts, cost)
        many_ranks = rank_compute_times(assign_clients_to_ranks(100, 50, cluster), counts, cost)
        assert np.mean(list(few_ranks.values())) > np.mean(list(many_ranks.values()))

    def test_rank_compute_times_sum_invariant(self):
        """Total compute across ranks is independent of the number of ranks (same device)."""
        cluster = summit_cluster(40)
        cost = LocalUpdateCostModel()
        counts = np.random.default_rng(0).integers(20, 400, 203)
        t5 = sum(rank_compute_times(assign_clients_to_ranks(203, 5, cluster), counts, cost).values())
        t203 = sum(rank_compute_times(assign_clients_to_ranks(203, 203, cluster), counts, cost).values())
        assert t5 == pytest.approx(t203)


class TestTrace:
    def make_trace(self):
        trace = SimulationTrace()
        for rnd in range(3):
            trace.add(RoundEvent(rnd, 0, compute_seconds=4.0, comm_seconds=1.0))
            trace.add(RoundEvent(rnd, 1, compute_seconds=2.0, comm_seconds=1.0))
        return trace

    def test_round_event_total(self):
        assert RoundEvent(0, 0, 2.0, 0.5).total_seconds == pytest.approx(2.5)

    def test_average_round_time_uses_slowest_rank(self):
        assert self.make_trace().average_round_time() == pytest.approx(5.0)

    def test_skip_rounds(self):
        trace = self.make_trace()
        trace.add(RoundEvent(0, 2, compute_seconds=100.0, comm_seconds=0.0))
        assert trace.average_round_time(skip_rounds=[0]) == pytest.approx(5.0)

    def test_comm_percentage(self):
        trace = self.make_trace()
        # rank 0: 1/5 = 20%; rank 1: 1/3 = 33.3%; mean = 26.67%
        assert trace.average_comm_percentage() == pytest.approx((20.0 + 100 / 3) / 2)

    def test_totals(self):
        trace = self.make_trace()
        assert trace.total_compute_seconds() == pytest.approx(18.0)
        assert trace.total_comm_seconds() == pytest.approx(6.0)

    def test_empty_trace(self):
        trace = SimulationTrace()
        assert trace.average_round_time() == 0.0
        assert trace.average_comm_percentage() == 0.0
        assert trace.rounds() == []

    def test_rounds_and_len_and_extend(self):
        trace = self.make_trace()
        assert trace.rounds() == [0, 1, 2]
        assert len(trace) == 6
        trace.extend([RoundEvent(3, 0, 1.0, 1.0)])
        assert len(trace) == 7
