"""Regression tests for the zero-copy flat-parameter engine, the dtype
pipeline, and parallel client execution (see repro.core.base docstring)."""

import numpy as np
import pytest

from repro import nn
from repro.comm import state_dict_nbytes
from repro.core import (
    FLConfig,
    MLP,
    ModelVectorizer,
    PaperCNN,
    build_federation,
)
from repro.data import TensorDataset, iid_partition


def tiny_model(seed=0):
    return MLP(6, 3, hidden_sizes=(8,), rng=np.random.default_rng(seed))


def tiny_dataset(n=60, dim=6, classes=3, seed=0):
    rng = np.random.default_rng(seed)
    centers = rng.standard_normal((classes, dim)) * 3.0
    y = rng.integers(0, classes, n)
    x = centers[y] + rng.standard_normal((n, dim))
    return TensorDataset(x, y)


def run_federation(algorithm="iiadmm", rounds=3, epsilon=None, **cfg_kwargs):
    train = tiny_dataset(90)
    test = tiny_dataset(45, seed=1)
    clients = iid_partition(train, 3, rng=np.random.default_rng(0))
    config = FLConfig(
        algorithm=algorithm,
        num_rounds=rounds,
        local_steps=2,
        batch_size=16,
        rho=2.0,
        zeta=2.0,
        lr=0.05,
        seed=0,
        **cfg_kwargs,
    )
    if epsilon is not None:
        config = config.with_privacy(epsilon)
    runner = build_federation(
        config, lambda: tiny_model(7), clients, test
    )
    history = runner.run()
    return runner, history


class TestFlatBufferAliasing:
    def test_params_are_views_into_flat_buffer(self):
        model = tiny_model()
        vec = ModelVectorizer(model)
        for _, p in model.named_parameters():
            assert np.shares_memory(p.data, vec.flat_params)
            assert np.shares_memory(p.grad, vec.flat_grads)

    def test_views_survive_load_state_dict(self):
        model = tiny_model()
        vec = ModelVectorizer(model)
        model.load_state_dict(tiny_model(seed=3).state_dict())
        for _, p in model.named_parameters():
            assert np.shares_memory(p.data, vec.flat_params)
        # The buffer reflects the newly loaded values.
        np.testing.assert_array_equal(vec.flat_params, vec.to_vector())

    def test_views_survive_optimizer_step(self):
        model = tiny_model()
        vec = ModelVectorizer(model)
        x = np.random.default_rng(0).standard_normal((8, 6))
        y = np.array([0, 1, 2, 0, 1, 2, 0, 1])
        opt = nn.SGD(model.parameters(), lr=0.1, momentum=0.9)
        before = vec.to_vector()
        nn.CrossEntropyLoss()(model(nn.Tensor(x)), y).backward()
        opt.step()
        for _, p in model.named_parameters():
            assert np.shares_memory(p.data, vec.flat_params)
        assert np.linalg.norm(vec.flat_params - before) > 0

    def test_load_vector_writes_through_views(self):
        model = tiny_model()
        vec = ModelVectorizer(model)
        vec.load_vector(np.zeros(vec.dim))
        for _, p in model.named_parameters():
            assert np.all(p.data == 0.0)
            assert np.shares_memory(p.data, vec.flat_params)

    def test_grad_buffer_accumulates_and_zeroes_in_place(self):
        model = tiny_model()
        vec = ModelVectorizer(model)
        x = np.random.default_rng(1).standard_normal((5, 6))
        y = np.array([0, 1, 2, 0, 1])
        nn.CrossEntropyLoss()(model(nn.Tensor(x)), y).backward()
        g = vec.grad_vector()
        assert g is vec.flat_grads  # zero-copy view
        assert np.linalg.norm(g) > 0
        model.zero_grad()
        assert np.all(vec.flat_grads == 0.0)
        for _, p in model.named_parameters():
            assert np.shares_memory(p.grad, vec.flat_grads)

    def test_optimizer_skips_params_without_gradients(self):
        """Pinned (never-None) grad buffers must not break the optimizers'
        'received no gradient -> skip' contract, e.g. under weight decay."""

        class TwoHeads(nn.Module):
            def __init__(self):
                super().__init__()
                self.used = nn.Linear(4, 2, rng=np.random.default_rng(0))
                self.unused = nn.Linear(4, 2, rng=np.random.default_rng(1))

            def forward(self, x):
                return self.used(x)

        model = TwoHeads()
        ModelVectorizer(model)  # flat engine pins all gradients
        frozen_before = model.unused.weight.data.copy()
        x = np.random.default_rng(2).standard_normal((6, 4))
        opt = nn.SGD(model.parameters(), lr=0.1, weight_decay=0.01)
        model.zero_grad()
        nn.CrossEntropyLoss()(model(nn.Tensor(x)), np.array([0, 1, 0, 1, 0, 1])).backward()
        opt.step()
        assert model.used.weight.has_grad
        assert not model.unused.weight.has_grad
        np.testing.assert_array_equal(model.unused.weight.data, frozen_before)

    def test_copy_mode_preserves_seed_semantics(self):
        model = tiny_model()
        vec = ModelVectorizer(model, mode="copy")
        for _, p in model.named_parameters():
            assert not p._grad_pinned
        v = vec.to_vector()
        v[:] = 0.0  # snapshot: mutating it must not touch the model
        assert np.linalg.norm(vec.to_vector()) > 0


class TestDtypePipeline:
    def test_float32_halves_payload_bytes(self):
        r64, _ = run_federation(dtype="float64", rounds=1)
        r32, _ = run_federation(dtype="float32", rounds=1)
        n64 = state_dict_nbytes(r64.server.model.state_dict())
        n32 = state_dict_nbytes(r32.server.model.state_dict())
        assert n64 == 2 * n32
        assert r32.history.rounds[0].comm_bytes * 2 == r64.history.rounds[0].comm_bytes

    def test_float32_pipeline_stays_float32(self):
        runner, _ = run_federation(dtype="float32", rounds=2)
        assert runner.server.global_params.dtype == np.float32
        for client in runner.clients:
            assert client.vectorizer.flat_params.dtype == np.float32
            assert client.vectorizer.flat_grads.dtype == np.float32

    @pytest.mark.parametrize("algorithm", ["fedavg", "iiadmm", "iceadmm"])
    def test_flat_float64_matches_copy_engine_bitwise(self, algorithm):
        r_flat, h_flat = run_federation(algorithm, engine="flat", dtype="float64")
        r_copy, h_copy = run_federation(algorithm, engine="copy", dtype="float64")
        np.testing.assert_array_equal(r_flat.server.global_params, r_copy.server.global_params)
        for a, b in zip(h_flat.rounds, h_copy.rounds):
            assert a.test_accuracy == b.test_accuracy
            assert a.test_loss == b.test_loss

    def test_copy_engine_rejects_float32(self):
        with pytest.raises(ValueError):
            FLConfig(engine="copy", dtype="float32")

    def test_float32_learns_comparably(self):
        _, h32 = run_federation(dtype="float32", rounds=4)
        _, h64 = run_federation(dtype="float64", rounds=4)
        assert abs(h32.final_accuracy - h64.final_accuracy) < 0.1


class TestParallelClients:
    @pytest.mark.parametrize("algorithm", ["fedavg", "iiadmm"])
    def test_parallel_matches_serial_bitwise(self, algorithm):
        r_ser, h_ser = run_federation(algorithm, parallel_clients=1)
        r_par, h_par = run_federation(algorithm, parallel_clients=3)
        assert r_par.max_workers == 3
        np.testing.assert_array_equal(r_ser.server.global_params, r_par.server.global_params)
        for a, b in zip(h_ser.rounds, h_par.rounds):
            assert a.test_accuracy == b.test_accuracy
            assert a.test_loss == b.test_loss

    def test_parallel_matches_serial_under_privacy(self):
        # Per-client RNGs make DP noise draws independent of thread schedule.
        _, h_ser = run_federation("iiadmm", parallel_clients=1, epsilon=5.0)
        _, h_par = run_federation("iiadmm", parallel_clients=3, epsilon=5.0)
        for a, b in zip(h_ser.rounds, h_par.rounds):
            assert a.test_loss == b.test_loss

    def test_round_records_phase_timings(self):
        _, history = run_federation(rounds=1)
        phases = history.rounds[0].phase_seconds
        assert set(phases) == {"broadcast", "local_update", "gather", "aggregate", "evaluate"}
        assert phases["local_update"] > 0


class TestKernelFastPaths:
    def test_conv_pool_kernels_match_legacy(self):
        """Pooled-buffer K-major conv + aligned pooling == seed kernels."""
        rng = np.random.default_rng(0)
        x = rng.standard_normal((4, 1, 12, 12))
        y = np.array([0, 1, 2, 0])

        def grads(legacy):
            model = PaperCNN(1, 3, image_size=(12, 12), hidden=8, conv_channels=(3, 4),
                             rng=np.random.default_rng(5))
            vec = ModelVectorizer(model)
            if legacy:
                with nn.functional.legacy_kernels():
                    loss = nn.CrossEntropyLoss()(model(nn.Tensor(x)), y)
                    loss.backward()
            else:
                loss = nn.CrossEntropyLoss()(model(nn.Tensor(x)), y)
                loss.backward()
            return float(loss.item()), vec.grad_vector().copy()

        loss_new, g_new = grads(False)
        loss_old, g_old = grads(True)
        assert loss_new == pytest.approx(loss_old, rel=1e-12)
        np.testing.assert_allclose(g_new, g_old, rtol=1e-9, atol=1e-12)

    def test_conv_output_never_aliases_pooled_buffer(self):
        """With a size-1 batch the transposed GEMM output is already
        contiguous; the conv result must still be a private copy, not a view
        of the pooled buffer the next same-geometry conv overwrites."""
        from repro.nn import functional as F

        rng = np.random.default_rng(0)
        w = nn.Tensor(rng.standard_normal((3, 2, 3, 3)))
        x1 = nn.Tensor(rng.standard_normal((1, 2, 6, 6)))
        x2 = nn.Tensor(rng.standard_normal((1, 2, 6, 6)))
        out1 = F.conv2d(x1, w, padding=1)
        snapshot = out1.data.copy()
        F.conv2d(x2, w, padding=1)
        np.testing.assert_array_equal(out1.data, snapshot)

    def test_conv_buffer_pool_reuse_is_stable(self):
        """Two identical batches through pooled buffers give identical grads."""
        rng = np.random.default_rng(0)
        x = rng.standard_normal((3, 1, 8, 8))
        y = np.array([0, 1, 0])
        model = PaperCNN(1, 2, image_size=(8, 8), hidden=4, conv_channels=(2, 3),
                         rng=np.random.default_rng(9))
        vec = ModelVectorizer(model)
        results = []
        for _ in range(2):
            vec.zero_grad()
            nn.CrossEntropyLoss()(model(nn.Tensor(x)), y).backward()
            results.append(vec.grad_vector().copy())
        np.testing.assert_array_equal(results[0], results[1])


class TestDataLoaderFastPath:
    def test_full_batch_no_shuffle_serves_arrays_directly(self):
        from repro.data import DataLoader

        ds = tiny_dataset(10)
        loader = DataLoader(ds, batch_size=32, shuffle=False)
        x, y = next(iter(loader))
        # Zero-copy views of the materialised arrays, read-only so consumer
        # mutation cannot corrupt the cached dataset.
        assert np.shares_memory(x, loader._inputs) and np.shares_memory(y, loader._labels)
        assert not x.flags.writeable
        with pytest.raises(ValueError):
            x[0] = 0.0

    def test_dtype_cast_happens_once(self):
        from repro.data import DataLoader

        ds = tiny_dataset(10)
        loader = DataLoader(ds, batch_size=4, dtype=np.float32)
        for x, _ in loader:
            assert x.dtype == np.float32
