"""Client-virtualization tests: ClientStateStore, virtual runners, 10k scale.

Covers the ISSUE 4 acceptance bar directly:

* a 10,000-client FedAvg (sync) and IIADMM (async) run completes under a
  configured live-client cap, with peak client-state memory bounded by the
  cap — asserted via the store's own accounting;
* eager mode (plain client lists) is bit-for-bit unchanged, and the virtual
  runners reproduce the eager histories bitwise for all three algorithms.
"""

import numpy as np
import pytest

from repro.asyncfl import FedBuffStrategy, UniformSampler, build_async_federation
from repro.core import FLConfig, build_federation, build_model
from repro.core.models import MLP
from repro.data import TensorDataset, load_dataset
from repro.harness.scaling import PopulationSweepSettings, make_population
from repro.scale import (
    ClientStateStore,
    build_virtual_async_federation,
    build_virtual_federation,
    make_client_factory,
)

NUM_CLIENTS = 6


def _workload():
    return load_dataset("mnist", num_clients=NUM_CLIENTS, train_size=120, test_size=60, seed=0)


def _config(algorithm, **kwargs):
    defaults = dict(
        num_rounds=3, local_steps=2, batch_size=32, lr=0.03, rho=10.0, zeta=10.0, seed=0
    )
    defaults.update(kwargs)
    return FLConfig(algorithm=algorithm, **defaults)


def _model_fn(spec):
    return lambda: build_model("mlp", spec.image_shape, spec.num_classes, rng=np.random.default_rng(7))


def _key(history):
    return [
        (r.round, r.test_accuracy, r.test_loss, r.comm_bytes, r.wall_clock_seconds, r.participating_clients)
        for r in history.rounds
    ]


def _make_store(algorithm="iiadmm", num_clients=NUM_CLIENTS, live_cap=2, **store_kwargs):
    clients, _, spec = _workload()
    config = _config(algorithm)
    model_fn = _model_fn(spec)
    initial = model_fn().state_dict()
    factory = make_client_factory(config, model_fn, clients, initial)
    return ClientStateStore(factory, num_clients, live_cap, config=config, **store_kwargs), config


# ------------------------------------------------------------------ the store
class TestClientStateStore:
    def test_checkout_materialises_and_pins(self):
        store, _ = _make_store(live_cap=2)
        a = store.checkout(0)
        b = store.checkout(1)
        assert store.live_count == 2 and store.pinned_count == 2
        # cap reached and everyone pinned: a third checkout must fail loudly
        with pytest.raises(RuntimeError, match="live_cap"):
            store.checkout(2)
        store.release(0)
        c = store.checkout(2)  # evicts client 0
        assert store.live_count == 2
        assert not store.is_live(0) and store.blob_nbytes(0) > 0
        assert a.client_id == 0 and b.client_id == 1 and c.client_id == 2

    def test_checkout_of_live_client_is_a_hit(self):
        store, _ = _make_store()
        first = store.checkout(0)
        again = store.checkout(0)
        assert first is again
        assert store.stats.hits == 1 and store.stats.materializations == 1
        store.release(0)
        store.release(0)

    def test_nested_pins_stack(self):
        store, _ = _make_store(live_cap=1)
        store.checkout(0)
        store.checkout(0)
        store.release(0)
        # still pinned once: cannot be evicted for another client
        with pytest.raises(RuntimeError):
            store.checkout(1)
        store.release(0)
        store.checkout(1)

    def test_release_without_checkout_fails(self):
        store, _ = _make_store()
        with pytest.raises(RuntimeError, match="matching checkout"):
            store.release(0)

    def test_eviction_round_trips_state_bitwise(self):
        store, _ = _make_store(live_cap=1)
        client = store.checkout(0)
        client.dual[:] = np.linspace(-1.0, 1.0, client.dual.size)
        client.round = 7
        rng_draw_expected = None
        state = {"dual": client.dual.copy(), "rng": client.rng.bit_generator.state}
        store.release(0)
        store.checkout(1)  # evicts 0
        store.release(1)
        revived = store.checkout(0)  # materialise from blob
        np.testing.assert_array_equal(revived.dual, state["dual"])
        assert revived.round == 7
        assert revived.rng.bit_generator.state == state["rng"]
        store.release(0)

    @pytest.mark.parametrize("compress", [None, "zlib"])
    def test_compression_round_trip(self, compress):
        store, _ = _make_store(live_cap=1, compress=compress)
        client = store.checkout(0)
        client.dual[:] = 0.5
        store.release(0)
        store.flush()
        revived = store.checkout(0)
        assert np.all(revived.dual == 0.5)
        store.release(0)

    def test_zlib_shrinks_redundant_state(self):
        plain, _ = _make_store(live_cap=1)
        packed, _ = _make_store(live_cap=1, compress="zlib")
        for store in (plain, packed):
            client = store.checkout(0)
            # make the whole state maximally redundant (dual is already zeros)
            client.primal = np.zeros_like(client.primal)
            store.release(0)
            store.flush()
        assert packed.blob_nbytes(0) < plain.blob_nbytes(0) / 4

    def test_lossy_state_codec_bounds_error(self):
        """A PR 3 codec stack can compress the spilled state (lossily)."""
        store, _ = _make_store(live_cap=1, state_codec="fp16")
        client = store.checkout(0)
        client.dual[:] = np.linspace(-1.0, 1.0, client.dual.size)
        reference = client.dual.copy()
        store.release(0)
        store.flush()
        revived = store.checkout(0)
        assert not np.array_equal(revived.dual, reference)  # lossy…
        assert np.allclose(revived.dual, reference, atol=2.0**-10)  # …but bounded
        store.release(0)

    def test_snapshot_restore(self):
        store, _ = _make_store(live_cap=2)
        client = store.checkout(0)
        client.round = 5
        store.release(0)
        snap = store.snapshot()
        other, _ = _make_store(live_cap=2)
        other.restore(snap)
        assert other.checkout(0).round == 5


# ------------------------------------------------------- eager == virtual
class TestVirtualEquivalence:
    @pytest.mark.parametrize("algorithm", ["fedavg", "iceadmm", "iiadmm"])
    def test_sync_history_bitwise_equal(self, algorithm):
        clients, test, spec = _workload()
        config = _config(algorithm)
        eager = build_federation(config, _model_fn(spec), clients, test)
        h_eager = eager.run()
        virtual = build_virtual_federation(config, _model_fn(spec), clients, live_cap=2, test_dataset=test)
        h_virtual = virtual.run()
        assert _key(h_eager) == _key(h_virtual)
        np.testing.assert_array_equal(eager.server.global_params, virtual.server.global_params)
        assert virtual._store.stats.peak_live <= 2

    def test_sync_lossy_codec_and_parallel_waves(self):
        clients, test, spec = _workload()
        config = _config("iiadmm", codec="delta|int8", parallel_clients=2)
        eager = build_federation(config, _model_fn(spec), clients, test)
        h_eager = eager.run()
        virtual = build_virtual_federation(config, _model_fn(spec), clients, live_cap=3, test_dataset=test)
        h_virtual = virtual.run()
        assert _key(h_eager) == _key(h_virtual)
        # lossy wire: the dual replicas must still match the server bitwise
        for cid in range(NUM_CLIENTS):
            client = virtual._store.checkout(cid)
            np.testing.assert_array_equal(client.dual, virtual.server.duals[cid])
            virtual._store.release(cid)

    def test_async_history_bitwise_equal(self):
        clients, test, spec = _workload()
        config = _config("iiadmm")
        # strategy and sampler are stateful: each build needs fresh instances
        kwargs = lambda: dict(
            strategy=FedBuffStrategy(2),
            sampler=UniformSampler(NUM_CLIENTS, fraction=0.5, seed=0),
            concurrency=2,
        )
        eager = build_async_federation(config, _model_fn(spec), clients, test, **kwargs())
        h_eager = eager.run(4)
        virtual = build_virtual_async_federation(
            config, _model_fn(spec), clients, live_cap=3, test_dataset=test, **kwargs()
        )
        h_virtual = virtual.run(4)
        assert _key(h_eager) == _key(h_virtual)
        assert virtual._store.stats.peak_live <= 3
        # eager thread-pool execution must engage for store-backed populations
        # too, without changing a bit (pinned clients stay valid in workers)
        parallel = build_virtual_async_federation(
            _config("iiadmm", parallel_clients=2), _model_fn(spec), clients,
            live_cap=3, test_dataset=test, **kwargs()
        )
        h_parallel = parallel.run(4)
        assert _key(h_eager) == _key(h_parallel)
        # the eager pool really engages in store mode (clients list is empty,
        # so the gate must consult the population size, not len(clients))
        from repro.core.base import GLOBAL_KEY

        client = parallel._acquire(0)
        future = parallel._submit(client, {GLOBAL_KEY: parallel.server.global_params.copy()})
        assert future is not None
        future.result()
        parallel._release(0)

    def test_async_concurrency_must_fit_cap(self):
        clients, test, spec = _workload()
        config = _config("iiadmm")
        with pytest.raises(ValueError, match="live_cap"):
            build_virtual_async_federation(
                config, _model_fn(spec), clients, live_cap=2, concurrency=4
            )

    def test_runner_rejects_clients_and_store_together(self):
        from repro.core.runner import FederatedRunner, build_endpoints

        clients, test, spec = _workload()
        config = _config("fedavg")
        server, endpoint_clients = build_endpoints(config, _model_fn(spec), clients)
        store, _ = _make_store("fedavg")
        with pytest.raises(ValueError, match="not both"):
            FederatedRunner(server, endpoint_clients, client_store=store)


# --------------------------------------------------------------- 10k clients
def _tiny_population(population):
    settings = PopulationSweepSettings(populations=(population,), live_cap=64)
    return make_population(settings, population)


class TestTenThousandClients:
    """The acceptance bar: 10k-client runs bounded by the live-client cap."""

    def test_fedavg_sync_10k_bounded_by_cap(self):
        population, cap = 10_000, 64
        datasets, model_fn = _tiny_population(population)
        config = FLConfig(algorithm="fedavg", num_rounds=1, local_steps=1, batch_size=4, seed=0)
        runner = build_virtual_federation(config, model_fn, datasets, live_cap=cap)
        history = runner.run(1)
        assert len(history) == 1
        assert history.rounds[0].participating_clients == tuple(range(population))
        stats = runner._store.stats
        # memory bound, by store accounting: never more than `cap` live
        # clients, and everyone materialised exactly once this round
        assert stats.peak_live <= cap
        assert runner._store.live_count <= cap
        assert stats.materializations == population

    def test_iiadmm_async_10k_bounded_by_cap(self):
        population, cap = 10_000, 64
        datasets, model_fn = _tiny_population(population)
        config = FLConfig(
            algorithm="iiadmm", num_rounds=1, local_steps=1, batch_size=4, seed=0, rho=10.0, zeta=10.0
        )
        runner = build_virtual_async_federation(
            config,
            model_fn,
            datasets,
            live_cap=cap,
            strategy=FedBuffStrategy(32),
            sampler=UniformSampler(population, fraction=0.005, seed=0),
            concurrency=32,
        )
        history = runner.run(4)
        assert len(history) == 4
        stats = runner._store.stats
        assert stats.peak_live <= cap
        # the sampler only ever touched a tiny fraction of the population
        assert stats.materializations < population // 10
        # spilled state stays compact: bounded client-state memory even if
        # every idle client is spilled at once (run() pre-dispatched the next
        # in-flight cohort on exit, and in-flight clients stay pinned)
        runner._store.flush()
        assert runner._store.live_count <= 32
        assert len(runner._store._blobs) > 0
        per_client = runner._store.store_nbytes / len(runner._store._blobs)
        assert per_client < 16_000  # tiny MLP: ~2 vectors + RNG words


@pytest.mark.slow
class TestPopulationSweep:
    """The full wall-clock/RSS sweep (slow tier: `pytest -m slow`)."""

    def test_sweep_to_10k(self):
        from repro.harness.scaling import run_population_sweep

        settings = PopulationSweepSettings(populations=(100, 1_000, 10_000), live_cap=64)
        result = run_population_sweep(settings)
        rendered = result.render()
        assert "clients/GB" in rendered
        for point in result.points:
            assert point.peak_live <= settings.live_cap
            assert point.materializations >= point.num_clients
        # the store really is proportional to population (same per-client blob)
        small, large = result.point(100), result.point(10_000)
        ratio = large.store_nbytes / small.store_nbytes
        assert 80 <= ratio <= 120
        # RSS must not scale with the population: 100x more clients, far less
        # than 10x the resident set (the whole point of virtualization).
        assert large.peak_rss_mb < 10 * max(small.peak_rss_mb, 1.0)
