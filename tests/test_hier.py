"""Tests for the hierarchical multi-tier federation (ISSUE 5).

Covers the acceptance criteria:

* with identity per-hop codecs, hierarchical FedAvg/ICEADMM/IIADMM histories
  (accuracies, losses, global parameters, ADMM dual replicas) are bit-for-bit
  the flat ``FederatedRunner`` run — synchronously and for the event-driven
  runner in its synchronous-equivalent configuration;
* IIADMM's "independent but identical" dual replicas stay bitwise
  synchronised under lossy client↔edge codecs (``delta|int8``), sync and
  async, via the existing reconcile path — now between client and *edge*;
* root traffic is O(edges) packets per round, reported per tier;
* a 100k-client, 16-edge run completes under a bounded live set;
* per-edge stores are bit-identical to eager edges; hier checkpoints resume
  bitwise;
* topology/codec specs are validated at config construction with actionable
  messages.
"""

import numpy as np
import pytest

from repro.comm import SerialCommunicator, TCPLinkModel
from repro.core import FLConfig, MLP, build_federation
from repro.data import TensorDataset, iid_partition
from repro.harness.reporting import format_history
from repro.hier import (
    RootFedAsync,
    RootFedBuff,
    build_hier_async_federation,
    build_hier_federation,
    build_topology,
    majority_labels,
)
from repro.scale import RunCheckpoint


def make_dataset(n=150, dim=8, classes=3, seed=0, centers=None):
    rng = np.random.default_rng(seed)
    if centers is None:
        centers = rng.standard_normal((classes, dim)) * 3.0
    y = rng.integers(0, classes, n)
    return TensorDataset(centers[y] + rng.standard_normal((n, dim)), y)


def make_clients_and_test(num_clients=12, seed=0):
    centers = np.random.default_rng(seed + 555).standard_normal((3, 8)) * 3.0
    train = make_dataset(240, seed=seed, centers=centers)
    test = make_dataset(60, seed=seed + 100, centers=centers)
    clients = iid_partition(train, num_clients, rng=np.random.default_rng(seed))
    return clients, test


def model_fn(seed=7):
    return MLP(8, 3, hidden_sizes=(16,), rng=np.random.default_rng(seed))


def base_config(algorithm, **kwargs):
    defaults = dict(num_rounds=3, local_steps=2, batch_size=32, lr=0.05, rho=2.0, zeta=2.0, seed=0)
    defaults.update(kwargs)
    return FLConfig(algorithm=algorithm, **defaults)


def assert_same_history(a, b):
    assert [r.test_accuracy for r in a.rounds] == [r.test_accuracy for r in b.rounds]
    assert [r.test_loss for r in a.rounds] == [r.test_loss for r in b.rounds]


def assert_dual_replicas_match(flat_server, hier):
    """Every edge's server-side replicas must equal the flat server's."""
    if not hasattr(flat_server, "duals"):
        return
    for edge in hier.edges:
        for cid in edge.shard:
            assert np.array_equal(flat_server.duals[cid], edge.server.duals[cid])
            assert np.array_equal(flat_server.primals[cid], edge.server.primals[cid])


class TestSyncExactness:
    """Identity per-hop codecs: hierarchical == flat, bit for bit."""

    @pytest.mark.parametrize("algorithm", ["fedavg", "iceadmm", "iiadmm"])
    def test_bitwise_equal_to_flat(self, algorithm):
        clients, test = make_clients_and_test()
        cfg = base_config(algorithm)
        flat = build_federation(cfg, model_fn, clients, test)
        h_flat = flat.run()
        hier = build_hier_federation(cfg, model_fn, clients, test, topology="edges:4")
        h_hier = hier.run()
        assert np.array_equal(flat.server.global_params, hier.server.global_params)
        assert_same_history(h_flat, h_hier)
        assert_dual_replicas_match(flat.server, hier)

    @pytest.mark.parametrize("topology", ["edges:1", "edges:3", "edges:12", "edges:4:by-label"])
    def test_any_grouping_is_equivalent(self, topology):
        """Shard count and shape cannot change a bit of the result."""
        clients, test = make_clients_and_test()
        cfg = base_config("iiadmm", num_rounds=2)
        flat = build_federation(cfg, model_fn, clients, test)
        h_flat = flat.run()
        hier = build_hier_federation(cfg, model_fn, clients, test, topology=topology)
        h_hier = hier.run()
        assert np.array_equal(flat.server.global_params, hier.server.global_params)
        assert_same_history(h_flat, h_hier)

    def test_float32_pipeline_is_bitwise_too(self):
        """The error-free transformations hold in any IEEE format."""
        clients, test = make_clients_and_test()
        cfg = base_config("iiadmm", num_rounds=2, dtype="float32")
        flat = build_federation(cfg, model_fn, clients, test)
        h_flat = flat.run()
        hier = build_hier_federation(cfg, model_fn, clients, test, topology="edges:5")
        h_hier = hier.run()
        assert hier.server.global_params.dtype == np.float32
        assert np.array_equal(flat.server.global_params, hier.server.global_params)
        assert_same_history(h_flat, h_hier)

    def test_explicit_shard_map(self):
        clients, test = make_clients_and_test()
        cfg = base_config("fedavg", num_rounds=2)
        flat = build_federation(cfg, model_fn, clients, test)
        h_flat = flat.run()
        shards = [[0, 5, 7], [1, 2, 3, 11], [4, 6, 8, 9, 10]]
        hier = build_hier_federation(cfg, model_fn, clients, test, topology=shards)
        h_hier = hier.run()
        assert np.array_equal(flat.server.global_params, hier.server.global_params)
        assert_same_history(h_flat, h_hier)

    def test_store_backed_edges_match_eager(self):
        clients, test = make_clients_and_test()
        cfg = base_config("iceadmm", num_rounds=2)
        eager = build_hier_federation(cfg, model_fn, clients, test, topology="edges:4")
        h_eager = eager.run()
        virtual = build_hier_federation(cfg, model_fn, clients, test, topology="edges:4", live_cap=2)
        h_virtual = virtual.run()
        assert np.array_equal(eager.server.global_params, virtual.server.global_params)
        assert_same_history(h_eager, h_virtual)
        for edge in virtual.edges:
            assert edge._store.stats.peak_live <= 2


class TestPerTierAccounting:
    def test_root_traffic_is_o_edges(self):
        """Root sees 2E packets per round no matter how many clients exist."""
        clients, test = make_clients_and_test(num_clients=12)
        cfg = base_config("iiadmm", num_rounds=2)
        hier = build_hier_federation(cfg, model_fn, clients, test, topology="edges:4")
        hier.run()
        per_round = {}
        for rec in hier.root_communicator.log.records:
            per_round[rec.round] = per_round.get(rec.round, 0) + 1
            assert rec.endpoint.startswith("edge:")
        assert per_round == {0: 8, 1: 8}  # E downlinks + E summary uplinks

    def test_history_reports_per_tier_bytes(self):
        clients, test = make_clients_and_test()
        cfg = base_config("fedavg", num_rounds=1)
        hier = build_hier_federation(cfg, model_fn, clients, test, topology="edges:4")
        history = hier.run()
        tiers = history.rounds[0].comm_bytes_by_tier
        assert set(tiers) == {"client_edge", "edge_root"}
        assert tiers["client_edge"] + tiers["edge_root"] == history.rounds[0].comm_bytes
        # client tier scales with clients, root tier with edges: at 12 clients
        # vs 4 edges the client tier must dominate.
        assert tiers["client_edge"] > tiers["edge_root"]
        rendered = format_history(history)
        assert "c2e_MB" in rendered and "e2r_MB" in rendered
        # Flat histories render the per-tier columns as absent.
        flat = build_federation(cfg, model_fn, clients, test)
        flat_rendered = format_history(flat.run())
        assert "c2e_MB" in flat_rendered
        assert flat.history.rounds[0].comm_bytes_by_tier is None

    def test_summary_bytes_do_not_scale_with_shard_size(self):
        """The fan-in win: an edge's summary is O(components · dim), not
        O(shard · dim)."""
        clients, test = make_clients_and_test(num_clients=24)
        cfg = base_config("fedavg", num_rounds=1)
        hier = build_hier_federation(cfg, model_fn, clients, test, topology="edges:2")
        history = hier.run()
        dim = hier.server.vectorizer.dim
        tiers = history.rounds[0].comm_bytes_by_tier
        # 2 edges x (1 dispatch + summary of <= 6 components), float64.
        assert tiers["edge_root"] <= 2 * (1 + 6) * dim * 8
        assert tiers["client_edge"] >= 24 * 2 * dim * 8  # per-client up+down


class TestLossyHops:
    @pytest.mark.parametrize("codec", ["delta|int8", "fp16"])
    def test_sync_iiadmm_dual_replicas_bitwise_under_lossy_edge_hop(self, codec):
        clients, test = make_clients_and_test()
        cfg = base_config("iiadmm", edge_codec=codec)
        hier = build_hier_federation(cfg, model_fn, clients, test, topology="edges:4")
        hier.run()
        for edge in hier.edges:
            for client in edge.clients:
                assert np.array_equal(edge.server.duals[client.client_id], client.dual), codec

    def test_lossy_root_hop_still_learns(self):
        clients, test = make_clients_and_test()
        cfg = base_config("iiadmm", num_rounds=4, root_codec="delta|int8")
        identity = build_hier_federation(cfg, model_fn, clients, test, topology="edges:4")
        # Same run with a compressed edge->root hop: smaller root tier, close
        # accuracy (quantised shard summaries are approximate by design).
        h_lossy = identity.run()
        cfg_id = base_config("iiadmm", num_rounds=4)
        flat = build_hier_federation(cfg_id, model_fn, clients, test, topology="edges:4")
        h_id = flat.run()
        lossy_root = h_lossy.rounds[-1].comm_bytes_by_tier["edge_root"]
        id_root = h_id.rounds[-1].comm_bytes_by_tier["edge_root"]
        assert lossy_root < id_root / 4
        assert h_lossy.final_accuracy >= h_id.final_accuracy - 0.15

    def test_hop_codecs_are_independent(self):
        clients, test = make_clients_and_test()
        cfg = base_config("fedavg", num_rounds=1, edge_codec="fp16", root_codec="identity")
        hier = build_hier_federation(cfg, model_fn, clients, test, topology="edges:4")
        hier.run()
        assert hier.edges[0].exchange.spec == "fp16"
        assert hier.exchange.spec == "identity"


class TestAsyncHier:
    @pytest.mark.parametrize("algorithm", ["fedavg", "iceadmm", "iiadmm"])
    def test_round_based_fedbuff_is_bitwise_sync(self, algorithm):
        """Free links + full participation + round-based edges + a full edge
        buffer reduce the event-driven hierarchy to the synchronous one."""
        clients, test = make_clients_and_test()
        cfg = base_config(algorithm)
        sync = build_hier_federation(cfg, model_fn, clients, test, topology="edges:4")
        h_sync = sync.run()
        runner = build_hier_async_federation(
            cfg, model_fn, clients, test, topology="edges:4",
            strategy=RootFedBuff(4), edge_round_based=True,
        )
        h_async = runner.run(3)
        assert np.array_equal(sync.server.global_params, runner.server.global_params)
        assert_same_history(h_sync, h_async)

    def test_staleness_under_partial_root_buffer(self):
        """With real links and a root buffer smaller than E, slower edges'
        summaries arrive stale — and the run still proceeds deterministically."""
        clients, test = make_clients_and_test()
        cfg = base_config("iiadmm", num_rounds=4)
        runner = build_hier_async_federation(
            cfg, model_fn, clients, test, topology="edges:4",
            strategy=RootFedBuff(2),
            client_link=TCPLinkModel(), root_link=TCPLinkModel(),
        )
        history = runner.run(4)
        assert len(history) == 4
        assert max(runner.staleness_log) > 0
        assert history.rounds[-1].wall_clock_seconds > 0
        # Dual replicas survive staleness (the PR 2 invariant, at edge level).
        for edge in runner.edges:
            for client in edge.clients:
                assert np.array_equal(edge.server.duals[client.client_id], client.dual)

    def test_async_lossy_edge_hop_keeps_duals_synced(self):
        clients, test = make_clients_and_test()
        cfg = base_config("iiadmm", num_rounds=3, edge_codec="delta|int8")
        runner = build_hier_async_federation(
            cfg, model_fn, clients, test, topology="edges:4",
            strategy=RootFedBuff(2),
            client_link=TCPLinkModel(), root_link=TCPLinkModel(),
        )
        runner.run(3)
        for edge in runner.edges:
            for client in edge.clients:
                assert np.array_equal(edge.server.duals[client.client_id], client.dual)

    def test_root_fedasync_mixes_and_rejects_admm(self):
        clients, test = make_clients_and_test()
        cfg = base_config("fedavg", num_rounds=4, local_steps=1)
        runner = build_hier_async_federation(
            cfg, model_fn, clients, test, topology="edges:4",
            strategy=RootFedAsync(alpha=0.8),
            client_link=TCPLinkModel(), root_link=TCPLinkModel(),
        )
        history = runner.run(6)
        assert len(history) == 6  # one round per summary arrival
        cfg_admm = base_config("iiadmm", num_rounds=2)
        bad = build_hier_async_federation(
            cfg_admm, model_fn, clients, test, topology="edges:4",
            strategy=RootFedAsync(),
        )
        with pytest.raises(ValueError, match="FedAvg-family"):
            bad.run(1)

    def test_round_based_edges_never_idle_on_a_delivered_global(self):
        """Regression: an edge that flushes while a newer global is already
        in hand must redispatch immediately, not idle until some later
        broadcast happens to arrive (which skips model versions)."""
        from repro.simulator import DEVICE_CATALOG

        rng = np.random.default_rng(0)
        datasets = [
            TensorDataset(rng.standard_normal((4, 8)), rng.integers(0, 3, 4)) for _ in range(9)
        ]
        devices = [DEVICE_CATALOG["A100"]] * 6 + [DEVICE_CATALOG["CPU"]] * 3  # edge 2 is slow
        cfg = base_config("fedavg", num_rounds=10, local_steps=1, batch_size=4)
        runner = build_hier_async_federation(
            cfg, model_fn, datasets, topology=[[0, 1, 2], [3, 4, 5], [6, 7, 8]],
            strategy=RootFedBuff(2), edge_round_based=True, devices=devices,
            client_link=TCPLinkModel(), root_link=TCPLinkModel(),
        )
        stalled = []

        def check(result):
            for actor in runner.actors:
                if actor._waiting_for_global and actor._pending_global is not None:
                    stalled.append((result.round, actor.edge.edge_id))

        runner.run(10, callback=check)
        assert stalled == []

    def test_async_hier_checkpoint_rejected_clearly(self):
        clients, test = make_clients_and_test()
        cfg = base_config("fedavg", num_rounds=1)
        runner = build_hier_async_federation(
            cfg, model_fn, clients, test, topology="edges:4",
            strategy=RootFedBuff(4), edge_round_based=True,
        )
        runner.run(1)
        with pytest.raises(TypeError, match="HierAsyncRunner"):
            RunCheckpoint.capture(runner)

    def test_edge_fraction_samples_within_shards(self):
        clients, test = make_clients_and_test()
        cfg = base_config("fedavg", num_rounds=2, local_steps=1)
        runner = build_hier_async_federation(
            cfg, model_fn, clients, test, topology="edges:4", edge_fraction=0.5,
            strategy=RootFedBuff(4), edge_round_based=True,
        )
        history = runner.run(2)
        for result in history.rounds:
            assert 0 < len(result.participating_clients) < 12
            for cid in result.participating_clients:
                assert 0 <= cid < 12


class TestHierCheckpoint:
    @pytest.mark.parametrize("live_cap", [None, 2])
    def test_resume_matches_uninterrupted(self, live_cap):
        clients, test = make_clients_and_test()
        cfg = base_config("iiadmm", num_rounds=2)
        full = build_hier_federation(cfg, model_fn, clients, test, topology="edges:4", live_cap=live_cap)
        h_full = full.run(4)
        first = build_hier_federation(cfg, model_fn, clients, test, topology="edges:4", live_cap=live_cap)
        first.run(2)
        ckpt = RunCheckpoint.capture(first)
        resumed = build_hier_federation(cfg, model_fn, clients, test, topology="edges:4", live_cap=live_cap)
        ckpt.restore(resumed)
        h_resumed = resumed.run(2)
        assert np.array_equal(full.server.global_params, resumed.server.global_params)
        assert [r.test_accuracy for r in h_full.rounds] == [r.test_accuracy for r in h_resumed.rounds]
        assert_dual_replicas_match(full_server_proxy(full), resumed)

    def test_kind_mismatch_rejected(self):
        clients, test = make_clients_and_test()
        cfg = base_config("fedavg", num_rounds=1)
        hier = build_hier_federation(cfg, model_fn, clients, test, topology="edges:4")
        hier.run(1)
        ckpt = RunCheckpoint.capture(hier)
        flat = build_federation(cfg, model_fn, clients, test)
        with pytest.raises(ValueError, match="hier"):
            ckpt.restore(flat)


def full_server_proxy(hier):
    """Adapter: expose a hier run's per-client replicas like a flat server."""

    class _Proxy:
        pass

    proxy = _Proxy()
    if not hasattr(hier.edges[0].server, "duals"):
        return proxy
    proxy.duals = {}
    proxy.primals = {}
    for edge in hier.edges:
        proxy.duals.update(edge.server.duals)
        proxy.primals.update(edge.server.primals)
    return proxy


class TestValidation:
    def test_config_rejects_bad_topology_with_actionable_message(self):
        with pytest.raises(ValueError, match=r"unknown topology form 'rings'.*edges:<E>"):
            FLConfig(algorithm="fedavg", topology="rings:4")
        with pytest.raises(ValueError, match=r"bad edge count 'x'"):
            FLConfig(algorithm="fedavg", topology="edges:x")
        with pytest.raises(ValueError, match=r"edge count must be positive"):
            FLConfig(algorithm="fedavg", topology="edges:0")
        with pytest.raises(ValueError, match=r"unknown sharding mode 'zigzag'.*by-label"):
            FLConfig(algorithm="fedavg", topology="edges:4:zigzag")
        assert FLConfig(algorithm="fedavg", topology="edges:8:by-label").topology == "edges:8:by-label"

    def test_config_rejects_bad_hop_codecs_naming_the_field(self):
        with pytest.raises(ValueError, match=r"invalid edge_codec spec 'zstd'"):
            FLConfig(algorithm="fedavg", edge_codec="zstd")
        with pytest.raises(ValueError, match=r"invalid root_codec spec 'int8:4'"):
            FLConfig(algorithm="fedavg", root_codec="int8:4")
        cfg = FLConfig(algorithm="fedavg", edge_codec="delta|int8", root_codec="fp16")
        assert cfg.edge_codec == "delta|int8"

    def test_builder_requires_topology(self):
        clients, test = make_clients_and_test()
        with pytest.raises(ValueError, match="topology"):
            build_hier_federation(base_config("fedavg"), model_fn, clients, test)

    def test_topology_shard_map_errors(self):
        with pytest.raises(ValueError, match="assigned to both"):
            build_topology([[0, 1], [1, 2]], 3)
        with pytest.raises(ValueError, match="missing"):
            build_topology([[0], [2]], 3)
        with pytest.raises(ValueError, match="needs at least"):
            build_topology("edges:8", 4)
        with pytest.raises(ValueError, match="labels"):
            build_topology("edges:2:by-label", 4)

    def test_shared_tier_communicator_rejected(self):
        clients, test = make_clients_and_test()
        shared = SerialCommunicator()
        with pytest.raises(ValueError, match="distinct instances"):
            build_hier_federation(
                base_config("fedavg"), model_fn, clients, test, topology="edges:4",
                root_communicator=shared, client_communicator=shared,
            )

    def test_adaptive_rho_rejected_for_admm(self):
        clients, test = make_clients_and_test()
        cfg = base_config("iiadmm", adaptive_rho=True, rho_growth=1.1)
        with pytest.raises(ValueError, match="adaptive_rho"):
            build_hier_federation(cfg, model_fn, clients, test, topology="edges:4")


class TestByLabelTopology:
    def test_majority_labels_drive_sharding(self):
        clients, test = make_clients_and_test()
        labels = majority_labels(clients)
        assert labels.shape == (len(clients),)
        topo = build_topology("edges:3:by-label", len(clients), labels=labels)
        non_empty = [s for s in topo.shards if s]
        for left, right in zip(non_empty, non_empty[1:]):
            assert max(labels[c] for c in left) <= min(labels[c] for c in right)


class TestHundredThousandClients:
    def test_100k_clients_16_edges_bounded_live_set(self):
        """The acceptance-scale run: a 100k-client population behind 16 edge
        actors, per-edge stores capped at 8 live clients, sampled cohorts —
        completes in tier-1 time with root traffic independent of the
        population size."""
        population = 100_000
        rng = np.random.default_rng(0)
        shared = TensorDataset(rng.standard_normal((4, 4)), rng.integers(0, 2, 4))
        datasets = [shared] * population  # per-client shard, shared storage
        tiny_model = lambda: MLP(4, 2, hidden_sizes=(), rng=np.random.default_rng(3))
        cfg = FLConfig(
            algorithm="fedavg", num_rounds=2, local_steps=1, batch_size=4,
            lr=0.05, seed=0, topology="edges:16",
        )
        runner = build_hier_async_federation(
            cfg, tiny_model, datasets,
            live_cap=8, edge_fraction=0.0005,  # ~3 sampled clients per shard round
            strategy=RootFedBuff(16), edge_round_based=True,
        )
        history = runner.run(2)
        assert len(history) == 2
        assert runner.server.num_clients == population
        dim = runner.server.vectorizer.dim
        for result in history.rounds:
            tiers = result.comm_bytes_by_tier
            # Root tier: 16 summaries + 16 rebroadcasts of <= a few
            # components each — O(edges), nowhere near O(population).
            assert tiers["edge_root"] <= 16 * 2 * 8 * dim * 8
            assert 0 < len(result.participating_clients) <= 16 * 4
        for edge in runner.edges:
            assert edge._store.stats.peak_live <= 8
        live_total = sum(edge._store.live_count for edge in runner.edges)
        assert live_total <= 16 * 8  # the whole-run bound: edges x live_cap
