"""Live run monitoring (repro.obs): export, watchdogs, cross-process metrics.

The contracts regression-tested here, on top of ``test_obs.py``'s tracer
suite:

* **Exposition validity** — :func:`repro.obs.render_prometheus` output
  passes :func:`repro.obs.lint_exposition` (and the linter itself catches
  malformed names/labels/missing ``_total``).
* **Registry algebra** — ``dump_state``/``merge`` round-trips exactly
  (counters add, gauges last-write, histogram reservoirs merge
  deterministically), and ``diff`` yields non-negative per-interval
  counter deltas across a streamed run.
* **Watchdogs** — each fires on a synthetic pathological sample and stays
  silent on a healthy one; a monitored fault-free run raises zero alerts.
* **Bitwise determinism** — arming a :class:`repro.obs.RunMonitor` (with
  streaming + watchdogs) never changes a run, across runners, algorithms,
  and execution backends.
* **Worker telemetry** — process-backend workers ship registry deltas
  that merge deterministically in the parent, and opt-in phase profiling
  produces collapsed stacks rooted per worker.
"""

import cProfile
import json
import urllib.request
from types import SimpleNamespace

import numpy as np
import pytest

from repro.core import FLConfig, MLP, build_federation
from repro.data import TensorDataset
from repro.harness.chaos import histories_bitwise_equal
from repro.obs import (
    ConvergenceWatchdog,
    Histogram,
    MemoryWatchdog,
    MetricsRegistry,
    MetricsServer,
    MetricsStream,
    PhaseProfiler,
    RetryWatchdog,
    RunMonitor,
    StragglerWatchdog,
    Tracer,
    collapse_profile,
    default_monitors,
    lint_exposition,
    load_series,
    render_prometheus,
    use_monitor,
    use_profiler,
    use_tracer,
)
from repro.obs.health import HealthSample

NUM_CLIENTS = 6
INPUT_DIM = 8
NUM_CLASSES = 3
SAMPLES = 6
ROUNDS = 2


def _make_data(seed=0):
    rng = np.random.default_rng(seed + 99)
    teacher = rng.standard_normal((INPUT_DIM, NUM_CLASSES))

    def split(n):
        x = rng.standard_normal((n, INPUT_DIM))
        y = np.argmax(x @ teacher, axis=1)
        return TensorDataset(x, y)

    return [split(SAMPLES) for _ in range(NUM_CLIENTS)], split(24)


def _model_fn():
    return lambda: MLP(
        INPUT_DIM, NUM_CLASSES, hidden_sizes=(8,), rng=np.random.default_rng(4242)
    )


def _config(algorithm, **overrides):
    kwargs = dict(
        algorithm=algorithm,
        num_rounds=ROUNDS,
        local_steps=2,
        batch_size=3,
        lr=0.05,
        rho=10.0,
        zeta=10.0,
        seed=0,
    )
    kwargs.update(overrides)
    return FLConfig(**kwargs)


def _build(mode, algorithm, **overrides):
    datasets, test = _make_data()
    if mode == "sync":
        return build_federation(_config(algorithm, **overrides), _model_fn(), datasets, test)
    if mode == "async":
        from repro.asyncfl import build_async_federation

        return build_async_federation(_config(algorithm, **overrides), _model_fn(), datasets, test)
    if mode == "hier":
        from repro.hier import build_hier_federation

        return build_hier_federation(
            _config(algorithm, topology="edges:2", **overrides), _model_fn(), datasets, test
        )
    if mode == "hier_async":
        from repro.hier import RootFedBuff, build_hier_async_federation

        return build_hier_async_federation(
            _config(algorithm, topology="edges:2", **overrides),
            _model_fn(),
            datasets,
            test_dataset=test,
            strategy=RootFedBuff(2),
        )
    raise ValueError(mode)


def _run(mode, algorithm, monitor, **overrides):
    runner = _build(mode, algorithm, **overrides)
    with use_monitor(monitor):
        history = runner.run(ROUNDS)
    runner.close()
    return runner, history


def _populated_registry():
    reg = MetricsRegistry(algorithm="fedavg", codec="identity")
    reg.counter("comm_bytes", tier="client").inc(1024)
    reg.counter("comm_bytes", tier="edge_root").inc(2048)
    reg.counter("rounds_completed").inc(3)
    reg.gauge("store_nbytes", tier="flat").set(4096.5)
    hist = reg.histogram("local_update_seconds", tier="run")
    for v in (0.01, 0.02, 0.03, 0.5):
        hist.observe(v)
    return reg


# ------------------------------------------------------------------ exposition
class TestExposition:
    def test_render_prometheus_lints_clean(self):
        text = render_prometheus(_populated_registry().snapshot())
        assert text.strip(), "empty exposition from a populated registry"
        assert lint_exposition(text) == []
        # counters carry the conventional suffix, labels are preserved
        assert "comm_bytes_total{" in text
        assert 'tier="client"' in text
        assert 'quantile="0.99"' in text

    def test_render_prometheus_sanitizes_hostile_names(self):
        reg = MetricsRegistry(**{"run id": "a b"})
        reg.counter("bad-name.metric", **{"tier": 'we"ird\nvalue'}).inc(1)
        reg.gauge("1starts_with_digit").set(2.5)
        text = render_prometheus(reg.snapshot())
        assert lint_exposition(text) == []

    def test_lint_catches_problems(self):
        bad = "\n".join(
            [
                "# TYPE ok_total counter",
                "ok_total 1",
                "no_type_header 2",           # sample without TYPE
                "# TYPE rides counter",
                "rides 3",                    # counter missing _total
                'ok_total{9bad="x"} 1',       # label starts with a digit
                "ok_total notanumber",        # unparseable value
            ]
        )
        problems = lint_exposition(bad)
        assert any("no TYPE header" in p for p in problems)
        assert any("missing _total" in p for p in problems)
        assert any("malformed labels" in p for p in problems)
        assert any("bad value" in p for p in problems)

    def test_namespace_prefix(self):
        text = render_prometheus(_populated_registry().snapshot(), namespace="repro")
        assert "repro_comm_bytes_total" in text
        assert lint_exposition(text) == []


# ------------------------------------------------------------- registry algebra
class TestRegistryAlgebra:
    def test_dump_state_merge_round_trip(self):
        reg = _populated_registry()
        clone = MetricsRegistry(**reg.labels).merge(reg.dump_state())
        assert clone.snapshot() == reg.snapshot()

    def test_merge_semantics(self):
        a = MetricsRegistry()
        a.counter("c").inc(3)
        a.gauge("g").set(1.0)
        a.histogram("h").observe(1.0)
        b = MetricsRegistry()
        b.counter("c").inc(4)
        b.gauge("g").set(9.0)
        b.histogram("h").observe(3.0)
        a.merge(b)
        snap = a.snapshot()
        assert snap["counters"]["c"] == 7          # counters add
        assert snap["gauges"]["g"] == 9.0          # last write wins
        assert snap["histograms"]["h"]["count"] == 2
        assert snap["histograms"]["h"]["min"] == 1.0
        assert snap["histograms"]["h"]["max"] == 3.0

    def test_histogram_merge_is_deterministic_past_reservoir(self):
        def build():
            h = Histogram()
            for i in range(700):
                h.observe(float(i % 91))
            other = Histogram()
            for i in range(400):
                other.observe(float((i * 7) % 113))
            h.merge(other)
            return h

        s1, s2 = build().summary(), build().summary()
        assert s1 == s2
        assert s1["count"] == 1100
        assert s1["samples"] <= 512

    def test_diff_yields_interval_deltas(self):
        reg = MetricsRegistry()
        reg.counter("c").inc(5)
        reg.histogram("h").observe(2.0)
        before = reg.snapshot()
        reg.counter("c").inc(3)
        reg.histogram("h").observe(4.0)
        delta = reg.diff(before)
        assert delta["counters"]["c"] == 3
        assert delta["histograms"]["h"]["count"] == 1
        assert delta["histograms"]["h"]["sum"] == pytest.approx(4.0)
        # diff against None is "everything is new"
        full = reg.diff(None)
        assert full["counters"]["c"] == 8

    def test_histogram_summary_reports_reservoir_occupancy(self):
        h = Histogram()
        values = [float(v) for v in range(11)]
        for v in values:
            h.observe(v)
        summ = h.summary()
        assert summ["samples"] == len(values)
        assert summ["count"] == len(values)
        # n <= reservoir size: nearest-rank percentiles are exact over the
        # full observation set (the reservoir holds every value)
        assert summ["p50"] == 5.0
        assert summ["p99"] == 10.0
        assert summ["min"] == 0.0 and summ["max"] == 10.0


# ------------------------------------------------------------------- watchdogs
def _sample(snapshot=None, delta=None, history=None, round_index=3):
    empty = {"counters": {}, "gauges": {}, "histograms": {}}
    return HealthSample(
        runner=None,
        history=history,
        result=None,
        snapshot=snapshot if snapshot is not None else empty,
        delta=delta if delta is not None else empty,
        round=round_index,
    )


def _history(losses):
    return SimpleNamespace(rounds=[SimpleNamespace(test_loss=v) for v in losses])


class TestWatchdogs:
    def test_convergence_divergence_fires(self):
        dog = ConvergenceWatchdog()
        alerts = dog.check(_sample(history=_history([1.0, 0.5, 4.2])))
        assert [a.severity for a in alerts] == ["critical"]
        assert "diverging" in alerts[0].message

    def test_convergence_nonfinite_fires(self):
        dog = ConvergenceWatchdog()
        alerts = dog.check(_sample(history=_history([1.0, float("nan")])))
        assert [a.severity for a in alerts] == ["critical"]

    def test_convergence_stall_fires_and_short_runs_cannot(self):
        dog = ConvergenceWatchdog(window=4)
        flat = [1.0] + [0.9] * 8
        alerts = dog.check(_sample(history=_history(flat)))
        assert any("no loss improvement" in a.message for a in alerts)
        # a run shorter than window+1 rounds can never stall
        assert dog.check(_sample(history=_history([0.9] * 4))) == []

    def test_convergence_silent_on_healthy(self):
        dog = ConvergenceWatchdog()
        improving = [1.0 - 0.05 * i for i in range(12)]
        assert dog.check(_sample(history=_history(improving))) == []
        # near-zero best loss + tiny absolute wobble must not trip divergence
        assert dog.check(_sample(history=_history([1e-4, 1e-3]))) == []

    def test_straggler_fires_on_skew_and_respects_floors(self):
        dog = StragglerWatchdog(ratio=16.0, min_samples=64, min_p99_seconds=0.25)
        skewed = {
            "histograms": {
                "local_update_seconds{tier=run}": {"count": 100, "p50": 0.02, "p99": 1.0}
            }
        }
        alerts = dog.check(_sample(snapshot=skewed))
        assert [a.severity for a in alerts] == ["warning"]
        # same ratio at microsecond scale: absolute floor keeps it silent
        tiny = {
            "histograms": {
                "local_update_seconds{tier=run}": {"count": 100, "p50": 2e-6, "p99": 1e-4}
            }
        }
        assert dog.check(_sample(snapshot=tiny)) == []
        # too few samples: silent
        few = {
            "histograms": {
                "local_update_seconds{tier=run}": {"count": 8, "p50": 0.02, "p99": 1.0}
            }
        }
        assert dog.check(_sample(snapshot=few)) == []

    def test_retry_watchdog(self):
        dog = RetryWatchdog(max_dead_letters_per_sample=0, max_retries_per_sample=5)
        bad = {"counters": {"comm_dead_letters{tier=client}": 2, "comm_retries": 9}}
        alerts = dog.check(_sample(delta=bad))
        assert {a.severity for a in alerts} == {"warning"}
        assert len(alerts) == 2
        ok = {"counters": {"comm_dead_letters": 0, "comm_retries": 3}}
        assert dog.check(_sample(delta=ok)) == []

    def test_memory_watchdog(self):
        dog = MemoryWatchdog(max_rss_bytes=100, max_store_bytes=50)
        hot = {"gauges": {"process_rss_bytes": 1e9, "store_nbytes{tier=flat}": 80.0}}
        alerts = dog.check(_sample(snapshot=hot))
        assert [a.severity for a in alerts] == ["critical", "critical"]
        # unarmed watermarks never fire
        assert MemoryWatchdog().check(_sample(snapshot=hot)) == []

    def test_watchdog_error_becomes_alert_not_crash(self, tmp_path):
        class Broken(ConvergenceWatchdog):
            name = "broken"

            def check(self, sample):
                raise RuntimeError("boom")

        monitor = RunMonitor(monitors=[Broken()])
        _, history = _run("sync", "fedavg", monitor)
        monitor.close()
        assert len(history) == ROUNDS, "a broken watchdog must not kill the run"
        assert monitor.report.alerts
        assert all("watchdog error" in a.message for a in monitor.report.alerts)


# ------------------------------------------------------------- monitored runs
class TestMonitoredRuns:
    @pytest.mark.parametrize("algorithm", ("fedavg", "iceadmm", "iiadmm"))
    @pytest.mark.parametrize("mode", ("sync", "async", "hier"))
    def test_monitored_run_is_bitwise_identical(self, mode, algorithm, tmp_path):
        _, plain_history = _run(mode, algorithm, None)
        monitor = RunMonitor(
            monitors=default_monitors(),
            stream=str(tmp_path / "stream.jsonl"),
        )
        with monitor:
            monitored_runner = _build(mode, algorithm)
            monitored_history = monitored_runner.run(ROUNDS)
            monitored_runner.close()
        plain_runner, _ = _run(mode, algorithm, None)

        assert histories_bitwise_equal(plain_history, monitored_history)
        for rp, rm in zip(plain_history.rounds, monitored_history.rounds):
            assert rp.comm_bytes == rm.comm_bytes
        assert np.array_equal(
            plain_runner.server.global_params, monitored_runner.server.global_params
        )
        assert monitor.report.samples == ROUNDS
        assert monitor.report.alerts == [], "watchdogs false-positived on a healthy run"

    def test_monitored_hier_async_is_bitwise_identical(self, tmp_path):
        _, plain_history = _run("hier_async", "fedavg", None)
        monitor = RunMonitor(monitors=default_monitors(), stream=str(tmp_path / "s.jsonl"))
        _, monitored_history = _run("hier_async", "fedavg", monitor)
        monitor.close()
        assert histories_bitwise_equal(plain_history, monitored_history)
        assert monitor.report.samples == ROUNDS
        assert monitor.report.alerts == []

    def test_monitored_process_backend_is_bitwise_identical(self, tmp_path):
        _, plain_history = _run(
            "sync", "fedavg", None, execution_backend="process", parallel_clients=2
        )
        monitor = RunMonitor(monitors=default_monitors(), stream=str(tmp_path / "s.jsonl"))
        _, monitored_history = _run(
            "sync", "fedavg", monitor, execution_backend="process", parallel_clients=2
        )
        monitor.close()
        assert histories_bitwise_equal(plain_history, monitored_history)
        assert monitor.report.alerts == []

    def test_stream_counters_are_monotone(self, tmp_path):
        path = tmp_path / "stream.jsonl"
        monitor = RunMonitor(monitors=default_monitors(), stream=str(path), tag="t")
        _run("sync", "fedavg", monitor)
        monitor.close()
        series = load_series(path)
        assert len(series) == ROUNDS
        assert [s["seq"] for s in series] == list(range(ROUNDS))
        previous = None
        for sample in series:
            assert sample["tag"] == "t"
            for key, value in sample["delta"]["counters"].items():
                assert value >= 0, f"negative counter delta for {key}"
            if previous is not None:
                for key, value in sample["metrics"]["counters"].items():
                    assert value >= previous["metrics"]["counters"].get(key, 0), (
                        f"counter {key} went backwards across samples"
                    )
            previous = sample
        # the cumulative snapshot is exactly the sum of the streamed deltas
        last = series[-1]
        for key, value in last["metrics"]["counters"].items():
            total = sum(s["delta"]["counters"].get(key, 0) for s in series)
            assert total == pytest.approx(value)

    def test_monitor_emits_alert_trace_events(self, tmp_path):
        # an armed (absurdly low) RSS watermark fires every round; the alert
        # must land in the trace as a structured health event
        tracer = Tracer()
        monitor = RunMonitor(monitors=[MemoryWatchdog(max_rss_bytes=1)])
        with use_tracer(tracer):
            _run("sync", "fedavg", monitor)
        monitor.close()
        assert monitor.report.status == "critical"
        alerts = [
            r
            for r in tracer.records
            if r.get("type") == "event" and r.get("cat") == "health"
        ]
        assert alerts
        assert all(a["name"] == "alert" for a in alerts)
        assert all(a["monitor"] == "memory" for a in alerts)


# ------------------------------------------------------------------- endpoint
class TestMetricsServer:
    def test_metrics_and_healthz(self):
        server = MetricsServer()
        try:
            snapshot = _populated_registry().snapshot()
            server.publish(snapshot, {"status": "ok", "alerts": []})
            text = urllib.request.urlopen(server.url + "/metrics", timeout=5).read().decode()
            assert lint_exposition(text) == []
            assert "comm_bytes_total" in text
            health = json.loads(
                urllib.request.urlopen(server.url + "/healthz", timeout=5).read()
            )
            assert health["status"] == "ok"
        finally:
            server.close()

    def test_healthz_503_on_critical(self):
        server = MetricsServer()
        try:
            server.publish(
                {"counters": {}, "gauges": {}, "histograms": {}},
                {"status": "critical", "alerts": [{"severity": "critical"}]},
            )
            with pytest.raises(urllib.error.HTTPError) as err:
                urllib.request.urlopen(server.url + "/healthz", timeout=5)
            assert err.value.code == 503
        finally:
            server.close()


# ----------------------------------------------------------- worker telemetry
class TestWorkerTelemetry:
    def _run_process(self, profiler=None):
        runner = _build(
            "sync", "fedavg", execution_backend="process", parallel_clients=2
        )
        with use_profiler(profiler):
            runner.run(ROUNDS)
        runner.close()  # retires the pool, banking its telemetry
        reg = MetricsRegistry()
        reg.absorb_runner(runner)
        return reg.snapshot()

    @staticmethod
    def _deterministic_counters(snapshot):
        wanted = ("worker_rounds", "worker_client_updates", "worker_client_steps",
                  "worker_kernel_calls")
        return {
            k: v
            for k, v in snapshot["counters"].items()
            if k.startswith(wanted)
        }

    def test_worker_deltas_reach_parent_registry(self):
        snap = self._run_process()
        counters = snap["counters"]
        updates = sum(
            v for k, v in counters.items() if k.startswith("worker_client_updates")
        )
        assert updates == NUM_CLIENTS * ROUNDS
        steps = sum(
            v for k, v in counters.items() if k.startswith("worker_client_steps")
        )
        # local_steps=2 epochs x (SAMPLES / batch_size=3) = 4 optimizer steps
        # per client per round
        assert steps == NUM_CLIENTS * ROUNDS * 2 * (SAMPLES // 3)
        assert any(k.startswith("worker_kernel_calls") for k in counters)
        assert any(k.startswith("worker_cpu_seconds") for k in counters)
        assert any(
            k.startswith("worker_local_update_seconds") for k in snap["histograms"]
        )
        # per-worker labels are present and merged in worker-index order
        assert any("worker=0" in k for k in counters)

    def test_worker_delta_merge_is_deterministic(self):
        first = self._deterministic_counters(self._run_process())
        second = self._deterministic_counters(self._run_process())
        assert first, "no deterministic worker counters captured"
        assert first == second

    def test_worker_profile_ships_collapsed_stacks(self, tmp_path):
        profiler = PhaseProfiler(phases=("local_update",))
        self._run_process(profiler=profiler)
        folded = profiler.collapsed()
        worker_stacks = [s for s in folded if s.startswith("local_update;worker:")]
        assert worker_stacks, "no worker-rooted collapsed stacks captured"
        assert all(v >= 0 for v in folded.values())
        out = profiler.write_collapsed(tmp_path / "profile.folded")
        lines = out.read_text().splitlines()
        assert lines
        for line in lines:
            stack, _, usec = line.rpartition(" ")
            assert stack and int(usec) > 0


# ------------------------------------------------------------------- profiler
class TestProfiler:
    def test_collapse_profile_attributes_time(self):
        def leaf():
            return sum(i * i for i in range(20000))

        def trunk():
            return [leaf() for _ in range(3)]

        profile = cProfile.Profile()
        profile.enable()
        trunk()
        profile.disable()
        folded = collapse_profile(profile)
        assert folded
        assert all(v >= 0.0 for v in folded.values())
        assert any("trunk" in stack for stack in folded)
        # parent;child ordering: some stack should show trunk before leaf
        assert any(
            "trunk" in stack and "leaf" in stack and stack.index("trunk") < stack.index("leaf")
            for stack in folded
        )

    def test_phase_scoping(self):
        profiler = PhaseProfiler(phases=("local_update",))
        assert profiler.wants("local_update")
        assert not profiler.wants("evaluate")
        with profiler.phase("local_update"):
            sum(i for i in range(10000))
        profiler.begin("evaluate")  # unwanted phase: ignored
        profiler.end("evaluate")
        folded = profiler.collapsed()
        assert all(stack.startswith("local_update") for stack in folded)


# ----------------------------------------------------------------- obsreport
class TestObsreportLive:
    def test_cli_series_and_perfetto(self, tmp_path, capsys):
        from repro.harness.obsreport import main

        tracer = Tracer()
        monitor = RunMonitor(
            monitors=[MemoryWatchdog(max_rss_bytes=1)],
            stream=str(tmp_path / "series.jsonl"),
            tag="run",
        )
        with use_tracer(tracer):
            _run("sync", "fedavg", monitor)
        monitor.close()
        trace_path = tmp_path / "trace.jsonl"
        tracer.write_jsonl(trace_path)
        perfetto_path = tmp_path / "perfetto.json"
        assert (
            main(
                [
                    str(trace_path),
                    "--series",
                    str(tmp_path / "series.jsonl"),
                    "--perfetto",
                    str(perfetto_path),
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "Health alerts" in out
        assert "metrics series" in out
        assert "Counters over the stream" in out
        perfetto = json.loads(perfetto_path.read_text())
        assert perfetto["traceEvents"]
