"""Shared test configuration: the golden-trace update flag.

``pytest --update-golden`` regenerates the checked-in golden fixtures (see
``tests/test_golden_trace.py``) from the current code instead of comparing
against them.  Use it only after an *intentional* numerics change, and review
the resulting diff of ``tests/golden/`` like any other code change.
"""


def pytest_addoption(parser):
    parser.addoption(
        "--update-golden",
        action="store_true",
        default=False,
        help="rewrite tests/golden/ fixtures from the current implementation",
    )
