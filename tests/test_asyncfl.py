"""Tests for the event-driven async federation subsystem (repro.asyncfl)."""

import math
from dataclasses import replace

import numpy as np
import pytest

from repro.asyncfl import (
    AvailabilityTraceSampler,
    EventLoop,
    FedAsyncStrategy,
    FedBuffStrategy,
    FullParticipationSampler,
    SyncRoundStrategy,
    UniformSampler,
    WeightedSampler,
    build_async_federation,
    staleness_weight,
)
from repro.comm import TCPLinkModel
from repro.core import FLConfig, build_federation, build_model
from repro.data import load_dataset
from repro.harness.reporting import format_history
from repro.simulator import A100, CPU_DEVICE, V100


def tiny_mnist(num_clients=4, train_size=240, test_size=80):
    return load_dataset("mnist", num_clients=num_clients, train_size=train_size, test_size=test_size, seed=0)


def mlp_fn(spec):
    def model_fn():
        return build_model("mlp", spec.image_shape, spec.num_classes, rng=np.random.default_rng(42))

    return model_fn


def tiny_config(algorithm="fedavg", **kwargs):
    defaults = dict(num_rounds=3, local_steps=2, batch_size=64, lr=0.03, rho=10.0, zeta=10.0, seed=0)
    defaults.update(kwargs)
    return FLConfig(algorithm=algorithm, **defaults)


class TestEventLoop:
    def test_orders_by_time_then_insertion(self):
        loop = EventLoop()
        loop.schedule(2.0, "b")
        loop.schedule(1.0, "a")
        loop.schedule(1.0, "a2")
        loop.schedule(3.0, "c")
        kinds = [loop.pop().kind for _ in range(4)]
        assert kinds == ["a", "a2", "b", "c"]
        assert loop.now == 3.0
        assert not loop

    def test_cannot_schedule_in_the_past(self):
        loop = EventLoop()
        loop.schedule(5.0, "x")
        loop.pop()
        with pytest.raises(ValueError):
            loop.schedule(4.0, "y")
        with pytest.raises(ValueError):
            loop.schedule_after(-1.0, "y")

    def test_pop_empty_raises(self):
        with pytest.raises(IndexError):
            EventLoop().pop()


class TestStalenessWeight:
    def test_zero_staleness_is_one_for_every_kind(self):
        for kind in ("constant", "polynomial", "hinge"):
            assert staleness_weight(0, kind) == 1.0

    def test_polynomial_decays(self):
        weights = [staleness_weight(t, "polynomial", a=0.5) for t in range(5)]
        assert weights == sorted(weights, reverse=True)
        assert weights[1] == pytest.approx(2 ** -0.5)

    def test_hinge_flat_then_decays(self):
        assert staleness_weight(4, "hinge", a=1.0, b=4.0) == 1.0
        assert staleness_weight(6, "hinge", a=1.0, b=4.0) == pytest.approx(1.0 / 3.0)

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            staleness_weight(-1)
        with pytest.raises(ValueError):
            staleness_weight(1, "nope")


class TestSamplers:
    def test_full_participation_round_robin(self):
        s = FullParticipationSampler(4)
        assert s.sample_cohort() == (0, 1, 2, 3)
        assert [s.sample_one() for _ in range(6)] == [0, 1, 2, 3, 0, 1]
        assert s.sample_one(frozenset({2})) == 3

    def test_same_seed_same_schedule(self):
        for make in (
            lambda: UniformSampler(10, fraction=0.3, seed=7),
            lambda: WeightedSampler(list(range(1, 11)), fraction=0.3, seed=7),
            lambda: AvailabilityTraceSampler(
                UniformSampler(10, fraction=0.3, seed=7), dropout=0.2, straggler_fraction=0.3, seed=9
            ),
        ):
            a, b = make(), make()
            assert [a.sample_one() for _ in range(50)] == [b.sample_one() for _ in range(50)]
            assert [a.sample_cohort() for _ in range(10)] == [b.sample_cohort() for _ in range(10)]

    def test_uniform_cohort_size_and_exclusion(self):
        s = UniformSampler(10, fraction=0.3, seed=0)
        cohort = s.sample_cohort()
        assert len(cohort) == 3 and len(set(cohort)) == 3
        busy = frozenset(range(9))
        assert s.sample_one(busy) == 9

    def test_weighted_prefers_data_heavy_clients(self):
        s = WeightedSampler([1, 1, 1, 97], fraction=0.25, seed=0)
        draws = [s.sample_one() for _ in range(200)]
        assert draws.count(3) > 150

    def test_availability_trace_stragglers(self):
        s = AvailabilityTraceSampler(
            FullParticipationSampler(10), dropout=0.0, straggler_fraction=0.3, straggler_slowdown=4.0, seed=1
        )
        assert len(s.stragglers) == 3
        for cid in range(10):
            expected = 4.0 if cid in s.stragglers else 1.0
            assert s.compute_multiplier(cid) == expected

    def test_all_excluded_raises(self):
        s = FullParticipationSampler(2)
        with pytest.raises(RuntimeError):
            s.sample_one(frozenset({0, 1}))


class TestSyncEquivalence:
    """Acceptance criterion: full participation + zero latency + buffer = P
    reproduces the synchronous FederatedRunner history bit-for-bit."""

    @pytest.mark.parametrize("algorithm", ["fedavg", "iiadmm", "iceadmm"])
    def test_fedbuff_full_cohort_matches_sync_bitwise(self, algorithm):
        clients, test, spec = tiny_mnist()
        # Equal shards => equal simulated compute times => simultaneous arrivals.
        assert len({len(c) for c in clients}) == 1
        config = tiny_config(algorithm)  # float64 default
        model_fn = mlp_fn(spec)
        sync = build_federation(config, model_fn, clients, test)
        h_sync = sync.run()
        arun = build_async_federation(config, model_fn, clients, test, strategy=FedBuffStrategy(len(clients)))
        h_async = arun.run()
        assert [r.test_accuracy for r in h_sync.rounds] == [r.test_accuracy for r in h_async.rounds]
        assert [r.test_loss for r in h_sync.rounds] == [r.test_loss for r in h_async.rounds]
        assert np.array_equal(sync.server.global_params, arun.server.global_params)
        # Same per-round communication volume too (downlink + uplink).
        assert [r.comm_bytes for r in h_sync.rounds] == [r.comm_bytes for r in h_async.rounds]

    def test_fedasync_staleness_zero_reduces_to_sync_fedavg(self):
        clients, test, spec = tiny_mnist(num_clients=1, train_size=120, test_size=60)
        config = tiny_config("fedavg", local_steps=1)
        model_fn = mlp_fn(spec)
        sync = build_federation(config, model_fn, clients, test)
        h_sync = sync.run()
        arun = build_async_federation(config, model_fn, clients, test, strategy=FedAsyncStrategy(alpha=1.0))
        h_async = arun.run()
        # One client, nothing in flight => every upload has staleness 0, and
        # alpha * s(0) = 1 makes the mix exactly the FedAvg server update.
        assert arun.async_server.staleness_log == [0] * len(h_async)
        assert [r.test_accuracy for r in h_sync.rounds] == [r.test_accuracy for r in h_async.rounds]
        assert np.array_equal(sync.server.global_params, arun.server.global_params)


class TestAsyncRunner:
    def test_serial_equals_parallel_under_sampling(self):
        clients, test, spec = tiny_mnist(num_clients=6, train_size=360)
        devices = [A100, V100, CPU_DEVICE] * 2
        model_fn = mlp_fn(spec)

        def run_with(workers):
            config = tiny_config("iiadmm", parallel_clients=workers)
            runner = build_async_federation(
                config,
                model_fn,
                clients,
                test,
                strategy=FedBuffStrategy(3),
                sampler=UniformSampler(6, fraction=0.5, seed=1),
                devices=devices,
                link=TCPLinkModel(),
                concurrency=3,
            )
            history = runner.run()
            return history, runner.server.global_params.copy()

        h_serial, p_serial = run_with(1)
        h_parallel, p_parallel = run_with(4)
        assert [r.test_accuracy for r in h_serial.rounds] == [r.test_accuracy for r in h_parallel.rounds]
        assert [r.participating_clients for r in h_serial.rounds] == [
            r.participating_clients for r in h_parallel.rounds
        ]
        assert np.array_equal(p_serial, p_parallel)

    def test_heterogeneous_devices_produce_staleness_and_clock(self):
        clients, test, spec = tiny_mnist(num_clients=6, train_size=360)
        config = tiny_config("fedavg")
        runner = build_async_federation(
            config,
            mlp_fn(spec),
            clients,
            test,
            strategy=FedBuffStrategy(3),
            devices=[A100, V100, CPU_DEVICE] * 2,
            link=TCPLinkModel(),
        )
        history = runner.run(4)
        clocks = [r.wall_clock_seconds for r in history.rounds]
        assert all(c is not None and c > 0 for c in clocks)
        assert clocks == sorted(clocks)
        assert all(len(r.participating_clients) == 3 for r in history.rounds)
        assert runner.async_server.max_staleness() >= 1  # fast devices lap the CPU
        assert runner.events_processed >= 2 * sum(len(r.participating_clients) for r in history.rounds)

    def test_iiadmm_dual_replicas_survive_buffer_overwrites(self):
        """A fast client re-sampled before a FedBuff flush overwrites its
        buffered entry; its dual increment must still be replayed (once per
        upload) or the server replica drifts from the client's dual."""
        clients, test, spec = tiny_mnist(num_clients=4, train_size=240)
        config = tiny_config("iiadmm", num_rounds=8)
        runner = build_async_federation(
            config,
            mlp_fn(spec),
            clients,
            test,
            strategy=FedBuffStrategy(3),
            sampler=UniformSampler(4, fraction=0.5, seed=3),
            devices=[A100, A100, CPU_DEVICE, CPU_DEVICE],
            link=TCPLinkModel(),
            concurrency=2,
        )
        runner.run()
        # The fast clients lapped the CPU ones, so uploads were overwritten
        # in the buffer — the scenario that used to drop dual increments.
        uploads = runner.async_server.staleness_log
        assert len(uploads) > sum(len(r.participating_clients) for r in runner.history.rounds) - 3
        for client in runner.clients:
            assert np.array_equal(runner.server.duals[client.client_id], client.dual), (
                f"dual replica of client {client.client_id} drifted"
            )

    def test_round_based_strategy_with_availability_sampler(self):
        clients, test, spec = tiny_mnist(num_clients=6, train_size=360)
        config = tiny_config("fedavg")
        sampler = AvailabilityTraceSampler(
            UniformSampler(6, fraction=0.5, seed=2),
            dropout=0.2,
            straggler_fraction=0.34,
            straggler_slowdown=3.0,
            seed=3,
        )
        runner = build_async_federation(
            config, mlp_fn(spec), clients, test, strategy=SyncRoundStrategy(), sampler=sampler
        )
        history = runner.run(3)
        assert len(history) == 3
        # Sampled synchronous rounds: zero staleness by construction.
        assert runner.async_server.max_staleness() == 0
        assert all(len(r.participating_clients) == 3 for r in history.rounds)

    def test_client_fraction_config_selects_uniform_sampler(self):
        clients, test, spec = tiny_mnist()
        config = tiny_config("fedavg", client_fraction=0.5)
        runner = build_async_federation(config, mlp_fn(spec), clients, test, strategy=SyncRoundStrategy())
        assert isinstance(runner.sampler, UniformSampler)
        history = runner.run(2)
        assert all(len(r.participating_clients) == 2 for r in history.rounds)

    def test_context_manager_closes_pool(self):
        clients, test, spec = tiny_mnist()
        config = tiny_config("fedavg", parallel_clients=2, num_rounds=1)
        with build_async_federation(config, mlp_fn(spec), clients, test) as runner:
            runner.run()
        assert runner._executor is None

    def test_invalid_concurrency(self):
        clients, test, spec = tiny_mnist()
        config = tiny_config("fedavg")
        with pytest.raises(ValueError):
            build_async_federation(config, mlp_fn(spec), clients, test, concurrency=99)

    def test_buffer_larger_than_fleet_rejected(self):
        clients, test, spec = tiny_mnist()
        config = tiny_config("fedavg")
        with pytest.raises(ValueError, match="buffer_size"):
            build_async_federation(config, mlp_fn(spec), clients, test, strategy=FedBuffStrategy(10))

    def test_adaptive_rho_rejected_for_admm_async(self):
        clients, test, spec = tiny_mnist()
        config = tiny_config("iiadmm", adaptive_rho=True, rho_growth=1.1)
        with pytest.raises(ValueError, match="adaptive_rho"):
            build_async_federation(config, mlp_fn(spec), clients, test)
        # FedAvg never touches rho: adaptive_rho stays allowed there.
        build_async_federation(tiny_config("fedavg", adaptive_rho=True, rho_growth=1.1), mlp_fn(spec), clients, test)

    @pytest.mark.parametrize("strategy_fn", [SyncRoundStrategy, lambda: FedBuffStrategy(4)])
    def test_run_resumes_after_queue_drained(self, strategy_fn):
        clients, test, spec = tiny_mnist()
        config = tiny_config("fedavg", num_rounds=4)
        model_fn = mlp_fn(spec)
        split = build_async_federation(config, model_fn, clients, test, strategy=strategy_fn())
        split.run(2)
        h_split = split.run(2)
        whole = build_async_federation(config, model_fn, clients, test, strategy=strategy_fn())
        h_whole = whole.run(4)
        assert len(h_split) == 4
        assert [r.test_accuracy for r in h_split.rounds] == [r.test_accuracy for r in h_whole.rounds]


class TestAccountingAndHistory:
    def test_sync_runner_is_context_manager_and_records_participants(self):
        clients, test, spec = tiny_mnist()
        config = tiny_config("fedavg", num_rounds=2, parallel_clients=2)
        with build_federation(config, mlp_fn(spec), clients, test) as runner:
            history = runner.run()
        assert runner._executor is None
        for r in history.rounds:
            assert r.participating_clients == (0, 1, 2, 3)
            assert r.wall_clock_seconds is None

    def test_sync_accountant_charges_each_participant_once_per_round(self):
        clients, test, spec = tiny_mnist()
        config = tiny_config("fedavg", num_rounds=3).with_privacy(5.0)
        runner = build_federation(config, mlp_fn(spec), clients, test)
        runner.run()
        for cid in range(4):
            assert runner.accountant.releases(cid) == 3
            assert runner.accountant.epsilon_spent(cid) == pytest.approx(15.0)

    def test_async_accountant_charges_only_sampled_clients(self):
        clients, test, spec = tiny_mnist(num_clients=6, train_size=360)
        config = tiny_config("fedavg", num_rounds=4).with_privacy(5.0)
        runner = build_async_federation(
            config,
            mlp_fn(spec),
            clients,
            test,
            strategy=SyncRoundStrategy(),
            sampler=UniformSampler(6, fraction=0.5, seed=1),
        )
        history = runner.run()
        participation = {cid: 0 for cid in range(6)}
        for r in history.rounds:
            for cid in r.participating_clients:
                participation[cid] += 1
        for cid in range(6):
            assert runner.accountant.releases(cid) == participation[cid]
        assert 0 < sum(participation.values()) == 4 * 3

    def test_format_history_surfaces_new_fields(self):
        clients, test, spec = tiny_mnist()
        config = tiny_config("fedavg", num_rounds=2)
        runner = build_async_federation(config, mlp_fn(spec), clients, test)
        history = runner.run()
        out = format_history(history, title="T")
        assert "sim_clock_s" in out and "clients" in out and out.startswith("T")
        assert "4" in out  # participant count column


class TestStrategies:
    def test_fedbuff_requires_positive_buffer(self):
        with pytest.raises(ValueError):
            FedBuffStrategy(0)

    def test_fedasync_validates_alpha_and_kind(self):
        with pytest.raises(ValueError):
            FedAsyncStrategy(alpha=0.0)
        with pytest.raises(ValueError):
            FedAsyncStrategy(staleness="bogus")
        assert FedAsyncStrategy(alpha=0.5).mixing_weight(0) == 0.5

    def test_sync_round_strategy_rejects_unexpected_upload(self):
        clients, test, spec = tiny_mnist()
        config = tiny_config("fedavg")
        runner = build_async_federation(config, mlp_fn(spec), clients, test, strategy=SyncRoundStrategy())
        strategy = runner.strategy
        with pytest.raises(RuntimeError):
            strategy.on_upload(runner.server, 0, {}, 0, runner.server.global_params)
